#include "noc/crossbar.hh"

#include "common/log.hh"

namespace getm {

CrossbarTiming::CrossbarTiming(std::string name_, unsigned num_src,
                               unsigned num_dst, const Config &config)
    : cfg(config), srcFree(num_src, 0), dstFree(num_dst, 0),
      statSet(std::move(name_)),
      stMessages(statSet.addCounter("messages")),
      stFlits(statSet.addCounter("flits")),
      stBytes(statSet.addCounter("bytes")),
      stQueueing(statSet.addAverage("queueing"))
{
    if (cfg.flitBytes == 0)
        fatal("crossbar flit size must be non-zero");
}

Cycle
CrossbarTiming::route(unsigned src, unsigned dst, unsigned bytes, Cycle now)
{
    if (src >= srcFree.size() || dst >= dstFree.size())
        panic("crossbar port out of range (src %u, dst %u)", src, dst);

    const Cycle nflits = (bytes + cfg.flitBytes - 1) / cfg.flitBytes;

    // Serialize at the injection port...
    const Cycle inj_start = now > srcFree[src] ? now : srcFree[src];
    srcFree[src] = inj_start + nflits;

    // ...traverse the pipeline, then serialize at the ejection port,
    // overlapping ejection with flight when the port is free.
    const Cycle head_arrival = inj_start + cfg.latency;
    const Cycle eject_start =
        head_arrival > dstFree[dst] ? head_arrival : dstFree[dst];
    const Cycle delivered = eject_start + nflits;
    dstFree[dst] = delivered;

    flits += nflits;
    stMessages.add();
    stFlits.add(nflits);
    stBytes.add(bytes);
    stQueueing.addSample(static_cast<double>(
        (inj_start - now) + (eject_start - head_arrival)));
    return delivered;
}

} // namespace getm
