/**
 * @file
 * Crossbar interconnect timing model.
 *
 * The simulated GPU (Table II) uses two crossbars: one "up" network from
 * SIMT cores to memory partitions and one "down" network back. Each
 * message occupies its injection and ejection ports for one cycle per
 * flit, plus a fixed pipeline latency, which captures the serialization
 * and contention effects that make WarpTM's two-round-trip commits
 * expensive without simulating individual flits.
 *
 * Timing is computed analytically at send time; delivery ordering per
 * destination is by computed arrival cycle (ties broken FIFO).
 *
 * Concurrency contract (docs/PARALLELISM.md): send() and nextArrival()
 * are serial-stage only. hasReady()/popReady() may run concurrently for
 * *distinct* destinations while no send() is in flight — each
 * destination's inbox has a single owner per phase, and the only shared
 * pop-side state (the in-flight gauge and the arrival-cache dirty flag)
 * is relaxed-atomic.
 */

#ifndef GETM_NOC_CROSSBAR_HH
#define GETM_NOC_CROSSBAR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace getm {

/** Port-occupancy bookkeeping shared by all crossbar instantiations. */
class CrossbarTiming
{
  public:
    struct Config
    {
        /** Pipeline traversal latency in cycles (Table II: 5). */
        Cycle latency = 5;
        /** Bytes per flit (one flit crosses a port per cycle). */
        unsigned flitBytes = 32;
    };

    CrossbarTiming(std::string name_, unsigned num_src, unsigned num_dst,
                   const Config &config);

    /**
     * Compute the delivery cycle for a message of @p bytes sent from
     * @p src to @p dst at time @p now, updating port occupancy and
     * traffic statistics.
     */
    Cycle route(unsigned src, unsigned dst, unsigned bytes, Cycle now);

    /** Total flits that have crossed this crossbar (Fig. 12 metric). */
    std::uint64_t totalFlits() const { return flits; }

    StatSet &stats() { return statSet; }
    const StatSet &stats() const { return statSet; }

    /** Checkpoint hook: port occupancy clocks + traffic stats. */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(srcFree, dstFree, flits, statSet);
    }

  private:
    Config cfg;
    std::vector<Cycle> srcFree;
    std::vector<Cycle> dstFree;
    std::uint64_t flits = 0;
    StatSet statSet;

    // Hot-path stat handles: one add/sample per routed message.
    StatSet::Counter &stMessages;
    StatSet::Counter &stFlits;
    StatSet::Counter &stBytes;
    StatSet::Average &stQueueing;
};

/**
 * A crossbar carrying messages of payload type @p MsgT.
 *
 * Messages are enqueued with send() and drained per destination with
 * popReady(); nextArrival() supports idle-cycle skipping in the top-level
 * simulation loop.
 */
template <typename MsgT>
class Crossbar
{
  public:
    Crossbar(std::string name_, unsigned num_src, unsigned num_dst,
             const CrossbarTiming::Config &config)
        : timing(std::move(name_), num_src, num_dst, config),
          inbox(num_dst)
    {
    }

    /**
     * Observer invoked for every send with the routed message and its
     * send/arrival cycles. Purely passive — it sees timing that is
     * already decided, so installing one cannot perturb the NoC model
     * (the transaction tracer's hop-latency accounting hangs here).
     */
    using SendHook =
        std::function<void(const MsgT &, Cycle sent, Cycle arrived)>;

    /** Send @p msg; returns its delivery cycle. */
    Cycle
    send(unsigned src, unsigned dst, unsigned bytes, Cycle now, MsgT msg)
    {
        const Cycle when = timing.route(src, dst, bytes, now);
        if (sendHook)
            sendHook(msg, now, when);
        inbox[dst].push(Entry{when, seq++, std::move(msg)});
        pending.fetch_add(1, std::memory_order_relaxed);
        if (!arrivalDirty.load(std::memory_order_relaxed) &&
            when < cachedArrival)
            cachedArrival = when;
        return when;
    }

    /** Install (or clear, with nullptr) the passive send observer. */
    void setSendHook(SendHook hook) { sendHook = std::move(hook); }

    /** True if a message for @p dst has arrived by @p now. */
    bool
    hasReady(unsigned dst, Cycle now) const
    {
        return !inbox[dst].empty() && inbox[dst].top().when <= now;
    }

    /** Pop the oldest arrived message for @p dst (must be hasReady()). */
    MsgT
    popReady(unsigned dst)
    {
        Entry top = inbox[dst].top();
        inbox[dst].pop();
        pending.fetch_sub(1, std::memory_order_relaxed);
        // The popped entry may have been the cached minimum; recompute
        // lazily on the next nextArrival() call.
        arrivalDirty.store(true, std::memory_order_relaxed);
        return std::move(top.msg);
    }

    /** Earliest pending arrival across all destinations (or ~0).
     *  Serial-stage only (rebuilds the shared arrival cache). */
    Cycle
    nextArrival() const
    {
        if (arrivalDirty.load(std::memory_order_relaxed)) {
            Cycle best = ~static_cast<Cycle>(0);
            for (const auto &queue : inbox)
                if (!queue.empty() && queue.top().when < best)
                    best = queue.top().when;
            cachedArrival = best;
            arrivalDirty.store(false, std::memory_order_relaxed);
        }
        return cachedArrival;
    }

    /** True if no messages are in flight anywhere. */
    bool
    idle() const
    {
        return pending.load(std::memory_order_relaxed) == 0;
    }

    /** Messages currently queued or in flight (telemetry gauge). */
    std::size_t
    inFlight() const
    {
        return pending.load(std::memory_order_relaxed);
    }

    std::uint64_t totalFlits() const { return timing.totalFlits(); }
    StatSet &stats() { return timing.stats(); }

    /**
     * Checkpoint hook: timing state, send sequence, and every in-flight
     * message (each inbox drains/reloads in (when, seq) pop order, a
     * total order, so heap layout is unobservable). The in-flight gauge
     * is recomputed and the arrival cache invalidated on load.
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        timing.ckpt(ar);
        ar(seq, inbox);
        if constexpr (!Ar::saving) {
            std::size_t n = 0;
            for (const auto &queue : inbox)
                n += queue.size();
            pending.store(n, std::memory_order_relaxed);
            arrivalDirty.store(true, std::memory_order_relaxed);
        }
    }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        MsgT msg;

        bool
        operator>(const Entry &other) const
        {
            return when != other.when ? when > other.when
                                      : seq > other.seq;
        }

        template <class Ar> void ckpt(Ar &ar) { ar(when, seq, msg); }
    };

    CrossbarTiming timing;
    SendHook sendHook;
    std::uint64_t seq = 0;
    /** In-flight gauge; relaxed so concurrent per-dst pops stay clean. */
    std::atomic<std::size_t> pending{0};
    mutable Cycle cachedArrival = ~static_cast<Cycle>(0);
    mutable std::atomic<bool> arrivalDirty{false};
    std::vector<std::priority_queue<Entry, std::vector<Entry>,
                                    std::greater<Entry>>>
        inbox;
};

} // namespace getm

#endif // GETM_NOC_CROSSBAR_HH
