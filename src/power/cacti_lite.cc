#include "power/cacti_lite.hh"

#include <cmath>

namespace getm {

SramEstimate
CactiLite::estimate(double bits_per_instance, unsigned instances,
                    double ports, double freq_ghz)
{
    SramEstimate result;
    const double total_bits = bits_per_instance * instances;

    const double cell_area =
        bitcellAreaUm2 * std::pow(ports, 1.5) * total_bits;
    result.areaMm2 = (cell_area + peripheryUm2 * instances) * 1e-6;

    const double leakage = leakMwPerKbit * total_bits / 1000.0;
    // Access energy grows with wordline/bitline length ~ sqrt(bits) and
    // with port loading; one access per cycle per instance (conservative,
    // as in the paper).
    const double dynamic = dynMwCoeff * std::sqrt(bits_per_instance) *
                           ports * freq_ghz * instances /
                           std::sqrt(static_cast<double>(instances));
    result.powerMw = leakage + dynamic;
    // Small structures are periphery-dominated; charge a floor per
    // instance.
    const double floor = instanceMw * instances;
    if (result.powerMw < floor)
        result.powerMw = floor;
    return result;
}

} // namespace getm
