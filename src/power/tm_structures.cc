#include "power/tm_structures.hh"

#include "common/log.hh"

namespace getm {

namespace {

constexpr double vuGhz = 1.4; ///< Validation-unit clock (Table II).
constexpr double cuGhz = 0.7; ///< Commit-unit clock (Table II).

void
addRow(OverheadReport &report, const std::string &name, double kilobytes,
       unsigned instances, double ports, double freq_ghz)
{
    StructureRow row;
    row.name = name;
    row.kilobytesPerInstance = kilobytes;
    row.instances = instances;
    row.estimate = CactiLite::estimate(kilobytes * 8192.0, instances,
                                       ports, freq_ghz);
    report.totalAreaMm2 += row.estimate.areaMm2;
    report.totalPowerMw += row.estimate.powerMw;
    report.rows.push_back(std::move(row));
}

void
addWarpTmRows(OverheadReport &report, const GpuConfig &cfg)
{
    const unsigned parts = cfg.numPartitions;
    const unsigned cores = cfg.numCores;
    // Commit-unit structures, one set per memory partition (sizes from
    // paper Table V at the 15-core / 6-partition baseline, scaled with
    // the partition count).
    addRow(report, "CU: LWHR tables", 3.0, parts, 3.0, cuGhz);
    addRow(report, "CU: LWHR filters", 2.0, parts, 1.3, cuGhz);
    addRow(report, "CU: entry arrays", 19.0, parts, 2.0, cuGhz);
    addRow(report, "CU: read-write buffers", 32.0, parts, 3.0, cuGhz);
    // Temporal conflict detection: first-read tables per core, one
    // last-write buffer total.
    addRow(report, "TCD: first-read tables", 12.0, cores, 1.0, vuGhz);
    addRow(report, "TCD: last-write buffer", 16.0, 1, 1.0, vuGhz);
}

void
addEapgRows(OverheadReport &report, const GpuConfig &cfg)
{
    // Conflict-address table per core; reference-count table per
    // partition (Chen & Peng [26], sizes from Table V).
    addRow(report, "CAT: conflict address table", 12.0, cfg.numCores, 2.0,
           vuGhz);
    addRow(report, "RCT: reference count table", 15.0, cfg.numPartitions,
           1.7, cuGhz);
}

void
addGetmRows(OverheadReport &report, const GpuConfig &cfg)
{
    const unsigned parts = cfg.numPartitions;
    const unsigned cores = cfg.numCores;

    // Write-only commit buffers: half of WarpTM's read-write buffers
    // (Sec. V-C).
    addRow(report, "CU: write buffers", 16.0, parts, 3.0, cuGhz);

    // Precise metadata: tag + wts + rts + #writes + owner = 16 B/entry
    // (48-bit timestamps), giving the paper's 64 KB total at 4K entries.
    const double precise_kb =
        cfg.getmPreciseEntriesTotal * 16.0 / 1024.0 / parts;
    addRow(report, "VU: precise tables", precise_kb, parts, 1.5, vuGhz);

    // Approximate (recency Bloom) tables: 2 x 32-bit timestamps per
    // bucket, 4 ways.
    const double approx_kb =
        cfg.getmBloomEntriesTotal * 8.0 / 1024.0 / parts;
    addRow(report, "VU: approximate tables", approx_kb, parts, 1.0,
           vuGhz);

    // Per-core warpts tables: 48 warps x 32-bit timestamps.
    addRow(report, "warpts tables",
           cfg.core.maxWarps * 4.0 / 1024.0, cores, 1.0, vuGhz);

    // Stall buffers: 4 lines x 4 entries x ~7.5 B each per partition.
    const double stall_kb = cfg.getmStall.lines *
                            cfg.getmStall.entriesPerLine * 7.5 / 1024.0;
    addRow(report, "stall buffers", stall_kb, parts, 1.0, vuGhz);
}

} // namespace

OverheadReport
tmOverheads(ProtocolKind protocol, const GpuConfig &cfg)
{
    OverheadReport report;
    switch (protocol) {
      case ProtocolKind::WarpTmLL:
      case ProtocolKind::WarpTmEL:
        addWarpTmRows(report, cfg);
        break;
      case ProtocolKind::Eapg:
        addWarpTmRows(report, cfg);
        addEapgRows(report, cfg);
        break;
      case ProtocolKind::Getm:
        addGetmRows(report, cfg);
        break;
      case ProtocolKind::FgLock:
        break; // no TM hardware at all
    }
    return report;
}

} // namespace getm
