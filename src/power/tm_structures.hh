/**
 * @file
 * Hardware-structure inventories of the three TM systems (paper
 * Table V) and the estimator that regenerates the table.
 *
 * WarpTM needs per-partition commit units with last-written-hazard
 * (LWHR) tables/filters, entry arrays and read-write buffers, plus the
 * temporal-conflict-detection tables. EAPG adds conflict-address and
 * reference-count tables on top. GETM replaces all of it with halved
 * write-only commit buffers, the precise + approximate metadata tables,
 * per-core warpts tables and tiny stall buffers -- which is where the
 * paper's 3.6x area / 2.2x power advantage comes from.
 */

#ifndef GETM_POWER_TM_STRUCTURES_HH
#define GETM_POWER_TM_STRUCTURES_HH

#include <string>
#include <vector>

#include "gpu/gpu_config.hh"
#include "power/cacti_lite.hh"

namespace getm {

/** One row of the Table V breakdown. */
struct StructureRow
{
    std::string name;
    double kilobytesPerInstance = 0.0;
    unsigned instances = 1;
    SramEstimate estimate;
};

/** A protocol's overhead breakdown. */
struct OverheadReport
{
    std::vector<StructureRow> rows;
    double totalAreaMm2 = 0.0;
    double totalPowerMw = 0.0;
};

/**
 * Build the Table V inventory for @p protocol under @p cfg. EAPG's
 * report includes the WarpTM structures it builds on (as in the paper's
 * total).
 */
OverheadReport tmOverheads(ProtocolKind protocol, const GpuConfig &cfg);

} // namespace getm

#endif // GETM_POWER_TM_STRUCTURES_HH
