/**
 * @file
 * Analytical SRAM area/power estimator ("CACTI-lite").
 *
 * The paper estimates the silicon overheads of the TM structures with
 * CACTI 6.5 at a 32 nm node, conservatively assuming every structure is
 * accessed each cycle (Sec. VI-A). CACTI itself is not available here,
 * so this model reproduces its first-order behaviour:
 *
 *   area  ~ bitcell area x bits x port overhead  + per-instance periphery
 *   power ~ leakage(bits) + f x dynamic(access width ~ sqrt(bits), ports)
 *
 * The four constants are calibrated against the CACTI data points the
 * paper itself publishes in Table V (e.g., the 32 KB x 6 read-write
 * buffers at 0.7 GHz: 1.734 mm^2 / 132.5 mW; the 12 KB x 15 TCD tables
 * at 1.4 GHz: 0.375 mm^2 / 113.3 mW), which keeps the reproduced
 * area/power *ratios* between WarpTM, EAPG, and GETM faithful.
 */

#ifndef GETM_POWER_CACTI_LITE_HH
#define GETM_POWER_CACTI_LITE_HH

#include <cstdint>

namespace getm {

/** Area/power estimate for one kind of structure (all instances). */
struct SramEstimate
{
    double areaMm2 = 0.0;
    double powerMw = 0.0; ///< Dynamic + static, access-every-cycle.
};

/** First-order SRAM model at the 32 nm node. */
class CactiLite
{
  public:
    /**
     * Estimate an SRAM-based structure.
     *
     * @param bits_per_instance Storage bits in one instance.
     * @param instances  Number of physical copies (e.g., one per core).
     * @param ports      Effective read/write port count (CAM-like or
     *                   heavily multiported structures use > 1).
     * @param freq_ghz   Access clock (VU 1.4 GHz, CU 0.7 GHz; Table II).
     */
    static SramEstimate estimate(double bits_per_instance,
                                 unsigned instances, double ports,
                                 double freq_ghz);

  private:
    // Calibrated against the CACTI 6.5 numbers in paper Table V.
    static constexpr double bitcellAreaUm2 = 0.21; ///< 32 nm 6T cell+...
    static constexpr double peripheryUm2 = 900.0;  ///< Per instance.
    static constexpr double leakMwPerKbit = 0.0625;
    static constexpr double dynMwCoeff = 0.0123;
    static constexpr double instanceMw = 0.6;
};

} // namespace getm

#endif // GETM_POWER_CACTI_LITE_HH
