// Backoff is header-only; see backoff.hh.
#include "tm/backoff.hh"
