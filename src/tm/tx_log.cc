// ThreadTxLog is header-only; this translation unit exists so the library
// has a stable archive member for the class and a place for future
// out-of-line growth.
#include "tm/tx_log.hh"
