#include "tm/intra_warp_cd.hh"

namespace getm {

LaneMask
IntraWarpCd::resolveAtCommit(const ThreadTxLog *logs, unsigned warp_size,
                             LaneMask candidates)
{
    // Two-phase parallel resolution modelled functionally: accept lanes in
    // index order; a lane survives if none of its accesses conflict with
    // a previously accepted lane's accesses.
    std::unordered_map<Addr, Owners> accepted;
    LaneMask survivors = 0;

    for (LaneId lane = 0; lane < warp_size; ++lane) {
        if (!(candidates & (1u << lane)))
            continue;
        const ThreadTxLog &log = logs[lane];
        bool conflict = false;
        for (const LogEntry &entry : log.readLog()) {
            auto it = accepted.find(entry.addr);
            if (it != accepted.end() && it->second.writers) {
                conflict = true;
                break;
            }
        }
        if (!conflict) {
            for (const LogEntry &entry : log.writeLog()) {
                auto it = accepted.find(entry.addr);
                if (it != accepted.end() &&
                    (it->second.readers || it->second.writers)) {
                    conflict = true;
                    break;
                }
            }
        }
        if (conflict)
            continue;
        survivors |= 1u << lane;
        for (const LogEntry &entry : log.readLog())
            accepted[entry.addr].readers |= 1u << lane;
        for (const LogEntry &entry : log.writeLog())
            accepted[entry.addr].writers |= 1u << lane;
    }
    return survivors;
}

} // namespace getm
