/**
 * @file
 * Probabilistically increasing backoff for aborted transactions.
 *
 * Paper Sec. V-A, "Forward progress": aborted transactions restart with a
 * randomized delay drawn from a window that doubles with each consecutive
 * abort (classic binary exponential backoff [36]), capped to bound the
 * worst case.
 */

#ifndef GETM_TM_BACKOFF_HH
#define GETM_TM_BACKOFF_HH

#include "common/rng.hh"
#include "common/types.hh"

namespace getm {

/** Per-warp exponential backoff state. */
class Backoff
{
  public:
    struct Config
    {
        Cycle baseWindow = 16;
        Cycle maxWindow = 1024;
    };

    Backoff() = default;
    explicit Backoff(const Config &config) : cfg(config) {}

    /** Delay for the next retry after another abort. */
    Cycle
    nextDelay(Rng &rng)
    {
        const Cycle window = currentWindow();
        if (attempts < 63)
            ++attempts;
        return rng.below(window);
    }

    /** A successful commit resets the window. */
    void reset() { attempts = 0; }

    template <class Ar> void ckpt(Ar &ar) { ar(attempts); }

    unsigned consecutiveAborts() const { return attempts; }

    Cycle
    currentWindow() const
    {
        Cycle window = cfg.baseWindow;
        for (unsigned i = 0; i < attempts && window < cfg.maxWindow; ++i)
            window *= 2;
        return window < cfg.maxWindow ? window : cfg.maxWindow;
    }

  private:
    Config cfg{};
    unsigned attempts = 0;
};

} // namespace getm

#endif // GETM_TM_BACKOFF_HH
