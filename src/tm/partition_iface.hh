/**
 * @file
 * Interface between a memory partition and its TM protocol unit.
 *
 * A memory partition (src/gpu) hosts an LLC slice, a DRAM channel, and a
 * protocol-specific validation/commit unit. The partition pops one
 * message per cycle from its arrival queue (Table II: validation
 * bandwidth 1 request/cycle per partition); the handler returns how many
 * cycles the unit is busy, which gates the next pop.
 */

#ifndef GETM_TM_PARTITION_IFACE_HH
#define GETM_TM_PARTITION_IFACE_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backing_store.hh"
#include "obs/sink.hh"
#include "tm/messages.hh"

namespace getm {

class CheckSink;
class FaultInjector;

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

/** Services a partition provides to its protocol unit. */
class PartitionContext
{
  public:
    virtual ~PartitionContext() = default;

    virtual PartitionId partitionId() const = 0;

    /** Number of SIMT cores (EAPG broadcasts to all of them). */
    virtual unsigned numCores() const = 0;

    /** Schedule @p msg to enter the down crossbar at cycle @p when. */
    virtual void scheduleToCore(MemMsg &&msg, Cycle when) = 0;

    /**
     * Access the LLC slice for timing; returns the extra latency beyond
     * the base LLC pipeline (0 on hit, DRAM delay on miss).
     */
    virtual Cycle accessLlc(Addr line_addr, bool is_write, Cycle now) = 0;

    /** Base LLC pipeline latency (Table II: 330 cycles). */
    virtual Cycle llcLatency() const = 0;

    /** Functional memory. */
    virtual BackingStore &memory() = 0;

    virtual StatSet &stats() = 0;

    /** Observability sink; may be nullptr when reporting is disabled. */
    virtual ObsSink *obs() { return nullptr; }

    /** Transaction tracer; nullptr unless --trace-tx is enabled. */
    virtual ObsSink *trace() { return nullptr; }

    /** Runtime checker sink; nullptr unless --check is enabled. */
    virtual CheckSink *check() { return nullptr; }

    /** Fault injector; nullptr unless --inject is enabled. */
    virtual FaultInjector *faults() { return nullptr; }
};

/** Partition-side protocol unit (validation + commit units). */
class TmPartitionProtocol
{
  public:
    virtual ~TmPartitionProtocol() = default;

    /**
     * Process one arrived protocol message at cycle @p now.
     * @return the number of cycles the unit is busy (>= 1).
     */
    virtual Cycle handleRequest(MemMsg &&msg, Cycle now) = 0;

    /** Earliest future self-generated event (e.g., none: ~0). */
    virtual Cycle nextEventCycle() const { return ~static_cast<Cycle>(0); }

    /** Self-generated work (default: none). */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * The partition applied a data write outside the protocol unit
     * (non-transactional store or atomic); lets WarpTM's TCD last-write
     * table stay conservative.
     */
    virtual void noteDataWrite(Addr addr, Cycle now)
    {
        (void)addr;
        (void)now;
    }

    /** Serialize engine state into a checkpoint (default: stateless). */
    virtual void ckptSave(ckpt::Writer &ar) { (void)ar; }

    /** Restore engine state from a checkpoint (default: stateless). */
    virtual void ckptLoad(ckpt::Reader &ar) { (void)ar; }
};

} // namespace getm

#endif // GETM_TM_PARTITION_IFACE_HH
