/**
 * @file
 * Intra-warp conflict detection.
 *
 * Transactions are thread-granular but coalesced per warp, so conflicts
 * between lanes of the same warp must be found inside the core (paper
 * Sec. II-B / V-A; the "two-phase parallel" ownership-table technique of
 * WarpTM). Two entry points are provided:
 *
 *  - eager per-access checking (GETM: "each transactional access is first
 *    checked against the local per-warp read and write logs"), and
 *  - commit-time resolution (WarpTM: pick a conflict-free survivor set;
 *    losers retry in a later attempt).
 */

#ifndef GETM_TM_INTRA_WARP_CD_HH
#define GETM_TM_INTRA_WARP_CD_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "tm/tx_log.hh"

namespace getm {

/** Per-warp address ownership table (the 4 KB structure of Table II). */
class IntraWarpCd
{
  public:
    /**
     * Eagerly check lane @p lane accessing word @p addr.
     *
     * @param is_write True for stores.
     * @return true if the access conflicts with another lane's prior
     *         access (R-W, W-R or W-W on the same word), in which case
     *         the accessing lane must abort.
     */
    bool
    checkAndRecord(LaneId lane, Addr addr, bool is_write)
    {
        Owners &owners = table[addr];
        const LaneMask self = 1u << lane;
        const bool conflict =
            is_write ? ((owners.readers | owners.writers) & ~self) != 0
                     : (owners.writers & ~self) != 0;
        if (conflict)
            return true;
        if (is_write)
            owners.writers |= self;
        else
            owners.readers |= self;
        return false;
    }

    /**
     * Commit-time resolution over per-lane logs: greedily accept lanes in
     * index order, rejecting any lane whose read/write set conflicts with
     * an already accepted lane.
     *
     * @param logs      warpSize thread logs.
     * @param candidates Lanes that reached the commit point.
     * @return the mask of surviving (conflict-free) lanes.
     */
    static LaneMask resolveAtCommit(const ThreadTxLog *logs,
                                    unsigned warp_size,
                                    LaneMask candidates);

    void clear() { table.clear(); }

    /** Remove a single lane's claims (used when a lane aborts). */
    void
    dropLane(LaneId lane)
    {
        const LaneMask self = 1u << lane;
        for (auto &[addr, owners] : table) {
            owners.readers &= ~self;
            owners.writers &= ~self;
        }
    }

    template <class Ar> void ckpt(Ar &ar) { ar(table); }

  private:
    struct Owners
    {
        LaneMask readers = 0;
        LaneMask writers = 0;

        template <class Ar> void ckpt(Ar &ar) { ar(readers, writers); }
    };

    std::unordered_map<Addr, Owners> table;
};

} // namespace getm

#endif // GETM_TM_INTRA_WARP_CD_HH
