/**
 * @file
 * Messages exchanged between SIMT cores and memory partitions.
 *
 * One tagged struct covers every protocol (plain loads/stores, atomics,
 * GETM eager requests, WarpTM validation/commit traffic, EAPG broadcasts).
 * The `bytes` field is what the crossbar charges for serialization, so
 * each sender is responsible for setting it to the modelled wire size --
 * this is how Fig. 12's traffic comparison is produced.
 */

#ifndef GETM_TM_MESSAGES_HH
#define GETM_TM_MESSAGES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace getm {

/** Message kinds, both directions. */
enum class MsgKind : std::uint8_t
{
    // ---- core -> partition -------------------------------------------
    NtxRead,        ///< Non-transactional read of (parts of) a line.
    NtxWrite,       ///< Non-transactional write-through.
    Atomic,         ///< Atomic read-modify-writes (executed at the LLC).
    GetmTxLoad,     ///< GETM transactional load (eager check + data).
    GetmTxStore,    ///< GETM encounter-time write reservation.
    GetmCommit,     ///< GETM commit/abort log chunk (off critical path).
    WtmTxLoad,      ///< WarpTM transactional load (data + TCD probe).
    WtmValidate,    ///< WarpTM read+write log slice for validation.
    WtmSkip,        ///< WarpTM empty slice (keeps commit-id order).
    WtmDecision,    ///< WarpTM commit/abort decision.
    // ---- partition -> core -------------------------------------------
    NtxReadResp,
    NtxWriteAck,    ///< Only for L1-bypass (volatile) stores.
    AtomicResp,
    GetmLoadResp,   ///< Data or abort notification.
    GetmStoreResp,  ///< Reservation grant or abort notification.
    WtmLoadResp,    ///< Data plus TCD last-write timestamps.
    WtmValidateResp,
    WtmCommitAck,
    EapgSignature,  ///< EAPG write-signature broadcast (idealized 64-bit).
    EapgCommitDone, ///< EAPG end-of-commit broadcast.
};

/** Per-lane element of a request/response. */
struct LaneOp
{
    std::uint8_t lane = 0;
    Addr addr = 0;          ///< Word address.
    std::uint32_t value = 0;///< Store data / loaded data / old value.
    std::uint32_t aux = 0;  ///< CAS swap value / write count / flags.

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(lane, addr, value, aux);
    }
};

/** Atomic operation kinds executed at the LLC. */
enum class AtomicOp : std::uint8_t
{
    Cas,
    Exch,
    Add,
};

/** Outcome carried by GETM responses. */
enum class GetmOutcome : std::uint8_t
{
    Success,
    Abort,
};

/** A core<->partition message. */
struct MemMsg
{
    MsgKind kind = MsgKind::NtxRead;
    CoreId core = 0;            ///< Originating (or target) core.
    PartitionId partition = 0;
    GlobalWarpId wid = invalidWarp;
    std::uint32_t warpSlot = 0; ///< Core-local warp slot.
    std::uint32_t seq = 0;      ///< Request/response matching tag.
    Addr addr = 0;              ///< Line or granule base address.
    LogicalTs ts = 0;           ///< warpts (req) or abort cause (resp).
    std::uint64_t txId = 0;     ///< WarpTM global commit id / signature.
    bool flag = false;          ///< Multipurpose (commit vs abort, ...).
    std::uint8_t aop = 0;       ///< Atomic opcode (AtomicOp) for Atomic.
    GetmOutcome outcome = GetmOutcome::Success;
    std::uint8_t reason = 0;    ///< AbortReason for Abort outcomes; the
                                ///< partition decides the reason, the
                                ///< core attributes the abort with it.
    std::vector<LaneOp> ops;    ///< Lane ops or log entries.
    std::uint32_t bytes = 8;    ///< Modelled wire size for the crossbar.

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(kind, core, partition, wid, warpSlot, seq, addr, ts, txId,
           flag, aop, outcome, reason, ops, bytes);
    }
};

} // namespace getm

#endif // GETM_TM_MESSAGES_HH
