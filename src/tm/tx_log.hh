/**
 * @file
 * Per-warp transaction redo logs.
 *
 * As in KiloTM/WarpTM (paper Sec. V-A), each warp keeps per-thread read
 * and write logs in the SIMT core's local memory. GETM strictly needs
 * only the write log, but the read log is kept as well to support
 * intra-warp conflict detection. Log storage timing is assumed L1
 * resident (a one-cycle append), which both the paper's proposals share,
 * so it cancels out of all comparisons.
 *
 * Lookups are O(1): each log carries a small open-addressed addr→slot
 * index that engages once the log outgrows a handful of entries (below
 * that, a linear scan is faster than hashing). The entry vectors stay
 * the single source of truth and keep strict append order -- commit
 * replays and validation both depend on it -- the index is purely an
 * accelerator.
 */

#ifndef GETM_TM_TX_LOG_HH
#define GETM_TM_TX_LOG_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace getm {

/** One logged access. */
struct LogEntry
{
    Addr addr = 0;           ///< Word address.
    std::uint32_t value = 0; ///< Observed value (reads) / data (writes).
    std::uint32_t count = 1; ///< Number of coalesced writes (writes only).

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(addr, value, count);
    }
};

/** The redo log of a single thread's transaction attempt. */
class ThreadTxLog
{
  public:
    /** Record a read of @p addr observing @p value (first read only). */
    void
    addRead(Addr addr, std::uint32_t value)
    {
        if (lookup(reads, readIndex, addr) != npos)
            return;
        reads.push_back({addr, value, 1});
        noteAppend(reads, readIndex);
    }

    /** Record a write; repeated writes coalesce and bump the count. */
    void
    addWrite(Addr addr, std::uint32_t value)
    {
        const std::size_t slot = lookup(writes, writeIndex, addr);
        if (slot != npos) {
            writes[slot].value = value;
            ++writes[slot].count;
            return;
        }
        writes.push_back({addr, value, 1});
        noteAppend(writes, writeIndex);
    }

    /** Read-own-write lookup. */
    std::optional<std::uint32_t>
    findWrite(Addr addr) const
    {
        const std::size_t slot = lookup(writes, writeIndex, addr);
        if (slot == npos)
            return std::nullopt;
        return writes[slot].value;
    }

    bool
    hasRead(Addr addr) const
    {
        return lookup(reads, readIndex, addr) != npos;
    }

    void
    clear()
    {
        reads.clear();
        writes.clear();
        readIndex.clear();
        writeIndex.clear();
    }

    const std::vector<LogEntry> &readLog() const { return reads; }
    const std::vector<LogEntry> &writeLog() const { return writes; }
    bool readOnly() const { return writes.empty(); }

    /**
     * Checkpoint hook: the entry vectors only. The addr→slot indexes
     * are pure lookup accelerators — find() returns the same slot for
     * any layout — so they are rebuilt, not serialized.
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(reads, writes);
        if constexpr (!Ar::saving) {
            readIndex.clear();
            writeIndex.clear();
            if (reads.size() > linearCutoff)
                readIndex.rebuild(reads);
            if (writes.size() > linearCutoff)
                writeIndex.rebuild(writes);
        }
    }

  private:
    static constexpr std::size_t npos = ~static_cast<std::size_t>(0);
    /** Below this many entries a linear scan beats hashing. */
    static constexpr std::size_t linearCutoff = 8;

    struct Cell
    {
        Addr addr = 0;
        std::size_t slot = npos; ///< npos marks an empty cell.
    };

    /** Open-addressed addr → entry-slot map (power-of-two capacity,
     *  linear probing, ≤ 50% load). Empty until first engaged. */
    struct AddrIndex
    {
        std::vector<Cell> cells;
        std::size_t used = 0;

        static std::size_t
        hash(Addr addr)
        {
            const std::uint64_t x =
                static_cast<std::uint64_t>(addr) * 0x9e3779b97f4a7c15ull;
            return static_cast<std::size_t>((x >> 32) ^ x);
        }

        std::size_t
        find(Addr addr) const
        {
            const std::size_t mask = cells.size() - 1;
            for (std::size_t i = hash(addr) & mask;; i = (i + 1) & mask) {
                if (cells[i].slot == npos)
                    return npos;
                if (cells[i].addr == addr)
                    return cells[i].slot;
            }
        }

        void
        insert(Addr addr, std::size_t slot)
        {
            const std::size_t mask = cells.size() - 1;
            std::size_t i = hash(addr) & mask;
            while (cells[i].slot != npos)
                i = (i + 1) & mask;
            cells[i] = {addr, slot};
            ++used;
        }

        void
        rebuild(const std::vector<LogEntry> &entries)
        {
            std::size_t capacity = 4 * linearCutoff;
            while (capacity < 2 * (entries.size() + 1))
                capacity *= 2;
            cells.assign(capacity, Cell{});
            used = 0;
            for (std::size_t s = 0; s < entries.size(); ++s)
                insert(entries[s].addr, s);
        }

        void
        clear()
        {
            cells.clear();
            used = 0;
        }
    };

    static std::size_t
    lookup(const std::vector<LogEntry> &entries, const AddrIndex &index,
           Addr addr)
    {
        if (!index.cells.empty())
            return index.find(addr);
        for (std::size_t i = 0; i < entries.size(); ++i)
            if (entries[i].addr == addr)
                return i;
        return npos;
    }

    /** Index maintenance for an entry just appended to @p entries. */
    static void
    noteAppend(const std::vector<LogEntry> &entries, AddrIndex &index)
    {
        if (index.cells.empty()) {
            if (entries.size() > linearCutoff)
                index.rebuild(entries);
            return;
        }
        if (2 * (index.used + 1) > index.cells.size()) {
            index.rebuild(entries);
            return;
        }
        index.insert(entries.back().addr, entries.size() - 1);
    }

    std::vector<LogEntry> reads;
    std::vector<LogEntry> writes;
    AddrIndex readIndex;
    AddrIndex writeIndex;
};

} // namespace getm

#endif // GETM_TM_TX_LOG_HH
