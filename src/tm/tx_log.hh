/**
 * @file
 * Per-warp transaction redo logs.
 *
 * As in KiloTM/WarpTM (paper Sec. V-A), each warp keeps per-thread read
 * and write logs in the SIMT core's local memory. GETM strictly needs
 * only the write log, but the read log is kept as well to support
 * intra-warp conflict detection. Log storage timing is assumed L1
 * resident (a one-cycle append), which both the paper's proposals share,
 * so it cancels out of all comparisons.
 */

#ifndef GETM_TM_TX_LOG_HH
#define GETM_TM_TX_LOG_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace getm {

/** One logged access. */
struct LogEntry
{
    Addr addr = 0;           ///< Word address.
    std::uint32_t value = 0; ///< Observed value (reads) / data (writes).
    std::uint32_t count = 1; ///< Number of coalesced writes (writes only).
};

/** The redo log of a single thread's transaction attempt. */
class ThreadTxLog
{
  public:
    /** Record a read of @p addr observing @p value (first read only). */
    void
    addRead(Addr addr, std::uint32_t value)
    {
        for (const LogEntry &entry : reads)
            if (entry.addr == addr)
                return;
        reads.push_back({addr, value, 1});
    }

    /** Record a write; repeated writes coalesce and bump the count. */
    void
    addWrite(Addr addr, std::uint32_t value)
    {
        for (LogEntry &entry : writes) {
            if (entry.addr == addr) {
                entry.value = value;
                ++entry.count;
                return;
            }
        }
        writes.push_back({addr, value, 1});
    }

    /** Read-own-write lookup. */
    std::optional<std::uint32_t>
    findWrite(Addr addr) const
    {
        for (const LogEntry &entry : writes)
            if (entry.addr == addr)
                return entry.value;
        return std::nullopt;
    }

    bool hasRead(Addr addr) const
    {
        for (const LogEntry &entry : reads)
            if (entry.addr == addr)
                return true;
        return false;
    }

    void
    clear()
    {
        reads.clear();
        writes.clear();
    }

    const std::vector<LogEntry> &readLog() const { return reads; }
    const std::vector<LogEntry> &writeLog() const { return writes; }
    bool readOnly() const { return writes.empty(); }

  private:
    std::vector<LogEntry> reads;
    std::vector<LogEntry> writes;
};

} // namespace getm

#endif // GETM_TM_TX_LOG_HH
