#include "simt/simt_core.hh"

#include <bit>

#include "check/sink.hh"
#include "common/log.hh"
#include "gpu/timeline.hh"

namespace getm {

namespace {

unsigned
popcount(LaneMask mask)
{
    return static_cast<unsigned>(std::popcount(mask));
}

/** Scheduler state -> tracer phase (obs/sink.hh TxPhase). */
TxPhase
phaseOf(WarpState state)
{
    switch (state) {
      case WarpState::MemWait:
        return TxPhase::Mem;
      case WarpState::CommitWait:
        return TxPhase::Validate;
      case WarpState::BackoffWait:
      case WarpState::ThrottleWait:
        return TxPhase::Backoff;
      default:
        return TxPhase::Exec;
    }
}

} // namespace

SimtCore::SimtCore(CoreId id, const CoreConfig &config, const AddressMap &map,
                   BackingStore &store_, SendFn send_up)
    : coreId(id), cfg(config), addrMap(map), store(store_),
      sendUp(std::move(send_up)),
      l1("core" + std::to_string(id) + ".l1", config.l1Bytes, config.l1Assoc,
         config.lineBytes),
      randomGen(config.seed + id * 0x1009 + 7),
      statSet("core" + std::to_string(id)),
      stInstructions(statSet.addCounter("instructions")),
      stDivergences(statSet.addCounter("divergences")),
      stL1LoadHits(statSet.addCounter("l1_load_hits")),
      stL1Fills(statSet.addCounter("l1_fills")),
      stMshrMerges(statSet.addCounter("mshr_merges")),
      stWarpsLaunched(statSet.addCounter("warps_launched")),
      stWarpsFinished(statSet.addCounter("warps_finished")),
      stThrottleStalls(statSet.addCounter("throttle_stalls")),
      stTxBegins(statSet.addCounter("tx_begins")),
      stTxRetries(statSet.addCounter("tx_retries")),
      stTxAborts(statSet.addCounter("tx_aborts")),
      stTxCommitLanes(statSet.addCounter("tx_commit_lanes")),
      stTxStarvation(statSet.addCounter("tx_starvation_events"))
{
    for (unsigned r = 0; r < numAbortReasons; ++r)
        stAbortsByReason[r] = &statSet.addCounter(
            std::string("tx_aborts_") +
            abortReasonName(static_cast<AbortReason>(r)));
    warps.resize(cfg.maxWarps);
    stateOf.assign(cfg.maxWarps, WarpState::Idle);
    wakeOf.assign(cfg.maxWarps, 0);
    for (unsigned slot = 0; slot < cfg.maxWarps; ++slot) {
        warps[slot].slot = slot;
        warps[slot].state = WarpState::Idle;
    }
}

void
SimtCore::setProtocol(std::unique_ptr<TmCoreProtocol> engine)
{
    protocol = std::move(engine);
}

void
SimtCore::startKernel(const Kernel *kernel_, std::uint64_t total_threads,
                      WorkFn work, Cycle now)
{
    kernel = kernel_;
    totalThreads = total_threads;
    workSource = std::move(work);
    workExhausted = false;
    currentCycle = now;
    maybeLaunchWarps(now);
}

void
SimtCore::maybeLaunchWarps(Cycle now)
{
    if (workExhausted)
        return;
    for (auto &warp : warps) {
        if (stateOf[warp.slot] != WarpState::Idle &&
            stateOf[warp.slot] != WarpState::Finished)
            continue;
        WarpAssignment assign{};
        if (!workSource(assign)) {
            workExhausted = true;
            return;
        }
        warp.launch(coreId * cfg.maxWarps + warp.slot, warp.slot,
                    assign.firstTid, assign.validLanes, now);
        stateOf[warp.slot] = warp.state;
        wakeOf[warp.slot] = warp.wakeCycle;
        ++liveWarps;
        stWarpsLaunched.add();
    }
}

bool
SimtCore::done() const
{
    return workExhausted && liveWarps == 0;
}

void
SimtCore::changeState(Warp &warp, WarpState state)
{
    const Cycle elapsed = currentCycle - warp.stateSince;
    if (elapsed) {
        if (warp.state == WarpState::ThrottleWait) {
            warp.txWaitCycles += elapsed;
        } else if (warp.inTx) {
            switch (warp.state) {
              case WarpState::Ready:
              case WarpState::MemWait:
              case WarpState::PipelineWait:
                warp.txExecCycles += elapsed;
                break;
              case WarpState::BackoffWait:
              case WarpState::CommitWait:
                warp.txWaitCycles += elapsed;
                break;
              default:
                break;
            }
        }
    }
    warp.state = state;
    stateOf[warp.slot] = state;
    warp.stateSince = currentCycle;
    if (traceSink && warp.inTx)
        traceSink->txPhase(warp.gwid, phaseOf(state), currentCycle);
}

void
SimtCore::wakeThrottled()
{
    const unsigned n = static_cast<unsigned>(warps.size());
    for (unsigned slot = 0; slot < n; ++slot)
        if (stateOf[slot] == WarpState::ThrottleWait)
            changeState(warps[slot], WarpState::Ready);
}

Cycle
SimtCore::nextEventCycle(Cycle now) const
{
    Cycle best = ~static_cast<Cycle>(0);
    const unsigned n = static_cast<unsigned>(warps.size());
    if (!workExhausted) {
        for (unsigned slot = 0; slot < n; ++slot)
            if (stateOf[slot] == WarpState::Idle ||
                stateOf[slot] == WarpState::Finished)
                return now;
    }
    for (unsigned slot = 0; slot < n; ++slot) {
        switch (stateOf[slot]) {
          case WarpState::Ready:
            return now;
          case WarpState::BackoffWait:
          case WarpState::PipelineWait:
            if (wakeOf[slot] < best)
                best = wakeOf[slot];
            break;
          default:
            break;
        }
    }
    return best;
}

Warp *
SimtCore::pickWarp(Cycle now)
{
    const unsigned n = static_cast<unsigned>(warps.size());

    // Wake pipeline stalls, and expired backoffs (unless frozen for
    // timestamp rollover).
    for (unsigned slot = 0; slot < n; ++slot) {
        if (wakeOf[slot] > now)
            continue;
        if (stateOf[slot] == WarpState::PipelineWait ||
            (stateOf[slot] == WarpState::BackoffWait && !txFrozen))
            changeState(warps[slot], WarpState::Ready);
    }

    // Greedy-then-oldest: stay on the last issued warp while it is ready,
    // otherwise pick the lowest (oldest) ready slot.
    const unsigned last = lastIssued % n;
    if (stateOf[last] == WarpState::Ready)
        return &warps[last];
    for (unsigned slot = 0; slot < n; ++slot) {
        if (stateOf[slot] == WarpState::Ready) {
            lastIssued = slot;
            return &warps[slot];
        }
    }
    return nullptr;
}

void
SimtCore::tick(Cycle now)
{
    currentCycle = now;
    maybeLaunchWarps(now);
    for (unsigned slot = 0; slot < cfg.issueWidth; ++slot) {
        Warp *warp = pickWarp(now);
        if (!warp)
            break;
        execute(*warp, now);
    }
}

void
SimtCore::execute(Warp &warp, Cycle now)
{
    warp.reconverge();
    if (warp.stack.empty())
        panic("executing warp with empty SIMT stack");
    const SimtEntry top = warp.top();
    if (top.mask == 0) {
        if (top.kind == EntryKind::Transaction) {
            // Every lane of the attempt aborted mid-flight; park until
            // the in-flight accesses drain, then clean up and retry.
            if (warp.outstanding || warp.outstandingTxStores) {
                changeState(warp, WarpState::MemWait);
                return;
            }
            checkAllAbortedCommitPoint(warp);
            return;
        }
        panic("executing warp with empty active mask (pc %u)", top.pc);
    }
    if (top.pc >= kernel->size())
        panic("pc %u past end of kernel %s", top.pc, kernel->name().c_str());

    const Instruction inst = kernel->at(top.pc);
    const LaneMask active = top.mask;
    stInstructions.add();
    (void)now;

    switch (inst.op) {
      case Opcode::BranchEqz:
      case Opcode::BranchNez:
      case Opcode::Jump:
        execBranch(warp, inst, active);
        break;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::AtomCas:
      case Opcode::AtomExch:
      case Opcode::AtomAdd:
        execMemory(warp, inst, active);
        break;
      case Opcode::TxBegin:
        execTxBegin(warp, active);
        break;
      case Opcode::TxCommit:
        execTxCommit(warp);
        break;
      case Opcode::Exit:
        execExit(warp, active);
        break;
      case Opcode::Fence:
        if (warp.outstanding || warp.outstandingTxStores) {
            changeState(warp, WarpState::MemWait); // re-executes on drain
            break;
        }
        warp.top().pc++;
        break;
      case Opcode::Nop:
        warp.top().pc++;
        break;
      default:
        execAlu(warp, inst, active);
        break;
    }
}

std::int64_t
SimtCore::aluOp(Opcode op, std::int64_t a, std::int64_t b) const
{
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    switch (op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      case Opcode::DivU: return ub ? static_cast<std::int64_t>(ua / ub) : 0;
      case Opcode::RemU: return ub ? static_cast<std::int64_t>(ua % ub) : 0;
      case Opcode::MinS: return a < b ? a : b;
      case Opcode::MaxS: return a > b ? a : b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return static_cast<std::int64_t>(ua << (ub & 63));
      case Opcode::ShrL: return static_cast<std::int64_t>(ua >> (ub & 63));
      case Opcode::ShrA: return a >> (ub & 63);
      case Opcode::SetLtS: return a < b ? 1 : 0;
      case Opcode::SetLtU: return ua < ub ? 1 : 0;
      case Opcode::SetEq: return a == b ? 1 : 0;
      case Opcode::SetNe: return a != b ? 1 : 0;
      case Opcode::SetLeS: return a <= b ? 1 : 0;
      default:
        panic("aluOp on non-ALU opcode %u", static_cast<unsigned>(op));
    }
}

void
SimtCore::execAlu(Warp &warp, const Instruction &inst, LaneMask active)
{
    for (LaneId lane = 0; lane < warpSize; ++lane) {
        if (!(active & (1u << lane)))
            continue;
        std::int64_t result = 0;
        switch (inst.op) {
          case Opcode::LoadImm:
            result = inst.imm;
            break;
          case Opcode::ReadSpecial:
            switch (static_cast<SpecialReg>(inst.imm)) {
              case SpecialReg::ThreadId:
                result = warp.firstTid + lane;
                break;
              case SpecialReg::LaneId:
                result = lane;
                break;
              case SpecialReg::WarpId:
                result = warp.gwid;
                break;
              case SpecialReg::NumThreads:
                result = static_cast<std::int64_t>(totalThreads);
                break;
            }
            break;
          case Opcode::Hash: {
            const std::int64_t a = warp.reg(lane, inst.ra);
            const std::int64_t b =
                inst.bImm ? inst.imm : warp.reg(lane, inst.rb);
            result = static_cast<std::int64_t>(
                hashMix(static_cast<std::uint64_t>(a),
                        static_cast<std::uint64_t>(b)));
            break;
          }
          default: {
            const std::int64_t a = warp.reg(lane, inst.ra);
            const std::int64_t b =
                inst.bImm ? inst.imm : warp.reg(lane, inst.rb);
            result = aluOp(inst.op, a, b);
            break;
          }
        }
        warp.setReg(lane, inst.rd, result);
    }
    warp.top().pc++;

    // Long-latency units (divide, modulo, hashing) stall the issuing
    // warp; the scheduler covers the gap with other warps.
    if (cfg.longOpLatency > 1 &&
        (inst.op == Opcode::DivU || inst.op == Opcode::RemU ||
         inst.op == Opcode::Hash)) {
        changeState(warp, WarpState::PipelineWait);
        setWake(warp, currentCycle + cfg.longOpLatency);
    }
}

void
SimtCore::execBranch(Warp &warp, const Instruction &inst, LaneMask active)
{
    if (inst.op == Opcode::Jump) {
        warp.top().pc = inst.target;
        return;
    }
    LaneMask taken = 0;
    for (LaneId lane = 0; lane < warpSize; ++lane) {
        if (!(active & (1u << lane)))
            continue;
        const bool zero = warp.reg(lane, inst.ra) == 0;
        const bool t = (inst.op == Opcode::BranchEqz) ? zero : !zero;
        if (t)
            taken |= 1u << lane;
    }
    const LaneMask fall = active & ~taken;
    const Pc fall_pc = warp.top().pc + 1;
    if (!taken) {
        warp.top().pc = fall_pc;
    } else if (!fall) {
        warp.top().pc = inst.target;
    } else {
        warp.top().pc = inst.rpc;
        warp.stack.push_back({EntryKind::Normal, fall_pc, inst.rpc, fall});
        warp.stack.push_back(
            {EntryKind::Normal, inst.target, inst.rpc, taken});
        stDivergences.add();
    }
}

void
SimtCore::execMemory(Warp &warp, const Instruction &inst, LaneMask active)
{
    // Advance the PC first: memory instructions execute exactly once, and
    // protocol callbacks below may rearrange the SIMT stack.
    warp.top().pc++;

    LaneAddrs addrs{};
    for (LaneId lane = 0; lane < warpSize; ++lane) {
        if (!(active & (1u << lane)))
            continue;
        Addr addr = static_cast<Addr>(warp.reg(lane, inst.ra) + inst.imm);
        if (inst.isAtomic())
            addr = static_cast<Addr>(warp.reg(lane, inst.ra));
        if (addr % BackingStore::wordBytes != 0)
            panic("unaligned access %#llx at pc %u",
                  static_cast<unsigned long long>(addr), warp.top().pc - 1);
        addrs[lane] = addr;
    }

    const bool is_store = inst.op == Opcode::Store;
    const bool is_load = inst.op == Opcode::Load;

    if (warp.inTx && (is_load || is_store)) {
        if (is_load)
            warp.pendingReg = inst.rd;
        LaneVals vals{};
        if (is_store)
            for (LaneId lane = 0; lane < warpSize; ++lane)
                if (active & (1u << lane))
                    vals[lane] = static_cast<std::uint32_t>(
                        warp.reg(lane, inst.rb));
        protocol->txAccess(warp, is_store, addrs, vals, active, inst.rd);
        if (is_load && warp.outstanding > 0)
            changeState(warp, WarpState::MemWait);
        return;
    }
    if (warp.inTx && inst.isAtomic())
        panic("atomics inside transactions are not supported");

    if (is_load) {
        warp.pendingReg = inst.rd;
        const bool bypass = inst.memFlags & MemBypassL1;
        // Coalesce into lines.
        LaneMask pending = active;
        while (pending) {
            const LaneId lead =
                static_cast<LaneId>(std::countr_zero(pending));
            const Addr line = addrMap.lineOf(addrs[lead]);
            LaneMask group = 0;
            for (LaneId lane = lead; lane < warpSize; ++lane)
                if ((pending & (1u << lane)) &&
                    addrMap.lineOf(addrs[lane]) == line)
                    group |= 1u << lane;
            pending &= ~group;

            // The line becomes visible only when its fill returns (the
            // MSHR tracks the window in between), so concurrent misses
            // merge instead of all hitting a just-allocated tag.
            const bool hit = !bypass && l1.contains(line) &&
                             l1.access(line, false).hit;
            if (hit) {
                for (LaneId lane = 0; lane < warpSize; ++lane)
                    if (group & (1u << lane))
                        writebackLane(warp, lane, store.read(addrs[lane]));
                stL1LoadHits.add();
                continue;
            }
            ++warp.outstanding;
            if (!bypass && (mshrs.pending(line) || mshrs.hasRoom())) {
                // Merge with (or allocate) an outstanding fill.
                MshrTarget target;
                target.warpSlot = warp.slot;
                target.reg = inst.rd;
                target.lanes = group;
                for (LaneId lane = 0; lane < warpSize; ++lane)
                    if (group & (1u << lane))
                        target.addrs[lane] = addrs[lane];
                const bool primary = mshrs.add(line, std::move(target));
                (primary ? stL1Fills : stMshrMerges).add();
                if (!primary)
                    continue; // the outstanding fill will service us
            }
            MemMsg msg;
            msg.kind = MsgKind::NtxRead;
            msg.addr = line;
            msg.wid = warp.gwid;
            msg.warpSlot = warp.slot;
            msg.flag = bypass; // volatile: values bound at the partition
            // Tag MSHR-tracked fills so the response is routed to the
            // merged requesters (an unmerged fallback, sent when the
            // MSHR file is full, writes back via its own ops instead).
            msg.txId = (!bypass && mshrs.pending(line)) ? 1 : 0;
            for (LaneId lane = 0; lane < warpSize; ++lane)
                if (group & (1u << lane))
                    msg.ops.push_back(
                        {static_cast<std::uint8_t>(lane), addrs[lane],
                         0, 0});
            msg.bytes = 8;
            sendToPartition(std::move(msg));
        }
        if (warp.outstanding)
            changeState(warp, WarpState::MemWait);
        return;
    }

    if (is_store) {
        const bool bypass = inst.memFlags & MemBypassL1;
        LaneMask pending = active;
        while (pending) {
            const LaneId lead =
                static_cast<LaneId>(std::countr_zero(pending));
            const Addr line = addrMap.lineOf(addrs[lead]);
            LaneMask group = 0;
            for (LaneId lane = lead; lane < warpSize; ++lane)
                if ((pending & (1u << lane)) &&
                    addrMap.lineOf(addrs[lane]) == line)
                    group |= 1u << lane;
            pending &= ~group;

            MemMsg msg;
            msg.kind = MsgKind::NtxWrite;
            msg.addr = line;
            msg.wid = warp.gwid;
            msg.warpSlot = warp.slot;
            msg.flag = bypass; // needs global ordering + ack
            unsigned data_bytes = 0;
            for (LaneId lane = 0; lane < warpSize; ++lane) {
                if (!(group & (1u << lane)))
                    continue;
                const auto value = static_cast<std::uint32_t>(
                    warp.reg(lane, inst.rb));
                if (!bypass) {
                    // Private data: serialize at the core (see DESIGN.md).
                    store.write(addrs[lane], value);
                    if (checkSink)
                        checkSink->externalWrite(addrs[lane], value);
                }
                msg.ops.push_back({static_cast<std::uint8_t>(lane),
                                   addrs[lane], value, 0});
                data_bytes += 12;
            }
            msg.bytes = 8 + data_bytes;
            if (!bypass && l1.contains(line))
                l1.access(line, false); // write-through refreshes LRU
            sendToPartition(std::move(msg));
            // Volatile stores are acked (so a later Fence can order them)
            // but do not block the warp: real GPU stores retire into the
            // memory system and ordering is the fence's job.
            if (bypass)
                ++warp.outstanding;
        }
        return;
    }

    // Atomics: execute at the partition, return old values.
    warp.pendingReg = inst.rd;
    LaneMask pending = active;
    while (pending) {
        const LaneId lead = static_cast<LaneId>(std::countr_zero(pending));
        const Addr line = addrMap.lineOf(addrs[lead]);
        LaneMask group = 0;
        for (LaneId lane = lead; lane < warpSize; ++lane)
            if ((pending & (1u << lane)) &&
                addrMap.lineOf(addrs[lane]) == line)
                group |= 1u << lane;
        pending &= ~group;

        MemMsg msg;
        msg.kind = MsgKind::Atomic;
        msg.addr = line;
        msg.wid = warp.gwid;
        msg.warpSlot = warp.slot;
        switch (inst.op) {
          case Opcode::AtomCas: msg.aop = static_cast<std::uint8_t>(
              AtomicOp::Cas); break;
          case Opcode::AtomExch: msg.aop = static_cast<std::uint8_t>(
              AtomicOp::Exch); break;
          default: msg.aop = static_cast<std::uint8_t>(AtomicOp::Add); break;
        }
        unsigned data_bytes = 0;
        for (LaneId lane = 0; lane < warpSize; ++lane) {
            if (!(group & (1u << lane)))
                continue;
            const auto operand =
                static_cast<std::uint32_t>(warp.reg(lane, inst.rb));
            const auto swap =
                static_cast<std::uint32_t>(warp.reg(lane, inst.rc));
            msg.ops.push_back({static_cast<std::uint8_t>(lane), addrs[lane],
                               operand, swap});
            data_bytes += 16;
        }
        msg.bytes = 8 + data_bytes;
        sendToPartition(std::move(msg));
        ++warp.outstanding;
    }
    changeState(warp, WarpState::MemWait);
}

void
SimtCore::execTxBegin(Warp &warp, LaneMask active)
{
    if (warp.inTx)
        panic("nested transactions are not supported");
    if (txActive >= cfg.txWarpLimit || txFrozen) {
        changeState(warp, WarpState::ThrottleWait);
        stThrottleStalls.add();
        return;
    }
    ++txActive;
    warp.top().pc++;
    const Pc body = warp.top().pc;
    warp.stack.push_back({EntryKind::Retry, body, noRpc, 0});
    warp.stack.push_back({EntryKind::Transaction, body, noRpc, active});
    warp.inTx = true;
    warp.abortedMask = 0;
    // Re-stamp the persisted slot timestamp with this warp's id: fresh
    // slots start at clock 0, and a relaunched slot may now host a
    // different warp (uniqueness is per *active* warp id).
    warp.warpts = composeTs(tsClock(warp.warpts), warp.gwid);
    warp.maxObservedTs = warp.warpts;
    for (auto &log : warp.logs)
        log.clear();
    warp.iwcd.clear();
    warp.granted.clearAll();
    warp.retriesThisTx = 0;
    warp.txStartCycle = currentCycle;
    warp.tcdOkLanes = active;
    warp.commitPointFired = false;
    warp.validationFailed = 0;
    warp.commitIssued = false;
    warp.pendingValidations = 0;
    warp.pendingAcks = 0;
    stTxBegins.add();
    if (checkSink)
        checkSink->attemptBegin(warp.gwid, active, warp.firstTid);
    if (traceSink)
        traceSink->txAttemptBegin(warp.gwid, coreId, warp.slot, 0,
                                  popcount(active), currentCycle);
    if (timeline)
        timeline->begin(coreId, warp.slot, "tx", currentCycle);
    if (protocol)
        protocol->onTxBegin(warp);
}

void
SimtCore::execTxCommit(Warp &warp)
{
    if (warp.top().kind != EntryKind::Transaction)
        panic("txcommit outside a transaction");
    if (warp.outstanding || warp.outstandingTxStores) {
        // Wait for in-flight accesses (e.g., reservation acks) to drain.
        changeState(warp, WarpState::MemWait);
        return;
    }
    warp.commitPointFired = true;
    if (traceSink)
        traceSink->txCommitHandoff(warp.gwid, currentCycle);
    protocol->txCommitPoint(warp);
}

void
SimtCore::execExit(Warp &warp, LaneMask active)
{
    if (warp.inTx)
        panic("exit inside a transaction");
    if (warp.outstanding || warp.outstandingTxStores) {
        // Drain in-flight acks before the slot can be reassigned, or a
        // successor warp would receive this warp's stale responses.
        changeState(warp, WarpState::MemWait);
        return;
    }
    for (auto &entry : warp.stack)
        entry.mask &= ~active;
    while (warp.stack.size() > 1 && warp.top().mask == 0)
        warp.stack.pop_back();
    if (warp.stack.size() == 1 && warp.stack[0].mask == 0)
        finishWarp(warp);
}

void
SimtCore::finishWarp(Warp &warp)
{
    changeState(warp, WarpState::Finished);
    if (liveWarps == 0)
        panic("live-warp count underflow");
    --liveWarps;
    stWarpsFinished.add();
    maybeLaunchWarps(currentCycle);
}

void
SimtCore::abortTxLanes(Warp &warp, LaneMask lanes, LogicalTs observed_ts,
                       AbortReason reason, Addr addr)
{
    if (observed_ts > warp.maxObservedTs)
        warp.maxObservedTs = observed_ts;
    lanes &= ~warp.abortedMask;
    if (!lanes)
        return;
    const unsigned aborted = popcount(lanes);
    warp.aborts += aborted;
    stTxAborts.add(aborted);
    stAbortsByReason[static_cast<unsigned>(reason)]->add(aborted);
    if (checkSink)
        checkSink->attemptAborted(warp.gwid, lanes);
    if (sink)
        sink->abortEvent(reason, addr,
                         addr == invalidAddr ? 0
                                             : addrMap.partitionOf(addr),
                         aborted, currentCycle);
    if (traceSink)
        traceSink->txAbort(warp.gwid, reason, addr, aborted, currentCycle);
    warp.abortLanesOnStack(lanes);
    for (LaneId lane = 0; lane < warpSize; ++lane)
        if (lanes & (1u << lane))
            warp.iwcd.dropLane(lane);
    if (timeline) {
        static const auto labels = [] {
            std::array<std::string, numAbortReasons> all;
            for (unsigned r = 0; r < numAbortReasons; ++r)
                all[r] = std::string("abort:") +
                         abortReasonName(static_cast<AbortReason>(r));
            return all;
        }();
        timeline->instant(coreId, warp.slot,
                          labels[static_cast<unsigned>(reason)].c_str(),
                          currentCycle);
    }
    checkAllAbortedCommitPoint(warp);
}

unsigned
SimtCore::activeWarps() const
{
    return liveWarps;
}

unsigned
SimtCore::mshrOccupancy() const
{
    return static_cast<unsigned>(mshrs.occupancy());
}

void
SimtCore::checkAllAbortedCommitPoint(Warp &warp)
{
    if (!warp.inTx || warp.commitPointFired)
        return;
    if (!warp.txAllAborted())
        return;
    if (warp.outstanding || warp.outstandingTxStores)
        return;
    warp.commitPointFired = true;
    if (traceSink)
        traceSink->txCommitHandoff(warp.gwid, currentCycle);
    protocol->txCommitPoint(warp);
}

void
SimtCore::retireTxAttempt(Warp &warp, LaneMask committed_lanes)
{
    const int txi = warp.transactionIndex();
    if (txi < 0)
        panic("retireTxAttempt without a Transaction entry");
    const int ri = warp.retryIndex();
    if (static_cast<unsigned>(txi) != warp.stack.size() - 1)
        panic("retiring with entries above the Transaction entry");

    const Pc commit_pc = warp.stack[txi].pc;
    const LaneMask retry_mask = warp.stack[ri].mask;
    if (traceSink)
        traceSink->txRetire(warp.gwid, popcount(committed_lanes),
                            retry_mask != 0, currentCycle);
    warp.commits += popcount(committed_lanes);
    stTxCommitLanes.add(popcount(committed_lanes));
    if (checkSink) {
        // The redo logs (the commit intent) are still intact here.
        for (LaneId lane = 0; lane < warpSize; ++lane)
            if (committed_lanes & (1u << lane))
                checkSink->attemptCommitted(warp.gwid, lane,
                                            warp.logs[lane].writeLog());
    }

    warp.stack.pop_back(); // Transaction

    for (auto &log : warp.logs)
        log.clear();
    warp.iwcd.clear();
    warp.granted.clearAll();
    warp.pendingValidations = 0;
    warp.pendingAcks = 0;
    warp.validationFailed = 0;
    warp.commitIssued = false;

    if (retry_mask) {
        SimtEntry &retry = warp.stack[ri];
        warp.stack.push_back(
            {EntryKind::Transaction, retry.pc, noRpc, retry_mask});
        retry.mask = 0;
        warp.abortedMask = 0;
        warp.retriesThisTx++;
        warp.warpts = composeTs(tsClock(warp.maxObservedTs) + 1, warp.gwid);
        warp.maxObservedTs = warp.warpts;
        warp.tcdOkLanes = retry_mask;
        warp.txStartCycle = currentCycle;
        warp.commitPointFired = false;
        // Retries re-enter the transaction body without re-executing
        // TxBegin, so the checker learns about the new attempt here.
        if (checkSink)
            checkSink->attemptBegin(warp.gwid, retry_mask, warp.firstTid);
        // Retry attempts begin at the retire cycle, so the tracer's
        // per-attempt slices telescope exactly over the tx lifetime.
        if (traceSink)
            traceSink->txAttemptBegin(warp.gwid, coreId, warp.slot,
                                      warp.retriesThisTx,
                                      popcount(retry_mask), currentCycle);
        const Cycle delay = warp.backoff.nextDelay(randomGen);
        // Starvation guard (counted once per streak, at the crossing):
        // a warp this deep into backoff is no longer making progress
        // through ordinary contention. Livelock diagnostics name these
        // warps; the counter surfaces them in the stats/metrics export.
        if (warp.backoff.consecutiveAborts() ==
            cfg.starvationAbortCeiling)
            stTxStarvation.add();
        changeState(warp, WarpState::BackoffWait);
        setWake(warp, currentCycle + delay);
        stTxRetries.add();
        if (timeline) {
            timeline->end(coreId, warp.slot, currentCycle);
            timeline->begin(coreId, warp.slot, "tx-retry",
                            currentCycle + delay);
        }
    } else {
        warp.stack.pop_back(); // Retry
        warp.top().pc = commit_pc + 1;
        warp.warpts = composeTs(tsClock(warp.maxObservedTs) + 1, warp.gwid);
        changeState(warp, WarpState::Ready); // flush tx accounting
        warp.inTx = false;
        warp.backoff.reset();
        if (timeline)
            timeline->end(coreId, warp.slot, currentCycle);
        if (txActive == 0)
            panic("tx throttle underflow");
        --txActive;
        wakeThrottled();
    }
}

void
SimtCore::completeBlockingResponse(Warp &warp)
{
    if (warp.outstanding == 0)
        panic("blocking response underflow (warp %u)", warp.gwid);
    --warp.outstanding;
    if (warp.outstanding == 0 && warp.state == WarpState::MemWait)
        changeState(warp, WarpState::Ready);
    checkAllAbortedCommitPoint(warp);
}

void
SimtCore::completeTxStoreAck(Warp &warp)
{
    if (warp.outstandingTxStores == 0)
        panic("tx store ack underflow (warp %u)", warp.gwid);
    --warp.outstandingTxStores;
    if (warp.outstandingTxStores == 0 && warp.outstanding == 0 &&
        warp.state == WarpState::MemWait)
        changeState(warp, WarpState::Ready);
    checkAllAbortedCommitPoint(warp);
}

void
SimtCore::sendToPartition(MemMsg &&msg)
{
    msg.core = coreId;
    msg.partition = addrMap.partitionOf(msg.addr);
    sendUp(std::move(msg));
}

void
SimtCore::sendToPartitionDirect(MemMsg &&msg)
{
    msg.core = coreId;
    sendUp(std::move(msg));
}

void
SimtCore::deliver(MemMsg &&msg, Cycle now)
{
    currentCycle = now;
    if (msg.kind == MsgKind::EapgSignature ||
        msg.kind == MsgKind::EapgCommitDone) {
        protocol->onBroadcast(msg);
        return;
    }
    Warp &warp = warps[msg.warpSlot];
    switch (msg.kind) {
      case MsgKind::NtxReadResp:
        if (msg.txId == 1) {
            // A line fill: install the line, then service every
            // requester merged in the MSHR.
            l1.access(msg.addr, false);
            for (MshrTarget &target : mshrs.take(msg.addr)) {
                Warp &waiter = warps[target.warpSlot];
                for (LaneId lane = 0; lane < warpSize; ++lane)
                    if (target.lanes & (1u << lane))
                        waiter.setReg(
                            lane, target.reg,
                            static_cast<std::int64_t>(
                                static_cast<std::int32_t>(
                                    store.read(target.addrs[lane]))));
                completeBlockingResponse(waiter);
            }
            break;
        }
        [[fallthrough]];
      case MsgKind::AtomicResp:
        for (const LaneOp &op : msg.ops)
            writebackLane(warp, op.lane, op.value);
        completeBlockingResponse(warp);
        break;
      case MsgKind::NtxWriteAck:
        completeBlockingResponse(warp);
        break;
      default:
        protocol->onResponse(warp, msg);
        break;
    }
}

bool
SimtCore::quiescent() const
{
    for (const auto &warp : warps)
        if (warp.outstanding || warp.outstandingTxStores)
            return false;
    return true;
}

void
SimtCore::foldWarpStats()
{
    for (const auto &warp : warps) {
        statSet.inc("tx_exec_cycles", warp.txExecCycles);
        statSet.inc("tx_wait_cycles", warp.txWaitCycles);
        statSet.inc("commits", warp.commits);
        statSet.inc("aborts", warp.aborts);
    }
    statSet.merge(l1.stats());
}

} // namespace getm
