/**
 * @file
 * Interface between the SIMT core and a TM protocol engine.
 *
 * The core owns generic machinery (scheduling, SIMT stack, coalescing,
 * response plumbing, retirement); a TmCoreProtocol implements the
 * protocol-specific behaviour of transactional accesses and commits.
 * Concrete engines: GETM (src/core), WarpTM-LL/-EL (src/warptm), and
 * EAPG (src/eapg). The fine-grained-lock baseline uses no engine at all.
 */

#ifndef GETM_SIMT_TM_IFACE_HH
#define GETM_SIMT_TM_IFACE_HH

#include <array>

#include "simt/warp.hh"
#include "tm/messages.hh"

namespace getm {

class SimtCore;

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

/** Per-lane addresses of one memory instruction. */
using LaneAddrs = std::array<Addr, warpSize>;

/** Per-lane store data of one memory instruction. */
using LaneVals = std::array<std::uint32_t, warpSize>;

/** Core-side protocol engine. */
class TmCoreProtocol
{
  public:
    virtual ~TmCoreProtocol() = default;

    /** A new transaction attempt began (throttle already passed). */
    virtual void onTxBegin(Warp &warp) { (void)warp; }

    /**
     * Handle a transactional load or store.
     *
     * @param warp  Issuing warp (its pendingReg is already set for loads).
     * @param is_store True for stores.
     * @param addrs Per-lane word addresses (valid where @p lanes set).
     * @param vals  Per-lane store data (stores only).
     * @param lanes Active lanes.
     * @param rd    Destination register for loads.
     */
    virtual void txAccess(Warp &warp, bool is_store, const LaneAddrs &addrs,
                          const LaneVals &vals, LaneMask lanes,
                          std::uint8_t rd) = 0;

    /**
     * The warp reached its commit point (all lanes at TxCommit or
     * aborted) and all outstanding accesses have drained. The engine
     * must eventually call SimtCore::retireTxAttempt().
     */
    virtual void txCommitPoint(Warp &warp) = 0;

    /** A protocol-specific response arrived for @p warp. */
    virtual void onResponse(Warp &warp, const MemMsg &msg) = 0;

    /** A broadcast (no warp association) arrived, e.g. EAPG signatures. */
    virtual void onBroadcast(const MemMsg &msg) { (void)msg; }

    /**
     * Run protocol work the engine deferred out of the regular tick
     * into a serial micro-phase after all cores ticked. WarpTM-EL uses
     * this for commit points: an EL commit applies its write log to
     * shared memory core-side, so running it mid-tick on a worker
     * thread would race other cores' instant validations against the
     * store. Every cycle loop — serial or parallel — invokes this in
     * core order after the tick phase, so one-thread and N-thread runs
     * execute commits at the identical point (docs/PARALLELISM.md).
     *
     * @return true if any deferred work ran (the event loop uses this
     *         to refresh the core's wake cycle).
     */
    virtual bool
    runDeferredCommits(Cycle now)
    {
        (void)now;
        return false;
    }

    /** Serialize engine state into a checkpoint (default: stateless). */
    virtual void ckptSave(ckpt::Writer &ar) { (void)ar; }

    /** Restore engine state from a checkpoint (default: stateless). */
    virtual void ckptLoad(ckpt::Reader &ar) { (void)ar; }
};

} // namespace getm

#endif // GETM_SIMT_TM_IFACE_HH
