#include "simt/warp.hh"

#include "common/log.hh"

namespace getm {

void
Warp::reconverge()
{
    while (stack.size() > 1) {
        const SimtEntry &entry = stack.back();
        if (entry.kind == EntryKind::Normal && entry.rpc != noRpc &&
            entry.pc == entry.rpc) {
            stack.pop_back();
        } else if (entry.kind == EntryKind::Normal && entry.mask == 0 &&
                   entry.rpc != noRpc) {
            // Divergence entry whose lanes all aborted mid-transaction.
            stack.pop_back();
        } else {
            break;
        }
    }
}

int
Warp::transactionIndex() const
{
    for (int i = static_cast<int>(stack.size()) - 1; i >= 0; --i)
        if (stack[i].kind == EntryKind::Transaction)
            return i;
    return -1;
}

int
Warp::retryIndex() const
{
    const int tx = transactionIndex();
    if (tx <= 0 || stack[tx - 1].kind != EntryKind::Retry)
        panic("malformed SIMT stack: Transaction without Retry below");
    return tx - 1;
}

void
Warp::abortLanesOnStack(LaneMask lanes)
{
    const int tx = transactionIndex();
    if (tx < 0)
        panic("abortLanesOnStack outside a transaction");
    for (unsigned i = tx; i < stack.size(); ++i)
        stack[i].mask &= ~lanes;
    stack[retryIndex()].mask |= lanes;
    abortedMask |= lanes;
    // Drop emptied divergence entries above the Transaction entry.
    while (static_cast<int>(stack.size()) - 1 > tx &&
           stack.back().kind == EntryKind::Normal && stack.back().mask == 0)
        stack.pop_back();
}

bool
Warp::txAllAborted() const
{
    const int tx = transactionIndex();
    return tx >= 0 && stack[tx].mask == 0;
}

void
Warp::launch(GlobalWarpId gwid_, std::uint32_t slot_,
             std::uint32_t first_tid, LaneMask valid, Cycle now)
{
    gwid = gwid_;
    slot = slot_;
    firstTid = first_tid;
    validLanes = valid;
    regs.fill(0);
    stack.clear();
    stack.push_back({EntryKind::Normal, 0, noRpc, valid});
    state = WarpState::Ready;
    wakeCycle = now;
    outstanding = 0;
    outstandingTxStores = 0;
    stateSince = now;
    inTx = false;
    // warpts deliberately persists across assignments: it models the
    // per-slot hardware warpts table (paper Table V).
    maxObservedTs = warpts;
    abortedMask = 0;
    for (auto &log : logs)
        log.clear();
    iwcd.clear();
    granted.clearAll();
    retriesThisTx = 0;
    txStartCycle = now;
    tcdOkLanes = 0;
    commitId = 0;
    pendingValidations = 0;
    pendingAcks = 0;
    validationFailed = 0;
    commitIssued = false;
}

} // namespace getm
