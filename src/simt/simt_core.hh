/**
 * @file
 * The SIMT core: warp contexts, GTO scheduler, instruction execution,
 * memory-access coalescing, transactional-concurrency throttling, and
 * the retirement machinery shared by all TM protocols.
 *
 * The core is driven by GpuSystem: deliver() hands it arrived messages,
 * tick() lets it issue one warp instruction per cycle (Table II models a
 * single 32-wide issue per cycle), and nextEventCycle() supports
 * idle-cycle skipping.
 */

#ifndef GETM_SIMT_SIMT_CORE_HH
#define GETM_SIMT_SIMT_CORE_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "isa/kernel.hh"
#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/cache_model.hh"
#include "mem/mshr.hh"
#include "obs/sink.hh"
#include "simt/tm_iface.hh"
#include "simt/warp.hh"
#include "tm/messages.hh"

namespace getm {

class CheckSink;
class FaultInjector;

/** Configuration of one SIMT core. */
struct CoreConfig
{
    unsigned maxWarps = 48;
    /**
     * Warp instructions issued per cycle. Table II's 2 x 16-wide SIMD
     * retires one 32-wide warp instruction per cycle (the default);
     * wider configurations model dual-issue cores.
     */
    unsigned issueWidth = 1;
    /** Extra latency of long ALU ops (div/rem/hash), hidden by other
     *  warps as on real hardware. */
    Cycle longOpLatency = 4;
    /** Max warps with active transactions (paper: 1,2,4,8,16,unlimited). */
    unsigned txWarpLimit = 0xffffffff;
    std::uint64_t l1Bytes = 48 * 1024;
    unsigned l1Assoc = 6;
    unsigned lineBytes = 128;
    /** Metadata granule for transactional coalescing (paper: 32 B). */
    unsigned txGranule = 32;
    Backoff::Config backoff;
    /**
     * Starvation guard: a warp whose consecutive-abort streak reaches
     * this ceiling is counted in the "tx_starvation_events" stat and
     * named in livelock diagnostics. Must be <= 63 (the Backoff
     * attempt cap); the default sits well past the backoff window
     * saturation point, so healthy contention never trips it.
     */
    unsigned starvationAbortCeiling = 48;
    std::uint64_t seed = 1;
};

/**
 * Work source: assigns the next warp of the current launch.
 * Returns false when no work remains.
 */
struct WarpAssignment
{
    GlobalWarpId gwid;
    std::uint32_t firstTid;
    LaneMask validLanes;
};

class SimtCore
{
  public:
    using SendFn = std::function<void(MemMsg &&)>;
    using WorkFn = std::function<bool(WarpAssignment &)>;

    SimtCore(CoreId id, const CoreConfig &config, const AddressMap &map,
             BackingStore &store, SendFn send_up);

    /** Install the protocol engine (may be null for the lock baseline). */
    void setProtocol(std::unique_ptr<TmCoreProtocol> engine);

    /**
     * Replace the upward send callback. The parallel cycle loop swaps
     * in a per-core staging callback (sends recorded on the worker,
     * replayed serially in deterministic order) and restores the direct
     * crossbar callback afterwards.
     */
    void setSendFn(SendFn send_up) { sendUp = std::move(send_up); }

    /** Begin executing @p kernel; warps are pulled from @p work. */
    void startKernel(const Kernel *kernel, std::uint64_t total_threads,
                     WorkFn work, Cycle now);

    /** A message from the interconnect has arrived. */
    void deliver(MemMsg &&msg, Cycle now);

    /** Advance one cycle: maybe issue one warp instruction. */
    void tick(Cycle now);

    /**
     * Run protocol work deferred out of tick() into the serial commit
     * micro-phase (TmCoreProtocol::runDeferredCommits). Every cycle
     * loop calls this in core order after all cores ticked; the clock
     * is synced first because the event loop lets idle cores lag.
     * @return true if any deferred work ran.
     */
    bool
    runDeferredProtocolWork(Cycle now)
    {
        currentCycle = now;
        return protocol ? protocol->runDeferredCommits(now) : false;
    }

    /** Earliest future cycle at which this core can make progress. */
    Cycle nextEventCycle(Cycle now) const;

    /** All warps finished and no work remains. */
    bool done() const;

    // --- services for protocol engines -----------------------------------
    CoreId id() const { return coreId; }
    Cycle now() const { return currentCycle; }

    /**
     * Pin the core's local clock without ticking. The event-driven loop
     * skips not-due cores, so their clock can lag; callers that mutate
     * core state from outside tick()/deliver() (timestamp rollover)
     * sync first so backoff wakes and event timestamps use global time.
     */
    void syncClock(Cycle now) { currentCycle = now; }
    const CoreConfig &config() const { return cfg; }
    BackingStore &memory() { return store; }
    const AddressMap &addressMap() const { return addrMap; }
    Rng &rng() { return randomGen; }
    StatSet &stats() { return statSet; }

    /** Route a message to the partition owning msg.addr. */
    void sendToPartition(MemMsg &&msg);

    /** Send a message whose partition field is already set. */
    void sendToPartitionDirect(MemMsg &&msg);

    /** Metadata granule base of a word address. */
    Addr
    granuleOf(Addr addr) const
    {
        return addr - addr % cfg.txGranule;
    }

    /**
     * Abort @p lanes of @p warp's running transaction: SIMT stack
     * surgery, stats, and observed-timestamp tracking. Triggers the
     * commit point if the whole attempt is now aborted and drained.
     *
     * This is the single accounting point for transaction aborts, so
     * every caller states *why* (@p reason) and, when known, the
     * conflicting granule (@p addr). The per-reason attribution
     * therefore sums exactly to the run's total abort counter.
     */
    void abortTxLanes(Warp &warp, LaneMask lanes, LogicalTs observed_ts,
                      AbortReason reason = AbortReason::None,
                      Addr addr = invalidAddr);

    /**
     * Retire the current transaction attempt: pop the Transaction entry,
     * restart aborted lanes from the Retry entry (with backoff), release
     * the throttle when fully done, and advance warpts.
     */
    void retireTxAttempt(Warp &warp, LaneMask committed_lanes);

    /** Account one more blocking response as delivered. */
    void completeBlockingResponse(Warp &warp);

    /** Account one transactional-store ack as delivered. */
    void completeTxStoreAck(Warp &warp);

    /** Write a loaded value into the pending destination register. */
    void
    writebackLane(Warp &warp, LaneId lane, std::uint32_t value)
    {
        warp.setReg(lane, warp.pendingReg,
                    static_cast<std::int64_t>(static_cast<std::int32_t>(value)));
    }

    /** Move @p warp into @p state with tx-cycle accounting. */
    void changeState(Warp &warp, WarpState state);

    /** Broadcast hook: iterate warps with active transactions. */
    std::vector<Warp> &allWarps() { return warps; }

    /** Number of warps currently holding the tx throttle. */
    unsigned activeTxWarps() const { return txActive; }

    /** Aggregate per-warp stats into the core StatSet (call when done). */
    void foldWarpStats();

    /**
     * Install a transaction-lifecycle recorder (may be null). The core
     * reports attempt begin/retire spans and abort instants.
     */
    void setTimeline(class Timeline *t) { timeline = t; }

    /** Install the observability sink (may be null). */
    void setObserver(ObsSink *s) { sink = s; }

    /** Observability sink for protocol engines (may be null). */
    ObsSink *observer() { return sink; }

    /**
     * Install the transaction tracer (may be null). Deliberately a
     * second ObsSink pointer rather than a flag on the main sink: the
     * disabled path costs one untaken null check per lifecycle site,
     * and the aggregate hub never pays for tx* virtual dispatch.
     */
    void setTracer(ObsSink *t) { traceSink = t; }

    /** Transaction tracer for protocol engines (may be null). */
    ObsSink *tracer() { return traceSink; }

    /** Install the runtime checker sink (may be null). */
    void setChecker(CheckSink *s) { checkSink = s; }

    /** Runtime checker sink for protocol engines (may be null). */
    CheckSink *checker() { return checkSink; }

    /** Install the fault injector (may be null). */
    void setFaults(FaultInjector *f) { faultInj = f; }

    /** Fault injector for protocol engines (may be null). */
    FaultInjector *faults() { return faultInj; }

    // --- telemetry gauges -------------------------------------------------
    /** Warps currently resident and not finished. */
    unsigned activeWarps() const;

    /** MSHR entries currently in flight. */
    unsigned mshrOccupancy() const;

    /**
     * Freeze transactional progress (GETM timestamp rollover): new
     * TxBegins stall and backed-off retries do not wake until thawed.
     */
    void setTxFrozen(bool frozen) { txFrozen = frozen; }

    /** True when no warp holds outstanding memory responses. */
    bool quiescent() const;

    // --- forward-progress accounting (watchdog, diagnostics) --------------
    /** Warp instructions retired so far. */
    std::uint64_t instructionsRetired() const
    {
        return stInstructions.value;
    }

    /** Lane-level transaction commits so far. */
    std::uint64_t commitLaneCount() const
    {
        return stTxCommitLanes.value;
    }

    /**
     * Checkpoint hook: all mutable core state, then the protocol
     * engine's own state through its virtual hooks (the kernel, work
     * source, and sink pointers are reconstructed by the owner).
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(totalThreads, workExhausted, warps, stateOf, wakeOf, l1,
           mshrs, txActive, lastIssued, liveWarps, txFrozen,
           currentCycle, randomGen, statSet);
        if (protocol) {
            if constexpr (Ar::saving)
                protocol->ckptSave(ar);
            else
                protocol->ckptLoad(ar);
        }
    }

  private:
    // --- execution --------------------------------------------------------
    void maybeLaunchWarps(Cycle now);
    Warp *pickWarp(Cycle now);
    void execute(Warp &warp, Cycle now);
    void execAlu(Warp &warp, const Instruction &inst, LaneMask active);
    void execBranch(Warp &warp, const Instruction &inst, LaneMask active);
    void execMemory(Warp &warp, const Instruction &inst, LaneMask active);
    void execTxBegin(Warp &warp, LaneMask active);
    void execTxCommit(Warp &warp);
    void execExit(Warp &warp, LaneMask active);
    void finishWarp(Warp &warp);

    /** Fire the commit point if the attempt is fully aborted + drained. */
    void checkAllAbortedCommitPoint(Warp &warp);
    void wakeThrottled();

    /** Set a warp's wake cycle, keeping the dense mirror in sync. */
    void
    setWake(Warp &warp, Cycle wake)
    {
        warp.wakeCycle = wake;
        wakeOf[warp.slot] = wake;
    }

    std::int64_t aluOp(Opcode op, std::int64_t a, std::int64_t b) const;

    CoreId coreId;
    CoreConfig cfg;
    const AddressMap &addrMap;
    BackingStore &store;
    SendFn sendUp;
    std::unique_ptr<TmCoreProtocol> protocol;

    const Kernel *kernel = nullptr;
    std::uint64_t totalThreads = 0;
    WorkFn workSource;
    bool workExhausted = true;

    std::vector<Warp> warps;
    /**
     * Dense mirrors of Warp::state / Warp::wakeCycle, indexed by slot.
     * The scheduler scans every slot per tick; walking 48 full Warp
     * structs is cache-hostile, so the scan fields live in two flat
     * arrays kept in sync at the few mutation sites (changeState,
     * setWake, launch).
     */
    std::vector<WarpState> stateOf;
    std::vector<Cycle> wakeOf;
    CacheModel l1;
    MshrFile mshrs;
    unsigned txActive = 0;
    unsigned lastIssued = 0;
    /** Warps resident and not finished (O(1) done()/activeWarps()). */
    unsigned liveWarps = 0;
    bool txFrozen = false;
    class Timeline *timeline = nullptr;
    ObsSink *sink = nullptr;
    ObsSink *traceSink = nullptr;
    CheckSink *checkSink = nullptr;
    FaultInjector *faultInj = nullptr;
    Cycle currentCycle = 0;
    Rng randomGen;
    StatSet statSet;

    // Pre-registered hot-path stat handles (common/stats.hh): one add
    // per event, no per-event string or map lookup. Declared after
    // statSet so the references bind to live slots during construction.
    StatSet::Counter &stInstructions;
    StatSet::Counter &stDivergences;
    StatSet::Counter &stL1LoadHits;
    StatSet::Counter &stL1Fills;
    StatSet::Counter &stMshrMerges;
    StatSet::Counter &stWarpsLaunched;
    StatSet::Counter &stWarpsFinished;
    StatSet::Counter &stThrottleStalls;
    StatSet::Counter &stTxBegins;
    StatSet::Counter &stTxRetries;
    StatSet::Counter &stTxAborts;
    StatSet::Counter &stTxCommitLanes;
    /** Warps whose consecutive-abort streak hit the starvation
     *  ceiling (registered up front; invisible until it fires). */
    StatSet::Counter &stTxStarvation;
    /** Per-AbortReason counters, indexed by reason (no string concat). */
    std::array<StatSet::Counter *, numAbortReasons> stAbortsByReason{};

    friend class SimtCoreTestPeer;
};

} // namespace getm

#endif // GETM_SIMT_SIMT_CORE_HH
