/**
 * @file
 * Warp execution state: registers, the SIMT reconvergence stack (with the
 * Transaction and Retry entry types of Fung et al. [24]), and per-warp
 * transactional bookkeeping shared by all TM protocols.
 */

#ifndef GETM_SIMT_WARP_HH
#define GETM_SIMT_WARP_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "tm/backoff.hh"
#include "tm/intra_warp_cd.hh"
#include "tm/tx_log.hh"

namespace getm {

/** SIMT stack entry types. */
enum class EntryKind : std::uint8_t
{
    Normal,      ///< Plain divergence/base entry.
    Transaction, ///< Currently running transaction attempt.
    Retry,       ///< Lanes that aborted and must re-run the transaction.
};

/** Sentinel meaning "this entry never reconverges by rpc". */
constexpr Pc noRpc = 0xffffffffu;

/**
 * GETM granted-reservation table: per-lane maps of granule -> count.
 *
 * Lane maps are allocated lazily on first write, so warps running
 * non-transactional protocols (or transactions that never store) pay
 * for a pointer array instead of 32 empty unordered_maps. Once
 * allocated, a lane's map lives for the warp slot's lifetime —
 * clearAll() empties it in place — so insertion/rehash history, and
 * therefore iteration order, is identical to the eagerly-allocated
 * representation it replaced.
 */
class LaneGrantTable
{
  public:
    using GrantMap = std::unordered_map<Addr, std::uint32_t>;

    /** Lane map for writing; allocates on first use. */
    GrantMap &
    operator[](LaneId lane)
    {
        auto &slot = lanes[lane];
        if (!slot)
            slot = std::make_unique<GrantMap>();
        return *slot;
    }

    /** Lane map for reading; a shared empty map if never written. */
    const GrantMap &
    forLane(LaneId lane) const
    {
        static const GrantMap empty;
        return lanes[lane] ? *lanes[lane] : empty;
    }

    /** Empty every allocated lane map (keeps the allocations). */
    void
    clearAll()
    {
        for (auto &slot : lanes)
            if (slot)
                slot->clear();
    }

    /** Number of lanes whose map has been materialized. */
    unsigned
    allocatedLanes() const
    {
        unsigned count = 0;
        for (const auto &slot : lanes)
            count += slot != nullptr;
        return count;
    }

    /**
     * Checkpoint hook. Lane-map *allocation* is part of the layout
     * contract in the class comment, so presence is serialized per
     * lane and maps are materialized (or dropped) to match the
     * snapshot exactly.
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        for (auto &slot : lanes) {
            bool present = slot != nullptr;
            ar(present);
            if constexpr (!Ar::saving) {
                if (!present) {
                    slot.reset();
                    continue;
                }
                if (!slot)
                    slot = std::make_unique<GrantMap>();
            } else {
                if (!present)
                    continue;
            }
            ar(*slot);
        }
    }

  private:
    std::array<std::unique_ptr<GrantMap>, warpSize> lanes;
};

/** One SIMT stack entry. */
struct SimtEntry
{
    EntryKind kind = EntryKind::Normal;
    Pc pc = 0;
    Pc rpc = noRpc;
    LaneMask mask = 0;

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(kind, pc, rpc, mask);
    }
};

/** Why a warp cannot issue this cycle. */
enum class WarpState : std::uint8_t
{
    Ready,        ///< Can issue.
    MemWait,      ///< Blocked on outstanding memory responses.
    ThrottleWait, ///< Blocked on the transactional-concurrency limit.
    CommitWait,   ///< Blocked in the protocol commit sequence.
    BackoffWait,  ///< Aborted; waiting out the backoff window.
    PipelineWait, ///< In a long-latency functional unit (div/hash).
    Finished,     ///< Ran Exit for all lanes; slot is reclaimable.
    Idle,         ///< Slot has no work assigned.
};

/** Stable scheduler-state name, for diagnostics and dumps. */
constexpr const char *
warpStateName(WarpState state)
{
    switch (state) {
      case WarpState::Ready: return "ready";
      case WarpState::MemWait: return "mem-wait";
      case WarpState::ThrottleWait: return "throttle-wait";
      case WarpState::CommitWait: return "commit-wait";
      case WarpState::BackoffWait: return "backoff-wait";
      case WarpState::PipelineWait: return "pipeline-wait";
      case WarpState::Finished: return "finished";
      case WarpState::Idle: return "idle";
    }
    return "?";
}

/** Per-warp execution context. */
class Warp
{
  public:
    // --- identity -------------------------------------------------------
    GlobalWarpId gwid = invalidWarp;
    std::uint32_t slot = 0;      ///< Core-local slot index (age order).
    std::uint32_t firstTid = 0;  ///< Global thread id of lane 0.
    LaneMask validLanes = 0;     ///< Lanes that actually hold threads.

    // --- architectural state ---------------------------------------------
    std::array<std::int64_t, warpSize * numRegs> regs{};
    std::vector<SimtEntry> stack;

    // --- scheduling --------------------------------------------------------
    WarpState state = WarpState::Idle;
    Cycle wakeCycle = 0;         ///< For BackoffWait.
    unsigned outstanding = 0;    ///< Blocking responses still in flight.
    unsigned outstandingTxStores = 0; ///< Non-blocking reservation acks.
    std::uint8_t pendingReg = 0; ///< Destination of the pending load.
    Cycle stateSince = 0;        ///< For tx cycle accounting.

    // --- transactional state (shared by all protocols) ---------------------
    bool inTx = false;           ///< Between TxBegin and attempt retirement.
    LogicalTs warpts = 0;        ///< GETM logical time (persists per slot).
    LogicalTs maxObservedTs = 0; ///< Max rts/wts seen during the attempt.
    LaneMask abortedMask = 0;    ///< Lanes aborted in the current attempt.
    std::array<ThreadTxLog, warpSize> logs;
    IntraWarpCd iwcd;
    Backoff backoff;
    /** GETM: granted reservation counts per lane, per metadata granule. */
    LaneGrantTable granted;
    unsigned retriesThisTx = 0;

    // --- WarpTM / EAPG commit-sequence state --------------------------------
    Cycle txStartCycle = 0;
    LaneMask tcdOkLanes = 0;       ///< Lanes whose reads all pass TCD.
    std::uint64_t commitId = 0;
    unsigned pendingValidations = 0;
    unsigned pendingAcks = 0;
    LaneMask validationFailed = 0; ///< Lanes that failed value validation.
    bool commitIssued = false;     ///< Validation slices sent, not decided.
    bool commitPointFired = false; ///< Guards duplicate commit-point entry.
    LaneMask wtmSilent = 0;        ///< Lanes committing silently via TCD.
    LaneMask wtmValidating = 0;    ///< Lanes in value-based validation.

    // --- stats ---------------------------------------------------------------
    Cycle txExecCycles = 0;
    Cycle txWaitCycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;

    // --- register access -----------------------------------------------------
    std::int64_t
    reg(LaneId lane, unsigned r) const
    {
        return regs[lane * numRegs + r];
    }

    void
    setReg(LaneId lane, unsigned r, std::int64_t value)
    {
        regs[lane * numRegs + r] = value;
    }

    // --- SIMT stack helpers ----------------------------------------------------
    SimtEntry &top() { return stack.back(); }
    const SimtEntry &top() const { return stack.back(); }

    /** Pop entries that reached their reconvergence point. */
    void reconverge();

    /** Index of the Transaction entry, or -1 if none. */
    int transactionIndex() const;

    /** Index of the Retry entry (directly below Transaction). */
    int retryIndex() const;

    /**
     * Remove @p lanes from the current transaction attempt (they move to
     * the Retry entry). Pops emptied divergence entries above the
     * Transaction entry.
     */
    void abortLanesOnStack(LaneMask lanes);

    /** All lanes of the current attempt have aborted. */
    bool txAllAborted() const;

    /** Reset the warp for a fresh thread assignment. */
    void launch(GlobalWarpId gwid_, std::uint32_t slot_,
                std::uint32_t first_tid, LaneMask valid, Cycle now);

    /** Checkpoint hook: the complete per-warp machine state. */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(gwid, slot, firstTid, validLanes, regs, stack, state,
           wakeCycle, outstanding, outstandingTxStores, pendingReg,
           stateSince, inTx, warpts, maxObservedTs, abortedMask, logs,
           iwcd, backoff, granted, retriesThisTx, txStartCycle,
           tcdOkLanes, commitId, pendingValidations, pendingAcks,
           validationFailed, commitIssued, commitPointFired, wtmSilent,
           wtmValidating, txExecCycles, txWaitCycles, commits, aborts);
    }
};

} // namespace getm

#endif // GETM_SIMT_WARP_HH
