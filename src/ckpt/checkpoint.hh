/**
 * @file
 * Crash-safe checkpoint files: format, validation, atomic publication.
 *
 * A checkpoint is a single binary file:
 *
 *     offset  size  field
 *     0       8     magic "GETMCKPT"
 *     8       4     format version (formatVersion)
 *     12      8     config hash (provenance fields + workload tag)
 *     20      8     simulated cycle the snapshot was taken at
 *     28      8     payload size in bytes
 *     36      n     payload (ckpt/serial.hh archive bytes)
 *     36+n    4     CRC-32 (poly 0xEDB88320) over bytes [0, 36+n)
 *
 * Decoding validates in a fixed order, each failure a typed
 * SimError(SimErrorKind::Checkpoint) with a distinct diagnostic:
 * bad magic, truncated/oversized body, CRC mismatch (bit flips),
 * version skew, then config-hash mismatch (snapshot from a different
 * configuration or workload). A checkpoint that decodes is exactly the
 * bytes that were written.
 *
 * Durability discipline: files are written to "<path>.tmp" and
 * std::rename()d into place, so a reader never observes a partial
 * file. A one-line "latest.ckpt" pointer file in the checkpoint
 * directory names the newest snapshot and is republished (also via
 * temp+rename) after every checkpoint; killing the writer at any
 * instant leaves either the previous pointer or the new one, never a
 * torn file. See docs/DURABILITY.md.
 */

#ifndef GETM_CKPT_CHECKPOINT_HH
#define GETM_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <string>

namespace getm::ckpt {

/** Bumped whenever the header or any ckpt() field list changes. */
inline constexpr std::uint32_t formatVersion = 1;

/** Name of the pointer file inside a checkpoint directory. */
inline constexpr const char *latestPointerName = "latest.ckpt";

/** One decoded snapshot: guard fields plus the raw archive payload. */
struct Snapshot
{
    std::uint64_t configHash = 0;
    std::uint64_t cycle = 0;
    std::string payload;
};

/** CRC-32 (reflected, poly 0xEDB88320), zlib-compatible. */
std::uint32_t crc32(const void *data, std::size_t size);

/** Render a snapshot as complete file bytes (header+payload+CRC). */
std::string encode(const Snapshot &snap);

/**
 * Parse and validate file bytes. @p expectedConfigHash guards against
 * restoring into the wrong configuration; @p what names the source in
 * diagnostics (usually the file path). Throws
 * SimError(SimErrorKind::Checkpoint) on any defect.
 */
Snapshot decode(const std::string &bytes, std::uint64_t expectedConfigHash,
                const std::string &what);

/** Write bytes to "<path>.tmp" then rename into place. */
void writeAtomic(const std::string &path, const std::string &bytes);

/** Read a whole file; throws SimError(Checkpoint) if unreadable. */
std::string readFile(const std::string &path);

/** "ckpt-<cycle padded to 12>.ckpt" (sorts in cycle order). */
std::string snapshotFileName(std::uint64_t cycle);

/**
 * Encode @p snap into "<dir>/ckpt-<cycle>.ckpt" (creating @p dir if
 * needed) and republish the latest.ckpt pointer. Returns the path
 * written.
 */
std::string writeSnapshot(const std::string &dir, const Snapshot &snap);

/**
 * Accepts either a snapshot file or a checkpoint directory; for a
 * directory, follows its latest.ckpt pointer. Throws
 * SimError(Checkpoint) when nothing restorable is there.
 */
std::string resolveRestorePath(const std::string &pathOrDir);

/** readFile + decode in one step. */
Snapshot readSnapshot(const std::string &path,
                      std::uint64_t expectedConfigHash);

} // namespace getm::ckpt

#endif // GETM_CKPT_CHECKPOINT_HH
