/**
 * @file
 * Binary state serialization for checkpoint/restore.
 *
 * One archive pair (Writer/Reader) and one convention: a class exposes
 *
 *     template <class Ar> void ckpt(Ar &ar) { ar(memberA, memberB); }
 *
 * and the same method both saves and loads, so the field list can
 * never skew between the two directions. The archives handle scalars,
 * enums, strings, and the standard containers; user types are reached
 * through their ckpt() method.
 *
 * The format is raw host-endian bytes: checkpoints are a crash-safety
 * mechanism for resuming on the *same* build and host (the config-hash
 * guard in ckpt/checkpoint.hh rejects everything else), not an
 * interchange format.
 *
 * Unordered containers and byte determinism
 * -----------------------------------------
 * The simulator's byte-determinism contract makes the *iteration
 * order* of several std::unordered_map/set instances observable (the
 * checker's finish() samples, GETM's grant-table walks, ...). A
 * restored container must therefore reproduce the original's internal
 * layout exactly, not just its contents. libstdc++'s hashtable keeps
 * every node on one forward list with each bucket's nodes contiguous,
 * prepends within a bucket, and moves a freshly-touched bucket to the
 * list head — so writing (bucket_count, entries in iteration order)
 * and re-inserting in *reverse* order into a table rehashed to the
 * same bucket count rebuilds both the global list order and every
 * bucket chain. Growth thresholds then evolve identically, so the
 * restored run and the uninterrupted run stay byte-identical forever
 * after. tests/test_ckpt.cc pins this reconstruction against the
 * toolchain.
 */

#ifndef GETM_CKPT_SERIAL_HH
#define GETM_CKPT_SERIAL_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/sim_error.hh"

namespace getm::ckpt {

class Writer;
class Reader;

/** Serialize-everything entry point; overloaded per type family. */
template <class Ar, class T> void io(Ar &ar, T &value);

/** Appends raw state bytes to a buffer. */
class Writer
{
  public:
    static constexpr bool saving = true;

    void
    raw(const void *data, std::size_t size)
    {
        buffer.append(static_cast<const char *>(data), size);
    }

    template <class... Ts>
    void
    operator()(Ts &...values)
    {
        (io(*this, values), ...);
    }

    std::string take() { return std::move(buffer); }
    std::size_t size() const { return buffer.size(); }

  private:
    std::string buffer;
};

/** Consumes state bytes; throws typed SimError when they run out. */
class Reader
{
  public:
    static constexpr bool saving = false;

    Reader(const char *data, std::size_t size)
        : cursor(data), end(data + size)
    {
    }

    void
    raw(void *data, std::size_t size)
    {
        if (static_cast<std::size_t>(end - cursor) < size)
            throw SimError(SimErrorKind::Checkpoint,
                           "checkpoint payload truncated (needed " +
                               std::to_string(size) + " more bytes)");
        std::memcpy(data, cursor, size);
        cursor += size;
    }

    template <class... Ts>
    void
    operator()(Ts &...values)
    {
        (io(*this, values), ...);
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - cursor);
    }

  private:
    const char *cursor;
    const char *end;
};

namespace detail {

template <class T, class Ar>
concept HasCkptMethod = requires(T &t, Ar &ar) { t.ckpt(ar); };

template <class T>
concept Scalar = std::is_arithmetic_v<T> || std::is_enum_v<T>;

inline std::uint64_t
readCount(Reader &ar, std::uint64_t limit = ~std::uint64_t{0})
{
    std::uint64_t n = 0;
    ar.raw(&n, sizeof(n));
    // A corrupt length must fail as a typed error, not a bad_alloc.
    if (n > limit || n > ar.remaining())
        throw SimError(SimErrorKind::Checkpoint,
                       "checkpoint payload corrupt (implausible "
                       "container size " + std::to_string(n) + ")");
    return n;
}

} // namespace detail

template <class Ar, class T>
void
io(Ar &ar, T &value)
{
    if constexpr (detail::Scalar<T>) {
        if constexpr (Ar::saving)
            ar.raw(&value, sizeof(value));
        else
            ar.raw(&value, sizeof(value));
    } else if constexpr (detail::HasCkptMethod<T, Ar>) {
        value.ckpt(ar);
    } else {
        static_assert(detail::HasCkptMethod<T, Ar>,
                      "type has no ckpt() method and no io() overload");
    }
}

template <class Ar>
void
io(Ar &ar, std::string &value)
{
    if constexpr (Ar::saving) {
        std::uint64_t n = value.size();
        ar.raw(&n, sizeof(n));
        ar.raw(value.data(), value.size());
    } else {
        const std::uint64_t n = detail::readCount(ar);
        value.resize(static_cast<std::size_t>(n));
        ar.raw(value.data(), value.size());
    }
}

template <class Ar, class T, class Alloc>
void
io(Ar &ar, std::vector<T, Alloc> &value)
{
    if constexpr (Ar::saving) {
        std::uint64_t n = value.size();
        ar.raw(&n, sizeof(n));
    } else {
        value.clear();
        value.resize(static_cast<std::size_t>(detail::readCount(ar)));
    }
    if constexpr (detail::Scalar<T>) {
        ar.raw(value.data(), sizeof(T) * value.size());
    } else {
        for (T &element : value)
            io(ar, element);
    }
}

/** std::vector<bool> has no real references; go element by element. */
template <class Ar, class Alloc>
void
io(Ar &ar, std::vector<bool, Alloc> &value)
{
    if constexpr (Ar::saving) {
        std::uint64_t n = value.size();
        ar.raw(&n, sizeof(n));
        for (bool bit : value) {
            char byte = bit ? 1 : 0;
            ar.raw(&byte, 1);
        }
    } else {
        const std::uint64_t n = detail::readCount(ar);
        value.assign(static_cast<std::size_t>(n), false);
        for (std::uint64_t i = 0; i < n; ++i) {
            char byte = 0;
            ar.raw(&byte, 1);
            value[i] = byte != 0;
        }
    }
}

template <class Ar, class T, std::size_t N>
void
io(Ar &ar, std::array<T, N> &value)
{
    if constexpr (detail::Scalar<T>) {
        ar.raw(value.data(), sizeof(T) * N);
    } else {
        for (T &element : value)
            io(ar, element);
    }
}

template <class Ar, class A, class B>
void
io(Ar &ar, std::pair<A, B> &value)
{
    io(ar, value.first);
    io(ar, value.second);
}

template <class Ar, class T, class Alloc>
void
io(Ar &ar, std::deque<T, Alloc> &value)
{
    if constexpr (Ar::saving) {
        std::uint64_t n = value.size();
        ar.raw(&n, sizeof(n));
        for (T &element : value)
            io(ar, element);
    } else {
        value.clear();
        const std::uint64_t n = detail::readCount(ar);
        for (std::uint64_t i = 0; i < n; ++i) {
            io(ar, value.emplace_back());
        }
    }
}

template <class Ar, class K, class V, class Cmp, class Alloc>
void
io(Ar &ar, std::map<K, V, Cmp, Alloc> &value)
{
    if constexpr (Ar::saving) {
        std::uint64_t n = value.size();
        ar.raw(&n, sizeof(n));
        for (auto &[key, mapped] : value) {
            K k = key;
            io(ar, k);
            io(ar, mapped);
        }
    } else {
        value.clear();
        const std::uint64_t n = detail::readCount(ar);
        for (std::uint64_t i = 0; i < n; ++i) {
            K key{};
            io(ar, key);
            io(ar, value[key]);
        }
    }
}

namespace detail {

/**
 * Rebuild an unordered container's exact layout: rehash to the saved
 * bucket count, then insert in reverse saved-iteration order (see the
 * file comment for why this reproduces libstdc++'s node list).
 */
template <class Container, class Entry>
void
loadUnordered(Container &container, std::vector<Entry> &&entries,
              std::uint64_t bucket_count)
{
    container.clear();
    if (bucket_count != container.bucket_count())
        container.rehash(static_cast<std::size_t>(bucket_count));
    for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        container.insert(std::move(*it));
}

} // namespace detail

template <class Ar, class K, class V, class H, class E, class Alloc>
void
io(Ar &ar, std::unordered_map<K, V, H, E, Alloc> &value)
{
    if constexpr (Ar::saving) {
        std::uint64_t buckets = value.bucket_count();
        std::uint64_t n = value.size();
        ar.raw(&buckets, sizeof(buckets));
        ar.raw(&n, sizeof(n));
        for (auto &[key, mapped] : value) {
            K k = key;
            io(ar, k);
            io(ar, mapped);
        }
    } else {
        std::uint64_t buckets = 0;
        ar.raw(&buckets, sizeof(buckets));
        const std::uint64_t n = detail::readCount(ar);
        std::vector<std::pair<K, V>> entries;
        entries.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            std::pair<K, V> entry;
            io(ar, entry.first);
            io(ar, entry.second);
            entries.push_back(std::move(entry));
        }
        detail::loadUnordered(value, std::move(entries), buckets);
    }
}

template <class Ar, class K, class H, class E, class Alloc>
void
io(Ar &ar, std::unordered_set<K, H, E, Alloc> &value)
{
    if constexpr (Ar::saving) {
        std::uint64_t buckets = value.bucket_count();
        std::uint64_t n = value.size();
        ar.raw(&buckets, sizeof(buckets));
        ar.raw(&n, sizeof(n));
        for (const K &key : value) {
            K k = key;
            io(ar, k);
        }
    } else {
        std::uint64_t buckets = 0;
        ar.raw(&buckets, sizeof(buckets));
        const std::uint64_t n = detail::readCount(ar);
        std::vector<K> entries;
        entries.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            K key{};
            io(ar, key);
            entries.push_back(std::move(key));
        }
        detail::loadUnordered(value, std::move(entries), buckets);
    }
}

/**
 * Priority queues serialize in pop order and reload by re-push: every
 * queue in the simulator totally orders its entries (unique sequence
 * tiebreaks), so the internal heap layout is unobservable.
 */
template <class Ar, class T, class Container, class Cmp>
void
io(Ar &ar, std::priority_queue<T, Container, Cmp> &value)
{
    if constexpr (Ar::saving) {
        std::priority_queue<T, Container, Cmp> copy = value;
        std::uint64_t n = copy.size();
        ar.raw(&n, sizeof(n));
        while (!copy.empty()) {
            T element = copy.top();
            copy.pop();
            io(ar, element);
        }
    } else {
        value = std::priority_queue<T, Container, Cmp>{};
        const std::uint64_t n = detail::readCount(ar);
        for (std::uint64_t i = 0; i < n; ++i) {
            T element{};
            io(ar, element);
            value.push(std::move(element));
        }
    }
}

} // namespace getm::ckpt

#endif // GETM_CKPT_SERIAL_HH
