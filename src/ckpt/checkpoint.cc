#include "ckpt/checkpoint.hh"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/sim_error.hh"

namespace getm::ckpt {

namespace {

constexpr char magic[8] = {'G', 'E', 'T', 'M', 'C', 'K', 'P', 'T'};
constexpr std::size_t headerSize = 8 + 4 + 8 + 8 + 8;
constexpr std::size_t trailerSize = 4;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void
append(std::string &out, const void *data, std::size_t size)
{
    out.append(static_cast<const char *>(data), size);
}

template <class T>
T
readAt(const std::string &bytes, std::size_t offset)
{
    T value;
    std::memcpy(&value, bytes.data() + offset, sizeof(value));
    return value;
}

[[noreturn]] void
fail(const std::string &what, const std::string &why)
{
    throw SimError(SimErrorKind::Checkpoint,
                   "checkpoint " + what + ": " + why);
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::string
encode(const Snapshot &snap)
{
    std::string out;
    out.reserve(headerSize + snap.payload.size() + trailerSize);
    append(out, magic, sizeof(magic));
    const std::uint32_t version = formatVersion;
    append(out, &version, sizeof(version));
    append(out, &snap.configHash, sizeof(snap.configHash));
    append(out, &snap.cycle, sizeof(snap.cycle));
    const std::uint64_t payload_size = snap.payload.size();
    append(out, &payload_size, sizeof(payload_size));
    out += snap.payload;
    const std::uint32_t crc = crc32(out.data(), out.size());
    append(out, &crc, sizeof(crc));
    return out;
}

Snapshot
decode(const std::string &bytes, std::uint64_t expectedConfigHash,
       const std::string &what)
{
    if (bytes.size() < headerSize + trailerSize)
        fail(what, "truncated (only " + std::to_string(bytes.size()) +
                       " bytes, header alone needs " +
                       std::to_string(headerSize + trailerSize) + ")");
    if (std::memcmp(bytes.data(), magic, sizeof(magic)) != 0)
        fail(what, "bad magic (not a GETM checkpoint file)");

    const auto payload_size = readAt<std::uint64_t>(bytes, 28);
    const std::uint64_t expect_total =
        headerSize + payload_size + trailerSize;
    if (bytes.size() < expect_total)
        fail(what, "truncated (header declares " +
                       std::to_string(payload_size) +
                       " payload bytes, file holds " +
                       std::to_string(bytes.size() - headerSize -
                                      trailerSize) + ")");
    if (bytes.size() > expect_total)
        fail(what, "corrupt (trailing garbage after declared payload)");

    const std::uint32_t stored_crc =
        readAt<std::uint32_t>(bytes, bytes.size() - trailerSize);
    const std::uint32_t actual_crc =
        crc32(bytes.data(), bytes.size() - trailerSize);
    if (stored_crc != actual_crc) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "CRC mismatch (stored %08x, computed %08x)",
                      stored_crc, actual_crc);
        fail(what, buf);
    }

    const auto version = readAt<std::uint32_t>(bytes, 8);
    if (version != formatVersion)
        fail(what, "format version skew (file v" +
                       std::to_string(version) + ", this build reads v" +
                       std::to_string(formatVersion) + ")");

    Snapshot snap;
    snap.configHash = readAt<std::uint64_t>(bytes, 12);
    snap.cycle = readAt<std::uint64_t>(bytes, 20);
    if (snap.configHash != expectedConfigHash) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "config mismatch (snapshot %016llx, this run "
                      "%016llx) -- wrong workload or configuration",
                      static_cast<unsigned long long>(snap.configHash),
                      static_cast<unsigned long long>(expectedConfigHash));
        fail(what, buf);
    }
    snap.payload =
        bytes.substr(headerSize, static_cast<std::size_t>(payload_size));
    return snap;
}

void
writeAtomic(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fail(path, "cannot open temp file for writing");
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os)
            fail(path, "short write to temp file");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fail(path, "rename from temp file failed");
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fail(path, "cannot open for reading");
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    if (is.bad())
        fail(path, "read error");
    return bytes;
}

std::string
snapshotFileName(std::uint64_t cycle)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ckpt-%012llu.ckpt",
                  static_cast<unsigned long long>(cycle));
    return buf;
}

std::string
writeSnapshot(const std::string &dir, const Snapshot &snap)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fail(dir, "cannot create checkpoint directory (" +
                      ec.message() + ")");
    const std::string name = snapshotFileName(snap.cycle);
    const std::string path = dir + "/" + name;
    writeAtomic(path, encode(snap));
    writeAtomic(dir + "/" + latestPointerName, name + "\n");
    return path;
}

std::string
resolveRestorePath(const std::string &pathOrDir)
{
    std::error_code ec;
    if (std::filesystem::is_directory(pathOrDir, ec)) {
        const std::string pointer =
            pathOrDir + "/" + latestPointerName;
        if (!std::filesystem::exists(pointer, ec))
            fail(pathOrDir,
                 "directory holds no latest.ckpt pointer (no "
                 "checkpoint was ever completed there)");
        std::string name = readFile(pointer);
        while (!name.empty() &&
               (name.back() == '\n' || name.back() == '\r'))
            name.pop_back();
        if (name.empty() || name.find('/') != std::string::npos)
            fail(pointer, "latest.ckpt pointer is malformed");
        return pathOrDir + "/" + name;
    }
    return pathOrDir;
}

Snapshot
readSnapshot(const std::string &path, std::uint64_t expectedConfigHash)
{
    return decode(readFile(path), expectedConfigHash, path);
}

} // namespace getm::ckpt
