#include "warptm/wtm_core_tm.hh"

#include <bit>
#include <map>

#include "check/fault.hh"
#include "check/sink.hh"
#include "ckpt/serial.hh"
#include "common/log.hh"

namespace getm {

void
WtmShared::assignSlot(unsigned slot)
{
    // Serial-loop order: the global core iteration reaches cores in id
    // order, and within one core validations start in tick order —
    // which is exactly slot-major, core-major, push order here.
    for (CoreStage &st : stages) {
        for (const CoreStage::Request &req : st.slots[slot]) {
            const std::uint64_t id = nextCommitId++;
            if (st.assigned.size() <= req.seq)
                st.assigned.resize(req.seq + 1, 0);
            st.assigned[req.seq] = id;
            // Patch the warp only if it still holds our sentinel: a
            // same-cycle abort may have reset commitId already, and the
            // serial loops would likewise have left it reset.
            if (req.warp->commitId == (reservedBit | req.seq))
                req.warp->commitId = id;
        }
        st.slots[slot].clear();
    }
}

WtmCoreTm::WtmCoreTm(SimtCore &core_, std::shared_ptr<WtmShared> shared_,
                     WtmMode mode_)
    : core(core_), shared(std::move(shared_)), mode(mode_),
      sliceParts(core_.config().maxWarps),
      stElEagerAborts(core_.stats().addCounter("wtm_el_eager_aborts")),
      stLoadReqs(core_.stats().addCounter("wtm_load_reqs")),
      stValidationAborts(core_.stats().addCounter("wtm_validation_aborts")),
      stIntraWarpAborts(core_.stats().addCounter("wtm_intra_warp_aborts")),
      stSilentCommits(core_.stats().addCounter("wtm_silent_commits")),
      stValidations(core_.stats().addCounter("wtm_validations"))
{
}

LaneMask
WtmCoreTm::instantValidate(const Warp &warp, LaneMask lanes,
                           Addr *conflict_addr) const
{
    LaneMask failed = 0;
    for (LaneId lane = 0; lane < warpSize; ++lane) {
        if (!(lanes & (1u << lane)))
            continue;
        for (const LogEntry &entry : warp.logs[lane].readLog()) {
            if (core.memory().read(entry.addr) != entry.value) {
                FaultInjector *fi = core.faults();
                if (fi && fi->fire(FaultKind::SkipValidation))
                    continue; // injected: ignore the failed entry
                failed |= 1u << lane;
                if (conflict_addr && *conflict_addr == invalidAddr)
                    *conflict_addr = core.granuleOf(entry.addr);
                if (ObsSink *obs = core.observer())
                    obs->conflictEvent(
                        AbortReason::EagerValidation,
                        core.granuleOf(entry.addr),
                        core.addressMap().partitionOf(entry.addr),
                        core.now());
                // The committed writer is long gone by the time value
                // validation sees the mismatch, so no aborter is known.
                if (ObsSink *tracer = core.tracer())
                    tracer->txConflict(
                        warp.gwid, invalidWarp,
                        AbortReason::EagerValidation,
                        core.granuleOf(entry.addr),
                        core.addressMap().partitionOf(entry.addr),
                        core.now());
                break;
            }
        }
    }
    return failed;
}

void
WtmCoreTm::txAccess(Warp &warp, bool is_store, const LaneAddrs &addrs,
                    const LaneVals &vals, LaneMask lanes, std::uint8_t rd)
{
    (void)rd;
    if (mode == WtmMode::EagerLazy) {
        // Idealized per-access validation (Sec. III): zero latency and
        // traffic; conflicting lanes abort immediately.
        Addr conflict = invalidAddr;
        const LaneMask failed = instantValidate(warp, lanes, &conflict);
        if (failed) {
            stElEagerAborts.add(
                static_cast<std::uint64_t>(std::popcount(failed)));
            core.abortTxLanes(warp, failed, warp.warpts,
                              AbortReason::EagerValidation, conflict);
            lanes &= ~failed;
            if (!lanes)
                return;
        }
    }

    LaneMask remote = 0;
    for (LaneId lane = 0; lane < warpSize; ++lane) {
        if (!(lanes & (1u << lane)))
            continue;
        const Addr addr = addrs[lane];
        if (is_store) {
            warp.logs[lane].addWrite(addr, vals[lane]);
        } else if (auto own = warp.logs[lane].findWrite(addr)) {
            // Forwarded from the write log; not validated against memory.
            core.writebackLane(warp, lane, *own);
        } else {
            remote |= 1u << lane;
        }
    }

    // Transactional loads fetch from the LLC and probe the TCD table.
    LaneMask pending = remote;
    while (pending) {
        const LaneId lead = static_cast<LaneId>(std::countr_zero(pending));
        const Addr granule = core.granuleOf(addrs[lead]);
        MemMsg msg;
        msg.kind = MsgKind::WtmTxLoad;
        msg.addr = granule;
        msg.wid = warp.gwid;
        msg.warpSlot = warp.slot;
        msg.ts = warp.warpts;
        for (LaneId lane = lead; lane < warpSize; ++lane) {
            if (!(pending & (1u << lane)) ||
                core.granuleOf(addrs[lane]) != granule)
                continue;
            msg.ops.push_back(
                {static_cast<std::uint8_t>(lane), addrs[lane], 0, 0});
            pending &= ~(1u << lane);
        }
        msg.bytes = 8 + 4 * static_cast<unsigned>(msg.ops.size());
        if (ObsSink *tracer = core.tracer())
            tracer->txAccessIssue(warp.gwid, granule, /*store=*/false,
                                  core.now());
        core.sendToPartition(std::move(msg));
        ++warp.outstanding;
        stLoadReqs.add();
    }
}

void
WtmCoreTm::onResponse(Warp &warp, const MemMsg &msg)
{
    switch (msg.kind) {
      case MsgKind::WtmLoadResp:
        if (ObsSink *tracer = core.tracer())
            tracer->txAccessResponse(warp.gwid, msg.addr, core.now());
        for (const LaneOp &op : msg.ops) {
            if (warp.abortedMask & (1u << op.lane))
                continue;
            core.writebackLane(warp, op.lane, op.value);
            warp.logs[op.lane].addRead(op.addr, op.value);
            // TCD: a lane stays silently committable only while every
            // location it read was last written before the tx started.
            if (static_cast<Cycle>(op.aux) >= warp.txStartCycle)
                warp.tcdOkLanes &= ~(1u << op.lane);
        }
        core.completeBlockingResponse(warp);
        break;

      case MsgKind::WtmValidateResp: {
        for (const LaneOp &op : msg.ops)
            warp.validationFailed |= 1u << op.lane;
        if (warp.pendingValidations == 0)
            panic("unexpected validation response");
        if (--warp.pendingValidations == 0) {
            // Second round trip: send the commit/abort decision.
            const LaneMask pass =
                warp.wtmValidating & ~warp.validationFailed;
            for (PartitionId part : sliceParts[warp.slot]) {
                MemMsg decision;
                decision.kind = MsgKind::WtmDecision;
                decision.wid = warp.gwid;
                decision.warpSlot = warp.slot;
                decision.txId = warp.commitId;
                decision.ts = pass;
                decision.flag = pass != 0;
                decision.partition = part;
                decision.bytes = 8;
                decision.addr = 0;
                decision.core = core.id();
                core.sendToPartitionDirect(std::move(decision));
                ++warp.pendingAcks;
            }
            if (warp.pendingAcks == 0)
                panic("validation with no slice partitions");
        }
        break;
      }

      case MsgKind::WtmCommitAck:
        if (warp.pendingAcks == 0)
            panic("unexpected commit ack");
        if (--warp.pendingAcks == 0) {
            const LaneMask committed =
                warp.wtmSilent | (warp.wtmValidating & ~warp.validationFailed);
            if (warp.validationFailed) {
                stValidationAborts.add(static_cast<std::uint64_t>(
                    std::popcount(warp.validationFailed)));
                // The conflicting addresses were reported partition-side
                // during validation; only the reason is known here.
                core.abortTxLanes(warp, warp.validationFailed, warp.warpts,
                                  AbortReason::Validation, invalidAddr);
            }
            sliceParts[warp.slot].clear();
            core.retireTxAttempt(warp, committed);
        }
        break;

      default:
        panic("WarpTM core engine received unexpected message kind %u",
              static_cast<unsigned>(msg.kind));
    }
}

void
WtmCoreTm::txCommitPoint(Warp &warp)
{
    if (mode == WtmMode::EagerLazy) {
        // Defer to the serial commit micro-phase: the final instant
        // validation reads shared memory and the commit applies the
        // write log to it, so running either mid-tick on a worker
        // thread would race other cores. Deferring unconditionally —
        // in the serial loops too — keeps one-thread and N-thread
        // runs on the identical schedule. CommitWait parks the warp
        // so the scheduler cannot re-issue it this cycle.
        deferredCommits.push_back(warp.slot);
        core.changeState(warp, WarpState::CommitWait);
        return;
    }
    finishCommitPoint(warp);
}

bool
WtmCoreTm::runDeferredCommits(Cycle now)
{
    (void)now; // clock already synced by runDeferredProtocolWork()
    if (deferredCommits.empty())
        return false;
    // finishCommitPoint can abort lanes, which may re-enter the commit
    // path; swap the queue so such re-entries land in the next batch.
    std::vector<std::uint32_t> batch;
    batch.swap(deferredCommits);
    for (const std::uint32_t slot : batch)
        finishCommitPoint(core.allWarps()[slot]);
    return true;
}

void
WtmCoreTm::finishCommitPoint(Warp &warp)
{
    const int txi = warp.transactionIndex();
    if (txi < 0)
        panic("WarpTM commit point without a transaction");

    if (mode == WtmMode::EagerLazy) {
        // Final instant validation keeps the emulation correct: a
        // conflicting commit may have landed since the last access.
        Addr conflict = invalidAddr;
        const LaneMask failed =
            instantValidate(warp, warp.stack[txi].mask, &conflict);
        if (failed) {
            stElEagerAborts.add(
                static_cast<std::uint64_t>(std::popcount(failed)));
            core.abortTxLanes(warp, failed, warp.warpts,
                              AbortReason::EagerValidation, conflict);
        }
    }

    LaneMask committers = warp.stack[txi].mask;

    // Intra-warp conflict resolution (two-phase parallel, Sec. V-A).
    const LaneMask survivors = IntraWarpCd::resolveAtCommit(
        warp.logs.data(), warpSize, committers);
    const LaneMask losers = committers & ~survivors;
    if (losers) {
        stIntraWarpAborts.add(
            static_cast<std::uint64_t>(std::popcount(losers)));
        core.abortTxLanes(warp, losers, warp.warpts,
                          AbortReason::IntraWarp, invalidAddr);
    }

    // Read-only lanes that pass the temporal conflict check commit
    // silently, skipping value-based validation entirely.
    LaneMask silent = 0;
    for (LaneId lane = 0; lane < warpSize; ++lane) {
        const LaneMask bit = 1u << lane;
        if (!(survivors & bit))
            continue;
        if (warp.logs[lane].readOnly() &&
            ((warp.tcdOkLanes & bit) || mode == WtmMode::EagerLazy))
            silent |= bit;
    }
    warp.wtmSilent = silent;
    warp.wtmValidating = survivors & ~silent;
    warp.validationFailed = 0;
    warp.pendingValidations = 0;
    warp.pendingAcks = 0;

    if (!warp.wtmValidating) {
        stSilentCommits.add(
            static_cast<std::uint64_t>(std::popcount(silent)));
        core.retireTxAttempt(warp, survivors);
        return;
    }

    if (maybePause(warp))
        return; // EAPG: resumed via startValidation() later.

    startValidation(warp);
}

void
WtmCoreTm::startValidation(Warp &warp)
{
    warp.commitIssued = true;

    // Build per-partition slices of the surviving lanes' logs.
    std::map<PartitionId, MemMsg> slices;
    for (LaneId lane = 0; lane < warpSize; ++lane) {
        const LaneMask bit = 1u << lane;
        if (!(warp.wtmValidating & bit))
            continue;
        if (mode == WtmMode::LazyLazy) {
            for (const LogEntry &entry : warp.logs[lane].readLog())
                slices[core.addressMap().partitionOf(entry.addr)]
                    .ops.push_back({static_cast<std::uint8_t>(lane),
                                    entry.addr, entry.value, 0});
        }
        for (const LogEntry &entry : warp.logs[lane].writeLog())
            slices[core.addressMap().partitionOf(entry.addr)]
                .ops.push_back({static_cast<std::uint8_t>(lane), entry.addr,
                                entry.value, 1});
    }

    sliceParts[warp.slot].clear();

    if (mode == WtmMode::EagerLazy) {
        // Idealized emulation: the write set becomes visible atomically
        // with the (instant) final validation, so the functional apply
        // happens here; the write-log messages and acks model the
        // single-round-trip commit timing only.
        for (auto &[part, msg] : slices) {
            for (const LaneOp &op : msg.ops) {
                FaultInjector *fi = core.faults();
                if (fi && fi->fire(FaultKind::DropCommitWrite))
                    continue; // injected lost write
                std::uint32_t value = op.value;
                if (fi && fi->fire(FaultKind::CorruptCommit))
                    value ^= 1u;
                core.memory().write(op.addr, value);
                if (CheckSink *cs = core.checker())
                    cs->writeApplied(warp.gwid, op.lane, op.addr, value);
            }
        }
        for (auto &[part, msg] : slices) {
            msg.kind = MsgKind::WtmValidate;
            msg.flag = true; // eager-lazy: apply immediately
            msg.wid = warp.gwid;
            msg.warpSlot = warp.slot;
            msg.txId = 0;
            msg.partition = part;
            msg.core = core.id();
            msg.addr = 0;
            msg.bytes = 8 + 12 * static_cast<unsigned>(msg.ops.size());
            core.sendToPartitionDirect(std::move(msg));
            ++warp.pendingAcks;
        }
        if (warp.pendingAcks == 0) {
            // Writes all forwarded? (Cannot happen: validating lanes have
            // writes by construction.) Retire defensively.
            core.retireTxAttempt(warp,
                                 warp.wtmSilent | warp.wtmValidating);
            return;
        }
        core.changeState(warp, WarpState::CommitWait);
        return;
    }

    // Lazy-lazy: two round trips in global commit order. Every partition
    // receives either its slice or a skip so ids stay contiguous. Under
    // the parallel loop the id is a sentinel until the cycle barrier
    // assigns the real one in serial core order; the staged
    // WtmValidate/WtmSkip sends below are patched at replay
    // (WtmShared::patchTxId), before any partition can observe them.
    warp.commitId = shared->staging ? shared->reserve(core.id(), warp)
                                    : shared->nextCommitId++;
    const unsigned parts = core.addressMap().numPartitions();
    for (PartitionId part = 0; part < parts; ++part) {
        auto it = slices.find(part);
        MemMsg msg;
        if (it != slices.end()) {
            msg = std::move(it->second);
            msg.kind = MsgKind::WtmValidate;
            msg.flag = false;
            msg.bytes = 8 + 12 * static_cast<unsigned>(msg.ops.size());
            sliceParts[warp.slot].push_back(part);
            ++warp.pendingValidations;
        } else {
            msg.kind = MsgKind::WtmSkip;
            msg.bytes = 8;
        }
        msg.wid = warp.gwid;
        msg.warpSlot = warp.slot;
        msg.txId = warp.commitId;
        msg.partition = part;
        msg.core = core.id();
        msg.addr = 0;
        core.sendToPartitionDirect(std::move(msg));
    }
    stValidations.add();
    core.changeState(warp, WarpState::CommitWait);
}

void
WtmCoreTm::ckptSave(ckpt::Writer &ar)
{
    ar(sliceParts, deferredCommits);
}

void
WtmCoreTm::ckptLoad(ckpt::Reader &ar)
{
    ar(sliceParts, deferredCommits);
}

} // namespace getm
