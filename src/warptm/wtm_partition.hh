/**
 * @file
 * WarpTM validation/commit units at one LLC partition.
 *
 * Transactional loads are served with data plus the TCD last-write
 * timestamp. Validation slices enter in global commit order (ids are
 * contiguous per partition thanks to skip messages). Hazard-free slices
 * pipeline KiloTM-style: up to maxAwaiting transactions may be validated
 * and awaiting their decisions concurrently, but a slice that reads or
 * writes a word written by an undecided earlier transaction must wait
 * for that decision -- which is exactly the serialization bottleneck the
 * paper identifies ("while one transaction goes through the
 * two-round-trip validation/commit sequence, other transactions must
 * wait").
 *
 * EagerLazy slices (flag set) bypass the ordering machinery: writes are
 * applied on arrival and acked in a single round trip.
 */

#ifndef GETM_WARPTM_WTM_PARTITION_HH
#define GETM_WARPTM_WTM_PARTITION_HH

#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/metadata_table.hh" // RecencyBloom, reused for the TCD
#include "tm/partition_iface.hh"
#include "warptm/wtm_common.hh"

namespace getm {

/** Configuration of one partition's WarpTM units. */
struct WtmPartitionConfig
{
    /** Commit-unit write bandwidth (Table II: 32 B/cycle). */
    unsigned commitBytesPerCycle = 32;
    /**
     * Buckets in this partition's TCD last-write filter (the 16 KB
     * "last-write buffer" of Table V, stored approximately: collisions
     * overestimate the last-write time, which only costs silent
     * commits, never correctness). The 56-core configuration doubles
     * it, per the paper's Sec. VI-A.
     */
    unsigned tcdEntries = 2048;
    /**
     * Validated-but-undecided transactions allowed in flight per
     * partition. Depth 1 is the paper's literal serialization ("while
     * one transaction goes through the two-round-trip sequence, other
     * transactions must wait"); the KiloTM hardware overlaps
     * hazard-free commits, which depth 8 models.
     */
    unsigned pipelineDepth = 8;
    std::uint64_t seed = 0x7cd;
};

/** WarpTM protocol engine at one memory partition. */
class WtmPartitionUnit : public TmPartitionProtocol
{
  public:
    WtmPartitionUnit(PartitionContext &context,
                     const WtmPartitionConfig &config, std::string name);

    Cycle handleRequest(MemMsg &&msg, Cycle now) override;
    void noteDataWrite(Addr addr, Cycle now) override;
    void ckptSave(ckpt::Writer &ar) override;
    void ckptLoad(ckpt::Reader &ar) override;

    /** Oldest commit id not yet fully processed here. */
    std::uint64_t nextCommitId() const { return nextId; }

  protected:
    /** EAPG hook: validation of a slice with writes began. */
    virtual void onValidationStart(const MemMsg &slice, Cycle now)
    {
        (void)slice;
        (void)now;
    }

    /** EAPG hook: a decision was applied (commit finished). */
    virtual void onDecisionApplied(std::uint64_t tx_id, Cycle now)
    {
        (void)tx_id;
        (void)now;
    }

    PartitionContext &ctx;

  private:
    /** Advance the in-order validation pipeline as far as possible. */
    void tryAdvance(Cycle now);

    void validateSlice(MemMsg &&slice, Cycle now);
    void applyDecision(const MemMsg &decision, Cycle now);
    Cycle applyElSlice(const MemMsg &slice, Cycle now);

    /** Does @p slice touch any word written by an undecided slice? */
    bool hazardsWithPending(const MemMsg &slice) const;

    WtmPartitionConfig cfg;
    std::string unitName;

    /**
     * TCD last-write filter: a recency Bloom filter over word addresses
     * whose "wts" field holds the last write cycle (overestimated under
     * collisions -- safe: a too-recent answer merely forces value-based
     * validation).
     */
    RecencyBloom tcd;

    /** Slices/skips waiting their turn, keyed by commit id. */
    std::map<std::uint64_t, MemMsg> reorder;
    /** Decisions that arrived before their slice validated. */
    std::map<std::uint64_t, MemMsg> decisions;
    /** Validated slices awaiting their decisions, keyed by commit id. */
    std::map<std::uint64_t, MemMsg> awaiting;
    /** Write-set words of awaiting slices (hazard detection). */
    std::unordered_map<Addr, unsigned> pendingWrites;
    std::uint64_t nextId = 1;
    Cycle vuFree = 0;

    // Hot-path stat handles: one add per validated/decided slice.
    StatSet::Counter &stElCommits;
    StatSet::Counter &stValidations;
    StatSet::Counter &stValidationFails;
    StatSet::Counter &stDecisions;
};

} // namespace getm

#endif // GETM_WARPTM_WTM_PARTITION_HH
