/**
 * @file
 * Shared definitions for the WarpTM baseline (paper Sec. II-B) and its
 * idealized eager-lazy variant (Sec. III).
 */

#ifndef GETM_WARPTM_WTM_COMMON_HH
#define GETM_WARPTM_WTM_COMMON_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace getm {

/** Conflict-detection flavour of the WarpTM engine. */
enum class WtmMode : std::uint8_t
{
    /** Original WarpTM: lazy value-based validation (two round trips). */
    LazyLazy,
    /**
     * Idealized eager-lazy variant used in Sec. III: value validation
     * runs on every transactional access with zero latency and traffic;
     * commits skip validation and take a single write+ack round trip.
     */
    EagerLazy,
};

/**
 * Global commit-id allocator shared by all cores. WarpTM serializes
 * validation/commit per partition in global commit order (KiloTM-style);
 * empty slices are announced with skip messages so every partition sees
 * a contiguous id sequence.
 */
struct WtmShared
{
    std::uint64_t nextCommitId = 1;
};

/** 64-bit Bloom signature over word addresses (EAPG broadcasts). */
inline std::uint64_t
signatureBit(Addr addr)
{
    return 1ull << (hashMix(addr, 0xe4b9) & 63);
}

} // namespace getm

#endif // GETM_WARPTM_WTM_COMMON_HH
