/**
 * @file
 * Shared definitions for the WarpTM baseline (paper Sec. II-B) and its
 * idealized eager-lazy variant (Sec. III).
 */

#ifndef GETM_WARPTM_WTM_COMMON_HH
#define GETM_WARPTM_WTM_COMMON_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace getm {

class Warp;

/** Conflict-detection flavour of the WarpTM engine. */
enum class WtmMode : std::uint8_t
{
    /** Original WarpTM: lazy value-based validation (two round trips). */
    LazyLazy,
    /**
     * Idealized eager-lazy variant used in Sec. III: value validation
     * runs on every transactional access with zero latency and traffic;
     * commits skip validation and take a single write+ack round trip.
     */
    EagerLazy,
};

/**
 * Global commit-id allocator shared by all cores. WarpTM serializes
 * validation/commit per partition in global commit order (KiloTM-style);
 * empty slices are announced with skip messages so every partition sees
 * a contiguous id sequence.
 *
 * Under the parallel cycle loop the live `nextCommitId++` in the core
 * tick would make ids depend on worker interleaving, so the loop flips
 * the allocator into *staging* mode: startValidation() calls reserve(),
 * which records the request in the core's current replay slot and hands
 * back a sentinel id (reservedBit | per-core sequence number). At the
 * cycle barrier, assignSlot() walks the requests slot-major then in
 * core order — the exact order the serial loop's global core iteration
 * would have reached them — and allocates the real ids, patching each
 * warp and publishing the seq→id mapping so staged WtmValidate/WtmSkip
 * sends can be rewritten before crossbar injection. Commit ids and
 * per-partition admit order are therefore bit-identical to the serial
 * loops at any thread count (docs/PARALLELISM.md).
 */
struct WtmShared
{
    std::uint64_t nextCommitId = 1;

    /** Marks a sentinel id; real ids stay far below this forever. */
    static constexpr std::uint64_t reservedBit = 1ull << 63;
    /** Low bits of a sentinel hold the per-core sequence number. */
    static constexpr std::uint64_t seqMask = 0xffffffffull;

    /** Allocation goes through reserve()/assignSlot() when true. */
    bool staging = false;

    /** One core's staged requests for the current epoch. */
    struct CoreStage
    {
        struct Request
        {
            Warp *warp;
            std::uint32_t seq;
        };

        /** Requests bucketed by replay slot (same slots as the send
         *  stages: 2 per cycle — deliver then tick). */
        std::vector<std::vector<Request>> slots;
        /** seq → assigned id; persists for the whole epoch so late
         *  flushes (rollover double-flush) can still patch sends. */
        std::vector<std::uint64_t> assigned;
        std::uint32_t seqNext = 0;
        /** Replay slot reserve() records into; the loop keeps it in
         *  lockstep with the core's send-stage bucket. */
        unsigned cur = 0;
    };

    std::vector<CoreStage> stages;

    /** Enter staging mode with @p num_slots replay slots per core. */
    void
    beginStaging(unsigned num_cores, unsigned num_slots)
    {
        staging = true;
        stages.assign(num_cores, CoreStage{});
        for (CoreStage &st : stages)
            st.slots.resize(num_slots);
    }

    /** Leave staging mode (serial loops allocate live again). */
    void
    endStaging()
    {
        staging = false;
        stages.clear();
    }

    /** Reset per-epoch state; call before each epoch's worker pass. */
    void
    resetEpoch()
    {
        for (CoreStage &st : stages) {
            st.seqNext = 0;
            st.assigned.clear();
            st.cur = 0;
        }
    }

    /**
     * Worker-side: record a commit-id request for @p warp on @p core
     * and return the sentinel to use until the barrier assigns the
     * real id. Only the worker that owns @p core may call this.
     */
    std::uint64_t
    reserve(CoreId core, Warp &warp)
    {
        CoreStage &st = stages[core];
        const std::uint32_t seq = st.seqNext++;
        st.slots[st.cur].push_back({&warp, seq});
        return reservedBit | seq;
    }

    /**
     * Barrier-side: allocate real ids for every request staged in
     * replay slot @p slot, visiting cores in id order. Defined in
     * wtm_core_tm.cc (needs Warp's definition).
     */
    void assignSlot(unsigned slot);

    /** Rewrite a staged message id: sentinel → assigned real id. */
    std::uint64_t
    patchTxId(CoreId core, std::uint64_t tx_id) const
    {
        if (!(tx_id & reservedBit))
            return tx_id;
        return stages[core].assigned[tx_id & seqMask];
    }
};

/** 64-bit Bloom signature over word addresses (EAPG broadcasts). */
inline std::uint64_t
signatureBit(Addr addr)
{
    return 1ull << (hashMix(addr, 0xe4b9) & 63);
}

} // namespace getm

#endif // GETM_WARPTM_WTM_COMMON_HH
