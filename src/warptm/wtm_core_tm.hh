/**
 * @file
 * Core-side WarpTM engine (paper Sec. II-B).
 *
 * Transactional loads fetch data from the LLC (recording observed values
 * in the read log and probing the TCD last-write table); stores buffer
 * in the redo log. At the commit point the warp resolves intra-warp
 * conflicts, commits read-only TCD-clean lanes silently, and otherwise
 * runs the two-round-trip value-based validation/commit sequence against
 * the validation/commit units at each LLC partition.
 *
 * The EagerLazy mode emulates eager conflict detection by re-validating
 * the read log instantly (zero latency/traffic) on every transactional
 * access, as in the paper's Sec. III study.
 */

#ifndef GETM_WARPTM_WTM_CORE_TM_HH
#define GETM_WARPTM_WTM_CORE_TM_HH

#include <memory>
#include <vector>

#include "simt/simt_core.hh"
#include "simt/tm_iface.hh"
#include "warptm/wtm_common.hh"

namespace getm {

/** WarpTM TmCoreProtocol implementation (LL and EL modes). */
class WtmCoreTm : public TmCoreProtocol
{
  public:
    WtmCoreTm(SimtCore &core_, std::shared_ptr<WtmShared> shared_,
              WtmMode mode_);

    void txAccess(Warp &warp, bool is_store, const LaneAddrs &addrs,
                  const LaneVals &vals, LaneMask lanes,
                  std::uint8_t rd) override;
    void txCommitPoint(Warp &warp) override;
    void onResponse(Warp &warp, const MemMsg &msg) override;
    bool runDeferredCommits(Cycle now) override;
    void ckptSave(ckpt::Writer &ar) override;
    void ckptLoad(ckpt::Reader &ar) override;

  protected:
    /**
     * EAPG hook: return true to pause the commit (the subclass must
     * later call startValidation() when the conflict clears).
     */
    virtual bool maybePause(Warp &warp)
    {
        (void)warp;
        return false;
    }

    /** Allocate a commit id and send validation slices / skips. */
    void startValidation(Warp &warp);

    /**
     * The body of the commit point. EagerLazy warps reach it through
     * the deferred micro-phase (runDeferredCommits) because an EL
     * commit applies its write log to shared memory core-side — see
     * TmCoreProtocol::runDeferredCommits. LazyLazy warps run it inline
     * from txCommitPoint.
     */
    void finishCommitPoint(Warp &warp);

    /**
     * Instantly value-validate the read logs of @p lanes; returns the
     * lanes whose logged values no longer match memory.
     */
    /**
     * Idealized value validation of @p lanes' read logs. Reports each
     * conflicting address to the observability sink; when
     * @p conflict_addr is non-null it receives the first conflicting
     * address (for abort attribution).
     */
    LaneMask instantValidate(const Warp &warp, LaneMask lanes,
                             Addr *conflict_addr = nullptr) const;

    SimtCore &core;
    std::shared_ptr<WtmShared> shared;
    WtmMode mode;
    /** Partitions holding a validation slice, per warp slot. */
    std::vector<std::vector<PartitionId>> sliceParts;
    /** Warp slots whose EL commit waits for the serial micro-phase. */
    std::vector<std::uint32_t> deferredCommits;

    // Hot-path stat handles: one add per access/commit event.
    StatSet::Counter &stElEagerAborts;
    StatSet::Counter &stLoadReqs;
    StatSet::Counter &stValidationAborts;
    StatSet::Counter &stIntraWarpAborts;
    StatSet::Counter &stSilentCommits;
    StatSet::Counter &stValidations;
};

} // namespace getm

#endif // GETM_WARPTM_WTM_CORE_TM_HH
