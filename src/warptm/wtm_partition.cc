#include "warptm/wtm_partition.hh"

#include <algorithm>

#include "check/fault.hh"
#include "check/sink.hh"
#include "ckpt/serial.hh"
#include "common/log.hh"

namespace getm {

WtmPartitionUnit::WtmPartitionUnit(PartitionContext &context,
                                   const WtmPartitionConfig &config,
                                   std::string name)
    : ctx(context), cfg(config), unitName(std::move(name)),
      tcd(std::max(1u, config.tcdEntries / RecencyBloom::numWays),
          config.seed),
      stElCommits(context.stats().addCounter("wtm_el_commits")),
      stValidations(context.stats().addCounter("wtm_validations")),
      stValidationFails(context.stats().addCounter("wtm_validation_fails")),
      stDecisions(context.stats().addCounter("wtm_decisions"))
{
}

void
WtmPartitionUnit::noteDataWrite(Addr addr, Cycle now)
{
    tcd.insert(addr, now, 0);
}

Cycle
WtmPartitionUnit::handleRequest(MemMsg &&msg, Cycle now)
{
    switch (msg.kind) {
      case MsgKind::WtmTxLoad: {
        MemMsg resp;
        resp.kind = MsgKind::WtmLoadResp;
        resp.core = msg.core;
        resp.partition = ctx.partitionId();
        resp.wid = msg.wid;
        resp.warpSlot = msg.warpSlot;
        resp.addr = msg.addr;
        Cycle extra = 0;
        for (const LaneOp &op : msg.ops) {
            const Cycle last = tcd.lookup(op.addr).first;
            const std::uint32_t value = ctx.memory().read(op.addr);
            if (CheckSink *cs = ctx.check())
                cs->readObserved(msg.wid, op.lane, op.addr, value);
            resp.ops.push_back({op.lane, op.addr, value,
                                static_cast<std::uint32_t>(std::min<Cycle>(
                                    last, 0xffffffffu))});
            extra = std::max(extra, ctx.accessLlc(op.addr, false, now));
        }
        resp.bytes = 8 + 8 * static_cast<unsigned>(resp.ops.size());
        const Cycle ready = now + 1 + ctx.llcLatency() + extra;
        if (ObsSink *tracer = ctx.trace())
            tracer->txAccessDecision(msg.wid, msg.addr,
                                     ctx.partitionId(), /*ok=*/true, now,
                                     ready);
        ctx.scheduleToCore(std::move(resp), ready);
        return 1;
      }

      case MsgKind::WtmValidate:
        if (msg.flag)
            return applyElSlice(msg, now); // EagerLazy: apply + ack now
        reorder.emplace(msg.txId, std::move(msg));
        tryAdvance(now);
        return 1;

      case MsgKind::WtmSkip:
        reorder.emplace(msg.txId, std::move(msg));
        tryAdvance(now);
        return 1;

      case MsgKind::WtmDecision:
        decisions.emplace(msg.txId, std::move(msg));
        tryAdvance(now);
        return 1;

      default:
        panic("WarpTM partition received unexpected message kind %u",
              static_cast<unsigned>(msg.kind));
    }
}

Cycle
WtmPartitionUnit::applyElSlice(const MemMsg &slice, Cycle now)
{
    const Cycle start = std::max(now, vuFree);
    const Cycle busy = std::max<Cycle>(
        1, (slice.bytes + cfg.commitBytesPerCycle - 1) /
               cfg.commitBytesPerCycle);
    vuFree = start + busy;
    for (const LaneOp &op : slice.ops) {
        // Data was applied atomically with the core's instant validation
        // (see WtmCoreTm::startValidation); only timing and the TCD
        // last-write table are updated here.
        tcd.insert(op.addr, start, 0);
        ctx.accessLlc(op.addr, true, now);
    }
    MemMsg ack;
    ack.kind = MsgKind::WtmCommitAck;
    ack.core = slice.core;
    ack.partition = ctx.partitionId();
    ack.wid = slice.wid;
    ack.warpSlot = slice.warpSlot;
    ack.bytes = 8;
    ctx.scheduleToCore(std::move(ack), start + busy);
    stElCommits.add();
    return busy;
}

bool
WtmPartitionUnit::hazardsWithPending(const MemMsg &slice) const
{
    for (const LaneOp &op : slice.ops)
        if (pendingWrites.count(op.addr))
            return true;
    return false;
}

void
WtmPartitionUnit::tryAdvance(Cycle now)
{
    bool progress = true;
    while (progress) {
        progress = false;

        // 1. Apply any arrived decisions for validated slices. Hazard
        //    checking guarantees undecided slices never overlap, so the
        //    apply order between them is immaterial.
        for (auto it = decisions.begin(); it != decisions.end();) {
            auto slice_it = awaiting.find(it->first);
            if (slice_it == awaiting.end()) {
                ++it;
                continue;
            }
            applyDecision(it->second, now);
            awaiting.erase(slice_it);
            it = decisions.erase(it);
            progress = true;
        }

        // 2. Admit the next commit id in order, when it has arrived, the
        //    pipeline has room, and it does not hazard with undecided
        //    writes.
        auto it = reorder.find(nextId);
        if (it == reorder.end())
            continue;
        if (it->second.kind == MsgKind::WtmSkip) {
            reorder.erase(it);
            ++nextId;
            progress = true;
            continue;
        }
        if (awaiting.size() >= cfg.pipelineDepth ||
            hazardsWithPending(it->second))
            continue;
        MemMsg slice = std::move(it->second);
        reorder.erase(it);
        ++nextId;
        validateSlice(std::move(slice), now);
        progress = true;
    }
}

void
WtmPartitionUnit::validateSlice(MemMsg &&slice, Cycle now)
{
    const Cycle start = std::max(now, vuFree);
    // Value-based validation streams one log entry per cycle through the
    // LLC port.
    const Cycle busy = std::max<Cycle>(1, slice.ops.size());
    vuFree = start + busy;

    bool has_writes = false;
    Cycle extra = 0;
    MemMsg resp;
    resp.kind = MsgKind::WtmValidateResp;
    resp.core = slice.core;
    resp.partition = ctx.partitionId();
    resp.wid = slice.wid;
    resp.warpSlot = slice.warpSlot;
    resp.txId = slice.txId;

    LaneMask failed = 0;
    for (const LaneOp &op : slice.ops) {
        if (op.aux) { // write entry: nothing to validate
            has_writes = true;
            continue;
        }
        extra = std::max(extra, ctx.accessLlc(op.addr, false, now));
        if (ctx.memory().read(op.addr) != op.value) {
            FaultInjector *fi = ctx.faults();
            if (fi && fi->fire(FaultKind::CommitStaleRead))
                continue; // injected: pretend the stale read validated
            failed |= 1u << op.lane;
            if (ObsSink *sink = ctx.obs())
                sink->conflictEvent(AbortReason::Validation, op.addr,
                                    ctx.partitionId(), now);
            // Lazy validation compares values, so the writer that made
            // the read stale already committed anonymously.
            if (ObsSink *tracer = ctx.trace())
                tracer->txConflict(slice.wid, invalidWarp,
                                   AbortReason::Validation, op.addr,
                                   ctx.partitionId(), now);
        }
    }
    for (LaneId lane = 0; lane < warpSize; ++lane)
        if (failed & (1u << lane))
            resp.ops.push_back({static_cast<std::uint8_t>(lane), 0, 0, 0});
    resp.bytes = 8;
    ctx.scheduleToCore(std::move(resp), start + busy + ctx.llcLatency() +
                                            extra);
    stValidations.add();
    if (failed)
        stValidationFails.add();
    if (ObsSink *tracer = ctx.trace())
        tracer->txValidation(slice.wid, ctx.partitionId(), failed == 0,
                             start, start + busy);

    if (has_writes)
        onValidationStart(slice, start);
    for (const LaneOp &op : slice.ops)
        if (op.aux)
            ++pendingWrites[op.addr];
    const std::uint64_t id = slice.txId;
    awaiting.emplace(id, std::move(slice));
}

void
WtmPartitionUnit::applyDecision(const MemMsg &decision, Cycle now)
{
    const MemMsg &slice = awaiting.at(decision.txId);
    const LaneMask pass = static_cast<LaneMask>(decision.ts);
    const Cycle start = std::max(now, vuFree);
    Cycle bytes = 0;

    for (const LaneOp &op : slice.ops) {
        if (!op.aux)
            continue;
        auto it = pendingWrites.find(op.addr);
        if (it != pendingWrites.end() && --it->second == 0)
            pendingWrites.erase(it);
        if (!(pass & (1u << op.lane)))
            continue;
        FaultInjector *fi = ctx.faults();
        if (fi && fi->fire(FaultKind::DropCommitWrite)) {
            // Injected lost write; timing still charged below.
        } else {
            std::uint32_t value = op.value;
            if (fi && fi->fire(FaultKind::CorruptCommit))
                value ^= 1u;
            ctx.memory().write(op.addr, value);
            if (CheckSink *cs = ctx.check())
                cs->writeApplied(slice.wid, op.lane, op.addr, value);
        }
        tcd.insert(op.addr, start, 0);
        ctx.accessLlc(op.addr, true, now);
        bytes += 12;
    }
    const Cycle busy = std::max<Cycle>(
        1, (bytes + cfg.commitBytesPerCycle - 1) / cfg.commitBytesPerCycle);
    vuFree = start + busy;

    MemMsg ack;
    ack.kind = MsgKind::WtmCommitAck;
    ack.core = slice.core;
    ack.partition = ctx.partitionId();
    ack.wid = slice.wid;
    ack.warpSlot = slice.warpSlot;
    ack.bytes = 8;
    ctx.scheduleToCore(std::move(ack), start + busy);
    stDecisions.add();
    onDecisionApplied(decision.txId, start + busy);
}

void
WtmPartitionUnit::ckptSave(ckpt::Writer &ar)
{
    ar(tcd, reorder, decisions, awaiting, pendingWrites, nextId, vuFree);
}

void
WtmPartitionUnit::ckptLoad(ckpt::Reader &ar)
{
    ar(tcd, reorder, decisions, awaiting, pendingWrites, nextId, vuFree);
}

} // namespace getm
