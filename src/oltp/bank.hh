/**
 * @file
 * TPC-C-lite "bank" workload (beyond the paper).
 *
 * Each thread runs one Payment-shaped transaction: move a random
 * amount between two zipfian-skewed accounts, then update the audit
 * trail — the handling teller's transaction counter and its branch's
 * volume total — four records across three tables, the multi-record
 * business-transaction shape of TPC-C at the contention of a hot
 * branch/teller hierarchy (branch rows are touched by 1/branches of
 * ALL transactions, far hotter than any zipfian account head).
 *
 * Invariants are exact and order-free: every per-account, per-teller,
 * and per-branch final value is the initial value plus a host-computed
 * commutative sum, and the audit identity Σ accounts == initial total
 * (conservation of money) is checked independently. The fine-grained
 * lock variant acquires the four per-record locks in a single global
 * order — branch < teller < low account < high account, the lock
 * words being laid out in that address order — via
 * emitMultiLockCritical().
 */

#ifndef GETM_OLTP_BANK_HH
#define GETM_OLTP_BANK_HH

#include <vector>

#include "common/zipf.hh"
#include "workloads/workload.hh"

namespace getm {

/** Resolved BANK parameters (registry defaults in workloads/registry.cc). */
struct BankParams
{
    double theta = 0.6;            ///< Zipfian account skew.
    double accounts = 1000000;     ///< Account count at scale 1.0.
    std::uint64_t branches = 16;   ///< Absolute, not scaled.
    std::uint64_t tellers = 160;   ///< Absolute, not scaled.
    std::uint32_t maxAmount = 500; ///< Transfer amounts in [1, maxAmount].
};

/** Multi-account transfer benchmark with audit-balance invariants. */
class BankWorkload : public Workload
{
  public:
    BankWorkload(const BankParams &params, double scale,
                 std::uint64_t seed, std::string token = "");

    BenchId id() const override { return BenchId::Bank; }
    std::string name() const override { return specToken; }
    void setup(GpuSystem &gpu, bool lock_variant) override;
    std::uint64_t numThreads() const override { return threads; }
    bool verify(GpuSystem &gpu, std::string &why) const override;
    bool addrInfo(Addr addr, std::string &label) const override;

    std::uint64_t numAccounts() const { return accounts; }
    /** The account holding zipfian popularity rank @p rank. */
    std::uint64_t accountOfRank(std::uint64_t rank) const
    {
        return zipf.scramble(rank);
    }

  private:
    struct Transfer
    {
        std::uint32_t src;
        std::uint32_t dst;
        std::uint32_t teller;
        std::uint32_t branch;
        std::uint32_t amount;
    };

    BankParams params;
    std::string specToken;
    std::uint64_t threads;
    std::uint64_t accounts;
    std::uint64_t seed;
    ScrambledZipfian zipf;

    std::vector<Transfer> transfers; ///< One per thread.
    std::vector<std::uint32_t> expectedAccounts; ///< Final values.
    std::vector<std::uint32_t> expectedTellers;
    std::vector<std::uint32_t> expectedBranches;

    Addr branchesBase = 0;
    Addr tellersBase = 0;
    Addr accountsBase = 0;
    Addr locksBase = 0; ///< B + T + A words, in that (address) order.
    Addr opsBase = 0;
    std::uint64_t initialTotal = 0;

    static constexpr std::uint32_t initialBalance = 1000;
};

} // namespace getm

#endif // GETM_OLTP_BANK_HH
