#include "oltp/bank.hh"

#include "common/rng.hh"
#include "workloads/lock_utils.hh"

namespace getm {

BankWorkload::BankWorkload(const BankParams &params_, double scale,
                           std::uint64_t seed_, std::string token)
    : params(params_),
      specToken(token.empty() ? benchName(BenchId::Bank)
                              : std::move(token)),
      threads(scaledThreads(23040.0, scale)),
      accounts(scaledCount("BANK accounts", params_.accounts, scale, 64)),
      seed(seed_), zipf(accounts, params_.theta, seed_)
{
    Rng rng(seed);
    transfers.reserve(threads);
    expectedAccounts.assign(accounts, initialBalance);
    expectedTellers.assign(params.tellers, 0);
    expectedBranches.assign(params.branches, 0);
    for (std::uint64_t t = 0; t < threads; ++t) {
        Transfer tr;
        tr.src = static_cast<std::uint32_t>(zipf.next(rng));
        std::uint64_t dst = zipf.next(rng);
        if (dst == tr.src)
            dst = (dst + 1) % accounts;
        tr.dst = static_cast<std::uint32_t>(dst);
        tr.teller =
            static_cast<std::uint32_t>(rng.below(params.tellers));
        tr.branch = tr.teller % static_cast<std::uint32_t>(
                                    params.branches);
        tr.amount =
            static_cast<std::uint32_t>(rng.range(1, params.maxAmount));
        transfers.push_back(tr);

        // Commutative sums in the kernel's own uint32 wrap arithmetic.
        expectedAccounts[tr.src] -= tr.amount;
        expectedAccounts[tr.dst] += tr.amount;
        expectedTellers[tr.teller] += 1;
        expectedBranches[tr.branch] += tr.amount;
    }
}

void
BankWorkload::setup(GpuSystem &gpu, bool lock_variant)
{
    const std::uint64_t B = params.branches, T = params.tellers;
    branchesBase = gpu.memory().allocate(4 * B);
    tellersBase = gpu.memory().allocate(4 * T);
    accountsBase = gpu.memory().allocate(4 * accounts);
    // One lock array spanning all three tables keeps the lock words in
    // a single known address order: branch < teller < account.
    locksBase =
        lock_variant ? gpu.memory().allocate(4 * (B + T + accounts)) : 0;
    const std::uint64_t op_bytes = 20;
    opsBase = gpu.memory().allocate(op_bytes * threads);

    initialTotal = 0;
    for (std::uint64_t a = 0; a < accounts; ++a) {
        gpu.memory().write(accountsBase + 4 * a, initialBalance);
        initialTotal += initialBalance;
    }
    // Teller and branch audit rows start at the backing store's 0.
    for (std::uint64_t t = 0; t < threads; ++t) {
        const Transfer &tr = transfers[t];
        const Addr at = opsBase + op_bytes * t;
        gpu.memory().write(at, tr.src);
        gpu.memory().write(at + 4, tr.dst);
        gpu.memory().write(at + 8, tr.teller);
        gpu.memory().write(at + 12, tr.branch);
        gpu.memory().write(at + 16, tr.amount);
    }

    KernelBuilder kb(specToken + (lock_variant ? ".lock" : ".tm"));
    const Reg tid(1), base(2), amt(3), v(4), tmp(5);
    const Reg sa(6), da(7), ta(8), ba(9); // record addresses
    const Reg ls(10), ld(11), lt(12), lb(13); // lock addresses
    const Reg t0(14), t1(15), t2(16);

    kb.readSpecial(tid, SpecialReg::ThreadId);
    kb.muli(base, tid, static_cast<std::int64_t>(op_bytes));
    kb.addi(base, base, static_cast<std::int64_t>(opsBase));
    kb.load(sa, base, 0);
    kb.load(da, base, 4);
    kb.load(ta, base, 8);
    kb.load(ba, base, 12);
    kb.load(amt, base, 16);

    if (lock_variant) {
        // Lock indices: branch b, B + teller, B + T + account.
        kb.shli(lb, ba, 2);
        kb.addi(lb, lb, static_cast<std::int64_t>(locksBase));
        kb.shli(lt, ta, 2);
        kb.addi(lt, lt, static_cast<std::int64_t>(locksBase + 4 * B));
        kb.shli(ls, sa, 2);
        kb.addi(ls, ls,
                static_cast<std::int64_t>(locksBase + 4 * (B + T)));
        kb.shli(ld, da, 2);
        kb.addi(ld, ld,
                static_cast<std::int64_t>(locksBase + 4 * (B + T)));
        // Order the two account locks; branch < teller < account holds
        // by construction, completing one global acquisition order.
        kb.maxs(tmp, ls, ld);
        kb.mins(ls, ls, ld);
        kb.mov(ld, tmp);
    }

    // Record addresses (indices are consumed above for the locks).
    kb.shli(sa, sa, 2);
    kb.addi(sa, sa, static_cast<std::int64_t>(accountsBase));
    kb.shli(da, da, 2);
    kb.addi(da, da, static_cast<std::int64_t>(accountsBase));
    kb.shli(ta, ta, 2);
    kb.addi(ta, ta, static_cast<std::int64_t>(tellersBase));
    kb.shli(ba, ba, 2);
    kb.addi(ba, ba, static_cast<std::int64_t>(branchesBase));

    const auto body = [&](std::uint8_t flags) {
        kb.load(v, sa, 0, flags);
        kb.sub(v, v, amt);
        kb.store(sa, v, 0, flags);
        kb.load(v, da, 0, flags);
        kb.add(v, v, amt);
        kb.store(da, v, 0, flags);
        kb.load(v, ta, 0, flags);
        kb.addi(v, v, 1);
        kb.store(ta, v, 0, flags);
        kb.load(v, ba, 0, flags);
        kb.add(v, v, amt);
        kb.store(ba, v, 0, flags);
    };

    if (lock_variant) {
        emitMultiLockCritical(kb, {lb, lt, ls, ld}, t0, t1, t2,
                              [&] { body(MemBypassL1); });
    } else {
        kb.txBegin();
        body(MemNone);
        kb.txCommit();
    }
    kb.exit();
    builtKernel = kb.build();
}

bool
BankWorkload::verify(GpuSystem &gpu, std::string &why) const
{
    std::int64_t total = 0;
    for (std::uint64_t a = 0; a < accounts; ++a) {
        const std::uint32_t balance =
            gpu.memory().read(accountsBase + 4 * a);
        total += static_cast<std::int32_t>(balance);
        if (balance != expectedAccounts[a]) {
            why = "account " + std::to_string(a) + " balance " +
                  std::to_string(balance) + " != expected " +
                  std::to_string(expectedAccounts[a]);
            return false;
        }
    }
    if (total != static_cast<std::int64_t>(initialTotal)) {
        why = "balance not conserved: " + std::to_string(total) +
              " != " + std::to_string(initialTotal);
        return false;
    }
    for (std::uint64_t t = 0; t < params.tellers; ++t) {
        const std::uint32_t count =
            gpu.memory().read(tellersBase + 4 * t);
        if (count != expectedTellers[t]) {
            why = "teller " + std::to_string(t) + " count " +
                  std::to_string(count) + " != expected " +
                  std::to_string(expectedTellers[t]);
            return false;
        }
    }
    for (std::uint64_t b = 0; b < params.branches; ++b) {
        const std::uint32_t volume =
            gpu.memory().read(branchesBase + 4 * b);
        if (volume != expectedBranches[b]) {
            why = "branch " + std::to_string(b) + " volume " +
                  std::to_string(volume) + " != expected " +
                  std::to_string(expectedBranches[b]);
            return false;
        }
    }
    return true;
}

bool
BankWorkload::addrInfo(Addr addr, std::string &label) const
{
    if (addr >= branchesBase &&
        addr < branchesBase + 4 * params.branches) {
        label = "branch " + std::to_string((addr - branchesBase) / 4);
        return true;
    }
    if (addr >= tellersBase && addr < tellersBase + 4 * params.tellers) {
        label = "teller " + std::to_string((addr - tellersBase) / 4);
        return true;
    }
    if (addr >= accountsBase && addr < accountsBase + 4 * accounts) {
        const std::uint64_t account = (addr - accountsBase) / 4;
        label = "account " + std::to_string(account) + " (zipf rank " +
                std::to_string(zipf.rankOf(account)) + ")";
        return true;
    }
    return false;
}

} // namespace getm
