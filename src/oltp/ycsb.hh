/**
 * @file
 * YCSB-style zipfian key-value workload (beyond the paper).
 *
 * Each thread runs one transaction of `ops` operations over a
 * scrambled-zipfian key space (common/zipf.hh), with a configurable
 * read / read-modify-write / blind-write mix — the canonical OLTP
 * contention shape of DBx1000's YCSB generator and He & Yu's GPU OLTP
 * study, at skews the paper's Table III kernels never reach.
 *
 * Every record is 8 bytes: a *value* cell and a *tag* cell.
 *
 *   read   loads the value cell (read-set entry, no mutation);
 *   RMW    adds a per-op amount to the value cell;
 *   write  blind-stores the writer's thread id + 1 to the tag cell.
 *
 * The mix is chosen so verify() is exact without replaying any order:
 * RMW amounts are commutative, so each value cell must equal its
 * initial value plus the sum of all amounts targeting it; a tag cell
 * must hold either 0 or one of the ids that blind-wrote that key. The
 * per-thread operation list is precomputed host-side (keys within a
 * transaction are distinct, so a transaction never self-conflicts),
 * which keeps the kernel a straight-line unrolled loop of skip-style
 * branches — and keeps generation deterministic in (seed, scale,
 * params) alone.
 */

#ifndef GETM_OLTP_YCSB_HH
#define GETM_OLTP_YCSB_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/zipf.hh"
#include "workloads/workload.hh"

namespace getm {

/** Resolved YCSB parameters (registry defaults in workloads/registry.cc). */
struct YcsbParams
{
    double theta = 0.9;       ///< Zipfian skew; 0 = uniform.
    double keys = 4000000;    ///< Key-space size at scale 1.0.
    unsigned opsPerTx = 4;    ///< Operations per transaction (1..8).
    double readPct = 50;      ///< Percent of ops that read.
    double rmwPct = 40;       ///< Percent that RMW (rest blind-write).
};

/** Zipfian KV benchmark with per-key checksum invariants. */
class YcsbWorkload : public Workload
{
  public:
    YcsbWorkload(const YcsbParams &params, double scale,
                 std::uint64_t seed, std::string token = "");

    BenchId id() const override { return BenchId::Ycsb; }
    std::string name() const override { return specToken; }
    void setup(GpuSystem &gpu, bool lock_variant) override;
    std::uint64_t numThreads() const override { return threads; }
    bool verify(GpuSystem &gpu, std::string &why) const override;
    bool addrInfo(Addr addr, std::string &label) const override;

    std::uint64_t numKeys() const { return keys; }
    /** The key holding zipfian popularity rank @p rank. */
    std::uint64_t keyOfRank(std::uint64_t rank) const
    {
        return zipf.scramble(rank);
    }

  private:
    enum OpKind : std::uint32_t { OpRead = 0, OpRmw = 1, OpWrite = 2 };

    struct Op
    {
        std::uint32_t key;
        std::uint32_t kind;
        std::uint32_t amount; ///< RMW delta, or tag value for writes.
    };

    YcsbParams params;
    std::string specToken;
    std::uint64_t threads;
    std::uint64_t keys;
    std::uint64_t seed;
    ScrambledZipfian zipf;

    std::vector<Op> ops; ///< threads * opsPerTx records, host-generated.
    /** Exact expected value-cell delta per touched key. */
    std::unordered_map<std::uint32_t, std::uint32_t> expectedDelta;
    /** Admissible tag values (thread id + 1) per blind-written key. */
    std::unordered_map<std::uint32_t,
                       std::unordered_set<std::uint32_t>> writers;

    Addr recordsBase = 0;
    Addr locksBase = 0;
    Addr opsBase = 0;

    static constexpr std::uint32_t initialValue = 1000;
};

} // namespace getm

#endif // GETM_OLTP_YCSB_HH
