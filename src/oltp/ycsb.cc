#include "oltp/ycsb.hh"

#include "common/rng.hh"
#include "workloads/lock_utils.hh"

namespace getm {

YcsbWorkload::YcsbWorkload(const YcsbParams &params_, double scale,
                           std::uint64_t seed_, std::string token)
    : params(params_),
      specToken(token.empty() ? benchName(BenchId::Ycsb)
                              : std::move(token)),
      threads(scaledThreads(23040.0, scale)),
      keys(scaledCount("YCSB keys", params_.keys, scale, 64)),
      seed(seed_), zipf(keys, params_.theta, seed_)
{
    // Generate the whole operation stream up front: verification needs
    // the exact multiset of ops, and doing it here keeps setup() free
    // of stochastic work.
    Rng rng(seed);
    ops.reserve(threads * params.opsPerTx);
    std::vector<std::uint32_t> tx_keys(params.opsPerTx);
    for (std::uint64_t t = 0; t < threads; ++t) {
        for (unsigned i = 0; i < params.opsPerTx; ++i) {
            // Keys within one transaction are distinct so a transaction
            // never conflicts with itself. Bounded redraws, then a
            // deterministic linear probe for pathological skews.
            std::uint64_t key = zipf.next(rng);
            const auto taken = [&](std::uint64_t k) {
                for (unsigned j = 0; j < i; ++j)
                    if (tx_keys[j] == k)
                        return true;
                return false;
            };
            for (unsigned redraw = 0; redraw < 16 && taken(key);
                 ++redraw)
                key = zipf.next(rng);
            while (taken(key))
                key = (key + 1) % keys;
            tx_keys[i] = static_cast<std::uint32_t>(key);

            Op op;
            op.key = tx_keys[i];
            const double u = rng.uniform() * 100.0;
            if (u < params.readPct) {
                op.kind = OpRead;
                op.amount = 0;
            } else if (u < params.readPct + params.rmwPct) {
                op.kind = OpRmw;
                op.amount =
                    static_cast<std::uint32_t>(rng.range(1, 100));
                expectedDelta[op.key] += op.amount;
            } else {
                op.kind = OpWrite;
                op.amount = static_cast<std::uint32_t>(t + 1);
                writers[op.key].insert(op.amount);
            }
            ops.push_back(op);
        }
    }
}

void
YcsbWorkload::setup(GpuSystem &gpu, bool lock_variant)
{
    recordsBase = gpu.memory().allocate(8 * keys);
    locksBase = lock_variant ? gpu.memory().allocate(4 * keys) : 0;
    const std::uint64_t op_bytes = 12;
    opsBase = gpu.memory().allocate(op_bytes * ops.size());

    for (std::uint64_t k = 0; k < keys; ++k)
        gpu.memory().write(recordsBase + 8 * k, initialValue);
    // Tag cells start at the backing store's 0.
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Addr at = opsBase + op_bytes * i;
        gpu.memory().write(at, ops[i].key);
        gpu.memory().write(at + 4, ops[i].kind);
        gpu.memory().write(at + 8, ops[i].amount);
    }

    KernelBuilder kb(specToken + (lock_variant ? ".lock" : ".tm"));
    const unsigned n = params.opsPerTx;
    const Reg tid(1), base(2), v(3), t(4), la(5);
    const Reg t0(6), t1(7), t2(8);
    const auto addrReg = [](unsigned i) { return Reg(10 + i); };
    const auto kindReg = [](unsigned i) { return Reg(20 + i); };
    const auto amtReg = [](unsigned i) { return Reg(30 + i); };
    const auto keyReg = [](unsigned i) { return Reg(40 + i); };

    kb.readSpecial(tid, SpecialReg::ThreadId);
    kb.muli(base, tid, static_cast<std::int64_t>(op_bytes * n));
    kb.addi(base, base, static_cast<std::int64_t>(opsBase));
    // Load the transaction's private op list before touching shared
    // state, so the transactional footprint is the records alone.
    for (unsigned i = 0; i < n; ++i) {
        kb.load(keyReg(i), base, static_cast<std::int64_t>(op_bytes * i));
        kb.load(kindReg(i), base,
                static_cast<std::int64_t>(op_bytes * i + 4));
        kb.load(amtReg(i), base,
                static_cast<std::int64_t>(op_bytes * i + 8));
        kb.shli(addrReg(i), keyReg(i), 3);
        kb.addi(addrReg(i), addrReg(i),
                static_cast<std::int64_t>(recordsBase));
    }

    // One skip-style branch per (op, kind): target == reconvergence
    // point, the same single-level divergence idiom as BH/HT.
    const auto emitOps = [&](bool locked) {
        for (unsigned i = 0; i < n; ++i) {
            {
                kb.seqi(t, kindReg(i), OpRmw);
                auto skip = kb.newLabel();
                kb.beqz(t, skip, skip);
                if (locked) {
                    kb.shli(la, keyReg(i), 2);
                    kb.addi(la, la, static_cast<std::int64_t>(locksBase));
                    emitOneLockCritical(kb, la, t0, t1, t2, [&] {
                        kb.load(v, addrReg(i), 0, MemBypassL1);
                        kb.add(v, v, amtReg(i));
                        kb.store(addrReg(i), v, 0, MemBypassL1);
                    });
                } else {
                    kb.load(v, addrReg(i));
                    kb.add(v, v, amtReg(i));
                    kb.store(addrReg(i), v);
                }
                kb.bind(skip);
            }
            {
                kb.seqi(t, kindReg(i), OpRead);
                auto skip = kb.newLabel();
                kb.beqz(t, skip, skip);
                kb.load(v, addrReg(i), 0,
                        locked ? MemBypassL1 : MemNone);
                kb.bind(skip);
            }
            {
                kb.seqi(t, kindReg(i), OpWrite);
                auto skip = kb.newLabel();
                kb.beqz(t, skip, skip);
                // Blind write: a 4-byte store is atomic, so the lock
                // variant needs no lock for it.
                kb.store(addrReg(i), amtReg(i), 4,
                         locked ? MemBypassL1 : MemNone);
                kb.bind(skip);
            }
        }
    };

    if (lock_variant) {
        emitOps(true);
    } else {
        kb.txBegin();
        emitOps(false);
        kb.txCommit();
    }
    kb.exit();
    builtKernel = kb.build();
}

bool
YcsbWorkload::verify(GpuSystem &gpu, std::string &why) const
{
    for (std::uint64_t k = 0; k < keys; ++k) {
        const std::uint32_t value =
            gpu.memory().read(recordsBase + 8 * k);
        const std::uint32_t tag =
            gpu.memory().read(recordsBase + 8 * k + 4);
        const auto key = static_cast<std::uint32_t>(k);

        std::uint32_t expect = initialValue;
        if (const auto it = expectedDelta.find(key);
            it != expectedDelta.end())
            expect += it->second; // uint32 wrap matches the kernel's.
        if (value != expect) {
            why = "key " + std::to_string(k) + " value " +
                  std::to_string(value) + " != expected " +
                  std::to_string(expect) + " (lost or stray update)";
            return false;
        }

        const auto wit = writers.find(key);
        if (wit == writers.end()) {
            if (tag != 0) {
                why = "key " + std::to_string(k) +
                      " tag written by nobody: " + std::to_string(tag);
                return false;
            }
        } else if (!wit->second.count(tag)) {
            why = "key " + std::to_string(k) + " tag " +
                  std::to_string(tag) +
                  " is not one of its blind writers";
            return false;
        }
    }
    return true;
}

bool
YcsbWorkload::addrInfo(Addr addr, std::string &label) const
{
    if (addr < recordsBase || addr >= recordsBase + 8 * keys)
        return false;
    const std::uint64_t key = (addr - recordsBase) / 8;
    label = "key " + std::to_string(key) + " (zipf rank " +
            std::to_string(zipf.rankOf(key)) + ")";
    return true;
}

} // namespace getm
