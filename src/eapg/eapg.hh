/**
 * @file
 * Idealized EarlyAbort/Pause-n-Go baseline (paper Sec. VI-A; proposal of
 * Chen & Peng [26]).
 *
 * EAPG extends WarpTM with broadcast updates about currently committing
 * transactions: when a validation with writes begins at an LLC partition,
 * the writer's conflict set is broadcast to every SIMT core. Cores
 * early-abort running transactions whose read sets intersect it, and
 * pause transactions about to enter validation until the conflicting
 * commit finishes.
 *
 * Following the paper's idealization: broadcasts are charged as 64-bit
 * messages on the crossbar regardless of content, the conflict check at
 * the core is instantaneous and precise, and reference-count table
 * updates cost one cycle for the whole log. The broadcasts still
 * traverse the down crossbar, whose congestion is the mechanism's real
 * cost (Sec. VI-B).
 */

#ifndef GETM_EAPG_EAPG_HH
#define GETM_EAPG_EAPG_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "warptm/wtm_core_tm.hh"
#include "warptm/wtm_partition.hh"

namespace getm {

/** EAPG partition unit: WarpTM plus conflict-set/done broadcasts. */
class EapgPartitionUnit : public WtmPartitionUnit
{
  public:
    EapgPartitionUnit(PartitionContext &context,
                      const WtmPartitionConfig &config, std::string name)
        : WtmPartitionUnit(context, config, std::move(name)),
          stSignatureBroadcasts(
              ctx.stats().addCounter("eapg_signature_broadcasts")),
          stDoneBroadcasts(ctx.stats().addCounter("eapg_done_broadcasts"))
    {
    }

  protected:
    void onValidationStart(const MemMsg &slice, Cycle now) override;
    void onDecisionApplied(std::uint64_t tx_id, Cycle now) override;

  private:
    // Hot-path stat handles: one add per broadcast fan-out.
    StatSet::Counter &stSignatureBroadcasts;
    StatSet::Counter &stDoneBroadcasts;
};

/** EAPG core engine: WarpTM plus early abort and pause-n-go. */
class EapgCoreTm : public WtmCoreTm
{
  public:
    EapgCoreTm(SimtCore &core_, std::shared_ptr<WtmShared> shared_)
        : WtmCoreTm(core_, std::move(shared_), WtmMode::LazyLazy),
          stEarlyAborts(core_.stats().addCounter("eapg_early_aborts")),
          stPauses(core_.stats().addCounter("eapg_pauses"))
    {
    }

    void onBroadcast(const MemMsg &msg) override;
    void ckptSave(ckpt::Writer &ar) override;
    void ckptLoad(ckpt::Reader &ar) override;

  protected:
    bool maybePause(Warp &warp) override;

  private:
    /** Write sets of remote commits currently in progress. */
    std::unordered_map<std::uint64_t, std::unordered_set<Addr>> remote;

    /** Warp slots paused at their commit point. */
    std::vector<std::uint32_t> paused;

    // Hot-path stat handles: one add per early abort / pause.
    StatSet::Counter &stEarlyAborts;
    StatSet::Counter &stPauses;
};

} // namespace getm

#endif // GETM_EAPG_EAPG_HH
