#include "eapg/eapg.hh"

#include <algorithm>
#include <bit>
#include "ckpt/serial.hh"

// Checker/fault-injection coverage: EAPG adds only the broadcast
// machinery below on top of WarpTM-LL; loads, validation, and commit
// applies all run through the inherited WtmPartitionUnit /
// WtmCoreTm paths, whose CheckSink hooks and FaultInjector sites
// (commit-stale-read, corrupt-commit, drop-commit-write) therefore
// cover EAPG with no additional instrumentation here.

namespace getm {

void
EapgPartitionUnit::onValidationStart(const MemMsg &slice, Cycle now)
{
    // Broadcast the writer's conflict set to every core. The message is
    // charged as an idealized 64-bit flit (paper Sec. VI-A); the core's
    // conflict check against it is precise and instantaneous.
    MemMsg proto;
    proto.kind = MsgKind::EapgSignature;
    proto.partition = ctx.partitionId();
    proto.txId = slice.txId;
    // Carry the committing writer's id so early-aborted readers can
    // name their aborter (genealogy only; msg.bytes stays the idealized
    // 64-bit flit, so the NoC model is untouched).
    proto.wid = slice.wid;
    for (const LaneOp &op : slice.ops)
        if (op.aux)
            proto.ops.push_back({0, op.addr, 0, 0});
    if (proto.ops.empty())
        return;
    proto.bytes = 8; // idealized 64-bit message
    for (CoreId core = 0; core < ctx.numCores(); ++core) {
        MemMsg bcast = proto;
        bcast.core = core;
        ctx.scheduleToCore(std::move(bcast), now + 1);
    }
    stSignatureBroadcasts.add(ctx.numCores());
}

void
EapgPartitionUnit::onDecisionApplied(std::uint64_t tx_id, Cycle now)
{
    for (CoreId core = 0; core < ctx.numCores(); ++core) {
        MemMsg bcast;
        bcast.kind = MsgKind::EapgCommitDone;
        bcast.core = core;
        bcast.partition = ctx.partitionId();
        bcast.txId = tx_id;
        bcast.bytes = 8;
        ctx.scheduleToCore(std::move(bcast), now + 1);
    }
    stDoneBroadcasts.add(ctx.numCores());
}

void
EapgCoreTm::onBroadcast(const MemMsg &msg)
{
    if (msg.kind == MsgKind::EapgCommitDone) {
        remote.erase(msg.txId);
        // Retry paused commits whose conflicts may have cleared.
        std::vector<std::uint32_t> retry;
        retry.swap(paused);
        for (std::uint32_t slot : retry) {
            Warp &warp = core.allWarps()[slot];
            if (!warp.inTx || warp.commitIssued)
                continue;
            if (maybePause(warp))
                continue; // still conflicting; re-queued
            startValidation(warp);
        }
        return;
    }

    // Conflict-set broadcast: early-abort running (not yet committing)
    // transactions that read a location the writer is committing.
    auto &write_set = remote[msg.txId];
    for (const LaneOp &op : msg.ops)
        write_set.insert(op.addr);
    for (Warp &warp : core.allWarps()) {
        if (!warp.inTx || warp.commitPointFired)
            continue;
        const int txi = warp.transactionIndex();
        if (txi < 0)
            continue;
        LaneMask hit = 0;
        Addr conflict = invalidAddr;
        for (LaneId lane = 0; lane < warpSize; ++lane) {
            if (!(warp.stack[txi].mask & (1u << lane)))
                continue;
            for (const LogEntry &entry : warp.logs[lane].readLog()) {
                if (write_set.count(entry.addr)) {
                    hit |= 1u << lane;
                    if (conflict == invalidAddr)
                        conflict = core.granuleOf(entry.addr);
                    if (ObsSink *obs = core.observer())
                        obs->conflictEvent(
                            AbortReason::EarlyAbort,
                            core.granuleOf(entry.addr),
                            core.addressMap().partitionOf(entry.addr),
                            core.now());
                    if (ObsSink *tracer = core.tracer())
                        tracer->txConflict(
                            warp.gwid, msg.wid, AbortReason::EarlyAbort,
                            core.granuleOf(entry.addr),
                            core.addressMap().partitionOf(entry.addr),
                            core.now());
                    break;
                }
            }
        }
        if (hit) {
            stEarlyAborts.add(
                static_cast<std::uint64_t>(std::popcount(hit)));
            core.abortTxLanes(warp, hit, warp.warpts,
                              AbortReason::EarlyAbort, conflict);
        }
    }
}

bool
EapgCoreTm::maybePause(Warp &warp)
{
    bool conflict = false;
    for (LaneId lane = 0; lane < warpSize && !conflict; ++lane) {
        const LaneMask bit = 1u << lane;
        if (!((warp.wtmValidating | warp.wtmSilent) & bit))
            continue;
        for (const auto &[tx_id, write_set] : remote) {
            for (const LogEntry &entry : warp.logs[lane].readLog())
                if (write_set.count(entry.addr)) {
                    conflict = true;
                    break;
                }
            if (conflict)
                break;
            for (const LogEntry &entry : warp.logs[lane].writeLog())
                if (write_set.count(entry.addr)) {
                    conflict = true;
                    break;
                }
            if (conflict)
                break;
        }
    }
    if (!conflict)
        return false;
    if (std::find(paused.begin(), paused.end(), warp.slot) == paused.end())
        paused.push_back(warp.slot);
    stPauses.add();
    core.changeState(warp, WarpState::CommitWait);
    return true;
}

void
EapgCoreTm::ckptSave(ckpt::Writer &ar)
{
    WtmCoreTm::ckptSave(ar);
    ar(remote, paused);
}

void
EapgCoreTm::ckptLoad(ckpt::Reader &ar)
{
    WtmCoreTm::ckptLoad(ar);
    ar(remote, paused);
}

} // namespace getm
