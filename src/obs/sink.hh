/**
 * @file
 * The common observability sink interface.
 *
 * Cores and partition protocol units report abort, conflict, and stall
 * events here; the concrete Observability implementation aggregates
 * them (reason totals, hot-address profiles, occupancy tracking). The
 * sink may be absent (nullptr) anywhere it is consumed, so reporting
 * sites guard with `if (sink)` and reporting is zero-cost when
 * observability is disabled.
 *
 * Three event flavours:
 *  - abortEvent():    lanes of a transaction aborted for a typed reason.
 *    Reported exactly once per aborted lane (by SimtCore::abortTxLanes),
 *    so summing abort events by reason reproduces the run's total abort
 *    counter exactly.
 *  - conflictEvent(): an address was implicated in a conflict. Reported
 *    wherever the conflicting address is known (possibly a different
 *    site than the abort accounting, e.g. partition-side validation).
 *    Feeds the hot-address profiler.
 *  - stallEvent()/stallRelease(): a request entered/left a stall buffer.
 *
 * Beyond the three aggregate flavours, the interface carries a family
 * of default-bodied per-transaction lifecycle events (txAttemptBegin,
 * txPhase, txAccess*, txStall*, txConflict, txAbort, txCommitHandoff,
 * txValidation, txRetire) consumed by the TxTracer (obs/tx_tracer.hh).
 * They are reported through a *separate* trace pointer that stays null
 * unless tracing is enabled, so the disabled path costs one untaken
 * null check per site and the Observability hub never sees them.
 */

#ifndef GETM_OBS_SINK_HH
#define GETM_OBS_SINK_HH

#include "common/types.hh"
#include "obs/abort_reason.hh"

namespace getm {

/**
 * Coarse transaction lifecycle phase, mapped from the warp scheduler
 * state by the reporting core. The tracer charges wall-clock slices of
 * a transaction attempt to exactly one phase at a time (with an
 * overlay for stall-buffer dwell), so the per-phase cycle accounting
 * telescopes to the attempt's lifetime with no gaps or overlaps.
 */
enum class TxPhase : std::uint8_t
{
    Exec,     ///< Ready/PipelineWait: issuing transactional work.
    Mem,      ///< MemWait: NoC round-trips outstanding.
    Validate, ///< CommitWait: commit/validation sequence in flight.
    Backoff,  ///< BackoffWait/ThrottleWait: waiting to retry.
};

/** Receiver for attribution events from every protocol. */
class ObsSink
{
  public:
    virtual ~ObsSink() = default;

    /**
     * @p lanes lanes aborted for @p reason. @p addr is the conflicting
     * granule when known (invalidAddr otherwise); @p partition is only
     * meaningful when @p addr is valid.
     */
    virtual void abortEvent(AbortReason reason, Addr addr,
                            PartitionId partition, unsigned lanes,
                            Cycle now) = 0;

    /** Address @p addr was implicated in a conflict of kind @p reason. */
    virtual void conflictEvent(AbortReason reason, Addr addr,
                               PartitionId partition, Cycle now) = 0;

    /**
     * A request was queued in a stall buffer on @p addr; @p depth is the
     * queue depth on that address after insertion (Fig. 16 metric).
     */
    virtual void stallEvent(AbortReason reason, Addr addr,
                            PartitionId partition, unsigned depth,
                            Cycle now) = 0;

    /** A previously queued request left the stall buffer. */
    virtual void stallRelease(PartitionId partition, Cycle now) = 0;

    // ------------------------------------------------------------------
    // Per-transaction lifecycle events (TxTracer). Default-bodied so
    // the aggregate Observability hub and test mocks implementing only
    // the pure virtuals above keep compiling unchanged.
    // ------------------------------------------------------------------

    /**
     * Warp @p gwid on @p core / @p slot starts transaction attempt
     * @p attempt (0 = first; retries re-enter here from the retire
     * path with the same cycle as the preceding txRetire, so attempt
     * accounting telescopes across retries).
     */
    virtual void
    txAttemptBegin(GlobalWarpId gwid, CoreId core, std::uint32_t slot,
                   unsigned attempt, unsigned lanes, Cycle now)
    {
        (void)gwid; (void)core; (void)slot;
        (void)attempt; (void)lanes; (void)now;
    }

    /** The warp's scheduler state changed; charge up to @p now. */
    virtual void
    txPhase(GlobalWarpId gwid, TxPhase phase, Cycle now)
    {
        (void)gwid; (void)phase; (void)now;
    }

    /** A transactional access for @p granule left the core. */
    virtual void
    txAccessIssue(GlobalWarpId gwid, Addr granule, bool store, Cycle now)
    {
        (void)gwid; (void)granule; (void)store; (void)now;
    }

    /**
     * The owning partition decided the access: @p arrival is when the
     * request reached the unit, @p ready when the response (grant or
     * abort) was scheduled back to the core.
     */
    virtual void
    txAccessDecision(GlobalWarpId gwid, Addr granule,
                     PartitionId partition, bool ok, Cycle arrival,
                     Cycle ready)
    {
        (void)gwid; (void)granule; (void)partition;
        (void)ok; (void)arrival; (void)ready;
    }

    /** The response for @p granule arrived back at the core. */
    virtual void
    txAccessResponse(GlobalWarpId gwid, Addr granule, Cycle now)
    {
        (void)gwid; (void)granule; (void)now;
    }

    /** One of the warp's accesses was parked in a stall buffer. */
    virtual void
    txStallEnter(GlobalWarpId gwid, Addr granule, PartitionId partition,
                 Cycle now)
    {
        (void)gwid; (void)granule; (void)partition; (void)now;
    }

    /** A parked access left the stall buffer (queued at @p enqueued). */
    virtual void
    txStallExit(GlobalWarpId gwid, Addr granule, PartitionId partition,
                Cycle enqueued, Cycle now)
    {
        (void)gwid; (void)granule; (void)partition;
        (void)enqueued; (void)now;
    }

    /**
     * Genealogy: @p victim is about to be aborted because of
     * @p aborter (invalidWarp when the killer is unknown, e.g.
     * value-based validation). Reported at the conflict site; the
     * tracer merges it with the core-side txAbort that follows.
     */
    virtual void
    txConflict(GlobalWarpId victim, GlobalWarpId aborter,
               AbortReason reason, Addr addr, PartitionId partition,
               Cycle now)
    {
        (void)victim; (void)aborter; (void)reason;
        (void)addr; (void)partition; (void)now;
    }

    /** Core-side abort accounting point (SimtCore::abortTxLanes). */
    virtual void
    txAbort(GlobalWarpId gwid, AbortReason reason, Addr addr,
            unsigned lanes, Cycle now)
    {
        (void)gwid; (void)reason; (void)addr; (void)lanes; (void)now;
    }

    /** The warp reached its commit point and handed off to the protocol. */
    virtual void
    txCommitHandoff(GlobalWarpId gwid, Cycle now)
    {
        (void)gwid; (void)now;
    }

    /** A validation unit was busy on @p gwid over [@p start, @p end). */
    virtual void
    txValidation(GlobalWarpId gwid, PartitionId partition, bool pass,
                 Cycle start, Cycle end)
    {
        (void)gwid; (void)partition; (void)pass; (void)start; (void)end;
    }

    /**
     * The attempt retired: @p committedLanes lanes committed and, when
     * @p willRetry, the surviving lanes re-enter via txAttemptBegin at
     * the same cycle. A retire with willRetry == false closes the
     * transaction.
     */
    virtual void
    txRetire(GlobalWarpId gwid, unsigned committedLanes, bool willRetry,
             Cycle now)
    {
        (void)gwid; (void)committedLanes; (void)willRetry; (void)now;
    }
};

} // namespace getm

#endif // GETM_OBS_SINK_HH
