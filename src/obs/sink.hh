/**
 * @file
 * The common observability sink interface.
 *
 * Cores and partition protocol units report abort, conflict, and stall
 * events here; the concrete Observability implementation aggregates
 * them (reason totals, hot-address profiles, occupancy tracking). The
 * sink may be absent (nullptr) anywhere it is consumed, so reporting
 * sites guard with `if (sink)` and reporting is zero-cost when
 * observability is disabled.
 *
 * Three event flavours:
 *  - abortEvent():    lanes of a transaction aborted for a typed reason.
 *    Reported exactly once per aborted lane (by SimtCore::abortTxLanes),
 *    so summing abort events by reason reproduces the run's total abort
 *    counter exactly.
 *  - conflictEvent(): an address was implicated in a conflict. Reported
 *    wherever the conflicting address is known (possibly a different
 *    site than the abort accounting, e.g. partition-side validation).
 *    Feeds the hot-address profiler.
 *  - stallEvent()/stallRelease(): a request entered/left a stall buffer.
 */

#ifndef GETM_OBS_SINK_HH
#define GETM_OBS_SINK_HH

#include "common/types.hh"
#include "obs/abort_reason.hh"

namespace getm {

/** Receiver for attribution events from every protocol. */
class ObsSink
{
  public:
    virtual ~ObsSink() = default;

    /**
     * @p lanes lanes aborted for @p reason. @p addr is the conflicting
     * granule when known (invalidAddr otherwise); @p partition is only
     * meaningful when @p addr is valid.
     */
    virtual void abortEvent(AbortReason reason, Addr addr,
                            PartitionId partition, unsigned lanes,
                            Cycle now) = 0;

    /** Address @p addr was implicated in a conflict of kind @p reason. */
    virtual void conflictEvent(AbortReason reason, Addr addr,
                               PartitionId partition, Cycle now) = 0;

    /**
     * A request was queued in a stall buffer on @p addr; @p depth is the
     * queue depth on that address after insertion (Fig. 16 metric).
     */
    virtual void stallEvent(AbortReason reason, Addr addr,
                            PartitionId partition, unsigned depth,
                            Cycle now) = 0;

    /** A previously queued request left the stall buffer. */
    virtual void stallRelease(PartitionId partition, Cycle now) = 0;
};

} // namespace getm

#endif // GETM_OBS_SINK_HH
