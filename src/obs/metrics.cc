#include "obs/metrics.hh"

#include <cstdio>

#include "common/json.hh"

namespace getm {

namespace {

/** 0x%llx without touching the locale. */
std::string
hexAddr(Addr addr)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

void
emitReasonTable(JsonWriter &w, std::string_view name,
                const std::array<std::uint64_t, numAbortReasons> &table)
{
    w.key(name).beginObject();
    for (unsigned i = 0; i < numAbortReasons; ++i)
        w.member(abortReasonName(static_cast<AbortReason>(i)), table[i]);
    w.endObject();
}

void
emitStats(JsonWriter &w, const StatSet &stats)
{
    w.key("stats").beginObject();

    // Untouched slots are handles registered up front that never
    // fired; skipping them keeps the export byte-identical to the
    // string-keyed era, where such names simply did not exist.
    w.key("counters").beginObject();
    for (const auto &[name, slot] : stats.allCounters()) {
        if (!slot.touched)
            continue;
        w.member(name, slot.value);
    }
    w.endObject();

    w.key("maxima").beginObject();
    for (const auto &[name, slot] : stats.allMaxima()) {
        if (!slot.touched)
            continue;
        w.member(name, slot.value);
    }
    w.endObject();

    w.key("averages").beginObject();
    for (const auto &[name, avg] : stats.allAverages()) {
        if (avg.count == 0)
            continue;
        w.key(name).beginObject();
        w.member("mean", avg.mean());
        w.member("count", avg.count);
        w.endObject();
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, hist] : stats.allHistograms()) {
        if (hist.count == 0)
            continue;
        w.key(name).beginObject();
        w.member("count", hist.count);
        w.member("sum", hist.sum);
        w.member("min", hist.count ? hist.minValue : 0);
        w.member("max", hist.maxValue);
        w.member("mean", hist.mean());
        w.key("buckets").beginArray();
        for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
            if (!hist.buckets[i])
                continue;
            w.beginObject();
            w.member("lo",
                     HistogramData::bucketLow(static_cast<unsigned>(i)));
            w.member("hi",
                     HistogramData::bucketHigh(static_cast<unsigned>(i)));
            w.member("count", hist.buckets[i]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
}

void
emitHotAddrs(JsonWriter &w, const ObsReport &obs)
{
    w.key("hot_addresses").beginArray();
    for (const HotAddrRow &row : obs.hotAddrs) {
        w.beginObject();
        w.member("addr", row.addr);
        w.member("addr_hex", hexAddr(row.addr));
        w.member("partition", static_cast<std::uint64_t>(row.partition));
        w.member("total", row.total);
        w.member("mean_waiters", row.meanWaiters());
        if (!row.label.empty())
            w.member("label", row.label);
        w.key("by_reason").beginObject();
        for (unsigned i = 0; i < numAbortReasons; ++i)
            if (row.byReason[i])
                w.member(abortReasonName(static_cast<AbortReason>(i)),
                         row.byReason[i]);
        w.endObject();
        w.endObject();
    }
    w.endArray();
}

void
emitTimeseries(JsonWriter &w, const SampleSeries &samples)
{
    w.key("timeseries").beginObject();
    w.member("interval", samples.interval);
    w.member("num_samples",
             static_cast<std::uint64_t>(samples.numSamples()));
    w.key("cycles").beginArray();
    for (Cycle c : samples.cycles)
        w.value(static_cast<std::uint64_t>(c));
    w.endArray();
    w.key("series").beginObject();
    for (std::size_t i = 0; i < samples.names.size(); ++i) {
        w.key(samples.names[i]).beginArray();
        for (double v : samples.values[i])
            w.value(v);
        w.endArray();
    }
    w.endObject();
    w.endObject();
}

} // namespace

std::string
metricsToJson(const MetricsMeta &meta, const StatSet &stats,
              const ObsReport &obs)
{
    JsonWriter w;
    w.beginObject();
    w.member("schema", metricsSchemaName);
    w.member("version", metricsSchemaVersion);

    w.key("meta").beginObject();
    w.member("bench", meta.bench);
    w.member("protocol", meta.protocol);
    w.member("scale", meta.scale);
    w.member("seed", meta.seed);
    w.member("threads", meta.threads);
    w.member("verified", meta.verified);
    w.endObject();

    w.key("config").beginObject();
    for (const auto &[k, v] : meta.config)
        w.member(k, v);
    w.endObject();

    w.key("run").beginObject();
    w.member("cycles", meta.cycles);
    w.member("commits", meta.commits);
    w.member("aborts", meta.aborts);
    w.member("tx_exec_cycles", meta.txExecCycles);
    w.member("tx_wait_cycles", meta.txWaitCycles);
    w.member("xbar_flits", meta.xbarFlits);
    w.member("rollovers", meta.rollovers);
    w.member("max_logical_ts", meta.maxLogicalTs);
    w.member("aborts_per_1k_commits",
             meta.commits ? 1000.0 * static_cast<double>(meta.aborts) /
                                static_cast<double>(meta.commits)
                          : 0.0);
    w.endObject();

    emitReasonTable(w, "aborts_by_reason", obs.abortLanesByReason);
    emitReasonTable(w, "stalls_by_reason", obs.stallsByReason);

    w.key("stall").beginObject();
    w.member("peak_occupancy",
             static_cast<std::uint64_t>(obs.stallPeakOccupancy));
    w.member("mean_waiters_per_addr", obs.meanStallWaiters());
    w.member("depth_samples", obs.stallDepthCount);
    w.endObject();

    if (!meta.checkViolations.empty()) {
        std::uint64_t total = 0;
        for (const auto &[kind, count] : meta.checkViolations)
            total += count;
        w.key("check").beginObject();
        w.member("level", meta.checkLevel);
        w.member("total_violations", total);
        w.key("violations_by_kind").beginObject();
        for (const auto &[kind, count] : meta.checkViolations)
            w.member(kind, count);
        w.endObject();
        w.endObject();
    }

    // Like "check", the tx_trace section only exists when the tracer
    // ran, so untraced documents stay byte-identical to the pre-tracer
    // shape (modulo the version bump).
    if (obs.txTrace.enabled)
        w.key("tx_trace").rawValue(txTraceSectionJson(obs.txTrace));

    w.member("distinct_conflict_addrs", obs.distinctConflictAddrs);
    emitHotAddrs(w, obs);
    emitTimeseries(w, obs.samples);
    emitStats(w, stats);

    w.endObject();
    return w.take();
}

std::string
failureToJson(const MetricsMeta &meta, const MetricsFailure &failure)
{
    JsonWriter w;
    w.beginObject();
    w.member("schema", metricsSchemaName);
    w.member("version", metricsSchemaVersion);

    w.key("meta").beginObject();
    w.member("bench", meta.bench);
    w.member("protocol", meta.protocol);
    w.member("scale", meta.scale);
    w.member("seed", meta.seed);
    w.member("threads", meta.threads);
    w.member("verified", false);
    w.endObject();

    w.key("config").beginObject();
    for (const auto &[k, v] : meta.config)
        w.member(k, v);
    w.endObject();

    w.key("failure").beginObject();
    w.member("status", failure.status);
    w.member("kind", failure.kind);
    w.member("message", failure.message);
    w.member("attempts", failure.attempts);
    if (!failure.diagnosticJson.empty())
        w.key("diagnostic").rawValue(failure.diagnosticJson);
    w.endObject();

    w.endObject();
    return w.take();
}

namespace {

bool
writeDocument(const std::string &path, const std::string &doc,
              std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        error = "cannot open " + path + " for writing";
        return false;
    }
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
        std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok)
        error = "short write to " + path;
    return ok;
}

} // namespace

bool
writeMetricsFile(const std::string &path, const MetricsMeta &meta,
                 const StatSet &stats, const ObsReport &obs,
                 std::string &error)
{
    return writeDocument(path, metricsToJson(meta, stats, obs), error);
}

bool
writeFailureFile(const std::string &path, const MetricsMeta &meta,
                 const MetricsFailure &failure, std::string &error)
{
    return writeDocument(path, failureToJson(meta, failure), error);
}

} // namespace getm
