/**
 * @file
 * Shared abort/stall-reason taxonomy for all TM protocols.
 *
 * Every abort and every stall-buffer entry in the simulator is tagged
 * with one of these typed reasons plus (when known) the conflicting
 * address, and reported through the common ObsSink interface. Using a
 * single enum across GETM, WarpTM, and EAPG means exported metrics have
 * zero per-protocol stat-name drift: the same reason always serializes
 * to the same string.
 *
 * GETM reasons follow the validation-unit flowchart (paper Fig. 6):
 * timestamp-order conflicts split by hazard kind, stalls behind older
 * writers, stall-buffer overflow, and conflicts against Bloom-seeded
 * (approximate) metadata, which the paper calls false positives.
 */

#ifndef GETM_OBS_ABORT_REASON_HH
#define GETM_OBS_ABORT_REASON_HH

#include <cstdint>

namespace getm {

/** Why a transaction aborted (or a request stalled). */
enum class AbortReason : std::uint8_t
{
    None = 0,           ///< Not a conflict (success path).
    RawTs,              ///< Load saw a logically later write (wts > warpts).
    WarTs,              ///< Store saw a logically later read (rts > warpts).
    WawTs,              ///< Store saw a logically later write.
    LockedByWriter,     ///< Stalled behind an older writer's reservation.
    StallBufferFull,    ///< Would stall, but the stall buffer was full.
    BloomFalsePositive, ///< Timestamp conflict against Bloom-seeded
                        ///< (approximate, overestimated) metadata.
    IntraWarp,          ///< Conflict with a sibling lane of the same warp.
    Validation,         ///< Value-based validation failure (WarpTM-LL).
    EagerValidation,    ///< Idealized eager check failure (WarpTM-EL).
    EarlyAbort,         ///< EAPG conflict-set broadcast hit a read set.
    Rollover,           ///< GETM timestamp-rollover drain.
    Count               ///< Number of reasons (array sizing only).
};

/** Number of distinct reasons (excluding Count). */
constexpr unsigned numAbortReasons =
    static_cast<unsigned>(AbortReason::Count);

/** Stable machine-readable name ("WAR_TS", "ROLLOVER", ...). */
constexpr const char *
abortReasonName(AbortReason reason)
{
    switch (reason) {
      case AbortReason::None: return "NONE";
      case AbortReason::RawTs: return "RAW_TS";
      case AbortReason::WarTs: return "WAR_TS";
      case AbortReason::WawTs: return "WAW_TS";
      case AbortReason::LockedByWriter: return "LOCKED_BY_WRITER";
      case AbortReason::StallBufferFull: return "STALL_BUFFER_FULL";
      case AbortReason::BloomFalsePositive: return "BLOOM_FALSE_POSITIVE";
      case AbortReason::IntraWarp: return "INTRA_WARP";
      case AbortReason::Validation: return "VALIDATION_FAIL";
      case AbortReason::EagerValidation: return "EAGER_VALIDATION_FAIL";
      case AbortReason::EarlyAbort: return "EARLY_ABORT";
      case AbortReason::Rollover: return "ROLLOVER";
      case AbortReason::Count: break;
    }
    return "?";
}

} // namespace getm

#endif // GETM_OBS_ABORT_REASON_HH
