/**
 * @file
 * Cycle-sampled telemetry.
 *
 * A periodic sampler that records time-series of simulator gauges
 * (warp occupancy, tx-warp concurrency, stall-buffer fill, MSHR fill,
 * crossbar in-flight traffic, ...). Probes are registered as closures
 * so the sampler has no dependency on the structures it observes.
 *
 * The simulation loop skips idle cycles, so samples land on the first
 * simulated cycle at or after each interval boundary rather than on
 * exact multiples; each recorded row carries its actual cycle. An
 * optional emit hook mirrors every sample into Perfetto counter ("C")
 * tracks in the Timeline.
 */

#ifndef GETM_OBS_SAMPLER_HH
#define GETM_OBS_SAMPLER_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace getm {

/** Recorded telemetry: one column per probe, one row per sample. */
struct SampleSeries
{
    Cycle interval = 0;
    std::vector<std::string> names;       ///< Probe names (columns).
    std::vector<Cycle> cycles;            ///< Sample times (rows).
    std::vector<std::vector<double>> values; ///< [probe][row].

    std::size_t numSamples() const { return cycles.size(); }

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(interval, names, cycles, values);
    }
};

/** Periodic gauge sampler. */
class CycleSampler
{
  public:
    using Probe = std::function<double()>;
    /** (probe name, cycle, value) — e.g. a Timeline counter track. */
    using EmitFn = std::function<void(const std::string &, Cycle, double)>;

    /** Sampling period in cycles; 0 disables the sampler. */
    void
    setInterval(Cycle interval)
    {
        series.interval = interval;
        nextDue = 0;
    }

    Cycle interval() const { return series.interval; }
    bool enabled() const { return series.interval != 0; }

    /** Register a gauge; call before the first sample. */
    void
    addProbe(std::string name, Probe fn)
    {
        series.names.push_back(std::move(name));
        series.values.emplace_back();
        probes.push_back(std::move(fn));
    }

    /** Mirror samples into an external consumer (may be empty). */
    void setEmit(EmitFn fn) { emit = std::move(fn); }

    /**
     * First interval boundary strictly after @p now. With idle-cycle
     * skipping the simulation may jump several boundaries at once; the
     * sampler then takes a single sample and realigns here, so sample
     * spacing is always >= one interval. A zero @p interval (sampling
     * disabled) has no boundaries: never, not a division by zero.
     */
    static Cycle
    alignNext(Cycle now, Cycle interval)
    {
        if (interval == 0)
            return ~static_cast<Cycle>(0);
        return (now / interval + 1) * interval;
    }

    /** Cycle of the next due sample (~0 when disabled). */
    Cycle
    nextSampleCycle() const
    {
        return enabled() ? nextDue : ~static_cast<Cycle>(0);
    }

    /** Sample all probes if a boundary has been reached. */
    void
    maybeSample(Cycle now)
    {
        if (!enabled() || now < nextDue)
            return;
        sample(now);
        nextDue = alignNext(now, series.interval);
    }

    /** Unconditionally record one row at @p now. */
    void sample(Cycle now);

    /**
     * End-of-run flush: record the final partial window at @p now when
     * the run ended between boundaries (otherwise a run shorter than
     * one interval would export nothing past the cycle-0 row, and any
     * run would silently drop its tail). The final two samples may
     * therefore be closer than one interval apart.
     */
    void
    finalize(Cycle now)
    {
        if (!enabled())
            return;
        if (series.cycles.empty() || series.cycles.back() < now)
            sample(now);
    }

    const SampleSeries &data() const { return series; }

    /**
     * Checkpoint hook: the recorded series and the sampling schedule.
     * Probes and the emit hook are closures over live structures,
     * re-registered by GpuSystem's setup on both sides of a restore.
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(series, nextDue);
    }

  private:
    SampleSeries series;
    std::vector<Probe> probes;
    EmitFn emit;
    Cycle nextDue = 0;
};

} // namespace getm

#endif // GETM_OBS_SAMPLER_HH
