/**
 * @file
 * Structured metrics export.
 *
 * Serializes a complete run record — identity/provenance, headline run
 * numbers, the full statistics tree (counters, maxima, averages,
 * histograms), abort/stall reason breakdowns, the hot-address table,
 * and sampled time-series — into one versioned JSON document
 * ("schema": "getm-metrics"). The document is self-describing and
 * byte-stable for a given run, so downstream tooling
 * (tools/check_metrics.py, plotting scripts) can rely on its shape.
 *
 * The exporter is deliberately independent of the gpu layer: callers
 * flatten their configuration into MetricsMeta key/value provenance
 * rather than passing GpuConfig here.
 */

#ifndef GETM_OBS_METRICS_HH
#define GETM_OBS_METRICS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "obs/observability.hh"

namespace getm {

/** Schema identity stamped into every metrics document. */
inline constexpr const char *metricsSchemaName = "getm-metrics";
inline constexpr int metricsSchemaVersion = 1;

/** Run identity, headline results, and config provenance. */
struct MetricsMeta
{
    std::string bench;
    std::string protocol;
    double scale = 0.0;
    std::uint64_t seed = 0;
    std::uint64_t threads = 0;
    bool verified = false;

    // Headline run numbers (RunResult flattened by the caller).
    std::uint64_t cycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t txExecCycles = 0;
    std::uint64_t txWaitCycles = 0;
    std::uint64_t xbarFlits = 0;
    std::uint64_t rollovers = 0;
    std::uint64_t maxLogicalTs = 0;

    /** Config provenance: ordered key/value pairs (values pre-rendered). */
    std::vector<std::pair<std::string, std::string>> config;

    /**
     * Runtime-checker verdict, pre-rendered by the caller as
     * violation-kind → count rows (this layer stays independent of
     * src/check just as it is of src/gpu). Left empty on clean or
     * unchecked runs, in which case no "check" section is emitted and
     * the document stays byte-identical to a checker-off run.
     */
    std::vector<std::pair<std::string, std::uint64_t>> checkViolations;
    /** Checker level name ("read"/"serial"/"ref"); set with violations. */
    std::string checkLevel;
};

/** Render the full metrics document as a JSON string. */
std::string metricsToJson(const MetricsMeta &meta, const StatSet &stats,
                          const ObsReport &obs);

/**
 * Render and write the metrics document to @p path.
 * @return false (with @p error set) on I/O failure.
 */
bool writeMetricsFile(const std::string &path, const MetricsMeta &meta,
                      const StatSet &stats, const ObsReport &obs,
                      std::string &error);

} // namespace getm

#endif // GETM_OBS_METRICS_HH
