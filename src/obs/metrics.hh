/**
 * @file
 * Structured metrics export.
 *
 * Serializes a complete run record — identity/provenance, headline run
 * numbers, the full statistics tree (counters, maxima, averages,
 * histograms), abort/stall reason breakdowns, the hot-address table,
 * and sampled time-series — into one versioned JSON document
 * ("schema": "getm-metrics"). The document is self-describing and
 * byte-stable for a given run, so downstream tooling
 * (tools/check_metrics.py, plotting scripts) can rely on its shape.
 *
 * The exporter is deliberately independent of the gpu layer: callers
 * flatten their configuration into MetricsMeta key/value provenance
 * rather than passing GpuConfig here.
 */

#ifndef GETM_OBS_METRICS_HH
#define GETM_OBS_METRICS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "obs/observability.hh"
#include "obs/schema_version.hh"

namespace getm {

/** Schema identity stamped into every metrics document (version in
 *  obs/schema_version.hh, shared with tools/check_metrics.py). */
inline constexpr const char *metricsSchemaName = "getm-metrics";

/** Run identity, headline results, and config provenance. */
struct MetricsMeta
{
    std::string bench;
    std::string protocol;
    double scale = 0.0;
    std::uint64_t seed = 0;
    std::uint64_t threads = 0;
    bool verified = false;

    // Headline run numbers (RunResult flattened by the caller).
    std::uint64_t cycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t txExecCycles = 0;
    std::uint64_t txWaitCycles = 0;
    std::uint64_t xbarFlits = 0;
    std::uint64_t rollovers = 0;
    std::uint64_t maxLogicalTs = 0;

    /** Config provenance: ordered key/value pairs (values pre-rendered). */
    std::vector<std::pair<std::string, std::string>> config;

    /**
     * Runtime-checker verdict, pre-rendered by the caller as
     * violation-kind → count rows (this layer stays independent of
     * src/check just as it is of src/gpu). Left empty on clean or
     * unchecked runs, in which case no "check" section is emitted and
     * the document stays byte-identical to a checker-off run.
     */
    std::vector<std::pair<std::string, std::uint64_t>> checkViolations;
    /** Checker level name ("read"/"serial"/"ref"); set with violations. */
    std::string checkLevel;
};

/**
 * A failed run, pre-flattened by the caller (this layer stays
 * independent of common/sim_error just as it is of src/gpu): the
 * typed status/kind strings come from simErrorStatus()/
 * simErrorKindName() and @c diagnosticJson is the pre-rendered
 * SimDiagnostic::toJson() object, spliced verbatim.
 */
struct MetricsFailure
{
    std::string status;  ///< "deadlock", "livelock", "timeout", ...
    std::string kind;    ///< "DEADLOCK", "LIVELOCK", ...
    std::string message; ///< Human-readable one-liner.
    std::uint64_t attempts = 1; ///< Tries the sweep made (1 + retries).
    std::string diagnosticJson; ///< Rendered SimDiagnostic, may be "".
};

/** Render the full metrics document as a JSON string. */
std::string metricsToJson(const MetricsMeta &meta, const StatSet &stats,
                          const ObsReport &obs);

/**
 * Render a failure document: same schema/meta/config head as a full
 * metrics document, but a "failure" section in place of run/stats
 * (meta carries identity only; headline numbers stay zero).
 */
std::string failureToJson(const MetricsMeta &meta,
                          const MetricsFailure &failure);

/**
 * Render and write the metrics document to @p path.
 * @return false (with @p error set) on I/O failure.
 */
bool writeMetricsFile(const std::string &path, const MetricsMeta &meta,
                      const StatSet &stats, const ObsReport &obs,
                      std::string &error);

/**
 * Render and write a failure document to @p path.
 * @return false (with @p error set) on I/O failure.
 */
bool writeFailureFile(const std::string &path, const MetricsMeta &meta,
                      const MetricsFailure &failure, std::string &error);

} // namespace getm

#endif // GETM_OBS_METRICS_HH
