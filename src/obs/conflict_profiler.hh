/**
 * @file
 * Hot-address conflict profiler.
 *
 * Aggregates every attributed conflict/stall/abort event by (partition,
 * granule address) with a per-reason breakdown, and reports the top-N
 * most contended granules. This directly reproduces the per-address
 * stall data behind the paper's Fig. 16: which granules serialize the
 * workload, and why (stalled behind a writer vs. timestamp aborts vs.
 * Bloom false positives).
 */

#ifndef GETM_OBS_CONFLICT_PROFILER_HH
#define GETM_OBS_CONFLICT_PROFILER_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "obs/abort_reason.hh"

namespace getm {

/** One contended granule with its per-reason event counts. */
struct HotAddrRow
{
    Addr addr = invalidAddr;
    PartitionId partition = 0;
    std::uint64_t total = 0;
    /**
     * Workload-provided description of the granule ("key 7 (zipf rank
     * 0)"), filled in post-run via Workload::addrInfo(). Empty when the
     * workload has no mapping — and then absent from metrics output,
     * so documents for unlabeled workloads are byte-unchanged.
     */
    std::string label;
    std::array<std::uint64_t, numAbortReasons> byReason{};
    /** Sum and count of stall-queue depths sampled on this address. */
    std::uint64_t stallDepthSum = 0;
    std::uint64_t stallDepthCount = 0;

    double
    meanWaiters() const
    {
        return stallDepthCount
                   ? static_cast<double>(stallDepthSum) /
                         static_cast<double>(stallDepthCount)
                   : 0.0;
    }

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(addr, partition, total, label, byReason, stallDepthSum,
           stallDepthCount);
    }
};

/** Per-address conflict aggregation. */
class ConflictProfiler
{
  public:
    /** Record one event of kind @p reason on @p addr. */
    void record(AbortReason reason, Addr addr, PartitionId partition,
                std::uint64_t count = 1);

    /** Record a stall-queue depth sample on @p addr. */
    void recordStallDepth(Addr addr, PartitionId partition,
                          unsigned depth);

    /** The @p n most contended granules, sorted by total events. */
    std::vector<HotAddrRow> topN(std::size_t n) const;

    /** Number of distinct contended granules seen. */
    std::size_t distinctAddrs() const { return table.size(); }

    /** Total events recorded across all addresses. */
    std::uint64_t totalEvents() const { return events; }

    /**
     * Fold @p other's rows into this profiler (summing per-address
     * counts). All aggregates are commutative sums and topN() orders
     * deterministically, so merging worker-local shards at the end of a
     * parallel run reproduces the serial loop's report byte for byte.
     */
    void mergeFrom(const ConflictProfiler &other);

    void clear();

    /**
     * Checkpoint hook. The one-entry memo is a pure accelerator whose
     * pointer cannot survive a restore; it re-warms on the first
     * record() after load.
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(table, events);
        if constexpr (!Ar::saving) {
            lastAddr = invalidAddr;
            lastRow = nullptr;
        }
    }

  private:
    /**
     * Find-or-create with a one-entry memo: conflict events cluster on
     * the same hot granule, so most lookups hit the last row. The map's
     * nodes are pointer-stable, so the memo survives inserts and only
     * clear() invalidates it.
     */
    HotAddrRow &rowFor(Addr addr, PartitionId partition);

    std::unordered_map<Addr, HotAddrRow> table;
    std::uint64_t events = 0;
    Addr lastAddr = invalidAddr;
    HotAddrRow *lastRow = nullptr;
};

} // namespace getm

#endif // GETM_OBS_CONFLICT_PROFILER_HH
