/**
 * @file
 * Concrete observability hub: the one ObsSink every protocol reports
 * into, owned by GpuSystem for the duration of a run.
 *
 * Aggregates abort/stall attribution (per-reason totals plus the
 * hot-address conflict profiler) and hosts the cycle sampler. At the
 * end of a run, report() snapshots everything into a plain-data
 * ObsReport that travels inside RunResult, so benches and the metrics
 * exporter never need the live sink.
 */

#ifndef GETM_OBS_OBSERVABILITY_HH
#define GETM_OBS_OBSERVABILITY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "obs/conflict_profiler.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "obs/tx_tracer.hh"

namespace getm {

/** Plain-data snapshot of a run's observability state. */
struct ObsReport
{
    /** Aborted lanes per reason; sums exactly to the run's abort count. */
    std::array<std::uint64_t, numAbortReasons> abortLanesByReason{};
    /** Stall-buffer insertions per reason. */
    std::array<std::uint64_t, numAbortReasons> stallsByReason{};

    /** Peak simultaneous stall-buffer occupancy across all partitions. */
    unsigned stallPeakOccupancy = 0;
    /** Sum/count of per-address queue depths at stall-insertion time. */
    std::uint64_t stallDepthSum = 0;
    std::uint64_t stallDepthCount = 0;

    /** Top-N contended granules (sorted by total events, descending). */
    std::vector<HotAddrRow> hotAddrs;
    /** Distinct contended granules observed (not just the top N). */
    std::uint64_t distinctConflictAddrs = 0;

    /** Cycle-sampled telemetry (empty when sampling is disabled). */
    SampleSeries samples;

    /** Per-transaction lifecycle trace (enabled == false when off). */
    TxTraceReport txTrace;

    std::uint64_t
    totalAbortLanes() const
    {
        std::uint64_t t = 0;
        for (auto v : abortLanesByReason)
            t += v;
        return t;
    }

    std::uint64_t
    totalStalls() const
    {
        std::uint64_t t = 0;
        for (auto v : stallsByReason)
            t += v;
        return t;
    }

    /** Mean stall-queue depth behind a contended address (Fig. 16). */
    double
    meanStallWaiters() const
    {
        return stallDepthCount ? static_cast<double>(stallDepthSum) /
                                     static_cast<double>(stallDepthCount)
                               : 0.0;
    }
};

/**
 * Worker-local observability shard (docs/PARALLELISM.md).
 *
 * The parallel cycle loop gives every SIMT core its own shard so abort
 * attribution never touches shared state from a worker thread; the hub
 * absorbs the shards (in core order) before reporting. Everything a
 * *core* reports is a commutative sum, so absorbing at the end of the
 * run reproduces the serial loop's report byte for byte. The
 * order-sensitive stall gauge (current/peak occupancy) is partition
 * territory and partitions tick on the serial stage, reporting straight
 * into the hub — a shard accumulates stall events defensively but its
 * gauge never feeds the hub's transient peak.
 */
class ObsShard : public ObsSink
{
  public:
    void
    abortEvent(AbortReason reason, Addr addr, PartitionId partition,
               unsigned lanes, Cycle) override
    {
        abortLanes[static_cast<unsigned>(reason)] += lanes;
        prof.record(reason, addr, partition, lanes);
    }

    void
    conflictEvent(AbortReason reason, Addr addr, PartitionId partition,
                  Cycle) override
    {
        prof.record(reason, addr, partition);
    }

    void
    stallEvent(AbortReason reason, Addr addr, PartitionId partition,
               unsigned depth, Cycle) override
    {
        stalls[static_cast<unsigned>(reason)] += 1;
        depthSum += depth;
        depthCount += 1;
        prof.record(reason, addr, partition);
        prof.recordStallDepth(addr, partition, depth);
    }

    void stallRelease(PartitionId, Cycle) override {}

    /** Drop all accumulated state (reuse across runs). */
    void
    clear()
    {
        abortLanes.fill(0);
        stalls.fill(0);
        depthSum = 0;
        depthCount = 0;
        prof.clear();
    }

    /** Checkpoint hook: shards hold un-absorbed event sums mid-run. */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(abortLanes, stalls, depthSum, depthCount, prof);
    }

  private:
    friend class Observability;
    std::array<std::uint64_t, numAbortReasons> abortLanes{};
    std::array<std::uint64_t, numAbortReasons> stalls{};
    std::uint64_t depthSum = 0;
    std::uint64_t depthCount = 0;
    ConflictProfiler prof;
};

/** The concrete sink: aggregates events and owns the sampler. */
class Observability : public ObsSink
{
  public:
    void abortEvent(AbortReason reason, Addr addr, PartitionId partition,
                    unsigned lanes, Cycle now) override;
    void conflictEvent(AbortReason reason, Addr addr,
                       PartitionId partition, Cycle now) override;
    void stallEvent(AbortReason reason, Addr addr, PartitionId partition,
                    unsigned depth, Cycle now) override;
    void stallRelease(PartitionId partition, Cycle now) override;

    /** Fold a worker-local shard into the hub and clear the shard. */
    void absorbShard(ObsShard &shard);

    CycleSampler &cycleSampler() { return sampler; }
    const ConflictProfiler &profiler() const { return prof; }

    /** Live gauge: requests currently parked in stall buffers. */
    unsigned stallOccupancy() const { return stallCurrent; }

    /** Snapshot everything, keeping at most @p maxHotAddrs rows. */
    ObsReport report(std::size_t maxHotAddrs) const;

    /** Checkpoint hook: aggregates, the live stall gauge, profiler,
     *  and the sampler's recorded series. */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(abortLanes, stalls, stallCurrent, stallPeak, depthSum,
           depthCount, prof, sampler);
    }

  private:
    std::array<std::uint64_t, numAbortReasons> abortLanes{};
    std::array<std::uint64_t, numAbortReasons> stalls{};
    unsigned stallCurrent = 0;
    unsigned stallPeak = 0;
    std::uint64_t depthSum = 0;
    std::uint64_t depthCount = 0;
    ConflictProfiler prof;
    CycleSampler sampler;
};

} // namespace getm

#endif // GETM_OBS_OBSERVABILITY_HH
