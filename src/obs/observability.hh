/**
 * @file
 * Concrete observability hub: the one ObsSink every protocol reports
 * into, owned by GpuSystem for the duration of a run.
 *
 * Aggregates abort/stall attribution (per-reason totals plus the
 * hot-address conflict profiler) and hosts the cycle sampler. At the
 * end of a run, report() snapshots everything into a plain-data
 * ObsReport that travels inside RunResult, so benches and the metrics
 * exporter never need the live sink.
 */

#ifndef GETM_OBS_OBSERVABILITY_HH
#define GETM_OBS_OBSERVABILITY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "obs/conflict_profiler.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "obs/tx_tracer.hh"

namespace getm {

/** Plain-data snapshot of a run's observability state. */
struct ObsReport
{
    /** Aborted lanes per reason; sums exactly to the run's abort count. */
    std::array<std::uint64_t, numAbortReasons> abortLanesByReason{};
    /** Stall-buffer insertions per reason. */
    std::array<std::uint64_t, numAbortReasons> stallsByReason{};

    /** Peak simultaneous stall-buffer occupancy across all partitions. */
    unsigned stallPeakOccupancy = 0;
    /** Sum/count of per-address queue depths at stall-insertion time. */
    std::uint64_t stallDepthSum = 0;
    std::uint64_t stallDepthCount = 0;

    /** Top-N contended granules (sorted by total events, descending). */
    std::vector<HotAddrRow> hotAddrs;
    /** Distinct contended granules observed (not just the top N). */
    std::uint64_t distinctConflictAddrs = 0;

    /** Cycle-sampled telemetry (empty when sampling is disabled). */
    SampleSeries samples;

    /** Per-transaction lifecycle trace (enabled == false when off). */
    TxTraceReport txTrace;

    std::uint64_t
    totalAbortLanes() const
    {
        std::uint64_t t = 0;
        for (auto v : abortLanesByReason)
            t += v;
        return t;
    }

    std::uint64_t
    totalStalls() const
    {
        std::uint64_t t = 0;
        for (auto v : stallsByReason)
            t += v;
        return t;
    }

    /** Mean stall-queue depth behind a contended address (Fig. 16). */
    double
    meanStallWaiters() const
    {
        return stallDepthCount ? static_cast<double>(stallDepthSum) /
                                     static_cast<double>(stallDepthCount)
                               : 0.0;
    }
};

/** The concrete sink: aggregates events and owns the sampler. */
class Observability : public ObsSink
{
  public:
    void abortEvent(AbortReason reason, Addr addr, PartitionId partition,
                    unsigned lanes, Cycle now) override;
    void conflictEvent(AbortReason reason, Addr addr,
                       PartitionId partition, Cycle now) override;
    void stallEvent(AbortReason reason, Addr addr, PartitionId partition,
                    unsigned depth, Cycle now) override;
    void stallRelease(PartitionId partition, Cycle now) override;

    CycleSampler &cycleSampler() { return sampler; }
    const ConflictProfiler &profiler() const { return prof; }

    /** Live gauge: requests currently parked in stall buffers. */
    unsigned stallOccupancy() const { return stallCurrent; }

    /** Snapshot everything, keeping at most @p maxHotAddrs rows. */
    ObsReport report(std::size_t maxHotAddrs) const;

  private:
    std::array<std::uint64_t, numAbortReasons> abortLanes{};
    std::array<std::uint64_t, numAbortReasons> stalls{};
    unsigned stallCurrent = 0;
    unsigned stallPeak = 0;
    std::uint64_t depthSum = 0;
    std::uint64_t depthCount = 0;
    ConflictProfiler prof;
    CycleSampler sampler;
};

} // namespace getm

#endif // GETM_OBS_OBSERVABILITY_HH
