#include "obs/observability.hh"

#include <algorithm>

namespace getm {

void
Observability::abortEvent(AbortReason reason, Addr addr,
                          PartitionId partition, unsigned lanes, Cycle now)
{
    (void)now;
    abortLanes[static_cast<unsigned>(reason)] += lanes;
    prof.record(reason, addr, partition, lanes);
}

void
Observability::conflictEvent(AbortReason reason, Addr addr,
                             PartitionId partition, Cycle now)
{
    (void)now;
    prof.record(reason, addr, partition);
}

void
Observability::stallEvent(AbortReason reason, Addr addr,
                          PartitionId partition, unsigned depth, Cycle now)
{
    (void)now;
    stalls[static_cast<unsigned>(reason)] += 1;
    stallCurrent += 1;
    stallPeak = std::max(stallPeak, stallCurrent);
    depthSum += depth;
    depthCount += 1;
    prof.record(reason, addr, partition);
    prof.recordStallDepth(addr, partition, depth);
}

void
Observability::stallRelease(PartitionId partition, Cycle now)
{
    (void)partition;
    (void)now;
    if (stallCurrent)
        stallCurrent -= 1;
}

void
Observability::absorbShard(ObsShard &shard)
{
    for (unsigned r = 0; r < numAbortReasons; ++r) {
        abortLanes[r] += shard.abortLanes[r];
        stalls[r] += shard.stalls[r];
    }
    depthSum += shard.depthSum;
    depthCount += shard.depthCount;
    prof.mergeFrom(shard.prof);
    shard.clear();
}

ObsReport
Observability::report(std::size_t maxHotAddrs) const
{
    ObsReport r;
    r.abortLanesByReason = abortLanes;
    r.stallsByReason = stalls;
    r.stallPeakOccupancy = stallPeak;
    r.stallDepthSum = depthSum;
    r.stallDepthCount = depthCount;
    r.hotAddrs = prof.topN(maxHotAddrs);
    r.distinctConflictAddrs = prof.distinctAddrs();
    r.samples = sampler.data();
    return r;
}

} // namespace getm
