#include "obs/tx_tracer.hh"

#include <algorithm>
#include <cstdio>

#include "common/json.hh"

namespace getm {

namespace {

std::string
hexAddr(Addr addr)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

constexpr unsigned
phaseIndex(TxPhase phase)
{
    return static_cast<unsigned>(phase);
}

} // namespace

TxTracer::TxTracer(std::uint64_t sampleRate)
    : rate(sampleRate == 0 ? 1 : sampleRate)
{
}

TxTracer::LiveTx *
TxTracer::find(GlobalWarpId gwid)
{
    auto it = open.find(gwid);
    return it == open.end() ? nullptr : &it->second;
}

bool
TxTracer::tracing(GlobalWarpId gwid) const
{
    return open.count(gwid) != 0;
}

void
TxTracer::charge(LiveTx &tx, Cycle now)
{
    // The cursor only ever moves forward: an event reported at an
    // earlier cycle (different components interleave within a visited
    // cycle) charges nothing rather than rewinding, which would
    // double-count the rewound slice and break the exact-sum
    // invariant.
    if (now > tx.cursor) {
        const std::uint64_t slice = now - tx.cursor;
        // Stall dwell overlays the scheduler phase: while any of the
        // transaction's accesses sits in a stall buffer, the warp's
        // cycles are attributed to the stall, whatever state the
        // scheduler shows (GETM parks stores without blocking the
        // warp, so the dwell is not nested inside MemWait).
        if (tx.stallDepth > 0)
            tx.attemptStall += slice;
        else
            tx.attemptPhase[phaseIndex(tx.phase)] += slice;
        // Raw per-state totals ignore the overlay so they stay
        // comparable with the core's tx_exec/tx_wait counters.
        switch (tx.phase) {
          case TxPhase::Exec: tx.rec.rawExec += slice; break;
          case TxPhase::Mem: tx.rec.rawMem += slice; break;
          case TxPhase::Validate: tx.rec.rawValidate += slice; break;
          case TxPhase::Backoff: tx.rec.rawBackoff += slice; break;
        }
        tx.cursor = now;
    }
}

void
TxTracer::foldAttempt(LiveTx &tx, bool committedAny)
{
    TxCycleBreakdown &cyc = tx.rec.cycles;
    if (committedAny) {
        // The attempt that made it: its phases are the useful work.
        cyc.exec += tx.attemptPhase[phaseIndex(TxPhase::Exec)];
        cyc.noc += tx.attemptPhase[phaseIndex(TxPhase::Mem)];
        cyc.validation += tx.attemptPhase[phaseIndex(TxPhase::Validate)];
        cyc.retry += tx.attemptPhase[phaseIndex(TxPhase::Backoff)];
        cyc.stall += tx.attemptStall;
    } else {
        // Aborted attempts are redo work, whatever they spent it on.
        for (std::uint64_t v : tx.attemptPhase)
            cyc.retry += v;
        cyc.retry += tx.attemptStall;
    }
    tx.attemptPhase = {};
    tx.attemptStall = 0;
}

void
TxTracer::close(LiveTx &tx, Cycle now)
{
    charge(tx, now);
    // cursor == now on every healthy path; the max() keeps the sum
    // invariant unconditional even if an instrumentation site ever
    // reported a time past the closing event.
    tx.rec.endCycle = std::max(now, tx.cursor);
    closed.push_back(std::move(tx.rec));
}

void
TxTracer::txAttemptBegin(GlobalWarpId gwid, CoreId core,
                         std::uint32_t slot, unsigned attempt,
                         unsigned lanes, Cycle now)
{
    (void)lanes;
    if (attempt == 0) {
        ++seen;
        if ((seen - 1) % rate != 0)
            return;
        LiveTx &tx = open[gwid]; // overwrites a stale entry, if any
        tx = LiveTx{};
        tx.rec.traceId = nextTraceId++;
        tx.rec.gwid = gwid;
        tx.rec.core = core;
        tx.rec.slot = slot;
        tx.rec.beginCycle = now;
        tx.rec.attempts = 1;
        tx.cursor = now;
        tx.phase = TxPhase::Exec;
        return;
    }
    LiveTx *tx = find(gwid);
    if (!tx)
        return;
    // Retry attempt: the preceding txRetire charged up to this same
    // cycle, so restarting the cursor here keeps the telescoping sum
    // exact across attempts.
    ++tx->rec.attempts;
    tx->cursor = now;
    tx->phase = TxPhase::Exec;
    tx->stallDepth = 0;
    tx->accesses.clear();
}

void
TxTracer::txPhase(GlobalWarpId gwid, TxPhase phase, Cycle now)
{
    if (LiveTx *tx = find(gwid)) {
        charge(*tx, now);
        tx->phase = phase;
    }
}

void
TxTracer::txAccessIssue(GlobalWarpId gwid, Addr granule, bool store,
                        Cycle now)
{
    LiveTx *tx = find(gwid);
    if (!tx)
        return;
    ++tx->rec.accessesIssued;
    PendingAccess acc;
    acc.granule = granule;
    acc.store = store;
    acc.issue = now;
    tx->accesses.push_back(acc);
}

void
TxTracer::txAccessDecision(GlobalWarpId gwid, Addr granule,
                           PartitionId partition, bool ok, Cycle arrival,
                           Cycle ready)
{
    (void)partition;
    LiveTx *tx = find(gwid);
    if (!tx)
        return;
    for (PendingAccess &acc : tx->accesses) {
        if (acc.granule != granule || acc.decided)
            continue;
        acc.decided = true;
        acc.ok = ok;
        acc.arrival = arrival;
        acc.ready = ready;
        return;
    }
}

void
TxTracer::txAccessResponse(GlobalWarpId gwid, Addr granule, Cycle now)
{
    LiveTx *tx = find(gwid);
    if (!tx)
        return;
    for (auto it = tx->accesses.begin(); it != tx->accesses.end(); ++it) {
        if (it->granule != granule || !it->decided)
            continue;
        ++tx->rec.accessesCompleted;
        if (emit.warpSpan)
            emit.warpSpan(tx->rec.core, tx->rec.slot,
                          std::string(it->store ? "tx-st " : "tx-ld ") +
                              hexAddr(granule),
                          it->issue, now - it->issue);
        tx->accesses.erase(it);
        return;
    }
}

void
TxTracer::txStallEnter(GlobalWarpId gwid, Addr granule,
                       PartitionId partition, Cycle now)
{
    (void)granule;
    (void)partition;
    if (LiveTx *tx = find(gwid)) {
        charge(*tx, now);
        ++tx->stallDepth;
    }
}

void
TxTracer::txStallExit(GlobalWarpId gwid, Addr granule,
                      PartitionId partition, Cycle enqueued, Cycle now)
{
    LiveTx *tx = find(gwid);
    if (!tx)
        return;
    charge(*tx, now);
    if (tx->stallDepth > 0)
        --tx->stallDepth;
    if (emit.vuSpan)
        emit.vuSpan(partition,
                    std::string("stall ") + hexAddr(granule), enqueued,
                    now - enqueued);
}

void
TxTracer::txConflict(GlobalWarpId victim, GlobalWarpId aborter,
                     AbortReason reason, Addr addr, PartitionId partition,
                     Cycle now)
{
    LiveTx *tx = find(victim);
    if (!tx)
        return;
    tx->conflictPending = true;
    tx->conflict.reason = reason;
    tx->conflict.addr = addr;
    tx->conflict.aborter = aborter;
    tx->conflict.partition = partition;
    tx->conflict.cycle = now;
}

void
TxTracer::txAbort(GlobalWarpId gwid, AbortReason reason, Addr addr,
                  unsigned lanes, Cycle now)
{
    (void)lanes;
    LiveTx *tx = find(gwid);
    if (!tx)
        return;
    TxAbortRecord rec;
    rec.attempt = tx->rec.attempts - 1;
    rec.reason = reason;
    rec.addr = addr;
    rec.cycle = now;
    // Merge the partition- or core-side conflict report that preceded
    // this accounting point (same reason => same conflict).
    if (tx->conflictPending && tx->conflict.reason == reason) {
        rec.aborter = tx->conflict.aborter;
        rec.partition = tx->conflict.partition;
        if (rec.addr == invalidAddr)
            rec.addr = tx->conflict.addr;
    }
    tx->conflictPending = false;
    tx->rec.aborts.push_back(rec);
    if (emit.warpInstant) {
        std::string name = "killed-by:";
        name += rec.aborter == invalidWarp
                    ? "?"
                    : "w" + std::to_string(rec.aborter);
        emit.warpInstant(tx->rec.core, tx->rec.slot, name, now);
    }
}

void
TxTracer::txCommitHandoff(GlobalWarpId gwid, Cycle now)
{
    if (LiveTx *tx = find(gwid)) {
        tx->rec.commitHandoff = now;
        tx->rec.sawHandoff = true;
    }
}

void
TxTracer::txValidation(GlobalWarpId gwid, PartitionId partition,
                       bool pass, Cycle start, Cycle end)
{
    LiveTx *tx = find(gwid);
    if (!tx)
        return;
    if (emit.vuSpan)
        emit.vuSpan(partition, pass ? "validate" : "validate-fail",
                    start, end - start);
}

void
TxTracer::txRetire(GlobalWarpId gwid, unsigned committedLanes,
                   bool willRetry, Cycle now)
{
    LiveTx *tx = find(gwid);
    if (!tx)
        return;
    charge(*tx, now);
    foldAttempt(*tx, committedLanes > 0);
    tx->rec.committedLanes += committedLanes;
    // Rollover flushes and forced aborts can leave per-attempt state
    // mid-flight; a retire is always a clean boundary.
    tx->stallDepth = 0;
    tx->accesses.clear();
    tx->conflictPending = false;
    if (willRetry)
        return;
    tx->rec.committed = true;
    close(*tx, now);
    open.erase(gwid);
}

void
TxTracer::nocHop(bool up, Cycle sent, Cycle arrived, unsigned bytes)
{
    TxTraceReport::NocAggregate &agg = up ? upAgg : downAgg;
    ++agg.msgs;
    agg.latencyCycles += arrived - sent;
    agg.bytes += bytes;
}

TxTraceReport
TxTracer::report(Cycle endCycle)
{
    TxTraceReport out;
    out.enabled = true;
    out.sampleRate = rate;
    out.txSeen = seen;
    out.openAtEnd = open.size();

    // Close anything still open (a run cut short) so every exported
    // row satisfies the sum-to-lifetime invariant. Deterministic
    // order: sort the leftovers by trace id, not map order.
    std::vector<LiveTx *> leftovers;
    for (auto &[gwid, tx] : open)
        leftovers.push_back(&tx);
    std::sort(leftovers.begin(), leftovers.end(),
              [](const LiveTx *a, const LiveTx *b) {
                  return a->rec.traceId < b->rec.traceId;
              });
    for (LiveTx *tx : leftovers) {
        charge(*tx, endCycle);
        foldAttempt(*tx, false);
        close(*tx, endCycle);
    }
    open.clear();

    std::sort(closed.begin(), closed.end(),
              [](const TxRecord &a, const TxRecord &b) {
                  return a.traceId < b.traceId;
              });
    out.traced = closed.size();
    for (const TxRecord &rec : closed) {
        if (rec.committed && rec.committedLanes > 0)
            ++out.committedCount;
        out.totals.exec += rec.cycles.exec;
        out.totals.noc += rec.cycles.noc;
        out.totals.stall += rec.cycles.stall;
        out.totals.validation += rec.cycles.validation;
        out.totals.retry += rec.cycles.retry;
        out.totalLifetime += rec.lifetime();
        out.rawExec += rec.rawExec;
        out.rawMem += rec.rawMem;
        out.rawValidate += rec.rawValidate;
        out.rawBackoff += rec.rawBackoff;
    }
    out.nocUp = upAgg;
    out.nocDown = downAgg;
    out.transactions = std::move(closed);
    closed.clear();
    return out;
}

namespace {

void
emitNocAggregate(JsonWriter &w, std::string_view name,
                 const TxTraceReport::NocAggregate &agg)
{
    w.key(name).beginObject();
    w.member("msgs", agg.msgs);
    w.member("latency_cycles", agg.latencyCycles);
    w.member("bytes", agg.bytes);
    w.endObject();
}

void
emitAbort(JsonWriter &w, const TxAbortRecord &abort)
{
    w.beginObject();
    w.member("attempt", static_cast<std::uint64_t>(abort.attempt));
    w.member("reason", abortReasonName(abort.reason));
    if (abort.addr != invalidAddr) {
        w.member("addr", abort.addr);
        w.member("addr_hex", hexAddr(abort.addr));
        w.member("partition",
                 static_cast<std::uint64_t>(abort.partition));
    }
    w.member("aborter_warp",
             abort.aborter == invalidWarp
                 ? static_cast<std::int64_t>(-1)
                 : static_cast<std::int64_t>(abort.aborter));
    w.member("cycle", static_cast<std::uint64_t>(abort.cycle));
    w.endObject();
}

} // namespace

std::string
txTraceSectionJson(const TxTraceReport &trace)
{
    JsonWriter w;
    w.beginObject();
    w.member("version", txTraceSchemaVersion);
    w.member("sample_rate", trace.sampleRate);
    w.member("tx_seen", trace.txSeen);
    w.member("traced", trace.traced);
    w.member("committed", trace.committedCount);
    w.member("open", trace.openAtEnd);

    w.key("totals").beginObject();
    w.member("exec", trace.totals.exec);
    w.member("noc", trace.totals.noc);
    w.member("stall", trace.totals.stall);
    w.member("validation", trace.totals.validation);
    w.member("retry", trace.totals.retry);
    w.member("lifetime", trace.totalLifetime);
    w.member("raw_exec", trace.rawExec);
    w.member("raw_mem", trace.rawMem);
    w.member("raw_validate", trace.rawValidate);
    w.member("raw_backoff", trace.rawBackoff);
    w.endObject();

    w.key("noc").beginObject();
    emitNocAggregate(w, "up", trace.nocUp);
    emitNocAggregate(w, "down", trace.nocDown);
    w.endObject();

    w.key("transactions").beginArray();
    for (const TxRecord &rec : trace.transactions) {
        w.beginObject();
        w.member("trace_id", rec.traceId);
        w.member("warp", static_cast<std::uint64_t>(rec.gwid));
        w.member("core", static_cast<std::uint64_t>(rec.core));
        w.member("slot", static_cast<std::uint64_t>(rec.slot));
        w.member("begin", static_cast<std::uint64_t>(rec.beginCycle));
        w.member("end", static_cast<std::uint64_t>(rec.endCycle));
        w.member("lifetime", static_cast<std::uint64_t>(rec.lifetime()));
        w.member("attempts", static_cast<std::uint64_t>(rec.attempts));
        w.member("committed_lanes",
                 static_cast<std::uint64_t>(rec.committedLanes));
        w.member("committed", rec.committed);
        if (rec.sawHandoff)
            w.member("commit_handoff",
                     static_cast<std::uint64_t>(rec.commitHandoff));
        w.key("cycles").beginObject();
        w.member("exec", rec.cycles.exec);
        w.member("noc", rec.cycles.noc);
        w.member("stall", rec.cycles.stall);
        w.member("validation", rec.cycles.validation);
        w.member("retry", rec.cycles.retry);
        w.endObject();
        w.key("accesses").beginObject();
        w.member("issued",
                 static_cast<std::uint64_t>(rec.accessesIssued));
        w.member("completed",
                 static_cast<std::uint64_t>(rec.accessesCompleted));
        w.endObject();
        w.key("aborts").beginArray();
        for (const TxAbortRecord &abort : rec.aborts)
            emitAbort(w, abort);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    // Top-K kill chains by length (ties: first traced wins). Each
    // chain restates its transaction's abort list, which is what the
    // validator's referential-integrity check leans on.
    constexpr std::size_t topK = 8;
    std::vector<const TxRecord *> chains;
    for (const TxRecord &rec : trace.transactions)
        if (!rec.aborts.empty())
            chains.push_back(&rec);
    std::stable_sort(chains.begin(), chains.end(),
                     [](const TxRecord *a, const TxRecord *b) {
                         return a->aborts.size() > b->aborts.size();
                     });
    if (chains.size() > topK)
        chains.resize(topK);
    w.key("kill_chains").beginArray();
    for (const TxRecord *rec : chains) {
        w.beginObject();
        w.member("trace_id", rec->traceId);
        w.member("victim_warp", static_cast<std::uint64_t>(rec->gwid));
        w.member("length",
                 static_cast<std::uint64_t>(rec->aborts.size()));
        w.key("links").beginArray();
        for (const TxAbortRecord &abort : rec->aborts)
            emitAbort(w, abort);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.take();
}

std::string
txTraceToJson(const TxTraceReport &trace, const std::string &pointId)
{
    JsonWriter w;
    w.beginObject();
    w.member("schema", "getm-tx-trace");
    w.member("version", txTraceSchemaVersion);
    if (!pointId.empty())
        w.member("point", pointId);
    w.key("tx_trace").rawValue(txTraceSectionJson(trace));
    w.endObject();
    return w.take();
}

} // namespace getm
