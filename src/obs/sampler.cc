#include "obs/sampler.hh"

namespace getm {

void
CycleSampler::sample(Cycle now)
{
    series.cycles.push_back(now);
    for (std::size_t i = 0; i < probes.size(); ++i) {
        double v = probes[i] ? probes[i]() : 0.0;
        series.values[i].push_back(v);
        if (emit)
            emit(series.names[i], now, v);
    }
}

} // namespace getm
