#include "obs/conflict_profiler.hh"

#include <algorithm>

namespace getm {

void
ConflictProfiler::record(AbortReason reason, Addr addr,
                         PartitionId partition, std::uint64_t count)
{
    if (addr == invalidAddr || reason == AbortReason::None || !count)
        return;
    HotAddrRow &row = table[addr];
    row.addr = addr;
    row.partition = partition;
    row.total += count;
    row.byReason[static_cast<unsigned>(reason)] += count;
    events += count;
}

void
ConflictProfiler::recordStallDepth(Addr addr, PartitionId partition,
                                   unsigned depth)
{
    if (addr == invalidAddr)
        return;
    HotAddrRow &row = table[addr];
    row.addr = addr;
    row.partition = partition;
    row.stallDepthSum += depth;
    row.stallDepthCount += 1;
}

std::vector<HotAddrRow>
ConflictProfiler::topN(std::size_t n) const
{
    std::vector<HotAddrRow> rows;
    rows.reserve(table.size());
    for (const auto &[addr, row] : table)
        rows.push_back(row);
    // Deterministic order: by total desc, then address asc.
    std::sort(rows.begin(), rows.end(),
              [](const HotAddrRow &a, const HotAddrRow &b) {
                  return a.total != b.total ? a.total > b.total
                                            : a.addr < b.addr;
              });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

void
ConflictProfiler::clear()
{
    table.clear();
    events = 0;
}

} // namespace getm
