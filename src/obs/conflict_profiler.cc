#include "obs/conflict_profiler.hh"

#include <algorithm>

namespace getm {

HotAddrRow &
ConflictProfiler::rowFor(Addr addr, PartitionId partition)
{
    if (addr != lastAddr || !lastRow) {
        lastRow = &table[addr];
        lastAddr = addr;
    }
    lastRow->addr = addr;
    lastRow->partition = partition;
    return *lastRow;
}

void
ConflictProfiler::record(AbortReason reason, Addr addr,
                         PartitionId partition, std::uint64_t count)
{
    if (addr == invalidAddr || reason == AbortReason::None || !count)
        return;
    HotAddrRow &row = rowFor(addr, partition);
    row.total += count;
    row.byReason[static_cast<unsigned>(reason)] += count;
    events += count;
}

void
ConflictProfiler::recordStallDepth(Addr addr, PartitionId partition,
                                   unsigned depth)
{
    if (addr == invalidAddr)
        return;
    HotAddrRow &row = rowFor(addr, partition);
    row.stallDepthSum += depth;
    row.stallDepthCount += 1;
}

std::vector<HotAddrRow>
ConflictProfiler::topN(std::size_t n) const
{
    std::vector<HotAddrRow> rows;
    rows.reserve(table.size());
    for (const auto &[addr, row] : table)
        rows.push_back(row);
    // Deterministic order: by total desc, then address asc.
    std::sort(rows.begin(), rows.end(),
              [](const HotAddrRow &a, const HotAddrRow &b) {
                  return a.total != b.total ? a.total > b.total
                                            : a.addr < b.addr;
              });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

void
ConflictProfiler::mergeFrom(const ConflictProfiler &other)
{
    for (const auto &[addr, src] : other.table) {
        HotAddrRow &row = rowFor(addr, src.partition);
        row.total += src.total;
        for (unsigned r = 0; r < numAbortReasons; ++r)
            row.byReason[r] += src.byReason[r];
        row.stallDepthSum += src.stallDepthSum;
        row.stallDepthCount += src.stallDepthCount;
    }
    events += other.events;
}

void
ConflictProfiler::clear()
{
    table.clear();
    events = 0;
    lastAddr = invalidAddr;
    lastRow = nullptr;
}

} // namespace getm
