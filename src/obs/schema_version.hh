/**
 * @file
 * Single source of truth for the exported document schema versions.
 *
 * Both the C++ exporters (obs/metrics.cc, sweep/runner.cc) and the
 * Python validator (tools/check_metrics.py, which parses this header
 * at startup) read the constants below, so a schema bump cannot leave
 * the two sides disagreeing. Keep each constant on its own line in the
 * exact `inline constexpr int NAME = N;` shape — the Python side
 * matches that pattern textually.
 */

#ifndef GETM_OBS_SCHEMA_VERSION_HH
#define GETM_OBS_SCHEMA_VERSION_HH

namespace getm {

/** "getm-metrics" document version (bumped for the tx_trace section). */
inline constexpr int metricsSchemaVersion = 2;

/** "getm-sweep" merged-document version. */
inline constexpr int sweepSchemaVersion = 1;

/** Version of the "tx_trace" section / standalone trace documents. */
inline constexpr int txTraceSchemaVersion = 1;

} // namespace getm

#endif // GETM_OBS_SCHEMA_VERSION_HH
