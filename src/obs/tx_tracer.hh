/**
 * @file
 * Sampled per-transaction lifecycle tracer.
 *
 * The TxTracer consumes the ObsSink tx* lifecycle events and, for
 * every Nth transaction (the sample rate; 1 = all), assembles:
 *
 *  - exact cycle accounting: a telescoping cursor charges every
 *    wall-clock slice of an attempt to exactly one phase (exec / NoC /
 *    validation / backoff, with a stall-dwell overlay while any of the
 *    transaction's accesses sits in a stall buffer), so the exported
 *    categories sum to the transaction's lifetime with no gaps or
 *    double counting — the tx-trace analogue of PR 1's abort-sum
 *    invariant;
 *  - per-access spans: issue -> partition arrival -> decision ->
 *    response, correlated FIFO per (warp, granule);
 *  - abort genealogy: partition-side txConflict events (who killed
 *    whom, where) merged with the core-side txAbort accounting point,
 *    forming kill chains across retries;
 *  - Perfetto track events (optional Timeline): access and validation
 *    spans, stall dwell, and "killed-by" instants.
 *
 * The tracer is strictly observe-only: it owns no wake sources, sends
 * no messages, and is reached through a dedicated trace pointer that
 * stays null unless tracing is enabled, so it can never perturb
 * simulated timing (the TracerInvisible tests enforce this).
 */

#ifndef GETM_OBS_TX_TRACER_HH
#define GETM_OBS_TX_TRACER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/schema_version.hh"
#include "obs/sink.hh"

namespace getm {

/** One abort suffered by a traced transaction (a kill-chain link). */
struct TxAbortRecord
{
    unsigned attempt = 0;      ///< Attempt index the abort ended.
    AbortReason reason = AbortReason::None;
    Addr addr = 0;             ///< Conflicting granule (invalidAddr: n/a).
    GlobalWarpId aborter = invalidWarp; ///< Killer warp when known.
    PartitionId partition = 0; ///< Conflict site (with a valid addr).
    Cycle cycle = 0;           ///< When the abort was accounted.

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(attempt, reason, addr, aborter, partition, cycle);
    }
};

/** Where a traced transaction's cycles went (exact; sums to lifetime). */
struct TxCycleBreakdown
{
    std::uint64_t exec = 0;       ///< Useful execution (final attempt).
    std::uint64_t noc = 0;        ///< Memory round-trips (final attempt).
    std::uint64_t stall = 0;      ///< Stall-buffer dwell overlay.
    std::uint64_t validation = 0; ///< Commit/validation sequence.
    std::uint64_t retry = 0;      ///< Redo: backoff + aborted attempts.

    std::uint64_t
    total() const
    {
        return exec + noc + stall + validation + retry;
    }

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(exec, noc, stall, validation, retry);
    }
};

/** One traced transaction (all attempts of one warp-level tx). */
struct TxRecord
{
    std::uint64_t traceId = 0;   ///< Dense id in trace order.
    GlobalWarpId gwid = invalidWarp;
    CoreId core = 0;
    std::uint32_t slot = 0;
    Cycle beginCycle = 0;        ///< First attempt's begin.
    Cycle endCycle = 0;          ///< Final retire (or end of run).
    unsigned attempts = 0;       ///< Attempts made (1 + retries).
    unsigned committedLanes = 0; ///< Lanes that eventually committed.
    bool committed = false;      ///< Closed by a final retire.
    Cycle commitHandoff = 0;     ///< Last commit-point hand-off cycle.
    bool sawHandoff = false;
    TxCycleBreakdown cycles;     ///< Exact lifetime decomposition.
    /**
     * Raw per-scheduler-state totals across *all* attempts, before the
     * committed/aborted folding above. exec+mem mirrors the run's
     * tx_exec_cycles and validate+backoff its tx_wait_cycles (the
     * tracer's totals are provably <= those aggregate counters: it
     * clips at txbegin and excludes pre-begin throttling), which is
     * what the fig10_tx_cycles cross-check leans on.
     */
    std::uint64_t rawExec = 0, rawMem = 0, rawValidate = 0,
                  rawBackoff = 0;
    unsigned accessesIssued = 0;
    unsigned accessesCompleted = 0; ///< Issued, decided, and responded.
    std::vector<TxAbortRecord> aborts; ///< Kill chain, in order.

    Cycle lifetime() const { return endCycle - beginCycle; }

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(traceId, gwid, core, slot, beginCycle, endCycle, attempts,
           committedLanes, committed, commitHandoff, sawHandoff, cycles,
           rawExec, rawMem, rawValidate, rawBackoff, accessesIssued,
           accessesCompleted, aborts);
    }
};

/** Plain-data snapshot exported inside ObsReport. */
struct TxTraceReport
{
    bool enabled = false;
    std::uint64_t sampleRate = 0;
    std::uint64_t txSeen = 0;    ///< Transactions begun (traced or not).
    std::uint64_t traced = 0;
    std::uint64_t committedCount = 0;
    std::uint64_t openAtEnd = 0; ///< Traced but never retired (0 on a
                                 ///< completed run).
    std::vector<TxRecord> transactions; ///< In trace order.

    /** NoC per-hop latency aggregates (send -> delivery). */
    struct NocAggregate
    {
        std::uint64_t msgs = 0;
        std::uint64_t latencyCycles = 0;
        std::uint64_t bytes = 0;

        template <class Ar>
        void
        ckpt(Ar &ar)
        {
            ar(msgs, latencyCycles, bytes);
        }
    };
    NocAggregate nocUp, nocDown;

    /** Sum of every transaction's breakdown (exact per tx, so exact
     *  in aggregate). */
    TxCycleBreakdown totals;
    std::uint64_t totalLifetime = 0;
    std::uint64_t rawExec = 0, rawMem = 0, rawValidate = 0,
                  rawBackoff = 0;
};

/**
 * Optional Perfetto mirroring. The obs layer stays independent of
 * src/gpu (where the Timeline lives), so GpuSystem installs closures:
 * warpSpan/warpInstant land on the existing per-warp tracks, vuSpan on
 * the validation-unit pseudo-process (one thread per partition).
 */
struct TxTraceEmit
{
    std::function<void(CoreId core, std::uint32_t slot,
                       const std::string &name, Cycle ts, Cycle dur)>
        warpSpan;
    std::function<void(CoreId core, std::uint32_t slot,
                       const std::string &name, Cycle ts)>
        warpInstant;
    std::function<void(PartitionId partition, const std::string &name,
                       Cycle ts, Cycle dur)>
        vuSpan;
};

/** The lifecycle-event consumer behind the trace pointer. */
class TxTracer : public ObsSink
{
  public:
    /** Trace every @p sampleRate'th transaction (>= 1). */
    explicit TxTracer(std::uint64_t sampleRate);

    /** Mirror spans into a Perfetto timeline (see TxTraceEmit). */
    void setEmit(TxTraceEmit fns) { emit = std::move(fns); }

    // Aggregate ObsSink events are not the tracer's business (they
    // keep flowing to the Observability hub); no-op them.
    void abortEvent(AbortReason, Addr, PartitionId, unsigned,
                    Cycle) override {}
    void conflictEvent(AbortReason, Addr, PartitionId, Cycle) override {}
    void stallEvent(AbortReason, Addr, PartitionId, unsigned,
                    Cycle) override {}
    void stallRelease(PartitionId, Cycle) override {}

    void txAttemptBegin(GlobalWarpId gwid, CoreId core,
                        std::uint32_t slot, unsigned attempt,
                        unsigned lanes, Cycle now) override;
    void txPhase(GlobalWarpId gwid, TxPhase phase, Cycle now) override;
    void txAccessIssue(GlobalWarpId gwid, Addr granule, bool store,
                       Cycle now) override;
    void txAccessDecision(GlobalWarpId gwid, Addr granule,
                          PartitionId partition, bool ok, Cycle arrival,
                          Cycle ready) override;
    void txAccessResponse(GlobalWarpId gwid, Addr granule,
                          Cycle now) override;
    void txStallEnter(GlobalWarpId gwid, Addr granule,
                      PartitionId partition, Cycle now) override;
    void txStallExit(GlobalWarpId gwid, Addr granule,
                     PartitionId partition, Cycle enqueued,
                     Cycle now) override;
    void txConflict(GlobalWarpId victim, GlobalWarpId aborter,
                    AbortReason reason, Addr addr, PartitionId partition,
                    Cycle now) override;
    void txAbort(GlobalWarpId gwid, AbortReason reason, Addr addr,
                 unsigned lanes, Cycle now) override;
    void txCommitHandoff(GlobalWarpId gwid, Cycle now) override;
    void txValidation(GlobalWarpId gwid, PartitionId partition, bool pass,
                      Cycle start, Cycle end) override;
    void txRetire(GlobalWarpId gwid, unsigned committedLanes,
                  bool willRetry, Cycle now) override;

    /** NoC hop observed (crossbar send hook; delivery is known at
     *  send time). */
    void nocHop(bool up, Cycle sent, Cycle arrived, unsigned bytes);

    /** Is this warp's current transaction being traced? */
    bool tracing(GlobalWarpId gwid) const;

    /**
     * Snapshot everything. Transactions still open (only possible when
     * a run is cut short) are closed at @p endCycle with
     * committed == false so the sum invariant holds for every exported
     * row.
     */
    TxTraceReport report(Cycle endCycle);

    /**
     * Checkpoint hook. The sample rate comes from config and the emit
     * closures are re-installed by GpuSystem setup; everything else —
     * including live (open) transactions mid-attempt — round-trips.
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(seen, nextTraceId, open, closed, upAgg, downAgg);
    }

  private:
    /** An in-flight access span awaiting correlation. */
    struct PendingAccess
    {
        Addr granule = 0;
        bool store = false;
        bool decided = false;
        bool ok = false;
        Cycle issue = 0;
        Cycle arrival = 0;
        Cycle ready = 0;

        template <class Ar>
        void
        ckpt(Ar &ar)
        {
            ar(granule, store, decided, ok, issue, arrival, ready);
        }
    };

    /** Live charging state of the open attempt of one traced tx. */
    struct LiveTx
    {
        TxRecord rec;
        Cycle cursor = 0;             ///< Last charged-to cycle.
        TxPhase phase = TxPhase::Exec;
        unsigned stallDepth = 0;      ///< Accesses parked in buffers.
        /** Per-phase charges of the open attempt (pre-folding). */
        std::array<std::uint64_t, 4> attemptPhase{};
        std::uint64_t attemptStall = 0;
        std::vector<PendingAccess> accesses;
        /** Partition-side conflict awaiting the core-side txAbort. */
        bool conflictPending = false;
        TxAbortRecord conflict;

        template <class Ar>
        void
        ckpt(Ar &ar)
        {
            ar(rec, cursor, phase, stallDepth, attemptPhase,
               attemptStall, accesses, conflictPending, conflict);
        }
    };

    void charge(LiveTx &tx, Cycle now);
    void foldAttempt(LiveTx &tx, bool committedAny);
    void close(LiveTx &tx, Cycle now);
    LiveTx *find(GlobalWarpId gwid);

    std::uint64_t rate;
    std::uint64_t seen = 0;
    std::uint64_t nextTraceId = 0;
    std::unordered_map<GlobalWarpId, LiveTx> open;
    std::vector<TxRecord> closed;
    TxTraceReport::NocAggregate upAgg, downAgg;
    TxTraceEmit emit;
};

/**
 * Render the tx_trace JSON object (the value of the metrics
 * document's "tx_trace" key) — shared between obs/metrics.cc and the
 * sweep runner's standalone points/<id>.trace.json side files.
 */
std::string txTraceSectionJson(const TxTraceReport &trace);

/** Render a standalone trace document ("schema": "getm-tx-trace"). */
std::string txTraceToJson(const TxTraceReport &trace,
                          const std::string &pointId);

} // namespace getm

#endif // GETM_OBS_TX_TRACER_HH
