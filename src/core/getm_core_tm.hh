/**
 * @file
 * Core-side GETM protocol engine.
 *
 * Every transactional access is checked eagerly: first against the
 * warp's own logs (intra-warp conflict detection), then -- for accesses
 * that need it -- at the LLC validation unit. Loads block the warp;
 * store reservations are fire-and-forget (the commit point waits for
 * their acks). A transaction reaching its commit point is guaranteed to
 * succeed, so the commit itself is off the critical path: the core
 * transmits the write log and immediately continues (paper Sec. IV).
 */

#ifndef GETM_CORE_GETM_CORE_TM_HH
#define GETM_CORE_GETM_CORE_TM_HH

#include "simt/simt_core.hh"
#include "simt/tm_iface.hh"

namespace getm {

/** GETM TmCoreProtocol implementation. */
class GetmCoreTm : public TmCoreProtocol
{
  public:
    explicit GetmCoreTm(SimtCore &core_)
        : core(core_),
          stIntraWarpAborts(
              core.stats().addCounter("getm_intra_warp_aborts")),
          stStoreReqs(core.stats().addCounter("getm_store_reqs")),
          stLoadReqs(core.stats().addCounter("getm_load_reqs")),
          stCommitMsgs(core.stats().addCounter("getm_commit_msgs")),
          stCleanupMsgs(core.stats().addCounter("getm_cleanup_msgs"))
    {
    }

    void txAccess(Warp &warp, bool is_store, const LaneAddrs &addrs,
                  const LaneVals &vals, LaneMask lanes,
                  std::uint8_t rd) override;
    void txCommitPoint(Warp &warp) override;
    void onResponse(Warp &warp, const MemMsg &msg) override;

  private:
    SimtCore &core;

    // Hot-path stat handles: one add per transactional access/commit.
    StatSet::Counter &stIntraWarpAborts;
    StatSet::Counter &stStoreReqs;
    StatSet::Counter &stLoadReqs;
    StatSet::Counter &stCommitMsgs;
    StatSet::Counter &stCleanupMsgs;
};

} // namespace getm

#endif // GETM_CORE_GETM_CORE_TM_HH
