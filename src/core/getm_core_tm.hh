/**
 * @file
 * Core-side GETM protocol engine.
 *
 * Every transactional access is checked eagerly: first against the
 * warp's own logs (intra-warp conflict detection), then -- for accesses
 * that need it -- at the LLC validation unit. Loads block the warp;
 * store reservations are fire-and-forget (the commit point waits for
 * their acks). A transaction reaching its commit point is guaranteed to
 * succeed, so the commit itself is off the critical path: the core
 * transmits the write log and immediately continues (paper Sec. IV).
 */

#ifndef GETM_CORE_GETM_CORE_TM_HH
#define GETM_CORE_GETM_CORE_TM_HH

#include "simt/simt_core.hh"
#include "simt/tm_iface.hh"

namespace getm {

/** GETM TmCoreProtocol implementation. */
class GetmCoreTm : public TmCoreProtocol
{
  public:
    explicit GetmCoreTm(SimtCore &core_) : core(core_) {}

    void txAccess(Warp &warp, bool is_store, const LaneAddrs &addrs,
                  const LaneVals &vals, LaneMask lanes,
                  std::uint8_t rd) override;
    void txCommitPoint(Warp &warp) override;
    void onResponse(Warp &warp, const MemMsg &msg) override;

  private:
    SimtCore &core;
};

} // namespace getm

#endif // GETM_CORE_GETM_CORE_TM_HH
