/**
 * @file
 * GETM validation and commit units, colocated with each LLC partition
 * (paper Sec. IV-A, Fig. 6 and Sec. V-B).
 *
 * The validation unit performs eager conflict detection on every
 * transactional access: owner check, timestamp check, write-lock check,
 * and queueing in the stall buffer. The commit unit receives write/abort
 * logs, coalesces writes, stores data in the LLC, and releases write
 * reservations -- all off the critical path (no messages back to the
 * core).
 */

#ifndef GETM_CORE_GETM_PARTITION_HH
#define GETM_CORE_GETM_PARTITION_HH

#include <string>

#include "core/metadata_table.hh"
#include "core/stall_buffer.hh"
#include "tm/partition_iface.hh"

namespace getm {

/** Configuration of one partition's GETM units. */
struct GetmPartitionConfig
{
    MetadataTable::Config meta;
    StallBuffer::Config stall;
    /** Metadata granularity in bytes (paper: 32). */
    unsigned granule = 32;
    /** Commit-unit write bandwidth (Table II: 32 B/cycle). */
    unsigned commitBytesPerCycle = 32;
};

/** GETM protocol engine at one memory partition. */
class GetmPartitionUnit : public TmPartitionProtocol
{
  public:
    GetmPartitionUnit(PartitionContext &context,
                      const GetmPartitionConfig &config, std::string name);

    Cycle handleRequest(MemMsg &&msg, Cycle now) override;

    void ckptSave(ckpt::Writer &ar) override;
    void ckptLoad(ckpt::Reader &ar) override;

    /** Highest logical timestamp seen (rollover detection). */
    LogicalTs maxTimestamp() const { return meta.maxTimestamp(); }

    /** Reset all metadata (timestamp rollover) at cycle @p now. */
    void flushForRollover(Cycle now = 0);

    MetadataTable &metadata() { return meta; }
    StallBuffer &stallBuffer() { return stall; }

  private:
    Addr granuleOf(Addr addr) const { return addr - addr % cfg.granule; }

    /**
     * Run the Fig. 6 access flow for a load/store request.
     * @return busy cycles consumed.
     */
    Cycle processAccess(MemMsg &&msg, Cycle now);

    /** Process commit/abort log entries. */
    Cycle processCommit(const MemMsg &msg, Cycle now);

    /** Grant stalled requests after #writes reached zero. */
    Cycle releaseWaiters(Addr granule, Cycle now);

    void respondLoad(const MemMsg &msg, Cycle ready, Cycle now);
    void respondStoreAck(const MemMsg &msg, Cycle ready);
    /**
     * Abort the requester. The validation unit decides *why* here
     * (@p reason) and ships it back in the response so the core can
     * attribute the abort; @p granule feeds the hot-address profiler.
     */
    void respondAbort(const MemMsg &msg, LogicalTs observed, Cycle ready,
                      AbortReason reason, Addr granule, Cycle now);

    PartitionContext &ctx;
    GetmPartitionConfig cfg;
    MetadataTable meta;
    StallBuffer stall;

    /**
     * True cycle of the message being handled. Tracer charges use this
     * instead of the serialized now + busy offsets inside
     * processCommit/releaseWaiters, so the tracer's per-warp cursor
     * never runs ahead of simulated time.
     */
    Cycle traceNow = 0;

    // Hot-path stat handles: one add per validated/committed request.
    StatSet::Counter &stVuAborts;
    StatSet::Counter &stOwnerHits;
    StatSet::Counter &stStalledRequests;
    StatSet::Counter &stCommitMsgs;
    StatSet::Counter &stAbortMsgs;
    StatSet::Counter &stStallGrants;
};

} // namespace getm

#endif // GETM_CORE_GETM_PARTITION_HH
