#include "core/getm_core_tm.hh"

#include <bit>
#include <map>

#include "common/debug.hh"
#include "common/log.hh"

namespace getm {

void
GetmCoreTm::txAccess(Warp &warp, bool is_store, const LaneAddrs &addrs,
                     const LaneVals &vals, LaneMask lanes, std::uint8_t rd)
{
    (void)rd;
    LaneMask intra_aborts = 0;
    LaneMask remote = 0;
    Addr intra_addr = invalidAddr;

    for (LaneId lane = 0; lane < warpSize; ++lane) {
        if (!(lanes & (1u << lane)))
            continue;
        const Addr addr = addrs[lane];
        // Eager intra-warp conflict detection against sibling lanes.
        // The aborting lane's own claims are released immediately so a
        // surviving lane always exists (otherwise two lanes with
        // symmetric access patterns would abort each other forever).
        if (warp.iwcd.checkAndRecord(lane, addr, is_store)) {
            intra_aborts |= 1u << lane;
            if (intra_addr == invalidAddr)
                intra_addr = core.granuleOf(addr);
            if (ObsSink *obs = core.observer())
                obs->conflictEvent(
                    AbortReason::IntraWarp, core.granuleOf(addr),
                    core.addressMap().partitionOf(addr), core.now());
            if (ObsSink *tracer = core.tracer())
                tracer->txConflict(warp.gwid, warp.gwid,
                                   AbortReason::IntraWarp,
                                   core.granuleOf(addr),
                                   core.addressMap().partitionOf(addr),
                                   core.now());
            warp.iwcd.dropLane(lane);
            stIntraWarpAborts.add();
            continue;
        }
        if (is_store) {
            warp.logs[lane].addWrite(addr, vals[lane]);
            remote |= 1u << lane;
        } else {
            if (auto own = warp.logs[lane].findWrite(addr)) {
                // Read-own-write: satisfied from the local redo log; the
                // granule is already reserved by this warp.
                core.writebackLane(warp, lane, *own);
                warp.logs[lane].addRead(addr, *own);
            } else {
                warp.logs[lane].addRead(addr, 0);
                remote |= 1u << lane;
            }
        }
    }

    if (intra_aborts)
        core.abortTxLanes(warp, intra_aborts, warp.warpts,
                          AbortReason::IntraWarp, intra_addr);

    // Group remote accesses by metadata granule; one VU request each.
    LaneMask pending = remote;
    while (pending) {
        const LaneId lead = static_cast<LaneId>(std::countr_zero(pending));
        const Addr granule = core.granuleOf(addrs[lead]);
        MemMsg msg;
        msg.kind = is_store ? MsgKind::GetmTxStore : MsgKind::GetmTxLoad;
        msg.addr = granule;
        msg.wid = warp.gwid;
        msg.warpSlot = warp.slot;
        msg.ts = warp.warpts;
        for (LaneId lane = lead; lane < warpSize; ++lane) {
            if (!(pending & (1u << lane)) ||
                core.granuleOf(addrs[lane]) != granule)
                continue;
            if (is_store)
                msg.ops.push_back({static_cast<std::uint8_t>(lane), granule,
                                   0, 1});
            else
                msg.ops.push_back({static_cast<std::uint8_t>(lane),
                                   addrs[lane], 0, 0});
            pending &= ~(1u << lane);
        }
        msg.bytes = 12; // address + warpts + warp id
        if (ObsSink *tracer = core.tracer())
            tracer->txAccessIssue(warp.gwid, granule, is_store,
                                  core.now());
        core.sendToPartition(std::move(msg));
        if (is_store) {
            ++warp.outstandingTxStores;
            stStoreReqs.add();
        } else {
            ++warp.outstanding;
            stLoadReqs.add();
        }
    }
}

void
GetmCoreTm::onResponse(Warp &warp, const MemMsg &msg)
{
    if (msg.ts > warp.maxObservedTs)
        warp.maxObservedTs = msg.ts;

    LaneMask lanes = 0;
    for (const LaneOp &op : msg.ops)
        lanes |= 1u << op.lane;

    if (ObsSink *tracer = core.tracer())
        tracer->txAccessResponse(warp.gwid, msg.addr, core.now());

    switch (msg.kind) {
      case MsgKind::GetmLoadResp:
        if (msg.outcome == GetmOutcome::Success) {
            for (const LaneOp &op : msg.ops)
                if (!(warp.abortedMask & (1u << op.lane)))
                    core.writebackLane(warp, op.lane, op.value);
        } else {
            // The validation unit decided the reason; it rides back in
            // the response.
            core.abortTxLanes(warp, lanes, msg.ts,
                              static_cast<AbortReason>(msg.reason),
                              msg.addr);
        }
        core.completeBlockingResponse(warp);
        break;
      case MsgKind::GetmStoreResp:
        if (msg.outcome == GetmOutcome::Success) {
            for (const LaneOp &op : msg.ops)
                warp.granted[op.lane][msg.addr] += op.aux;
        } else {
            core.abortTxLanes(warp, lanes, msg.ts,
                              static_cast<AbortReason>(msg.reason),
                              msg.addr);
        }
        core.completeTxStoreAck(warp);
        break;
      default:
        panic("GETM core engine received unexpected message kind %u",
              static_cast<unsigned>(msg.kind));
    }
}

void
GetmCoreTm::txCommitPoint(Warp &warp)
{
    const int txi = warp.transactionIndex();
    if (txi < 0)
        panic("GETM commit point without a transaction");
    const LaneMask committers = warp.stack[txi].mask;

    DTRACE(Core,
           "[core] commitpoint wid=%u ts=%llu committers=%08x "
           "aborted=%08x",
           warp.gwid, static_cast<unsigned long long>(warp.warpts),
           committers, warp.abortedMask);

    // Serialize the write log (committing lanes) and the cleanup log
    // (aborted lanes' granted reservations), grouped per partition.
    std::map<PartitionId, MemMsg> commit_msgs;
    std::map<PartitionId, MemMsg> abort_msgs;

    for (LaneId lane = 0; lane < warpSize; ++lane) {
        const LaneMask bit = 1u << lane;
        if (committers & bit) {
            for (const LogEntry &entry : warp.logs[lane].writeLog()) {
                const PartitionId part =
                    core.addressMap().partitionOf(entry.addr);
                MemMsg &msg = commit_msgs[part];
                msg.ops.push_back({static_cast<std::uint8_t>(lane),
                                   entry.addr, entry.value, entry.count});
            }
        } else if (warp.abortedMask & bit) {
            for (const auto &[granule, count] : warp.granted.forLane(lane)) {
                const PartitionId part =
                    core.addressMap().partitionOf(granule);
                MemMsg &msg = abort_msgs[part];
                msg.ops.push_back({static_cast<std::uint8_t>(lane), granule,
                                   0, count});
            }
        }
    }

    auto finalize = [&](std::map<PartitionId, MemMsg> &msgs, bool commit) {
        for (auto &[part, msg] : msgs) {
            msg.kind = MsgKind::GetmCommit;
            msg.wid = warp.gwid;
            msg.warpSlot = warp.slot;
            msg.flag = commit;
            msg.addr = 0;
            // Commit entries carry <addr, data, count>; abort entries
            // carry <addr, count> only (paper Sec. IV-A).
            msg.bytes = 8 + static_cast<unsigned>(msg.ops.size()) *
                                (commit ? 12 : 8);
            msg.partition = part;
            msg.core = core.id();
            // Route explicitly: addr field is not meaningful here.
            MemMsg out = std::move(msg);
            out.addr = out.ops.front().addr;
            core.sendToPartition(std::move(out));
            (commit ? stCommitMsgs : stCleanupMsgs).add();
        }
    };
    finalize(commit_msgs, true);
    finalize(abort_msgs, false);

    // Eager conflict detection guarantees success: the commit is off the
    // critical path and the warp retires (or retries aborted lanes) now.
    core.retireTxAttempt(warp, committers);
}

} // namespace getm
