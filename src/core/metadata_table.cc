#include "core/metadata_table.hh"

#include <algorithm>

#include "common/log.hh"

namespace getm {

// --------------------------------------------------------------------------
// RecencyBloom
// --------------------------------------------------------------------------

RecencyBloom::RecencyBloom(unsigned entries_per_way, std::uint64_t seed)
    : wayEntries(entries_per_way ? entries_per_way : 1),
      hashes(numWays, seed ^ 0xb100f11eull),
      buckets(static_cast<std::size_t>(numWays) * wayEntries)
{
}

void
RecencyBloom::insert(Addr key, LogicalTs wts, LogicalTs rts)
{
    for (unsigned way = 0; way < numWays; ++way) {
        Bucket &bucket =
            buckets[way * wayEntries + hashes.hash(way, key) % wayEntries];
        // Only ever raise the stored values: collisions may already have
        // contributed a higher timestamp, which must not be lowered.
        bucket.wts = std::max(bucket.wts, wts);
        bucket.rts = std::max(bucket.rts, rts);
    }
}

std::pair<LogicalTs, LogicalTs>
RecencyBloom::lookup(Addr key) const
{
    LogicalTs wts = ~static_cast<LogicalTs>(0);
    LogicalTs rts = ~static_cast<LogicalTs>(0);
    for (unsigned way = 0; way < numWays; ++way) {
        const Bucket &bucket =
            buckets[way * wayEntries + hashes.hash(way, key) % wayEntries];
        wts = std::min(wts, bucket.wts);
        rts = std::min(rts, bucket.rts);
    }
    return {wts, rts};
}

void
RecencyBloom::flush()
{
    std::fill(buckets.begin(), buckets.end(), Bucket{});
}

// --------------------------------------------------------------------------
// MetadataTable
// --------------------------------------------------------------------------

MetadataTable::MetadataTable(std::string name, const Config &config)
    : cfg(config),
      wayEntries(std::max(1u, cfg.preciseEntries / numWays)),
      hashes(numWays, cfg.seed),
      table(static_cast<std::size_t>(numWays) * wayEntries),
      bloom(std::max(1u, cfg.bloomEntries / RecencyBloom::numWays),
            cfg.seed),
      kickRng(cfg.seed ^ 0x6b69636bull),
      statSet(std::move(name)),
      stLookups(statSet.addCounter("lookups")),
      stMisses(statSet.addCounter("misses")),
      stEvictionsToBloom(statSet.addCounter("evictions_to_bloom")),
      stCuckooKicks(statSet.addCounter("cuckoo_kicks")),
      stStashInserts(statSet.addCounter("stash_inserts")),
      stOverflowInserts(statSet.addCounter("overflow_inserts")),
      stAccessCycles(statSet.addAverage("access_cycles")),
      stAccessCyclesHist(statSet.addHistogram("access_cycles_hist"))
{
    stash.reserve(cfg.stashEntries);
}

void
MetadataTable::approxInsert(Addr key, LogicalTs wts, LogicalTs rts)
{
    if (cfg.useMaxRegisters) {
        maxRegWts = std::max(maxRegWts, wts);
        maxRegRts = std::max(maxRegRts, rts);
        return;
    }
    bloom.insert(key, wts, rts);
}

std::pair<LogicalTs, LogicalTs>
MetadataTable::approxLookup(Addr key) const
{
    if (cfg.useMaxRegisters)
        return {maxRegWts, maxRegRts};
    return bloom.lookup(key);
}

unsigned
MetadataTable::wayIndex(unsigned way, Addr key) const
{
    return static_cast<unsigned>(hashes.hash(way, key) % wayEntries);
}

TxMetadata *
MetadataTable::slot(unsigned way, unsigned index)
{
    return &table[way * wayEntries + index];
}

TxMetadata *
MetadataTable::findPrecise(Addr key)
{
    for (unsigned way = 0; way < numWays; ++way) {
        TxMetadata *entry = slot(way, wayIndex(way, key));
        if (entry->valid() && entry->key == key)
            return entry;
    }
    for (TxMetadata &entry : stash)
        if (entry.valid() && entry.key == key)
            return &entry;
    auto spilled = overflow.find(key);
    if (spilled != overflow.end())
        return &spilled->second;
    return nullptr;
}

MetaAccess
MetadataTable::access(Addr key)
{
    MetaAccess result;
    if (TxMetadata *hit = findPrecise(key)) {
        result.entry = hit;
        result.cycles = 1; // Ways and stash are probed in parallel.
        result.fromApprox = hit->approxSeeded;
        stLookups.add();
        stAccessCycles.addSample(1.0);
        stAccessCyclesHist.record(1);
        return result;
    }

    // Miss: materialize a precise entry seeded from the approximate
    // table's (safe, overestimated) timestamps.
    const auto [wts, rts] = approxLookup(key);
    TxMetadata fresh;
    fresh.key = key;
    fresh.wts = wts;
    fresh.rts = rts;
    fresh.numWrites = 0;
    fresh.owner = invalidWarp;
    // Nonzero seeded timestamps are overestimates that can cause false
    // conflicts; remember their provenance for abort attribution.
    fresh.approxSeeded = wts != 0 || rts != 0;

    bool overflowed = false;
    Cycle cycles = 0;
    // The displacement walk may itself evict the freshly materialized
    // (still unlocked) entry back into the Bloom filter while placing a
    // displaced victim; its timestamps stay safely overestimated there,
    // so simply re-materialize and retry.
    for (unsigned attempt = 0; attempt < 8 && !result.entry; ++attempt) {
        cycles += insert(fresh, overflowed);
        result.entry = findPrecise(key);
        if (!result.entry) {
            const auto [wts2, rts2] = approxLookup(key);
            fresh.wts = wts2;
            fresh.rts = rts2;
            fresh.approxSeeded = wts2 != 0 || rts2 != 0;
        }
    }
    if (!result.entry) {
        unsigned linear_hits = 0;
        for (const TxMetadata &probe : table)
            if (probe.valid() && probe.key == key)
                ++linear_hits;
        panic("metadata entry vanished after insert (key %#llx, "
              "linear hits %u, occupancy %u/%zu, stash %zu, overflow %zu, "
              "locked %u)",
              static_cast<unsigned long long>(key), linear_hits,
              occupancy(), table.size(), stash.size(), overflow.size(),
              lockedCount());
    }
    result.cycles = cycles;
    result.overflowed = overflowed;
    result.fromApprox = result.entry->approxSeeded;
    stLookups.add();
    stMisses.add();
    stAccessCycles.addSample(static_cast<double>(cycles));
    stAccessCyclesHist.record(cycles);
    return result;
}

Cycle
MetadataTable::insert(TxMetadata incoming, bool &overflowed)
{
    Cycle cycles = 1;
    TxMetadata carry = incoming;
    // Deterministic kick order, randomized per insertion.
    unsigned start_way =
        static_cast<unsigned>(kickRng.below(numWays));

    for (unsigned kick = 0; kick <= cfg.maxKicks; ++kick) {
        // 1. Any empty slot among the carry's candidate ways?
        for (unsigned w = 0; w < numWays; ++w) {
            TxMetadata *candidate = slot(w, wayIndex(w, carry.key));
            if (!candidate->valid()) {
                *candidate = carry;
                return cycles;
            }
        }
        // 2. Any unlocked (evictable) candidate? Evict it to the Bloom
        //    filter; its precise timestamps degrade to approximations.
        //    The key being inserted is protected: a displaced victim's
        //    walk would otherwise immediately bounce it back out.
        for (unsigned w = 0; w < numWays; ++w) {
            TxMetadata *candidate = slot(w, wayIndex(w, carry.key));
            if (!candidate->locked() && candidate->key != incoming.key) {
                approxInsert(candidate->key, candidate->wts,
                             candidate->rts);
                stEvictionsToBloom.add();
                *candidate = carry;
                return cycles;
            }
        }
        // 3. All candidates are locked: displace one and continue the
        //    cuckoo walk (each swap costs a cycle).
        const unsigned w = (start_way + kick) % numWays;
        TxMetadata *victim = slot(w, wayIndex(w, carry.key));
        std::swap(*victim, carry);
        ++cycles;
        stCuckooKicks.add();
    }

    // The walk failed: fall back to the stash.
    if (stash.size() < cfg.stashEntries) {
        stash.push_back(carry);
        stStashInserts.add();
        return cycles;
    }
    // Try to evict an unlocked stash entry.
    for (TxMetadata &entry : stash) {
        if (!entry.locked() && entry.key != incoming.key) {
            approxInsert(entry.key, entry.wts, entry.rts);
            stEvictionsToBloom.add();
            entry = carry;
            stStashInserts.add();
            return cycles;
        }
    }
    // Everything is locked: spill to the overflow area in main memory.
    overflow.emplace(carry.key, carry);
    overflowed = true;
    cycles += cfg.overflowPenalty;
    stOverflowInserts.add();
    return cycles;
}

void
MetadataTable::flush()
{
    for (TxMetadata &entry : table) {
        if (entry.locked())
            panic("flushing a locked metadata entry (%#llx)",
                  static_cast<unsigned long long>(entry.key));
        entry = TxMetadata{};
    }
    for (TxMetadata &entry : stash)
        if (entry.locked())
            panic("flushing a locked stash entry");
    stash.clear();
    for (const auto &[key, entry] : overflow)
        if (entry.locked())
            panic("flushing a locked overflow entry");
    overflow.clear();
    bloom.flush();
    maxRegWts = 0;
    maxRegRts = 0;
    maxTs = 0;
    statSet.inc("flushes");
}

unsigned
MetadataTable::lockedCount() const
{
    unsigned count = 0;
    for (const TxMetadata &entry : table)
        if (entry.valid() && entry.locked())
            ++count;
    for (const TxMetadata &entry : stash)
        if (entry.valid() && entry.locked())
            ++count;
    for (const auto &[key, entry] : overflow)
        if (entry.locked())
            ++count;
    return count;
}

unsigned
MetadataTable::occupancy() const
{
    unsigned count = 0;
    for (const TxMetadata &entry : table)
        if (entry.valid())
            ++count;
    count += static_cast<unsigned>(stash.size());
    count += static_cast<unsigned>(overflow.size());
    return count;
}

} // namespace getm
