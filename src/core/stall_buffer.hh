/**
 * @file
 * GETM stall buffer (paper Fig. 9, Sec. V-B2).
 *
 * Requests that pass the timestamp check but find their target granule
 * reserved by a logically older transaction are queued here instead of
 * aborting. The structure resembles an MSHR: a small number of address
 * lines, each holding a few requests from different warps contending for
 * the same location. When a committing (or aborting) transaction drops a
 * granule's #writes to zero, the queued request with the minimum warpts
 * re-enters the validation unit. A full buffer aborts the requester.
 */

#ifndef GETM_CORE_STALL_BUFFER_HH
#define GETM_CORE_STALL_BUFFER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "tm/messages.hh"

namespace getm {

/**
 * GPU-wide stall-buffer occupancy tracker (Fig. 15 measures the total
 * across all partitions at any instant).
 *
 * add()/remove() are virtual so the parallel cycle loop can install a
 * deferring proxy per partition worker: the transient peak depends on
 * the order partitions touch the shared gauge within a cycle, so
 * worker-side updates are recorded and replayed in partition order at
 * the cycle barrier (docs/PARALLELISM.md). The calls only fire on
 * stall-buffer enqueue/dequeue — far off the per-cycle hot path — so
 * the indirection is free in practice.
 */
struct StallOccupancyTracker
{
    unsigned current = 0;
    unsigned peak = 0;

    virtual ~StallOccupancyTracker() = default;

    virtual void
    add()
    {
        if (++current > peak)
            peak = current;
    }

    virtual void
    remove()
    {
        --current;
    }
};

/** Per-partition stall buffer. */
class StallBuffer
{
  public:
    struct Config
    {
        unsigned lines = 4;          ///< Distinct addresses tracked.
        unsigned entriesPerLine = 4; ///< Requests per address.
    };

    StallBuffer(std::string name, const Config &config);

    /**
     * Try to queue @p msg (a request whose granule is @p key) at cycle
     * @p now; the timestamp is kept so dequeues can report the dwell.
     * @return false if the buffer is full (the caller must abort the
     *         requester).
     */
    bool enqueue(Addr key, MemMsg &&msg, Cycle now = 0);

    /** Any requests waiting on @p key? */
    bool hasWaiters(Addr key) const;

    /**
     * Remove and return the minimum-warpts request waiting on @p key.
     * Must only be called when hasWaiters(key). When @p enqueued_at is
     * non-null it receives the cycle the request entered the buffer.
     */
    MemMsg popOldest(Addr key, Cycle *enqueued_at = nullptr);

    /**
     * The request popOldest(key) would return, without removing it, or
     * nullptr when no request waits on @p key. Lets the release path
     * decide whether the head waiter should re-enter validation or
     * keep waiting on the granule's new owner.
     */
    const MemMsg *peekOldest(Addr key) const;

    /** Visit every queued request (tracer drain before flush()). */
    void forEachWaiter(
        const std::function<void(const MemMsg &, Cycle enqueued_at)>
            &visit) const;

    /** Total queued requests (Fig. 15 metric). */
    unsigned occupancy() const;

    /** Queued requests for @p key (Fig. 16 metric). */
    unsigned waitersOn(Addr key) const;

    /** Drop everything (timestamp rollover). */
    void flush();

    StatSet &stats() { return statSet; }

    /** Attach a GPU-wide occupancy tracker (may be null). */
    void setTracker(StallOccupancyTracker *t) { tracker = t; }

    /** Checkpoint hook: every parked request plus stats. */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(lines, statSet);
    }

  private:
    struct Waiter
    {
        MemMsg msg;
        Cycle enqueuedAt;

        template <class Ar> void ckpt(Ar &ar) { ar(msg, enqueuedAt); }
    };

    struct Line
    {
        Addr key = invalidAddr;
        std::vector<Waiter> entries;

        template <class Ar> void ckpt(Ar &ar) { ar(key, entries); }
    };

    Line *findLine(Addr key);
    const Line *findLine(Addr key) const;

    Config cfg;
    std::vector<Line> lines;
    StallOccupancyTracker *tracker = nullptr;
    StatSet statSet;

    // Hot-path stat handles: enqueue() fires these per stalled request.
    StatSet::Counter &stFullRejections;
    StatSet::Counter &stEnqueues;
    StatSet::Maximum &stOccupancy;
    StatSet::Average &stWaitersPerAddr;
    HistogramData &stWaitersPerAddrHist;
};

} // namespace getm

#endif // GETM_CORE_STALL_BUFFER_HH
