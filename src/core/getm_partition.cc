#include "core/getm_partition.hh"

#include <algorithm>

#include "check/fault.hh"
#include "check/sink.hh"
#include "ckpt/serial.hh"
#include "common/debug.hh"
#include "common/log.hh"

namespace getm {

GetmPartitionUnit::GetmPartitionUnit(PartitionContext &context,
                                     const GetmPartitionConfig &config,
                                     std::string name)
    : ctx(context), cfg(config), meta(name + ".meta", config.meta),
      stall(name + ".stall", config.stall),
      stVuAborts(context.stats().addCounter("getm_vu_aborts")),
      stOwnerHits(context.stats().addCounter("getm_owner_hits")),
      stStalledRequests(context.stats().addCounter("getm_stalled_requests")),
      stCommitMsgs(context.stats().addCounter("getm_commit_msgs")),
      stAbortMsgs(context.stats().addCounter("getm_abort_msgs")),
      stStallGrants(context.stats().addCounter("getm_stall_grants"))
{
}

Cycle
GetmPartitionUnit::handleRequest(MemMsg &&msg, Cycle now)
{
    // Tracer charges use the true pop cycle, not the serialized
    // now + busy offsets threaded through processCommit/releaseWaiters:
    // the tracer's per-warp cursor must never run ahead of simulated
    // time or the exact-sum invariant breaks (see TxTracer::charge).
    traceNow = now;
    switch (msg.kind) {
      case MsgKind::GetmTxLoad:
      case MsgKind::GetmTxStore:
        return processAccess(std::move(msg), now);
      case MsgKind::GetmCommit:
        return processCommit(msg, now);
      default:
        panic("GETM partition received unexpected message kind %u",
              static_cast<unsigned>(msg.kind));
    }
}

void
GetmPartitionUnit::respondLoad(const MemMsg &msg, Cycle ready, Cycle now)
{
    MemMsg resp;
    resp.kind = MsgKind::GetmLoadResp;
    resp.core = msg.core;
    resp.partition = ctx.partitionId();
    resp.wid = msg.wid;
    resp.warpSlot = msg.warpSlot;
    resp.addr = msg.addr;
    resp.outcome = GetmOutcome::Success;
    Cycle extra = 0;
    for (const LaneOp &op : msg.ops) {
        // Data is bound at the serialization point (now), not delivery.
        const std::uint32_t value = ctx.memory().read(op.addr);
        if (CheckSink *cs = ctx.check())
            cs->readObserved(msg.wid, op.lane, op.addr, value);
        resp.ops.push_back({op.lane, op.addr, value, 0});
        extra = std::max(
            extra, ctx.accessLlc(op.addr, /*is_write=*/false, now));
    }
    resp.bytes = 8 + 4 * static_cast<unsigned>(resp.ops.size());
    ctx.scheduleToCore(std::move(resp), ready + extra);
}

void
GetmPartitionUnit::respondStoreAck(const MemMsg &msg, Cycle ready)
{
    MemMsg resp;
    resp.kind = MsgKind::GetmStoreResp;
    resp.core = msg.core;
    resp.partition = ctx.partitionId();
    resp.wid = msg.wid;
    resp.warpSlot = msg.warpSlot;
    resp.addr = msg.addr;
    resp.outcome = GetmOutcome::Success;
    resp.ops = msg.ops; // echoes (lane, granule, -, count) for bookkeeping
    resp.bytes = 8;
    ctx.scheduleToCore(std::move(resp), ready);
}

void
GetmPartitionUnit::respondAbort(const MemMsg &msg, LogicalTs observed,
                                Cycle ready, AbortReason reason,
                                Addr granule, Cycle now)
{
    MemMsg resp;
    resp.kind = msg.kind == MsgKind::GetmTxLoad ? MsgKind::GetmLoadResp
                                                : MsgKind::GetmStoreResp;
    resp.core = msg.core;
    resp.partition = ctx.partitionId();
    resp.wid = msg.wid;
    resp.warpSlot = msg.warpSlot;
    resp.addr = msg.addr;
    resp.outcome = GetmOutcome::Abort;
    resp.ts = observed; // the abort cause; the core restarts later than it
    resp.reason = static_cast<std::uint8_t>(reason);
    resp.ops = msg.ops;
    resp.bytes = 12;
    stVuAborts.add();
    if (ObsSink *sink = ctx.obs())
        sink->conflictEvent(reason, granule, ctx.partitionId(), now);
    if (ObsSink *tracer = ctx.trace())
        tracer->txAccessDecision(msg.wid, msg.addr, ctx.partitionId(),
                                 /*ok=*/false, now, ready);
    ctx.scheduleToCore(std::move(resp), ready);
}

Cycle
GetmPartitionUnit::processAccess(MemMsg &&msg, Cycle now)
{
    const bool is_load = msg.kind == MsgKind::GetmTxLoad;
    const Addr granule = granuleOf(msg.addr);
    const LogicalTs warpts = msg.ts;

    MetaAccess ma = meta.access(granule);
    TxMetadata &entry = *ma.entry;
    Cycle busy = ma.cycles;
    const Cycle ready = now + busy + ctx.llcLatency();
    const LogicalTs observed = std::max(entry.wts, entry.rts);
    meta.noteTimestamp(warpts);

    DTRACE(Getm,
           "[%8llu] P%u %s wid=%u ts=%llu g=%#llx "
           "(wts=%llu rts=%llu nw=%u own=%d)",
           static_cast<unsigned long long>(now), ctx.partitionId(),
           is_load ? "LD" : "ST", msg.wid,
           static_cast<unsigned long long>(warpts),
           static_cast<unsigned long long>(granule),
           static_cast<unsigned long long>(entry.wts),
           static_cast<unsigned long long>(entry.rts), entry.numWrites,
           static_cast<int>(entry.owner));

    std::uint32_t count = 0;
    for (const LaneOp &op : msg.ops)
        count += op.aux;

    if (entry.locked() && entry.owner == msg.wid) {
        // Owner hit: the warp already holds the reservation.
        if (is_load) {
            entry.rts = std::max(entry.rts, warpts);
            meta.noteTimestamp(entry.rts);
            respondLoad(msg, ready, now);
        } else {
            entry.numWrites += count;
            respondStoreAck(msg, ready);
        }
        if (ObsSink *tracer = ctx.trace())
            tracer->txAccessDecision(msg.wid, msg.addr, ctx.partitionId(),
                                     /*ok=*/true, now, ready);
        entry.approxSeeded = false;
        stOwnerHits.add();
        return busy;
    }

    const LogicalTs limit =
        is_load ? entry.wts : std::max(entry.wts, entry.rts);
    if (warpts < limit) {
        // Conflict with a logically later transaction: abort. Classify
        // the hazard for attribution: a conflict against Bloom-seeded
        // timestamps is (very likely) a false positive the approximate
        // table manufactured; precise-entry conflicts split by hazard
        // kind (load vs. newer write = RAW order violation; store vs.
        // newer write/read = WAW/WAR).
        AbortReason reason;
        if (ma.fromApprox)
            reason = AbortReason::BloomFalsePositive;
        else if (is_load)
            reason = AbortReason::RawTs;
        else if (warpts < entry.wts)
            reason = AbortReason::WawTs;
        else
            reason = AbortReason::WarTs;
        FaultInjector *fi = ctx.faults();
        if (!is_load && !entry.locked() && fi &&
            fi->fire(FaultKind::ForceStoreGrant)) {
            // Injected isolation break: grant the conflicting store
            // anyway. All reservation bookkeeping is kept so the commit
            // unit stays consistent -- only the timestamp check lied.
            entry.wts = warpts + 1;
            entry.owner = msg.wid;
            entry.numWrites += count;
            meta.noteTimestamp(entry.wts);
            respondStoreAck(msg, ready);
            if (ObsSink *tracer = ctx.trace())
                tracer->txAccessDecision(msg.wid, msg.addr,
                                         ctx.partitionId(), /*ok=*/true,
                                         now, ready);
            entry.approxSeeded = false;
            return busy;
        }
        // Genealogy: when the granule is still reserved, the current
        // owner is the logically-later transaction this one lost to.
        if (ObsSink *tracer = ctx.trace())
            tracer->txConflict(msg.wid,
                               entry.locked() ? entry.owner : invalidWarp,
                               reason, granule, ctx.partitionId(), now);
        respondAbort(msg, observed, ready, reason, granule, now);
        return busy;
    }

    if (entry.locked()) {
        // Reserved by a logically older transaction: queue until it
        // commits (or abort if the stall buffer is full).
        MemMsg queued = std::move(msg);
        const MemMsg probe = queued; // copy for potential abort response
        if (!stall.enqueue(granule, std::move(queued), now)) {
            if (ObsSink *tracer = ctx.trace())
                tracer->txConflict(probe.wid, entry.owner,
                                   AbortReason::StallBufferFull, granule,
                                   ctx.partitionId(), now);
            respondAbort(probe, observed, ready,
                         AbortReason::StallBufferFull, granule, now);
        } else {
            stStalledRequests.add();
            if (ObsSink *sink = ctx.obs())
                sink->stallEvent(AbortReason::LockedByWriter, granule,
                                 ctx.partitionId(),
                                 stall.waitersOn(granule), now);
            if (ObsSink *tracer = ctx.trace())
                tracer->txStallEnter(probe.wid, granule,
                                     ctx.partitionId(), traceNow);
        }
        return busy;
    }

    // Conflict-free access.
    if (is_load) {
        FaultInjector *fi = ctx.faults();
        if (!(fi && fi->fire(FaultKind::SkipRtsBump))) {
            entry.rts = std::max(entry.rts, warpts);
            meta.noteTimestamp(entry.rts);
        }
        respondLoad(msg, ready, now);
    } else {
        entry.wts = warpts + 1;
        entry.owner = msg.wid;
        entry.numWrites += count;
        meta.noteTimestamp(entry.wts);
        respondStoreAck(msg, ready);
    }
    if (ObsSink *tracer = ctx.trace())
        tracer->txAccessDecision(msg.wid, msg.addr, ctx.partitionId(),
                                 /*ok=*/true, now, ready);
    entry.approxSeeded = false;
    return busy;
}

Cycle
GetmPartitionUnit::processCommit(const MemMsg &msg, Cycle now)
{
    // The commit unit coalesces writes and streams them into the LLC at
    // cfg.commitBytesPerCycle; its occupancy gates the partition port.
    const bool committing = msg.flag;
    Cycle busy = std::max<Cycle>(
        1, (msg.bytes + cfg.commitBytesPerCycle - 1) /
               cfg.commitBytesPerCycle);

    for (const LaneOp &op : msg.ops) {
        Addr granule;
        DTRACE(Getm, "[%8llu] P%u %s wid=%u addr=%#llx val=%u cnt=%u",
               static_cast<unsigned long long>(now), ctx.partitionId(),
               committing ? "COMMIT" : "CLEAN", msg.wid,
               static_cast<unsigned long long>(op.addr), op.value,
               op.aux);
        if (committing) {
            FaultInjector *fi = ctx.faults();
            if (fi && fi->fire(FaultKind::DropCommitWrite)) {
                // Injected lost write: neither memory nor the checker's
                // shadow sees it; only the commit intent remembers.
            } else {
                std::uint32_t value = op.value;
                if (fi && fi->fire(FaultKind::CorruptCommit))
                    value ^= 1u;
                ctx.memory().write(op.addr, value);
                if (CheckSink *cs = ctx.check())
                    cs->writeApplied(msg.wid, op.lane, op.addr, value);
            }
            ctx.accessLlc(op.addr, /*is_write=*/true, now);
            granule = granuleOf(op.addr);
        } else {
            granule = op.addr;
        }
        TxMetadata *entry = meta.findPrecise(granule);
        if (!entry)
            panic("commit for unknown granule %#llx",
                  static_cast<unsigned long long>(granule));
        if (entry->owner != msg.wid)
            panic("commit by non-owner warp %u (owner %u)", msg.wid,
                  entry->owner);
        if (entry->numWrites < op.aux)
            panic("#writes underflow on granule %#llx",
                  static_cast<unsigned long long>(granule));
        entry->numWrites -= op.aux;
        if (entry->numWrites == 0) {
            FaultInjector *fi = ctx.faults();
            if (fi && fi->fire(FaultKind::LeakLock)) {
                // Injected liveness fault: the reservation is never
                // released, so the granule stays locked by a retired
                // warp and its waiters park forever. The watchdog /
                // no-future-events guard must catch the result.
            } else {
                entry->owner = invalidWarp;
                busy += releaseWaiters(granule, now + busy);
            }
        }
    }
    (committing ? stCommitMsgs : stAbortMsgs).add();
    return busy;
}

Cycle
GetmPartitionUnit::releaseWaiters(Addr granule, Cycle now)
{
    Cycle busy = 0;
    // Grant stalled requests in warpts order. Once a granted store
    // re-reserves the granule, keep re-validating waiters that are not
    // simply younger strangers: a waiter from the reserving warp itself
    // is an owner hit that nothing else would ever wake (the warp
    // cannot commit while one of its own requests is parked on its own
    // granule), and an equal-or-older waiter now fails the timestamp
    // check and must abort now — leaving it parked lets two
    // equal-warpts warps camp behind each other's fresh reservations in
    // a waits-for cycle no commit breaks. Only a strictly younger
    // waiter from another warp may legally stay parked: its wake-up is
    // the new owner's commit, and the owner is strictly older.
    while (stall.hasWaiters(granule)) {
        TxMetadata *entry = meta.findPrecise(granule);
        if (entry && entry->locked()) {
            const MemMsg *head = stall.peekOldest(granule);
            if (head->wid != entry->owner && head->ts >= entry->wts)
                break;
        }
        Cycle enqueued_at = 0;
        MemMsg queued = stall.popOldest(granule, &enqueued_at);
        if (ObsSink *sink = ctx.obs())
            sink->stallRelease(ctx.partitionId(), now + busy);
        if (ObsSink *tracer = ctx.trace())
            tracer->txStallExit(queued.wid, granule, ctx.partitionId(),
                                enqueued_at, traceNow);
        busy += processAccess(std::move(queued), now + busy);
        stStallGrants.add();
    }
    return busy;
}

void
GetmPartitionUnit::flushForRollover(Cycle now)
{
    traceNow = now;
    // Balance the sink's live-occupancy gauge for dropped waiters.
    if (ObsSink *sink = ctx.obs())
        for (unsigned i = stall.occupancy(); i > 0; --i)
            sink->stallRelease(ctx.partitionId(), 0);
    // Close the tracer's open dwell spans: rollover drops the waiters,
    // so their stall time ends here (the cores restart them fresh).
    if (ObsSink *tracer = ctx.trace())
        stall.forEachWaiter([&](const MemMsg &msg, Cycle enqueued_at) {
            tracer->txStallExit(msg.wid, granuleOf(msg.addr),
                                ctx.partitionId(), enqueued_at, now);
        });
    stall.flush();
    meta.flush();
}

void
GetmPartitionUnit::ckptSave(ckpt::Writer &ar)
{
    ar(meta, stall, traceNow);
}

void
GetmPartitionUnit::ckptLoad(ckpt::Reader &ar)
{
    ar(meta, stall, traceNow);
}

} // namespace getm
