/**
 * @file
 * GETM transaction-metadata storage (paper Fig. 8, Sec. V-B1).
 *
 * Two structures are looked up in parallel:
 *
 *  - a *precise* table for addresses touched by in-flight transactions:
 *    a 4-way cuckoo hash table (one H3 hash per way) with a small
 *    fully-associative stash and an unbounded overflow area (modelled as
 *    a list in main memory, like Unbounded TM's spill space);
 *  - an *approximate* table for everything else: a 4-way recency Bloom
 *    filter that stores the maximum wts/rts of all evicted addresses
 *    mapping to each bucket and answers with the minimum across ways --
 *    always an overestimate, which may cause extra aborts but never
 *    violates correctness.
 *
 * Only entries not reserved by any transaction (#writes == 0) may be
 * evicted from the precise table into the Bloom filter; this is what
 * lets cuckoo insertion chains terminate quickly (Fig. 13).
 */

#ifndef GETM_CORE_METADATA_TABLE_HH
#define GETM_CORE_METADATA_TABLE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/h3.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace getm {

/** Per-granule GETM metadata (paper Table I). */
struct TxMetadata
{
    Addr key = invalidAddr;  ///< Granule base address.
    LogicalTs wts = 0;       ///< 1 + logical time of the last write.
    LogicalTs rts = 0;       ///< Logical time of the last read.
    std::uint32_t numWrites = 0; ///< Outstanding write reservations.
    GlobalWarpId owner = invalidWarp; ///< Reservation owner.
    /**
     * The timestamps were seeded from the approximate (Bloom) table and
     * no precise access has refreshed them yet: a conflict against them
     * may be a Bloom false positive (attribution only; no protocol
     * behaviour depends on this).
     */
    bool approxSeeded = false;

    bool valid() const { return key != invalidAddr; }
    bool locked() const { return numWrites != 0; }

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(key, wts, rts, numWrites, owner, approxSeeded);
    }
};

/** The recency Bloom filter for evicted (inactive) metadata. */
class RecencyBloom
{
  public:
    /**
     * @param entries_per_way Buckets in each of the four ways.
     * @param seed            H3 seed.
     */
    RecencyBloom(unsigned entries_per_way, std::uint64_t seed);

    /** Fold an evicted entry's timestamps into the filter. */
    void insert(Addr key, LogicalTs wts, LogicalTs rts);

    /** Overestimated (wts, rts) for @p key. */
    std::pair<LogicalTs, LogicalTs> lookup(Addr key) const;

    /** Reset (timestamp rollover). */
    void flush();

    unsigned entriesPerWay() const { return wayEntries; }
    static constexpr unsigned numWays = 4;

    /** Checkpoint hook: bucket contents (hashes come from the seed). */
    template <class Ar> void ckpt(Ar &ar) { ar(buckets); }

  private:
    struct Bucket
    {
        LogicalTs wts = 0;
        LogicalTs rts = 0;

        template <class Ar> void ckpt(Ar &ar) { ar(wts, rts); }
    };

    unsigned wayEntries;
    H3Family hashes;
    std::vector<Bucket> buckets; ///< numWays * wayEntries, way-major.
};

/** Result of a metadata lookup-or-insert. */
struct MetaAccess
{
    TxMetadata *entry = nullptr;
    /** Modelled structure-access cycles (>= 1; Fig. 13 metric). */
    Cycle cycles = 1;
    /** The access had to use the in-memory overflow area. */
    bool overflowed = false;
    /** The entry's timestamps are Bloom-seeded overestimates. */
    bool fromApprox = false;
};

/**
 * The precise metadata table: 4-way cuckoo + stash + overflow, with
 * evictions into a RecencyBloom.
 */
class MetadataTable
{
  public:
    struct Config
    {
        /** Total precise entries in this partition's table. */
        unsigned preciseEntries = 1024;
        /** Stash entries (paper: 4). */
        unsigned stashEntries = 4;
        /** Total Bloom buckets in this partition (across 4 ways). */
        unsigned bloomEntries = 256;
        /** Max cuckoo displacement chain before falling to the stash. */
        unsigned maxKicks = 8;
        /** Modelled extra cycles for an overflow-area access. */
        Cycle overflowPenalty = 20;
        /**
         * Ablation (paper Sec. V-B1): track evicted timestamps in a
         * single pair of max registers instead of the recency Bloom
         * filter. The paper found this makes "version numbers increase
         * very quickly", causing many extra aborts -- which is why the
         * Bloom filter exists.
         */
        bool useMaxRegisters = false;
        std::uint64_t seed = 0x6e74;
    };

    MetadataTable(std::string name, const Config &config);

    /**
     * Look up the metadata for @p key, materializing a precise entry if
     * absent (seeded from the Bloom filter's overestimates). The
     * returned pointer stays valid until the next access() or flush().
     */
    MetaAccess access(Addr key);

    /** Probe without materializing (returns nullptr when not precise). */
    TxMetadata *findPrecise(Addr key);

    /** Drop everything (timestamp rollover). Locked entries forbidden. */
    void flush();

    /** Number of valid precise entries (incl. stash and overflow). */
    unsigned occupancy() const;

    /** Number of entries currently holding write reservations. */
    unsigned lockedCount() const;

    /** Highest timestamp ever stored (rollover detection). */
    LogicalTs maxTimestamp() const { return maxTs; }

    /** Record a timestamp write (keeps maxTimestamp fresh). */
    void
    noteTimestamp(LogicalTs ts)
    {
        if (ts > maxTs)
            maxTs = ts;
    }

    StatSet &stats() { return statSet; }

    /** Checkpoint hook: every storage structure plus the kick RNG
     *  (H3 hash matrices are reconstructed from the config seed). */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(table, stash, overflow, bloom, maxRegWts, maxRegRts, maxTs,
           kickRng, statSet);
    }

    static constexpr unsigned numWays = 4;

  private:
    unsigned wayIndex(unsigned way, Addr key) const;
    TxMetadata *slot(unsigned way, unsigned index);

    /**
     * Insert @p incoming into the cuckoo structure; returns modelled
     * cycles spent and sets @p overflowed if the overflow area was used.
     * On return, the entry is reachable via findPrecise().
     */
    Cycle insert(TxMetadata incoming, bool &overflowed);

    /** Record an eviction in the approximate structure. */
    void approxInsert(Addr key, LogicalTs wts, LogicalTs rts);
    /** Overestimated (wts, rts) for a key absent from the precise table. */
    std::pair<LogicalTs, LogicalTs> approxLookup(Addr key) const;

    Config cfg;
    unsigned wayEntries;
    H3Family hashes;
    std::vector<TxMetadata> table; ///< numWays * wayEntries, way-major.
    std::vector<TxMetadata> stash;
    /**
     * Spill space in main memory. Keyed by granule so a spilled entry
     * is found in O(1) instead of a linear scan; the modelled
     * overflowPenalty cycles are unchanged (timing is a model input,
     * not a property of the host container). Values are node-stable:
     * pointers returned by findPrecise() survive other insertions.
     */
    std::unordered_map<Addr, TxMetadata> overflow;
    RecencyBloom bloom;
    LogicalTs maxRegWts = 0; ///< Max-registers ablation state.
    LogicalTs maxRegRts = 0;
    LogicalTs maxTs = 0;
    Rng kickRng;
    StatSet statSet;

    // Hot-path stat handles: access() fires these per metadata lookup.
    StatSet::Counter &stLookups;
    StatSet::Counter &stMisses;
    StatSet::Counter &stEvictionsToBloom;
    StatSet::Counter &stCuckooKicks;
    StatSet::Counter &stStashInserts;
    StatSet::Counter &stOverflowInserts;
    StatSet::Average &stAccessCycles;
    HistogramData &stAccessCyclesHist;
};

} // namespace getm

#endif // GETM_CORE_METADATA_TABLE_HH
