#include "core/stall_buffer.hh"

#include "common/log.hh"

namespace getm {

StallBuffer::StallBuffer(std::string name, const Config &config)
    : cfg(config), lines(config.lines), statSet(std::move(name)),
      stFullRejections(statSet.addCounter("full_rejections")),
      stEnqueues(statSet.addCounter("enqueues")),
      stOccupancy(statSet.addMaximum("occupancy")),
      stWaitersPerAddr(statSet.addAverage("waiters_per_addr")),
      stWaitersPerAddrHist(statSet.addHistogram("waiters_per_addr_hist"))
{
    for (Line &line : lines)
        line.entries.reserve(cfg.entriesPerLine);
}

StallBuffer::Line *
StallBuffer::findLine(Addr key)
{
    for (Line &line : lines)
        if (line.key == key && !line.entries.empty())
            return &line;
    return nullptr;
}

const StallBuffer::Line *
StallBuffer::findLine(Addr key) const
{
    for (const Line &line : lines)
        if (line.key == key && !line.entries.empty())
            return &line;
    return nullptr;
}

bool
StallBuffer::enqueue(Addr key, MemMsg &&msg, Cycle now)
{
    Line *line = findLine(key);
    if (!line) {
        for (Line &candidate : lines) {
            if (candidate.entries.empty()) {
                line = &candidate;
                line->key = key;
                break;
            }
        }
    }
    if (!line || line->entries.size() >= cfg.entriesPerLine) {
        stFullRejections.add();
        return false;
    }
    line->entries.push_back(Waiter{std::move(msg), now});
    if (tracker)
        tracker->add();
    stEnqueues.add();
    stOccupancy.track(occupancy());
    stWaitersPerAddr.addSample(
        static_cast<double>(line->entries.size()));
    stWaitersPerAddrHist.record(line->entries.size());
    return true;
}

bool
StallBuffer::hasWaiters(Addr key) const
{
    return findLine(key) != nullptr;
}

MemMsg
StallBuffer::popOldest(Addr key, Cycle *enqueued_at)
{
    Line *line = findLine(key);
    if (!line)
        panic("popOldest on empty stall-buffer line");
    std::size_t best = 0;
    for (std::size_t i = 1; i < line->entries.size(); ++i)
        if (line->entries[i].msg.ts < line->entries[best].msg.ts)
            best = i;
    MemMsg msg = std::move(line->entries[best].msg);
    if (enqueued_at)
        *enqueued_at = line->entries[best].enqueuedAt;
    line->entries.erase(line->entries.begin() +
                        static_cast<std::ptrdiff_t>(best));
    if (tracker)
        tracker->remove();
    return msg;
}

const MemMsg *
StallBuffer::peekOldest(Addr key) const
{
    const Line *line = findLine(key);
    if (!line)
        return nullptr;
    std::size_t best = 0;
    for (std::size_t i = 1; i < line->entries.size(); ++i)
        if (line->entries[i].msg.ts < line->entries[best].msg.ts)
            best = i;
    return &line->entries[best].msg;
}

void
StallBuffer::forEachWaiter(
    const std::function<void(const MemMsg &, Cycle)> &visit) const
{
    for (const Line &line : lines)
        for (const Waiter &waiter : line.entries)
            visit(waiter.msg, waiter.enqueuedAt);
}

unsigned
StallBuffer::occupancy() const
{
    unsigned total = 0;
    for (const Line &line : lines)
        total += static_cast<unsigned>(line.entries.size());
    return total;
}

unsigned
StallBuffer::waitersOn(Addr key) const
{
    const Line *line = findLine(key);
    return line ? static_cast<unsigned>(line->entries.size()) : 0;
}

void
StallBuffer::flush()
{
    for (Line &line : lines) {
        if (tracker)
            for (std::size_t i = 0; i < line.entries.size(); ++i)
                tracker->remove();
        line.entries.clear();
    }
}

} // namespace getm
