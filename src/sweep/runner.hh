/**
 * @file
 * The sweep runner: executes every point of a manifest on a worker
 * pool and merges the per-point metrics into one sweep document.
 *
 * Each point is one fully isolated in-process simulation (its own
 * GpuSystem, workload, and stats; the library keeps no mutable global
 * state -- see docs/SWEEPS.md "Concurrency audit"), so N points run
 * concurrently on N threads and produce bit-identical results to a
 * serial run.
 *
 * On-disk layout under SweepOptions::dir:
 *
 *     points/<id>.json       the point's getm-metrics document
 *     points/<id>.trace.json the point's tx trace (tracing runs only)
 *     state/<id>.hash        the point's resolved spec hash (hex)
 *     sweep.json             the merged document (schema getm-sweep)
 *
 * Resume: a point is skipped when its state/<id>.hash content equals
 * the freshly computed hash and points/<id>.json still validates as
 * JSON. Any change to the point's resolved configuration (manifest
 * edit, new default, different base config) changes the hash and
 * forces a rerun of exactly the affected points.
 *
 * The merged document embeds every per-point metrics document
 * verbatim under "points", keyed and sorted by point id, so its bytes
 * depend only on the set of point results -- never on worker count or
 * completion order. `sweep_determinism_check` (ctest) asserts this.
 */

#ifndef GETM_SWEEP_RUNNER_HH
#define GETM_SWEEP_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/schema_version.hh"
#include "sweep/manifest.hh"

namespace getm {

/** Sweep execution knobs (the getm-sweep CLI maps onto this 1:1). */
struct SweepOptions
{
    std::string dir = "sweep-out"; ///< Working directory (created).
    std::string outPath;           ///< Merged doc; "" = <dir>/sweep.json.
    unsigned jobs = 0;             ///< Workers; 0 = hardware threads.
    bool force = false;            ///< Ignore resume state, rerun all.
    bool progress = true;          ///< Per-point progress on stderr.

    /**
     * Trace every Nth transaction of every point (0 = off). Applied
     * after enumeration, so point ids, spec hashes, and the merged
     * sweep.json stay byte-identical to an untraced run; each traced
     * point additionally writes points/<id>.trace.json.
     */
    std::uint64_t traceTx = 0;

    /**
     * Worker threads *inside* each point's cycle loop (GpuConfig
     * simThreads; 1 = serial). Like traceTx, applied after enumeration
     * and excluded from provenance — the parallel loop is
     * byte-deterministic — so hashes and sweep.json never change with
     * it. The runner clamps jobs x simThreads to the hardware thread
     * count (docs/PARALLELISM.md, "Budgeting threads").
     */
    unsigned simThreads = 1;

    /**
     * Deterministic manifest partitioning (docs/DURABILITY.md): with
     * shardCount > 0, run only the points whose enumeration index i
     * satisfies i % shardCount == shardIndex. Enumeration order is a
     * pure function of the manifest, so the same `--shard i/N` always
     * names the same points on every host; mergeSweep() reassembles
     * the byte-identical single-process sweep.json from the shards'
     * working directories.
     */
    unsigned shardIndex = 0;
    unsigned shardCount = 0; ///< 0 = unsharded.

    /**
     * Per-point crash-resume: checkpoint each point's machine every N
     * simulated cycles (0 = off) into DIR/ckpt/<id>. A rerun or a
     * retry whose snapshot directory holds a completed checkpoint
     * restores from it instead of re-simulating from cycle 0, and a
     * point that dies in a typed SimError parks its final snapshot
     * next to the failure document (points/<id>.final.ckpt). Like
     * traceTx/simThreads, excluded from provenance, so spec hashes
     * and every emitted document are unchanged by the cadence.
     */
    std::uint64_t ckptEvery = 0;
};

/** One point that ended in a typed simulation failure. */
struct SweepFailure
{
    std::string id;      ///< Point id.
    std::string status;  ///< "deadlock", "livelock", "timeout", ...
    std::string message; ///< The failure's one-line description.
    unsigned attempts = 1; ///< Tries made (1 + granted retries).
};

/** What happened, for reporting and tests. */
struct SweepOutcome
{
    unsigned total = 0;    ///< Points enumerated.
    unsigned ran = 0;      ///< Simulated this invocation.
    unsigned skipped = 0;  ///< Resumed from matching state.
    unsigned unverified = 0; ///< Ran but failed workload verification.
    unsigned failed = 0;   ///< Ended in a typed simulation failure.
    std::vector<SweepFailure> failures; ///< One row per failed point.

    /**
     * A SIGINT/SIGTERM stop was honoured: in-flight points wound down
     * at their next cycle boundary (final checkpoints written when
     * enabled), queued points never started, and no merged document
     * was produced. Completed per-point results are on disk, so the
     * identical rerun resumes where the stop landed.
     */
    bool interrupted = false;
};

/** Current getm-sweep merged-document schema (version in
 *  obs/schema_version.hh, shared with tools/check_metrics.py). */
inline constexpr const char *sweepSchemaName = "getm-sweep";

/**
 * Run @p manifest under @p options: enumerate, execute (or resume)
 * every point, and write the merged document.
 *
 * Simulation pathologies (SimError: deadlock, livelock, cycle limit,
 * wall timeout, bad config) are isolated per point: the point is
 * retried up to the manifest's `retries` budget with a
 * deterministically reseeded workload, and if every attempt fails it
 * is recorded as a failure document (getm-metrics with a "failure"
 * section) in points/<id>.json while the rest of the sweep continues.
 * Failed points store a poisoned state hash, so a resumed sweep
 * always reruns exactly them. Successful points are byte-identical to
 * a failure-free sweep.
 *
 * @return false with @p error set on enumeration or I/O failure.
 *         Workload verification failures do not fail the sweep; they
 *         are counted in @p outcome and flagged per point in the
 *         metrics (`meta.verified`). Typed simulation failures are
 *         likewise counted (`failed`, `failures`) without failing the
 *         sweep; callers decide the exit status.
 */
bool runSweep(const SweepManifest &manifest, const SweepOptions &options,
              SweepOutcome &outcome, std::string &error);

/**
 * Reassemble the merged document of @p manifest from the working
 * directories of completed shard runs (`--merge`): every enumerated
 * point's points/<id>.json is located across @p shard_dirs (searched
 * in order), validated, and spliced with the exact head and ordering
 * runSweep() uses — so the output is byte-identical to the
 * single-process sweep.json. Writes to options.outPath (or
 * options.dir + "/sweep.json").
 *
 * @return false with @p error set when a point's document is missing
 *         from every shard directory or fails validation. Failure
 *         documents are counted in @p outcome like a live run.
 */
bool mergeSweep(const SweepManifest &manifest, const SweepOptions &options,
                const std::vector<std::string> &shard_dirs,
                SweepOutcome &outcome, std::string &error);

} // namespace getm

#endif // GETM_SWEEP_RUNNER_HH
