/**
 * @file
 * Declarative sweep manifests: enumerate (config x workload x protocol)
 * simulation points from one `key = value` file.
 *
 * A manifest reuses the config-file syntax (`#` comments, `key =
 * value`) but any axis key may carry a comma- or space-separated list
 * of values; the sweep is the cross product of every axis, in the
 * order the axes appear in the file. Example:
 *
 *     # configs/sweeps/fig14_sensitivity.sweep
 *     name = fig14-sensitivity
 *     scale = 1.0
 *     bench = HT-H HT-M HT-L ATM BH
 *     protocol = getm
 *     getm_precise_entries = 2048 4096 8192
 *
 * Recognized keys:
 *
 *   name          sweep identity (required; stamped into sweep.json)
 *   config        base GpuConfig file applied to every point, resolved
 *                 relative to the manifest's directory
 *   bench         axis: workload specs — Table III names, `all` (= the
 *                 nine paper benches), or parameterized tokens like
 *                 `YCSB:theta=0.95` (colon-separated key=value pairs;
 *                 see workloads/registry.hh). Default HT-H
 *   protocol      axis: getm warptm warptm-el eapg fglock (def. getm)
 *   scale         axis: workload scale factors (default 0.25)
 *   seed          axis: workload/GPU seeds (default 7)
 *   concurrency   axis: tx warps/core; `opt` = the Table IV optimum
 *                 for each (bench, protocol), 0 = unlimited (def. opt)
 *   max_cycles    per-point simulation safety bound (scalar)
 *   retries       per-point retry budget after a typed simulation
 *                 failure; each retry reseeds deterministically
 *                 (scalar, default 0; see docs/ROBUSTNESS.md)
 *   <config key>  axis: any `gpu/config_file.hh` key (getm_granule,
 *                 cores, llc_latency, ...) with one or more values
 *
 * Every point gets a stable, filesystem-safe id: the bench spec token
 * and protocol joined with `+`, followed by one `key=value` token per
 * axis that has more than one value in the manifest (so single-value
 * axes keep ids short). Examples: `HT-H+getm+getm_precise_entries=2048`,
 * `YCSB:theta=0.95+getm` (`:` and `=` are legal in POSIX file names).
 *
 * Points also carry a 64-bit FNV-1a hash over their *resolved*
 * specification (bench, protocol, scale, seed, thread count is
 * excluded -- it derives from scale -- plus the full flattened
 * GpuConfig provenance and the metrics schema version). The hash is
 * what makes sweeps resumable: a completed point is skipped on rerun
 * iff its stored hash still matches, so editing a default or a config
 * axis invalidates exactly the points it affects.
 */

#ifndef GETM_SWEEP_MANIFEST_HH
#define GETM_SWEEP_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gpu/gpu_config.hh"
#include "workloads/registry.hh"

namespace getm {

/** One fully resolved simulation point of a sweep. */
struct SweepPoint
{
    std::string id;        ///< Stable filesystem-safe identity.
    WorkloadSpec bench;
    ProtocolKind protocol;
    double scale = 0.25;
    std::uint64_t seed = 7;
    /** Resolved tx-warp limit (the Table IV optimum already applied). */
    unsigned txWarpLimit = 0;
    std::uint64_t maxCycles = 2'000'000'000ull;
    /** Retry budget after a typed failure (manifest `retries`). Not
     *  part of specHash(): it changes scheduling, not the spec. */
    unsigned retries = 0;
    /** Complete GPU configuration for this point (protocol, seed and
     *  txWarpLimit already folded in). */
    GpuConfig config;

    /** Resume hash over the resolved spec (see file comment). */
    std::uint64_t specHash() const;
    /** specHash() as fixed-width hex, as stored in state files. */
    std::string specHashHex() const;
};

/** A parsed manifest: axes in declaration order. */
class SweepManifest
{
  public:
    /**
     * Parse manifest @p text. @p manifest_dir anchors relative
     * `config =` paths (pass the manifest file's directory, or "" for
     * the working directory).
     * @return false with @p error set on syntax errors, unknown keys,
     *         unknown bench/protocol names, or empty axes.
     */
    bool parse(const std::string &text, const std::string &manifest_dir,
               std::string &error);

    /** Load @p path and parse it. */
    bool load(const std::string &path, std::string &error);

    /**
     * Cross-product every axis into concrete points, in manifest
     * declaration order (row-major, later axes fastest).
     * @return false with @p error set if a base/axis config key fails
     *         to apply.
     */
    bool enumerate(std::vector<SweepPoint> &points,
                   std::string &error) const;

    const std::string &name() const { return sweepName; }

    /** FNV-1a hash of the manifest's canonical axis spec. */
    std::uint64_t manifestHash() const;

  private:
    struct Axis
    {
        std::string key;
        std::vector<std::string> values; ///< Raw tokens, validated.
    };

    const Axis *findAxis(const std::string &key) const;

    std::string sweepName;
    std::string baseConfigPath; ///< Already anchored; "" = none.
    std::uint64_t maxCycles = 2'000'000'000ull;
    unsigned retries = 0;
    std::vector<Axis> axes; ///< Declaration order, including defaults.
};

/** 64-bit FNV-1a over @p text (the sweep subsystem's stable hash). */
std::uint64_t fnv1a64(std::string_view text);

} // namespace getm

#endif // GETM_SWEEP_MANIFEST_HH
