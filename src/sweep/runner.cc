#include "sweep/runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "ckpt/checkpoint.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/stop_flag.hh"
#include "common/thread_pool.hh"
#include "gpu/config_file.hh"
#include "gpu/gpu_system.hh"
#include "obs/metrics.hh"
#include "obs/tx_tracer.hh"
#include "workloads/workload.hh"

namespace getm {

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return false;
    std::stringstream buffer;
    buffer << file.rdbuf();
    out = buffer.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content,
          std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        error = "cannot open " + path + " for writing";
        return false;
    }
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    std::fclose(f);
    if (!ok)
        error = "short write to " + path;
    return ok;
}

/**
 * Simulate one point end to end and render its metrics document.
 * With @p trace_tx nonzero the run is traced and @p trace_doc receives
 * the standalone trace document; the returned metrics document stays
 * byte-identical to an untraced run (the TracerInvisible guarantee is
 * what makes enabling tracing on an existing sweep safe).
 */
/** Per-point durability wiring, resolved by the retry loop. */
struct PointCkpt
{
    std::uint64_t every = 0;  ///< Periodic cadence (0 = off).
    std::string dir;          ///< DIR/ckpt/<id> when enabled.
    bool restore = false;     ///< Resume from dir's latest snapshot.
    std::uint64_t killAt = 0; ///< GETM_SWEEP_KILL_AT crash hook.
};

std::string
simulatePoint(const SweepPoint &point, std::uint64_t trace_tx,
              unsigned sim_threads, const PointCkpt &ckpt,
              bool &verified, std::string &trace_doc)
{
    GpuConfig run_cfg = point.config;
    run_cfg.traceTx = trace_tx;
    // Like traceTx: applied after enumeration and absent from
    // provenance, so hashes and documents cannot depend on it (the
    // parallel loop is byte-deterministic; docs/PARALLELISM.md).
    run_cfg.simThreads = sim_threads;
    // Same contract for the durability knobs (docs/DURABILITY.md): a
    // checkpointed, restored, or crash-cut point hashes and reports
    // identically to an uninterrupted one.
    run_cfg.ckptEvery = ckpt.every;
    run_cfg.ckptDir = ckpt.dir;
    if (ckpt.restore)
        run_cfg.restorePath = ckpt.dir;
    run_cfg.ckptKillAt = ckpt.killAt;
    GpuSystem gpu(run_cfg);
    auto workload = makeWorkload(point.bench, point.scale, point.seed);
    workload->setup(gpu, point.protocol == ProtocolKind::FgLock);
    RunResult result =
        gpu.run(workload->kernel(), workload->numThreads(),
                point.maxCycles);

    // Label hot granules the workload can explain (zipf head keys, hot
    // accounts). Workloads without a mapping leave rows untouched, so
    // their documents keep their exact pre-label bytes.
    for (HotAddrRow &row : result.obs.hotAddrs)
        workload->addrInfo(row.addr, row.label);

    std::string why;
    verified = workload->verify(gpu, why);
    // A runtime-checker violation is a verification failure: the point
    // ran, but its execution was provably not serializable/opaque.
    if (result.check.totalViolations)
        verified = false;

    MetricsMeta meta;
    meta.bench = point.bench.token();
    meta.protocol = protocolName(point.protocol);
    meta.scale = point.scale;
    meta.seed = point.seed;
    meta.threads = workload->numThreads();
    meta.verified = verified;
    meta.cycles = result.cycles;
    meta.commits = result.commits;
    meta.aborts = result.aborts;
    meta.txExecCycles = result.txExecCycles;
    meta.txWaitCycles = result.txWaitCycles;
    meta.xbarFlits = result.xbarFlits;
    meta.rollovers = result.rollovers;
    meta.maxLogicalTs = result.maxLogicalTs;
    meta.config = configProvenance(point.config);
    if (result.check.totalViolations) {
        meta.checkLevel = checkLevelName(result.check.level);
        for (unsigned i = 0;
             i < static_cast<unsigned>(ViolationKind::Count); ++i)
            if (result.check.byKind[i])
                meta.checkViolations.emplace_back(
                    violationKindName(static_cast<ViolationKind>(i)),
                    result.check.byKind[i]);
    }
    if (result.obs.txTrace.enabled) {
        trace_doc = txTraceToJson(result.obs.txTrace, point.id);
        // The trace lives in the side file only: stripping it here
        // keeps the per-point document — and thus sweep.json — byte
        // identical to an untraced sweep.
        result.obs.txTrace.enabled = false;
    }
    return metricsToJson(meta, result.stats, result.obs);
}

/** Identity-only meta for a point that never produced a result. */
MetricsMeta
failureMeta(const SweepPoint &point)
{
    MetricsMeta meta;
    meta.bench = point.bench.token();
    meta.protocol = protocolName(point.protocol);
    meta.scale = point.scale;
    meta.seed = point.seed;
    meta.config = configProvenance(point.config);
    return meta;
}

/**
 * Deterministic reseed for retry attempt @p attempt (1-based): fold
 * the attempt index into the workload/GPU seed so the retry explores
 * a different schedule while staying reproducible.
 */
SweepPoint
reseededPoint(const SweepPoint &point, unsigned attempt)
{
    SweepPoint retry = point;
    retry.seed = point.seed + 0x9e3779b97f4a7c15ull * attempt;
    retry.config.seed = retry.seed;
    return retry;
}

/**
 * Deterministic capped-backoff delay before retry @p attempt
 * (1-based): 25 ms doubling to a 400 ms ceiling, plus up to one
 * period of jitter folded from the point's spec hash and the attempt
 * index -- never the wall clock -- so shard retry schedules are
 * byte-reproducible across hosts and reruns (docs/DURABILITY.md).
 */
std::chrono::milliseconds
retryBackoff(const SweepPoint &point, unsigned attempt)
{
    constexpr std::uint64_t base_ms = 25, cap_ms = 400;
    const unsigned shift = attempt > 4 ? 4u : attempt - 1;
    const std::uint64_t period = std::min(cap_ms, base_ms << shift);
    // splitmix64-style fold of (specHash, attempt): decorrelates the
    // retry pacing of points that share a manifest without consulting
    // a clock or any global RNG.
    std::uint64_t x = point.specHash() + 0x9e3779b97f4a7c15ull * attempt;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return std::chrono::milliseconds(period + x % (period + 1));
}

/** Does @p dir hold a completed snapshot to resume from? */
bool
checkpointAvailable(const std::string &dir)
{
    std::error_code ec;
    return std::filesystem::exists(
        dir + "/" + ckpt::latestPointerName, ec);
}

/**
 * The failure status of a per-point document, or "" for a successful
 * metrics document. Our own compact writer emits the failure head as
 * `"failure":{"status":"<token>"`, so a substring probe is exact; the
 * merge path uses this to rebuild the failures section byte-for-byte.
 */
std::string
failureStatusOf(const std::string &doc)
{
    static constexpr char marker[] = "\"failure\":{\"status\":\"";
    const auto pos = doc.find(marker);
    if (pos == std::string::npos)
        return "";
    const auto start = pos + sizeof(marker) - 1;
    const auto end = doc.find('"', start);
    return end == std::string::npos ? std::string()
                                    : doc.substr(start, end - start);
}

/**
 * Duplicate ids would make two workers (or two shards) race on the
 * same result files; reject them before anything runs.
 */
bool
checkUniqueIds(const std::vector<SweepPoint> &points, std::string &error)
{
    std::map<std::string, unsigned> seen;
    for (const SweepPoint &point : points)
        if (++seen[point.id] == 2) {
            error = "manifest enumerates duplicate point id '" +
                    point.id + "'";
            return false;
        }
    return true;
}

/**
 * Render and write the merged document: fixed head, failures keyed
 * and sorted by id, then every per-point document spliced in id
 * order. Shared by the live run and --merge so both emit identical
 * bytes from identical point results. @p load fetches one validated
 * per-point document by id; @p failures must already be sorted.
 */
bool
writeMergedDocument(
    const SweepManifest &manifest,
    const std::vector<SweepPoint> &points,
    const std::function<bool(const std::string &, std::string &,
                             std::string &)> &load,
    const std::vector<SweepFailure> &failures,
    const std::string &out_path, std::string &error)
{
    std::map<std::string, const SweepPoint *> by_id;
    for (const SweepPoint &point : points)
        by_id.emplace(point.id, &point);

    JsonWriter w;
    w.beginObject();
    w.member("schema", sweepSchemaName);
    w.member("version", sweepSchemaVersion);
    w.key("sweep").beginObject();
    w.member("name", manifest.name());
    {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(
                          manifest.manifestHash()));
        w.member("manifest_hash", buf);
    }
    w.member("num_points",
             static_cast<std::uint64_t>(points.size()));
    // Emitted only when something failed, so a clean sweep document
    // stays byte-identical to the pre-failure-isolation format.
    if (!failures.empty()) {
        w.member("num_failed",
                 static_cast<std::uint64_t>(failures.size()));
        w.key("failures").beginObject();
        for (const SweepFailure &f : failures)
            w.member(f.id, f.status);
        w.endObject();
    }
    w.endObject();
    w.key("points").beginObject();
    for (const auto &[id, point] : by_id) {
        std::string doc;
        if (!load(id, doc, error))
            return false;
        w.key(id).rawValue(doc);
        (void)point;
    }
    w.endObject();
    w.endObject();

    return writeFile(out_path, w.take() + "\n", error);
}

} // namespace

bool
runSweep(const SweepManifest &manifest, const SweepOptions &options,
         SweepOutcome &outcome, std::string &error)
{
    outcome = SweepOutcome{};

    std::vector<SweepPoint> points;
    if (!manifest.enumerate(points, error))
        return false;
    if (points.empty()) {
        error = "manifest enumerates no points";
        return false;
    }
    if (!checkUniqueIds(points, error))
        return false;

    // Deterministic sharding: keep every shardCount-th point starting
    // at shardIndex. Enumeration order is a pure function of the
    // manifest, so shard membership is identical on every host; a
    // shard larger than the point count legitimately runs nothing.
    if (options.shardCount) {
        if (options.shardIndex >= options.shardCount) {
            error = "shard index " +
                    std::to_string(options.shardIndex) +
                    " out of range (shard count " +
                    std::to_string(options.shardCount) + ")";
            return false;
        }
        std::vector<SweepPoint> mine;
        for (std::size_t i = 0; i < points.size(); ++i)
            if (i % options.shardCount == options.shardIndex)
                mine.push_back(std::move(points[i]));
        points.swap(mine);
    }
    outcome.total = static_cast<unsigned>(points.size());

    const std::string points_dir = options.dir + "/points";
    const std::string state_dir = options.dir + "/state";
    std::error_code fs_error;
    std::filesystem::create_directories(points_dir, fs_error);
    std::filesystem::create_directories(state_dir, fs_error);
    if (fs_error) {
        error = "cannot create " + options.dir + ": " +
                fs_error.message();
        return false;
    }

    const unsigned jobs =
        options.jobs ? options.jobs : ThreadPool::defaultThreads();

    // Budget nested parallelism: jobs x simThreads worker threads
    // would oversubscribe the machine, so clamp the per-point thread
    // count. Harmless to results (any simThreads value is
    // byte-identical); purely a throughput guard.
    unsigned sim_threads = options.simThreads ? options.simThreads : 1;
    const unsigned hw = ThreadPool::defaultThreads();
    if (sim_threads > 1 && jobs * sim_threads > hw) {
        const unsigned clamped = std::max(1u, hw / jobs);
        debugLog("sweep: clamping sim threads %u -> %u (%u jobs x %u "
                 "threads exceeds %u hardware threads)",
                 sim_threads, clamped, jobs, sim_threads, hw);
        sim_threads = clamped;
    }

    std::mutex mtx; // Guards outcome counters, progress, first error.
    std::string worker_error;
    unsigned done = 0;
    const auto t0 = std::chrono::steady_clock::now();

    auto progress = [&](const char *verb, const SweepPoint &point,
                        const std::string &detail) {
        if (!options.progress)
            return;
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::fprintf(stderr, "[%3u/%3u %6.1fs] %-8s %s%s\n", done,
                     outcome.total, secs, verb, point.id.c_str(),
                     detail.c_str());
    };

    // Crash-test hook for the kill-resume CI job: forwarded to every
    // point as GpuConfig::ckptKillAt, so the first point to reach the
    // cycle vanishes mid-sweep exactly like an OOM-kill would.
    std::uint64_t kill_at = 0;
    if (const char *kill = std::getenv("GETM_SWEEP_KILL_AT"))
        kill_at = std::strtoull(kill, nullptr, 10);

    auto runPoint = [&](const SweepPoint &point) {
        if (stopRequested()) {
            // Queued behind the stop: never started, nothing written;
            // the rerun picks it up.
            std::lock_guard<std::mutex> lock(mtx);
            outcome.interrupted = true;
            return;
        }

        const std::string json_path =
            points_dir + "/" + point.id + ".json";
        const std::string hash_path =
            state_dir + "/" + point.id + ".hash";
        const std::string hash = point.specHashHex();

        if (!options.force) {
            std::string stored, doc, ignored;
            if (readFile(hash_path, stored) && stored == hash &&
                readFile(json_path, doc) &&
                jsonValidate(doc, ignored)) {
                std::lock_guard<std::mutex> lock(mtx);
                ++outcome.skipped;
                ++done;
                progress("resume", point, "");
                return;
            }
        }

        // Per-point durability wiring (docs/DURABILITY.md): periodic
        // snapshots land in DIR/ckpt/<id>. Any completed snapshot
        // there -- left behind by a killed sweep invocation or by a
        // failed attempt's final checkpoint -- makes the next attempt
        // resume mid-kernel instead of re-simulating from cycle 0.
        PointCkpt ckpt;
        ckpt.every = options.ckptEvery;
        if (ckpt.every)
            ckpt.dir = options.dir + "/ckpt/" + point.id;
        ckpt.killAt = kill_at;

        // Attempt the point, retrying after a typed simulation
        // failure up to the manifest's `retries` budget. Failures are
        // isolated: the point records a failure document and the
        // sweep continues.
        bool verified = false;
        std::string doc;
        std::string trace_doc;
        MetricsFailure failure;
        bool failed = false;
        bool interrupted = false;
        unsigned attempt = 0;
        for (;;) {
            ckpt.restore =
                ckpt.every != 0 && checkpointAvailable(ckpt.dir);
            // With checkpointing on, every attempt keeps the original
            // seed -- the snapshot's config hash covers it -- so
            // resume-from-checkpoint replaces the classic reseed
            // schedule; reseeds still apply when nothing can resume.
            const SweepPoint &attempt_point =
                (attempt == 0 || ckpt.every)
                    ? point
                    : reseededPoint(point, attempt);
            bool checkpoint_fault = false;
            try {
                doc = simulatePoint(attempt_point, options.traceTx,
                                    sim_threads, ckpt, verified,
                                    trace_doc);
                failed = false;
            } catch (const SimError &e) {
                failed = true;
                failure.status = simErrorStatus(e.kind());
                failure.kind = simErrorKindName(e.kind());
                failure.message = e.diagnostic().message;
                failure.diagnosticJson = e.diagnostic().toJson();
                interrupted = e.kind() == SimErrorKind::Interrupt;
                checkpoint_fault =
                    e.kind() == SimErrorKind::Checkpoint;
            } catch (const std::exception &e) {
                failed = true;
                failure.status = "error";
                failure.kind = "INTERNAL";
                failure.message = e.what();
                failure.diagnosticJson.clear();
            }
            if (interrupted || !failed || attempt >= point.retries ||
                stopRequested())
                break;
            // A snapshot the decoder rejects must not poison every
            // retry: drop the checkpoint directory and cold-start.
            if (checkpoint_fault && !ckpt.dir.empty()) {
                std::error_code ec;
                std::filesystem::remove_all(ckpt.dir, ec);
            }
            ++attempt;
            {
                std::lock_guard<std::mutex> lock(mtx);
                progress("retry", point,
                         "  attempt " + std::to_string(attempt + 1) +
                             " after " + failure.status);
            }
            std::this_thread::sleep_for(retryBackoff(point, attempt));
        }
        if (interrupted) {
            // A graceful stop is not a point failure: write no
            // document and no state hash, so the identical rerun
            // reruns this point -- resuming from the final checkpoint
            // the stop just flushed when checkpointing is on.
            std::lock_guard<std::mutex> lock(mtx);
            outcome.interrupted = true;
            ++done;
            progress("stopped", point, "  (interrupted)");
            return;
        }
        if (failed) {
            failure.attempts = attempt + 1;
            doc = failureToJson(failureMeta(point), failure);
        }
        if (ckpt.every) {
            if (failed && checkpointAvailable(ckpt.dir)) {
                // Park the newest snapshot next to the failure
                // document (the SimError path wrote it moments ago),
                // so a stuck run degrades into a resumable one even
                // after the checkpoint directory is cleaned.
                try {
                    const std::string last =
                        ckpt::resolveRestorePath(ckpt.dir);
                    std::error_code ec;
                    std::filesystem::copy_file(
                        last,
                        points_dir + "/" + point.id + ".final.ckpt",
                        std::filesystem::copy_options::
                            overwrite_existing,
                        ec);
                } catch (const SimError &) {
                    // Best effort; the diagnostic stays primary.
                }
            } else if (!failed) {
                // A completed point no longer needs its snapshots.
                std::error_code ec;
                std::filesystem::remove_all(ckpt.dir, ec);
            }
        }

        // A failed point stores a poisoned hash, so resume always
        // reruns it (the failure document stays inspectable
        // meanwhile); a successful point stores the real hash.
        std::string write_error;
        bool wrote =
            writeFile(json_path, doc, write_error) &&
            writeFile(hash_path, failed ? "failed " + hash : hash,
                      write_error);
        if (wrote && !failed && !trace_doc.empty())
            wrote = writeFile(points_dir + "/" + point.id +
                                  ".trace.json",
                              trace_doc, write_error);

        std::lock_guard<std::mutex> lock(mtx);
        ++outcome.ran;
        ++done;
        if (failed) {
            ++outcome.failed;
            outcome.failures.push_back(SweepFailure{
                point.id, failure.status, failure.message,
                attempt + 1});
        } else if (!verified) {
            ++outcome.unverified;
        }
        if (!wrote && worker_error.empty())
            worker_error = write_error;
        progress(failed ? "FAILED" : "ran", point,
                 failed ? "  (" + failure.status + ")"
                 : verified ? ""
                            : "  VERIFICATION FAILED");
    };

    if (jobs <= 1) {
        for (const SweepPoint &point : points)
            runPoint(point);
    } else {
        ThreadPool pool(jobs);
        for (const SweepPoint &point : points)
            pool.submit([&runPoint, &point] { runPoint(point); });
        pool.wait();
    }

    if (!worker_error.empty()) {
        error = worker_error;
        return false;
    }

    // A graceful stop leaves the sweep partial: skip the merge (some
    // points have no documents yet) and let the caller report
    // 128+signal. The identical rerun resumes -- completed points
    // skip by hash, interrupted points restore from their final
    // checkpoints.
    if (outcome.interrupted || stopRequested()) {
        outcome.interrupted = true;
        return true;
    }

    // Merge, keyed and sorted by id so the bytes are independent of
    // execution order and worker count.
    std::sort(outcome.failures.begin(), outcome.failures.end(),
              [](const SweepFailure &a, const SweepFailure &b) {
                  return a.id < b.id;
              });
    auto load = [&](const std::string &id, std::string &doc,
                    std::string &load_error) {
        if (!readFile(points_dir + "/" + id + ".json", doc)) {
            load_error = "missing point result for " + id;
            return false;
        }
        // Trust but verify: a corrupt per-point file must not produce
        // a corrupt merged document.
        std::string json_error;
        if (!jsonValidate(doc, json_error)) {
            load_error = "point " + id + ": " + json_error;
            return false;
        }
        return true;
    };
    const std::string out_path = options.outPath.empty()
                                     ? options.dir + "/sweep.json"
                                     : options.outPath;
    return writeMergedDocument(manifest, points, load,
                               outcome.failures, out_path, error);
}

bool
mergeSweep(const SweepManifest &manifest, const SweepOptions &options,
           const std::vector<std::string> &shard_dirs,
           SweepOutcome &outcome, std::string &error)
{
    outcome = SweepOutcome{};
    if (shard_dirs.empty()) {
        error = "--merge needs at least one shard directory";
        return false;
    }

    std::vector<SweepPoint> points;
    if (!manifest.enumerate(points, error))
        return false;
    outcome.total = static_cast<unsigned>(points.size());
    if (points.empty()) {
        error = "manifest enumerates no points";
        return false;
    }
    if (!checkUniqueIds(points, error))
        return false;

    // Locate and validate every point's document up front, rebuilding
    // the failures head from the documents themselves, so the merged
    // bytes match a single-process run of the same point results.
    std::map<std::string, std::string> docs;
    for (const SweepPoint &point : points) {
        std::string doc;
        bool found = false;
        for (const std::string &dir : shard_dirs)
            if (readFile(dir + "/points/" + point.id + ".json", doc)) {
                found = true;
                break;
            }
        if (!found) {
            error = "point " + point.id + " not found under any shard "
                    "directory (is every shard complete?)";
            return false;
        }
        std::string json_error;
        if (!jsonValidate(doc, json_error)) {
            error = "point " + point.id + ": " + json_error;
            return false;
        }
        const std::string status = failureStatusOf(doc);
        if (!status.empty()) {
            ++outcome.failed;
            outcome.failures.push_back(SweepFailure{
                point.id, status,
                "recorded in the shard's failure document", 0});
        } else if (doc.find("\"verified\":false") !=
                   std::string::npos) {
            ++outcome.unverified;
        }
        docs.emplace(point.id, std::move(doc));
    }
    std::sort(outcome.failures.begin(), outcome.failures.end(),
              [](const SweepFailure &a, const SweepFailure &b) {
                  return a.id < b.id;
              });

    const std::string out_path = options.outPath.empty()
                                     ? options.dir + "/sweep.json"
                                     : options.outPath;
    std::error_code fs_error;
    const auto parent =
        std::filesystem::path(out_path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, fs_error);

    auto load = [&](const std::string &id, std::string &doc,
                    std::string &load_error) {
        (void)load_error;
        doc = docs.at(id);
        return true;
    };
    return writeMergedDocument(manifest, points, load,
                               outcome.failures, out_path, error);
}

} // namespace getm
