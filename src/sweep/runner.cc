#include "sweep/runner.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "gpu/config_file.hh"
#include "gpu/gpu_system.hh"
#include "obs/metrics.hh"
#include "workloads/workload.hh"

namespace getm {

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return false;
    std::stringstream buffer;
    buffer << file.rdbuf();
    out = buffer.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content,
          std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        error = "cannot open " + path + " for writing";
        return false;
    }
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    std::fclose(f);
    if (!ok)
        error = "short write to " + path;
    return ok;
}

/** Simulate one point end to end and render its metrics document. */
std::string
simulatePoint(const SweepPoint &point, bool &verified)
{
    GpuSystem gpu(point.config);
    auto workload = makeWorkload(point.bench, point.scale, point.seed);
    workload->setup(gpu, point.protocol == ProtocolKind::FgLock);
    const RunResult result =
        gpu.run(workload->kernel(), workload->numThreads(),
                point.maxCycles);

    std::string why;
    verified = workload->verify(gpu, why);
    // A runtime-checker violation is a verification failure: the point
    // ran, but its execution was provably not serializable/opaque.
    if (result.check.totalViolations)
        verified = false;

    MetricsMeta meta;
    meta.bench = benchName(point.bench);
    meta.protocol = protocolName(point.protocol);
    meta.scale = point.scale;
    meta.seed = point.seed;
    meta.threads = workload->numThreads();
    meta.verified = verified;
    meta.cycles = result.cycles;
    meta.commits = result.commits;
    meta.aborts = result.aborts;
    meta.txExecCycles = result.txExecCycles;
    meta.txWaitCycles = result.txWaitCycles;
    meta.xbarFlits = result.xbarFlits;
    meta.rollovers = result.rollovers;
    meta.maxLogicalTs = result.maxLogicalTs;
    meta.config = configProvenance(point.config);
    if (result.check.totalViolations) {
        meta.checkLevel = checkLevelName(result.check.level);
        for (unsigned i = 0;
             i < static_cast<unsigned>(ViolationKind::Count); ++i)
            if (result.check.byKind[i])
                meta.checkViolations.emplace_back(
                    violationKindName(static_cast<ViolationKind>(i)),
                    result.check.byKind[i]);
    }
    return metricsToJson(meta, result.stats, result.obs);
}

} // namespace

bool
runSweep(const SweepManifest &manifest, const SweepOptions &options,
         SweepOutcome &outcome, std::string &error)
{
    outcome = SweepOutcome{};

    std::vector<SweepPoint> points;
    if (!manifest.enumerate(points, error))
        return false;
    outcome.total = static_cast<unsigned>(points.size());
    if (points.empty()) {
        error = "manifest enumerates no points";
        return false;
    }

    // Duplicate ids would make two workers race on the same result
    // files; reject them before anything runs.
    {
        std::map<std::string, unsigned> seen;
        for (const SweepPoint &point : points)
            if (++seen[point.id] == 2) {
                error = "manifest enumerates duplicate point id '" +
                        point.id + "'";
                return false;
            }
    }

    const std::string points_dir = options.dir + "/points";
    const std::string state_dir = options.dir + "/state";
    std::error_code fs_error;
    std::filesystem::create_directories(points_dir, fs_error);
    std::filesystem::create_directories(state_dir, fs_error);
    if (fs_error) {
        error = "cannot create " + options.dir + ": " +
                fs_error.message();
        return false;
    }

    const unsigned jobs =
        options.jobs ? options.jobs : ThreadPool::defaultThreads();

    std::mutex mtx; // Guards outcome counters, progress, first error.
    std::string worker_error;
    unsigned done = 0;
    const auto t0 = std::chrono::steady_clock::now();

    auto progress = [&](const char *verb, const SweepPoint &point,
                        const std::string &detail) {
        if (!options.progress)
            return;
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::fprintf(stderr, "[%3u/%3u %6.1fs] %-8s %s%s\n", done,
                     outcome.total, secs, verb, point.id.c_str(),
                     detail.c_str());
    };

    auto runPoint = [&](const SweepPoint &point) {
        const std::string json_path =
            points_dir + "/" + point.id + ".json";
        const std::string hash_path =
            state_dir + "/" + point.id + ".hash";
        const std::string hash = point.specHashHex();

        if (!options.force) {
            std::string stored, doc, ignored;
            if (readFile(hash_path, stored) && stored == hash &&
                readFile(json_path, doc) &&
                jsonValidate(doc, ignored)) {
                std::lock_guard<std::mutex> lock(mtx);
                ++outcome.skipped;
                ++done;
                progress("resume", point, "");
                return;
            }
        }

        bool verified = false;
        const std::string doc = simulatePoint(point, verified);

        std::string write_error;
        const bool wrote = writeFile(json_path, doc, write_error) &&
                           writeFile(hash_path, hash, write_error);

        std::lock_guard<std::mutex> lock(mtx);
        ++outcome.ran;
        ++done;
        if (!verified)
            ++outcome.unverified;
        if (!wrote && worker_error.empty())
            worker_error = write_error;
        progress("ran", point,
                 verified ? "" : "  VERIFICATION FAILED");
    };

    if (jobs <= 1) {
        for (const SweepPoint &point : points)
            runPoint(point);
    } else {
        ThreadPool pool(jobs);
        for (const SweepPoint &point : points)
            pool.submit([&runPoint, &point] { runPoint(point); });
        pool.wait();
    }

    if (!worker_error.empty()) {
        error = worker_error;
        return false;
    }

    // Merge, keyed and sorted by id so the bytes are independent of
    // execution order and worker count.
    std::map<std::string, const SweepPoint *> by_id;
    for (const SweepPoint &point : points)
        by_id.emplace(point.id, &point);

    JsonWriter w;
    w.beginObject();
    w.member("schema", sweepSchemaName);
    w.member("version", sweepSchemaVersion);
    w.key("sweep").beginObject();
    w.member("name", manifest.name());
    {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(
                          manifest.manifestHash()));
        w.member("manifest_hash", buf);
    }
    w.member("num_points",
             static_cast<std::uint64_t>(points.size()));
    w.endObject();
    w.key("points").beginObject();
    for (const auto &[id, point] : by_id) {
        std::string doc;
        if (!readFile(points_dir + "/" + id + ".json", doc)) {
            error = "missing point result for " + id;
            return false;
        }
        // Trust but verify: a corrupt per-point file must not produce
        // a corrupt merged document.
        std::string json_error;
        if (!jsonValidate(doc, json_error)) {
            error = "point " + id + ": " + json_error;
            return false;
        }
        w.key(id).rawValue(doc);
        (void)point;
    }
    w.endObject();
    w.endObject();

    const std::string out_path = options.outPath.empty()
                                     ? options.dir + "/sweep.json"
                                     : options.outPath;
    return writeFile(out_path, w.take() + "\n", error);
}

} // namespace getm
