#include "sweep/runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "common/json.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/thread_pool.hh"
#include "gpu/config_file.hh"
#include "gpu/gpu_system.hh"
#include "obs/metrics.hh"
#include "obs/tx_tracer.hh"
#include "workloads/workload.hh"

namespace getm {

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return false;
    std::stringstream buffer;
    buffer << file.rdbuf();
    out = buffer.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content,
          std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        error = "cannot open " + path + " for writing";
        return false;
    }
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    std::fclose(f);
    if (!ok)
        error = "short write to " + path;
    return ok;
}

/**
 * Simulate one point end to end and render its metrics document.
 * With @p trace_tx nonzero the run is traced and @p trace_doc receives
 * the standalone trace document; the returned metrics document stays
 * byte-identical to an untraced run (the TracerInvisible guarantee is
 * what makes enabling tracing on an existing sweep safe).
 */
std::string
simulatePoint(const SweepPoint &point, std::uint64_t trace_tx,
              unsigned sim_threads, bool &verified,
              std::string &trace_doc)
{
    GpuConfig run_cfg = point.config;
    run_cfg.traceTx = trace_tx;
    // Like traceTx: applied after enumeration and absent from
    // provenance, so hashes and documents cannot depend on it (the
    // parallel loop is byte-deterministic; docs/PARALLELISM.md).
    run_cfg.simThreads = sim_threads;
    GpuSystem gpu(run_cfg);
    auto workload = makeWorkload(point.bench, point.scale, point.seed);
    workload->setup(gpu, point.protocol == ProtocolKind::FgLock);
    RunResult result =
        gpu.run(workload->kernel(), workload->numThreads(),
                point.maxCycles);

    // Label hot granules the workload can explain (zipf head keys, hot
    // accounts). Workloads without a mapping leave rows untouched, so
    // their documents keep their exact pre-label bytes.
    for (HotAddrRow &row : result.obs.hotAddrs)
        workload->addrInfo(row.addr, row.label);

    std::string why;
    verified = workload->verify(gpu, why);
    // A runtime-checker violation is a verification failure: the point
    // ran, but its execution was provably not serializable/opaque.
    if (result.check.totalViolations)
        verified = false;

    MetricsMeta meta;
    meta.bench = point.bench.token();
    meta.protocol = protocolName(point.protocol);
    meta.scale = point.scale;
    meta.seed = point.seed;
    meta.threads = workload->numThreads();
    meta.verified = verified;
    meta.cycles = result.cycles;
    meta.commits = result.commits;
    meta.aborts = result.aborts;
    meta.txExecCycles = result.txExecCycles;
    meta.txWaitCycles = result.txWaitCycles;
    meta.xbarFlits = result.xbarFlits;
    meta.rollovers = result.rollovers;
    meta.maxLogicalTs = result.maxLogicalTs;
    meta.config = configProvenance(point.config);
    if (result.check.totalViolations) {
        meta.checkLevel = checkLevelName(result.check.level);
        for (unsigned i = 0;
             i < static_cast<unsigned>(ViolationKind::Count); ++i)
            if (result.check.byKind[i])
                meta.checkViolations.emplace_back(
                    violationKindName(static_cast<ViolationKind>(i)),
                    result.check.byKind[i]);
    }
    if (result.obs.txTrace.enabled) {
        trace_doc = txTraceToJson(result.obs.txTrace, point.id);
        // The trace lives in the side file only: stripping it here
        // keeps the per-point document — and thus sweep.json — byte
        // identical to an untraced sweep.
        result.obs.txTrace.enabled = false;
    }
    return metricsToJson(meta, result.stats, result.obs);
}

/** Identity-only meta for a point that never produced a result. */
MetricsMeta
failureMeta(const SweepPoint &point)
{
    MetricsMeta meta;
    meta.bench = point.bench.token();
    meta.protocol = protocolName(point.protocol);
    meta.scale = point.scale;
    meta.seed = point.seed;
    meta.config = configProvenance(point.config);
    return meta;
}

/**
 * Deterministic reseed for retry attempt @p attempt (1-based): fold
 * the attempt index into the workload/GPU seed so the retry explores
 * a different schedule while staying reproducible.
 */
SweepPoint
reseededPoint(const SweepPoint &point, unsigned attempt)
{
    SweepPoint retry = point;
    retry.seed = point.seed + 0x9e3779b97f4a7c15ull * attempt;
    retry.config.seed = retry.seed;
    return retry;
}

} // namespace

bool
runSweep(const SweepManifest &manifest, const SweepOptions &options,
         SweepOutcome &outcome, std::string &error)
{
    outcome = SweepOutcome{};

    std::vector<SweepPoint> points;
    if (!manifest.enumerate(points, error))
        return false;
    outcome.total = static_cast<unsigned>(points.size());
    if (points.empty()) {
        error = "manifest enumerates no points";
        return false;
    }

    // Duplicate ids would make two workers race on the same result
    // files; reject them before anything runs.
    {
        std::map<std::string, unsigned> seen;
        for (const SweepPoint &point : points)
            if (++seen[point.id] == 2) {
                error = "manifest enumerates duplicate point id '" +
                        point.id + "'";
                return false;
            }
    }

    const std::string points_dir = options.dir + "/points";
    const std::string state_dir = options.dir + "/state";
    std::error_code fs_error;
    std::filesystem::create_directories(points_dir, fs_error);
    std::filesystem::create_directories(state_dir, fs_error);
    if (fs_error) {
        error = "cannot create " + options.dir + ": " +
                fs_error.message();
        return false;
    }

    const unsigned jobs =
        options.jobs ? options.jobs : ThreadPool::defaultThreads();

    // Budget nested parallelism: jobs x simThreads worker threads
    // would oversubscribe the machine, so clamp the per-point thread
    // count. Harmless to results (any simThreads value is
    // byte-identical); purely a throughput guard.
    unsigned sim_threads = options.simThreads ? options.simThreads : 1;
    const unsigned hw = ThreadPool::defaultThreads();
    if (sim_threads > 1 && jobs * sim_threads > hw) {
        const unsigned clamped = std::max(1u, hw / jobs);
        debugLog("sweep: clamping sim threads %u -> %u (%u jobs x %u "
                 "threads exceeds %u hardware threads)",
                 sim_threads, clamped, jobs, sim_threads, hw);
        sim_threads = clamped;
    }

    std::mutex mtx; // Guards outcome counters, progress, first error.
    std::string worker_error;
    unsigned done = 0;
    const auto t0 = std::chrono::steady_clock::now();

    auto progress = [&](const char *verb, const SweepPoint &point,
                        const std::string &detail) {
        if (!options.progress)
            return;
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::fprintf(stderr, "[%3u/%3u %6.1fs] %-8s %s%s\n", done,
                     outcome.total, secs, verb, point.id.c_str(),
                     detail.c_str());
    };

    auto runPoint = [&](const SweepPoint &point) {
        const std::string json_path =
            points_dir + "/" + point.id + ".json";
        const std::string hash_path =
            state_dir + "/" + point.id + ".hash";
        const std::string hash = point.specHashHex();

        if (!options.force) {
            std::string stored, doc, ignored;
            if (readFile(hash_path, stored) && stored == hash &&
                readFile(json_path, doc) &&
                jsonValidate(doc, ignored)) {
                std::lock_guard<std::mutex> lock(mtx);
                ++outcome.skipped;
                ++done;
                progress("resume", point, "");
                return;
            }
        }

        // Attempt the point, retrying with a deterministic reseed
        // after a typed simulation failure, up to the manifest's
        // `retries` budget. Failures are isolated: the point records
        // a failure document and the sweep continues.
        bool verified = false;
        std::string doc;
        std::string trace_doc;
        MetricsFailure failure;
        bool failed = false;
        unsigned attempt = 0;
        for (;;) {
            const SweepPoint &attempt_point =
                attempt == 0 ? point : reseededPoint(point, attempt);
            try {
                doc = simulatePoint(attempt_point, options.traceTx,
                                    sim_threads, verified, trace_doc);
                failed = false;
            } catch (const SimError &e) {
                failed = true;
                failure.status = simErrorStatus(e.kind());
                failure.kind = simErrorKindName(e.kind());
                failure.message = e.diagnostic().message;
                failure.diagnosticJson = e.diagnostic().toJson();
            } catch (const std::exception &e) {
                failed = true;
                failure.status = "error";
                failure.kind = "INTERNAL";
                failure.message = e.what();
                failure.diagnosticJson.clear();
            }
            if (!failed || attempt >= point.retries)
                break;
            ++attempt;
            std::lock_guard<std::mutex> lock(mtx);
            progress("retry", point,
                     "  attempt " + std::to_string(attempt + 1) +
                         " after " + failure.status);
        }
        if (failed) {
            failure.attempts = attempt + 1;
            doc = failureToJson(failureMeta(point), failure);
        }

        // A failed point stores a poisoned hash, so resume always
        // reruns it (the failure document stays inspectable
        // meanwhile); a successful point stores the real hash.
        std::string write_error;
        bool wrote =
            writeFile(json_path, doc, write_error) &&
            writeFile(hash_path, failed ? "failed " + hash : hash,
                      write_error);
        if (wrote && !failed && !trace_doc.empty())
            wrote = writeFile(points_dir + "/" + point.id +
                                  ".trace.json",
                              trace_doc, write_error);

        std::lock_guard<std::mutex> lock(mtx);
        ++outcome.ran;
        ++done;
        if (failed) {
            ++outcome.failed;
            outcome.failures.push_back(SweepFailure{
                point.id, failure.status, failure.message,
                attempt + 1});
        } else if (!verified) {
            ++outcome.unverified;
        }
        if (!wrote && worker_error.empty())
            worker_error = write_error;
        progress(failed ? "FAILED" : "ran", point,
                 failed ? "  (" + failure.status + ")"
                 : verified ? ""
                            : "  VERIFICATION FAILED");
    };

    if (jobs <= 1) {
        for (const SweepPoint &point : points)
            runPoint(point);
    } else {
        ThreadPool pool(jobs);
        for (const SweepPoint &point : points)
            pool.submit([&runPoint, &point] { runPoint(point); });
        pool.wait();
    }

    if (!worker_error.empty()) {
        error = worker_error;
        return false;
    }

    // Merge, keyed and sorted by id so the bytes are independent of
    // execution order and worker count.
    std::map<std::string, const SweepPoint *> by_id;
    for (const SweepPoint &point : points)
        by_id.emplace(point.id, &point);

    JsonWriter w;
    w.beginObject();
    w.member("schema", sweepSchemaName);
    w.member("version", sweepSchemaVersion);
    w.key("sweep").beginObject();
    w.member("name", manifest.name());
    {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(
                          manifest.manifestHash()));
        w.member("manifest_hash", buf);
    }
    w.member("num_points",
             static_cast<std::uint64_t>(points.size()));
    // Emitted only when something failed, so a clean sweep document
    // stays byte-identical to the pre-failure-isolation format.
    if (!outcome.failures.empty()) {
        std::sort(outcome.failures.begin(), outcome.failures.end(),
                  [](const SweepFailure &a, const SweepFailure &b) {
                      return a.id < b.id;
                  });
        w.member("num_failed",
                 static_cast<std::uint64_t>(outcome.failures.size()));
        w.key("failures").beginObject();
        for (const SweepFailure &f : outcome.failures)
            w.member(f.id, f.status);
        w.endObject();
    }
    w.endObject();
    w.key("points").beginObject();
    for (const auto &[id, point] : by_id) {
        std::string doc;
        if (!readFile(points_dir + "/" + id + ".json", doc)) {
            error = "missing point result for " + id;
            return false;
        }
        // Trust but verify: a corrupt per-point file must not produce
        // a corrupt merged document.
        std::string json_error;
        if (!jsonValidate(doc, json_error)) {
            error = "point " + id + ": " + json_error;
            return false;
        }
        w.key(id).rawValue(doc);
        (void)point;
    }
    w.endObject();
    w.endObject();

    const std::string out_path = options.outPath.empty()
                                     ? options.dir + "/sweep.json"
                                     : options.outPath;
    return writeFile(out_path, w.take() + "\n", error);
}

} // namespace getm
