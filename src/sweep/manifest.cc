#include "sweep/manifest.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "gpu/config_file.hh"

namespace getm {

std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char ch : text) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace {

std::string
trim(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

/** Split on commas and/or whitespace; never returns empty tokens. */
std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::string token;
    for (const char ch : text + ",") {
        if (ch == ',' || ch == ' ' || ch == '\t') {
            if (!token.empty())
                out.push_back(token);
            token.clear();
        } else {
            token += ch;
        }
    }
    return out;
}

bool
parseProtocolName(std::string name, ProtocolKind &out)
{
    for (auto &ch : name)
        ch = static_cast<char>(std::tolower(ch));
    if (name == "getm")
        out = ProtocolKind::Getm;
    else if (name == "warptm" || name == "warptm-ll")
        out = ProtocolKind::WarpTmLL;
    else if (name == "warptm-el" || name == "el")
        out = ProtocolKind::WarpTmEL;
    else if (name == "eapg")
        out = ProtocolKind::Eapg;
    else if (name == "fglock" || name == "lock")
        out = ProtocolKind::FgLock;
    else
        return false;
    return true;
}

bool
parseUint(const std::string &token, std::uint64_t &out)
{
    if (token.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(token.c_str(), &end, 0);
    return end && *end == '\0';
}

bool
parseDouble(const std::string &token, double &out)
{
    if (token.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(token.c_str(), &end);
    return end && *end == '\0';
}

/** Is @p key a GpuConfig config-file key? Probe a scratch config. */
bool
isConfigKey(const std::string &key, const std::string &value)
{
    GpuConfig scratch;
    std::string ignored;
    return applyConfigText(key + " = " + value, scratch, ignored);
}

} // namespace

std::uint64_t
SweepPoint::specHash() const
{
    std::string spec = "getm-sweep-point v1\n";
    spec += "bench=" + bench.token() + "\n";
    // Parameter-bearing families fold their *resolved* parameters in
    // (defaults applied), so editing a registry default invalidates
    // exactly the points it affects. Parameter-free benches contribute
    // no lines here, keeping every pre-registry hash byte-identical.
    for (const auto &[key, value] : resolvedParams(bench))
        spec += "bench." + key + "=" + jsonNumber(value) + "\n";
    spec += "scale=" + jsonNumber(scale) + "\n";
    spec += "max_cycles=" + jsonNumber(maxCycles) + "\n";
    // configProvenance covers protocol, seed, tx_warp_limit and every
    // other knob that changes simulated behaviour.
    for (const auto &[key, value] : configProvenance(config))
        spec += key + "=" + value + "\n";
    return fnv1a64(spec);
}

std::string
SweepPoint::specHashHex() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(specHash()));
    return buf;
}

const SweepManifest::Axis *
SweepManifest::findAxis(const std::string &key) const
{
    for (const Axis &axis : axes)
        if (axis.key == key)
            return &axis;
    return nullptr;
}

bool
SweepManifest::parse(const std::string &text,
                     const std::string &manifest_dir, std::string &error)
{
    sweepName.clear();
    baseConfigPath.clear();
    axes.clear();

    std::istringstream in(text);
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto at = [&line_no] {
            return "line " + std::to_string(line_no) + ": ";
        };
        const auto comment = line.find('#');
        if (comment != std::string::npos)
            line.erase(comment);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            error = at() + "expected 'key = value'";
            return false;
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value_text = trim(line.substr(eq + 1));
        if (value_text.empty()) {
            error = at() + "empty value for '" + key + "'";
            return false;
        }

        if (key == "name") {
            sweepName = value_text;
            continue;
        }
        if (key == "config") {
            baseConfigPath = manifest_dir.empty()
                                 ? value_text
                                 : manifest_dir + "/" + value_text;
            continue;
        }
        if (key == "max_cycles") {
            if (!parseUint(value_text, maxCycles)) {
                error = at() + "bad max_cycles";
                return false;
            }
            continue;
        }
        if (key == "retries") {
            std::uint64_t value = 0;
            if (!parseUint(value_text, value) || value > 16) {
                error = at() + "bad retries (0..16)";
                return false;
            }
            retries = static_cast<unsigned>(value);
            continue;
        }

        if (findAxis(key)) {
            error = at() + "duplicate axis '" + key + "'";
            return false;
        }

        Axis axis;
        axis.key = key;
        std::vector<std::string> tokens = splitList(value_text);
        for (const std::string &token : tokens) {
            if (key == "bench") {
                if (token == "all") {
                    // The paper's suite; OLTP benches are named
                    // explicitly (workloads/registry.hh).
                    for (const BenchId id : allBenchIds())
                        axis.values.push_back(benchName(id));
                    continue;
                }
                WorkloadSpec spec;
                std::string spec_error;
                if (!parseWorkloadSpec(token, spec, spec_error)) {
                    error = at() + spec_error;
                    return false;
                }
                axis.values.push_back(spec.token());
            } else if (key == "protocol") {
                ProtocolKind protocol;
                if (!parseProtocolName(token, protocol)) {
                    error = at() + "unknown protocol '" + token + "'";
                    return false;
                }
                axis.values.push_back(protocolName(protocol));
            } else if (key == "scale") {
                double scale;
                if (!parseDouble(token, scale) || scale <= 0) {
                    error = at() + "bad scale '" + token + "'";
                    return false;
                }
                axis.values.push_back(jsonNumber(scale));
            } else if (key == "seed") {
                std::uint64_t seed;
                if (!parseUint(token, seed)) {
                    error = at() + "bad seed '" + token + "'";
                    return false;
                }
                axis.values.push_back(jsonNumber(seed));
            } else if (key == "concurrency") {
                std::uint64_t limit;
                if (token != "opt" && !parseUint(token, limit)) {
                    error = at() + "bad concurrency '" + token + "'";
                    return false;
                }
                axis.values.push_back(token);
            } else if (isConfigKey(key, token)) {
                axis.values.push_back(token);
            } else {
                error = at() + "unknown key '" + key +
                        "' (or bad value '" + token + "')";
                return false;
            }
        }
        if (axis.values.empty()) {
            error = at() + "axis '" + key + "' has no values";
            return false;
        }
        axes.push_back(std::move(axis));
    }

    if (sweepName.empty()) {
        error = "manifest lacks 'name ='";
        return false;
    }

    // Fill in defaults for the identity axes so enumeration can rely
    // on their presence. Single-value axes never widen the product.
    const std::pair<const char *, const char *> defaults[] = {
        {"bench", "HT-H"},   {"protocol", "getm"}, {"scale", "0.25"},
        {"seed", "7"},       {"concurrency", "opt"},
    };
    for (const auto &[key, value] : defaults)
        if (!findAxis(key))
            axes.push_back(Axis{key, {value}});
    return true;
}

bool
SweepManifest::load(const std::string &path, std::string &error)
{
    std::ifstream file(path);
    if (!file) {
        error = "cannot open " + path;
        return false;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const auto slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "" : path.substr(0, slash);
    return parse(buffer.str(), dir, error);
}

std::uint64_t
SweepManifest::manifestHash() const
{
    std::string spec = "getm-sweep-manifest v1\n";
    spec += "name=" + sweepName + "\n";
    spec += "config=" + baseConfigPath + "\n";
    spec += "max_cycles=" + jsonNumber(maxCycles) + "\n";
    // Appended only when set, so pre-existing manifests keep the hash
    // they had before the key existed.
    if (retries)
        spec += "retries=" + std::to_string(retries) + "\n";
    for (const Axis &axis : axes) {
        spec += axis.key + "=";
        for (const std::string &value : axis.values)
            spec += value + ",";
        spec += "\n";
    }
    return fnv1a64(spec);
}

bool
SweepManifest::enumerate(std::vector<SweepPoint> &points,
                         std::string &error) const
{
    points.clear();

    GpuConfig base = GpuConfig::gtx480();
    if (!baseConfigPath.empty() &&
        !loadConfigFile(baseConfigPath, base, error))
        return false;

    // Odometer over the axes, in declaration order (last axis fastest).
    std::vector<std::size_t> index(axes.size(), 0);
    for (;;) {
        SweepPoint point;
        point.config = base;
        point.maxCycles = maxCycles;
        point.retries = retries;
        std::string id_suffix;
        std::string concurrency_token = "opt";

        for (std::size_t a = 0; a < axes.size(); ++a) {
            const Axis &axis = axes[a];
            const std::string &value = axis.values[index[a]];
            if (axis.key == "bench") {
                std::string spec_error;
                parseWorkloadSpec(value, point.bench, spec_error);
            } else if (axis.key == "protocol") {
                parseProtocolName(value, point.protocol);
            } else if (axis.key == "scale") {
                parseDouble(value, point.scale);
            } else if (axis.key == "seed") {
                parseUint(value, point.seed);
            } else if (axis.key == "concurrency") {
                concurrency_token = value;
            } else if (!applyConfigText(axis.key + " = " + value,
                                        point.config, error)) {
                error = "axis " + axis.key + ": " + error;
                return false;
            }
            if (axis.values.size() > 1 && axis.key != "bench" &&
                axis.key != "protocol")
                id_suffix += "+" + axis.key + "=" + value;
        }

        point.config.protocol = point.protocol;
        point.config.seed = point.seed;
        if (concurrency_token == "opt")
            point.txWarpLimit =
                optimalConcurrency(point.bench, point.protocol);
        else {
            std::uint64_t limit = 0;
            parseUint(concurrency_token, limit);
            point.txWarpLimit =
                limit == 0 ? 0xffffffffu : static_cast<unsigned>(limit);
        }
        point.config.core.txWarpLimit = point.txWarpLimit;

        // Every point exports a metrics document; default the sampler
        // on (as `getm-sim --metrics` does) unless the manifest takes
        // explicit control of the interval.
        if (point.config.sampleInterval == 0 &&
            !findAxis("sample_interval"))
            point.config.sampleInterval = 512;

        point.id = point.bench.token() + "+" +
                   protocolName(point.protocol) + id_suffix;
        points.push_back(std::move(point));

        // Tick the odometer.
        std::size_t a = axes.size();
        while (a > 0) {
            --a;
            if (++index[a] < axes[a].values.size())
                break;
            index[a] = 0;
            if (a == 0)
                return true;
        }
        if (axes.empty())
            return true;
    }
}

} // namespace getm
