/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * errors such as invalid configurations (clean exit); warn()/inform() are
 * non-fatal notices.
 */

#ifndef GETM_COMMON_LOG_HH
#define GETM_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace getm {

/** Report an internal simulator bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a normal status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a developer-level detail (loop selection, budget clamps).
 * Silent unless the GETM_DEBUG environment variable is set, so routine
 * runs and golden stdout fixtures never see it. (Named debugLog to
 * stay clear of the getm::debug dump namespace in common/debug.hh.)
 */
void debugLog(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

} // namespace getm

#endif // GETM_COMMON_LOG_HH
