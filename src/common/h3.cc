#include "common/h3.hh"

#include "common/rng.hh"

namespace getm {

H3Hash::H3Hash(std::uint64_t seed)
{
    Rng rng(seed);
    for (auto &word : matrix)
        word = rng.next();
}

H3Family::H3Family(unsigned count, std::uint64_t seed)
{
    members.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        members.emplace_back(seed + 0x51ed2701 * (i + 1));
}

} // namespace getm
