/**
 * @file
 * Persistent worker pool for per-cycle fork/join parallelism.
 *
 * The sweep-level ThreadPool (thread_pool.hh) hands out coarse tasks
 * through a mutex + condvar queue — milliseconds of overhead amortised
 * over seconds of work. The parallel cycle loop needs the opposite
 * trade-off: the same phase function dispatched to the same workers
 * every simulated cycle, with microsecond-scale work per dispatch. This
 * pool keeps its workers alive for the whole run and synchronises each
 * round with two atomic epochs (one broadcast, one join), spinning
 * briefly before yielding so a dispatch costs well under a microsecond
 * when the workers are hot.
 *
 * Memory ordering: the caller's writes before run() happen-before every
 * worker's execution of the phase (release broadcast / acquire pickup),
 * and every worker's writes happen-before run() returns (release done /
 * acquire join). One run() is one full barrier round; no worker state
 * leaks across rounds.
 */

#ifndef GETM_COMMON_CYCLE_WORKERS_HH
#define GETM_COMMON_CYCLE_WORKERS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace getm {

class CycleWorkers
{
  public:
    /** Phase function: called once per worker with its index. */
    using PhaseFn = std::function<void(unsigned worker)>;

    /**
     * Start a pool of @p num_workers logical workers. Worker 0 is the
     * calling thread (run() executes its share inline), so only
     * num_workers - 1 threads are spawned.
     */
    explicit CycleWorkers(unsigned num_workers);

    /** Stops and joins the worker threads. */
    ~CycleWorkers();

    CycleWorkers(const CycleWorkers &) = delete;
    CycleWorkers &operator=(const CycleWorkers &) = delete;

    /**
     * Run @p fn(w) for every worker index w in [0, numWorkers()) and
     * wait for all of them. The caller executes w == 0 inline.
     */
    void run(const PhaseFn &fn);

    unsigned numWorkers() const { return workers; }

  private:
    void workerLoop(unsigned index);

    /** Pad the join counters to their own cache lines: each worker
     *  publishes its epoch without false sharing against the others. */
    struct alignas(64) DoneSlot
    {
        std::atomic<std::uint64_t> epoch{0};
    };

    const unsigned workers;
    std::atomic<std::uint64_t> goEpoch{0};
    std::atomic<bool> stopping{false};
    const PhaseFn *phase = nullptr; // valid while a round is in flight
    std::vector<DoneSlot> done;
    std::vector<std::thread> threads;
};

} // namespace getm

#endif // GETM_COMMON_CYCLE_WORKERS_HH
