#include "common/zipf.hh"

#include <cassert>
#include <cmath>

namespace getm {

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(double(i), theta);
    return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n(n), theta(theta)
{
    assert(n >= 1);
    assert(theta >= 0.0 && theta < 1.0);
    alpha = 1.0 / (1.0 - theta);
    zetan = zeta(n, theta);
    // Gray et al. eta: corrects the closed form so the rank-2..n tail
    // integrates to the right mass.
    eta = (1.0 - std::pow(2.0 / double(n), 1.0 - theta))
        / (1.0 - zeta(2, theta) / zetan);
}

std::uint64_t
ZipfianGenerator::next(Rng &rng) const
{
    double u = rng.uniform();
    double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    auto rank = std::uint64_t(
        double(n) * std::pow(eta * u - eta + 1.0, alpha));
    // Floating-point roundoff can land exactly on n.
    return rank >= n ? n - 1 : rank;
}

double
ZipfianGenerator::mass(std::uint64_t rank) const
{
    assert(rank < n);
    return 1.0 / std::pow(double(rank + 1), theta) / zetan;
}

namespace {

/** Modular inverse of odd @p a modulo 2^64 (Newton iteration). */
std::uint64_t
oddInverse(std::uint64_t a)
{
    std::uint64_t x = a; // Correct to 3 bits.
    for (int i = 0; i < 5; i++)
        x *= 2 - a * x; // Doubles correct bits per step.
    return x;
}

} // namespace

ScrambledZipfian::ScrambledZipfian(std::uint64_t n, double theta,
                                   std::uint64_t salt)
    : zipf(n, theta), n(n)
{
    bits = 1;
    while ((std::uint64_t(1) << bits) < n && bits < 63)
        bits++;
    mask = (std::uint64_t(1) << bits) - 1;
    std::uint64_t x = salt;
    mulOdd = Rng::splitmix64(x) | 1;
    mulInv = oddInverse(mulOdd);
    xorConst = Rng::splitmix64(x) & mask;
}

std::uint64_t
ScrambledZipfian::scramble(std::uint64_t rank) const
{
    // Cycle-walk an invertible mix on `bits` bits until it lands back
    // inside [0, n). Because the mix permutes [0, 2^bits) and n is more
    // than half of that range, the walk terminates quickly (expected
    // < 2 steps) and the restriction to [0, n) is itself a bijection.
    std::uint64_t v = rank;
    do {
        v = (v * mulOdd) & mask;
        v ^= xorConst;
        v ^= (v >> (bits / 2 + 1)) & mask;
        v = (v * mulOdd) & mask;
    } while (v >= n);
    return v;
}

std::uint64_t
ScrambledZipfian::rankOf(std::uint64_t key) const
{
    std::uint64_t v = key;
    do {
        v = (v * mulInv) & mask;
        // Invert the xorshift: shifts of >= width/2 self-invert in one
        // re-application.
        v ^= (v >> (bits / 2 + 1)) & mask;
        v ^= xorConst;
        v = (v * mulInv) & mask;
    } while (v >= n);
    return v;
}

} // namespace getm
