#include "common/json.hh"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace getm {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch; // UTF-8 continuation bytes pass through.
            }
            break;
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    std::array<char, 64> buf;
    const auto res = std::to_chars(buf.data(), buf.data() + buf.size(),
                                   value);
    return std::string(buf.data(), res.ptr);
}

std::string
jsonNumber(std::uint64_t value)
{
    std::array<char, 24> buf;
    const auto res = std::to_chars(buf.data(), buf.data() + buf.size(),
                                   value);
    return std::string(buf.data(), res.ptr);
}

std::string
jsonNumber(std::int64_t value)
{
    std::array<char, 24> buf;
    const auto res = std::to_chars(buf.data(), buf.data() + buf.size(),
                                   value);
    return std::string(buf.data(), res.ptr);
}

// --------------------------------------------------------------------------
// JsonWriter
// --------------------------------------------------------------------------

void
JsonWriter::beforeValue()
{
    if (pendingKey) {
        pendingKey = false;
        return; // the key already emitted its comma
    }
    if (!needComma.empty()) {
        if (needComma.back())
            out += ',';
        needComma.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out += '{';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    needComma.pop_back();
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out += '[';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    needComma.pop_back();
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (!needComma.empty()) {
        if (needComma.back())
            out += ',';
        needComma.back() = true;
    }
    out += '"';
    out += jsonEscape(name);
    out += "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    beforeValue();
    out += '"';
    out += jsonEscape(text);
    out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    beforeValue();
    out += jsonNumber(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    out += jsonNumber(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    out += jsonNumber(number);
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned number)
{
    return value(static_cast<std::uint64_t>(number));
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    beforeValue();
    out += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    beforeValue();
    out += json;
    return *this;
}

// --------------------------------------------------------------------------
// jsonValidate: strict recursive-descent syntax check
// --------------------------------------------------------------------------

namespace {

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;
    int depth = 0;
    static constexpr int maxDepth = 256;

    bool
    fail(const std::string &why)
    {
        error = "offset " + std::to_string(pos) + ": " + why;
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    literal(std::string_view word)
    {
        if (text.compare(pos, word.size(), word) != 0)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    bool
    string()
    {
        ++pos; // opening quote
        while (pos < text.size()) {
            const char ch = text[pos];
            if (static_cast<unsigned char>(ch) < 0x20)
                return fail("raw control character in string");
            if (ch == '"') {
                ++pos;
                return true;
            }
            if (ch == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("truncated escape");
                const char esc = text[pos];
                if (esc == 'u') {
                    for (unsigned i = 1; i <= 4; ++i)
                        if (pos + i >= text.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text[pos + i])))
                            return fail("bad \\u escape");
                    pos += 4;
                } else if (esc != '"' && esc != '\\' && esc != '/' &&
                           esc != 'b' && esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return fail("bad escape character");
                }
            }
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[pos])))
            return fail("bad number");
        if (text[pos] == '0') {
            ++pos;
        } else {
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("bad fraction");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("bad exponent");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        return true;
    }

    bool
    val()
    {
        if (++depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        bool ok;
        switch (text[pos]) {
          case '{': ok = object(); break;
          case '[': ok = array(); break;
          case '"': ok = string(); break;
          case 't': ok = literal("true"); break;
          case 'f': ok = literal("false"); break;
          case 'n': ok = literal("null"); break;
          default: ok = number(); break;
        }
        --depth;
        return ok;
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= text.size() || text[pos] != '"')
                return fail("expected object key");
            if (!string())
                return false;
            skipWs();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':'");
            ++pos;
            if (!val())
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            if (!val())
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

bool
jsonValidate(std::string_view text, std::string &error)
{
    Parser parser{text, 0, {}, 0};
    if (!parser.val()) {
        error = parser.error;
        return false;
    }
    parser.skipWs();
    if (parser.pos != text.size()) {
        error = "offset " + std::to_string(parser.pos) +
                ": trailing garbage";
        return false;
    }
    return true;
}

} // namespace getm
