/**
 * @file
 * Fundamental scalar types shared by every subsystem of the simulator.
 */

#ifndef GETM_COMMON_TYPES_HH
#define GETM_COMMON_TYPES_HH

#include <cstdint>

namespace getm {

/** A byte address in the simulated global address space. */
using Addr = std::uint64_t;

/** A simulation cycle count (core clock domain unless noted otherwise). */
using Cycle = std::uint64_t;

/** A GETM logical timestamp (warpts / wts / rts; see paper Table I). */
using LogicalTs = std::uint64_t;

/**
 * Width of the warp-id field in a composed logical timestamp.
 *
 * GETM's eager conflict detection serializes transactions by warpts
 * order, which is only a total order if timestamps are globally
 * unique: two warps holding the *same* warpts each pass the other's
 * read/write limit checks (all `>=`), so each can read a granule the
 * other then overwrites -- an antidependency cycle no abort breaks.
 * Timestamps therefore carry the issuing warp's global id in the low
 * bits as a deterministic tie-break; the logical clock lives above.
 */
constexpr unsigned tsWarpIdBits = 16;

/** Compose a unique logical timestamp from a clock and a warp id. */
constexpr LogicalTs
composeTs(LogicalTs clock, std::uint32_t gwid)
{
    return (clock << tsWarpIdBits) | gwid;
}

/** The logical-clock component of a composed timestamp. */
constexpr LogicalTs
tsClock(LogicalTs ts)
{
    return ts >> tsWarpIdBits;
}

/** Identifier of a SIMT core. */
using CoreId = std::uint32_t;

/** Identifier of a memory partition (LLC slice + validation/commit unit). */
using PartitionId = std::uint32_t;

/**
 * Globally unique warp identifier. Because transactions are coalesced per
 * warp, this also uniquely identifies a running transaction (paper
 * Sec. IV-A, "owner" field).
 */
using GlobalWarpId = std::uint32_t;

/** Lane (thread) index inside a warp. */
using LaneId = std::uint32_t;

/** A 32-lane active mask. */
using LaneMask = std::uint32_t;

/** Lanes per warp (Table II: 32-wide warps). */
constexpr unsigned warpSize = 32;

/** All-lanes mask. */
constexpr LaneMask fullMask = 0xffffffffu;

/** Sentinel for "no owner" in metadata entries. */
constexpr GlobalWarpId invalidWarp = ~0u;

/** Sentinel address. */
constexpr Addr invalidAddr = ~0ull;

} // namespace getm

#endif // GETM_COMMON_TYPES_HH
