#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace getm {

namespace {
// Atomic: the sweep harness toggles verbosity while worker threads run
// simulations that may call inform().
std::atomic<bool> verboseEnabled{true};

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    // One-time env probe: debug output is for humans chasing a loop
    // or budget decision, never part of any golden output.
    static const bool enabled = std::getenv("GETM_DEBUG") != nullptr;
    if (!enabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("debug", fmt, ap);
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

} // namespace getm
