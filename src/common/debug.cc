#include "common/debug.hh"

#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <string>

namespace getm {
namespace debug {

namespace {

const char *const categoryNames[] = {"getm", "wtm", "eapg", "core", "mem"};

struct Flags
{
    bool on[static_cast<unsigned>(Category::NumCategories)] = {};

    Flags()
    {
        const char *env = std::getenv("GETM_DEBUG");
        if (!env)
            return;
        // Back-compat: GETM_TRACE enables the GETM category.
        std::string list(env);
        list += ',';
        std::string token;
        for (char ch : list) {
            if (ch != ',') {
                token += ch;
                continue;
            }
            if (token == "all") {
                for (bool &flag : on)
                    flag = true;
            } else {
                for (unsigned i = 0;
                     i < static_cast<unsigned>(Category::NumCategories);
                     ++i)
                    if (token == categoryNames[i])
                        on[i] = true;
            }
            token.clear();
        }
    }
};

Flags &
flags()
{
    static Flags instance;
    return instance;
}

} // namespace

bool
enabled(Category category)
{
    // Legacy GETM_TRACE=1 keeps working for the GETM category.
    static const bool legacy = std::getenv("GETM_TRACE") != nullptr;
    if (legacy && category == Category::Getm)
        return true;
    return flags().on[static_cast<unsigned>(category)];
}

void
tracef(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

} // namespace debug
} // namespace getm
