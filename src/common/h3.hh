/**
 * @file
 * H3 universal hash family.
 *
 * GETM's metadata structures (the 4-way cuckoo table and the recency Bloom
 * filter; paper Sec. V-B) index with four independently drawn H3 hashes,
 * following the signature-hashing study of Sanchez et al. [40]. An H3 hash
 * of a b-bit key XORs together one random word per set key bit:
 *
 *     h(x) = XOR over i of (x[i] ? q_i : 0)
 */

#ifndef GETM_COMMON_H3_HH
#define GETM_COMMON_H3_HH

#include <cstdint>
#include <vector>

namespace getm {

/** One member of the H3 hash family for 64-bit keys. */
class H3Hash
{
  public:
    /**
     * Draw a random H3 function.
     *
     * @param seed Seed selecting the member of the family.
     */
    explicit H3Hash(std::uint64_t seed);

    /** Hash a 64-bit key to a 64-bit value. */
    std::uint64_t
    hash(std::uint64_t key) const
    {
        std::uint64_t h = 0;
        while (key) {
            // Process the lowest set bit; sparse keys stay cheap.
            const int bit = __builtin_ctzll(key);
            h ^= matrix[bit];
            key &= key - 1;
        }
        return h;
    }

    std::uint64_t operator()(std::uint64_t key) const { return hash(key); }

  private:
    /** One random 64-bit word per input bit. */
    std::uint64_t matrix[64];
};

/** A bank of n independent H3 hashes (e.g., one per cuckoo way). */
class H3Family
{
  public:
    H3Family(unsigned count, std::uint64_t seed);

    std::uint64_t
    hash(unsigned which, std::uint64_t key) const
    {
        return members[which].hash(key);
    }

    unsigned size() const { return members.size(); }

  private:
    std::vector<H3Hash> members;
};

} // namespace getm

#endif // GETM_COMMON_H3_HH
