#include "common/sim_error.hh"

#include <cstdio>
#include <sstream>

#include "common/json.hh"

namespace getm {

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Deadlock: return "DEADLOCK";
      case SimErrorKind::Livelock: return "LIVELOCK";
      case SimErrorKind::CycleLimit: return "CYCLE_LIMIT";
      case SimErrorKind::WallTimeout: return "WALL_TIMEOUT";
      case SimErrorKind::Config: return "CONFIG";
      case SimErrorKind::Internal: return "INTERNAL";
      case SimErrorKind::Checkpoint: return "CHECKPOINT";
      case SimErrorKind::Interrupt: return "INTERRUPT";
    }
    return "?";
}

const char *
simErrorStatus(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Deadlock: return "deadlock";
      case SimErrorKind::Livelock: return "livelock";
      case SimErrorKind::CycleLimit: return "cycle-limit";
      case SimErrorKind::WallTimeout: return "timeout";
      case SimErrorKind::Config: return "config";
      case SimErrorKind::Internal: return "error";
      case SimErrorKind::Checkpoint: return "checkpoint";
      case SimErrorKind::Interrupt: return "interrupted";
    }
    return "error";
}

int
simErrorExitCode(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Livelock:
      case SimErrorKind::WallTimeout:
      case SimErrorKind::CycleLimit:
        return exitWatchdog;
      default:
        return exitSimError;
    }
}

std::string
SimDiagnostic::toText() const
{
    std::ostringstream os;
    os << simErrorKindName(kind) << ": " << message << "\n";
    os << "  cycle " << cycle;
    if (sinceProgressCycles)
        os << " (no progress for " << sinceProgressCycles << " cycles)";
    os << "\n";
    os << "  progress: " << instructions << " instructions retired, "
       << commitLanes << " tx lanes committed\n";
    os << "  noc in flight: " << nocInFlightUp << " up, "
       << nocInFlightDown << " down\n";
    if (!warpStates.empty()) {
        os << "  warp states:";
        for (const auto &[state, count] : warpStates)
            os << " " << state << "=" << count;
        os << "\n";
    }
    for (const StarvingWarp &w : starvingWarps)
        os << "  starving: core " << w.core << " slot " << w.slot
           << " gwid " << w.gwid << " (" << w.consecutiveAborts
           << " consecutive aborts, " << w.state << ")\n";
    for (const PartitionRow &p : partitions)
        os << "  partition " << p.partition << ": metadata "
           << p.metaOccupancy << " entries / " << p.metaLocked
           << " locked, stall buffer " << p.stallOccupancy << "\n";
    for (const HotAddr &h : hotAddrs) {
        char buf[2 + 16 + 1];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(h.addr));
        os << "  hot addr " << buf << ": " << h.total
           << " conflict events\n";
    }
    return os.str();
}

std::string
SimDiagnostic::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.member("kind", simErrorKindName(kind));
    w.member("message", message);
    w.member("cycle", cycle);
    w.member("since_progress_cycles", sinceProgressCycles);
    w.member("instructions", instructions);
    w.member("commit_lanes", commitLanes);
    w.key("noc_in_flight").beginObject();
    w.member("up", nocInFlightUp);
    w.member("down", nocInFlightDown);
    w.endObject();
    w.key("warp_states").beginObject();
    for (const auto &[state, count] : warpStates)
        w.member(state, count);
    w.endObject();
    w.key("starving_warps").beginArray();
    for (const StarvingWarp &sw : starvingWarps) {
        w.beginObject();
        w.member("core", sw.core);
        w.member("slot", sw.slot);
        w.member("gwid", sw.gwid);
        w.member("consecutive_aborts", sw.consecutiveAborts);
        w.member("state", sw.state);
        w.endObject();
    }
    w.endArray();
    w.key("getm_partitions").beginArray();
    for (const PartitionRow &p : partitions) {
        w.beginObject();
        w.member("partition", p.partition);
        w.member("meta_occupancy", p.metaOccupancy);
        w.member("meta_locked", p.metaLocked);
        w.member("stall_occupancy", p.stallOccupancy);
        w.endObject();
    }
    w.endArray();
    w.key("hot_addresses").beginArray();
    for (const HotAddr &h : hotAddrs) {
        w.beginObject();
        w.member("addr", h.addr);
        w.member("total", h.total);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.take();
}

} // namespace getm
