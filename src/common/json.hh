/**
 * @file
 * Minimal JSON utilities shared by every serializer in the simulator.
 *
 * Three pieces:
 *  - jsonEscape(): RFC 8259 string escaping, used by the Timeline and
 *    the metrics writer so no event or stat name can inject syntax;
 *  - jsonNumber(): locale-independent, shortest-round-trip number
 *    formatting (std::to_chars), so emitted documents are byte-stable
 *    across environments;
 *  - JsonWriter: a push-style emitter with automatic comma handling;
 *  - jsonValidate(): a strict syntax checker used by tests and tools to
 *    verify emitted documents without an external parser.
 */

#ifndef GETM_COMMON_JSON_HH
#define GETM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace getm {

/** Escape @p text for inclusion inside a JSON string literal (no
 *  surrounding quotes added). */
std::string jsonEscape(std::string_view text);

/** Format @p value losslessly and locale-independently. Non-finite
 *  values (JSON has no representation for them) become null. */
std::string jsonNumber(double value);
std::string jsonNumber(std::uint64_t value);
std::string jsonNumber(std::int64_t value);

/**
 * Strict JSON syntax validator (objects, arrays, strings, numbers,
 * true/false/null; rejects trailing garbage).
 *
 * @return true when @p text is a single well-formed JSON value;
 *         otherwise false with a position-tagged message in @p error.
 */
bool jsonValidate(std::string_view text, std::string &error);

/**
 * Push-style JSON emitter.
 *
 * The writer tracks nesting and inserts commas; the caller is
 * responsible for calling key() before each value inside an object.
 * All strings are escaped, all numbers formatted via jsonNumber().
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit "key": inside an object (call before the value). */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(unsigned number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);

    /**
     * Splice @p json verbatim as the next value. The caller is
     * responsible for its well-formedness (pass it through
     * jsonValidate() first when it comes from a file); this is how the
     * sweep merger embeds per-point metrics documents without
     * re-parsing them.
     */
    JsonWriter &rawValue(std::string_view json);

    /** Convenience: key(name) followed by value(v). */
    template <typename T>
    JsonWriter &
    member(std::string_view name, const T &v)
    {
        key(name);
        return value(v);
    }

    const std::string &str() const { return out; }
    std::string take() { return std::move(out); }

  private:
    void beforeValue();

    std::string out;
    std::vector<bool> needComma; ///< Per open scope.
    bool pendingKey = false;
};

} // namespace getm

#endif // GETM_COMMON_JSON_HH
