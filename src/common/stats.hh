/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Every simulated component owns a StatSet; counters and scalar trackers
 * are registered by name so benches and tests can query results uniformly.
 *
 * Two usage styles share the same underlying slots:
 *
 *  - String-keyed (legacy, convenient for cold paths and tests):
 *        stats.inc("instructions");
 *  - Handle-based (hot paths; register once, bump through a stable
 *    reference with no map lookup or string construction per event):
 *        StatSet::Counter &instructions = stats.addCounter("instructions");
 *        ...
 *        instructions.add();
 *
 * Registration creates the slot but leaves it "untouched": a registered
 * stat that never fires is invisible to dump(), merge() and the metrics
 * export, so pre-registering handles cannot change any byte of the
 * output. Handles are plain references into node-based std::map storage
 * and remain valid for the lifetime of the StatSet (clear() resets
 * values in place instead of erasing nodes).
 */

#ifndef GETM_COMMON_STATS_HH
#define GETM_COMMON_STATS_HH

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace getm {

/**
 * A power-of-two-bucketed distribution.
 *
 * Bucket 0 holds the value 0; bucket k (k >= 1) holds values in
 * [2^(k-1), 2^k - 1]. This keeps histograms tiny regardless of the
 * value range while preserving the order-of-magnitude shape that
 * latency/occupancy distributions need.
 */
struct HistogramData
{
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t minValue = ~static_cast<std::uint64_t>(0);
    std::uint64_t maxValue = 0;

    /** Bucket index for @p value. */
    static unsigned
    bucketOf(std::uint64_t value)
    {
        return static_cast<unsigned>(std::bit_width(value));
    }

    /** Smallest value falling into bucket @p index. */
    static std::uint64_t
    bucketLow(unsigned index)
    {
        return index == 0 ? 0 : (static_cast<std::uint64_t>(1)
                                 << (index - 1));
    }

    /** Largest value falling into bucket @p index. */
    static std::uint64_t
    bucketHigh(unsigned index)
    {
        return index == 0 ? 0 : ((static_cast<std::uint64_t>(1) << index)
                                 - 1);
    }

    /** Record one sample. */
    void
    record(std::uint64_t value)
    {
        const unsigned bucket = bucketOf(value);
        if (buckets.size() <= bucket)
            buckets.resize(bucket + 1);
        buckets[bucket] += 1;
        count += 1;
        sum += value;
        if (value < minValue)
            minValue = value;
        if (value > maxValue)
            maxValue = value;
    }

    /** Reset to the never-sampled state, keeping bucket capacity. */
    void
    reset()
    {
        buckets.clear();
        count = 0;
        sum = 0;
        minValue = ~static_cast<std::uint64_t>(0);
        maxValue = 0;
    }

    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(buckets, count, sum, minValue, maxValue);
    }
};

/**
 * A flat bag of named statistics.
 *
 * Four flavours are supported:
 *  - counters:   monotonically increasing event counts (inc())
 *  - maxima:     high-water marks (trackMax())
 *  - averages:   sum/count pairs reported as means (sample())
 *  - histograms: power-of-two-bucketed distributions (histSample())
 */
class StatSet
{
  public:
    /** An event counter slot; bump through add(). */
    struct Counter
    {
        std::uint64_t value = 0;
        bool touched = false;

        void
        add(std::uint64_t delta = 1)
        {
            value += delta;
            touched = true;
        }

        template <class Ar> void ckpt(Ar &ar) { ar(value, touched); }
    };

    /** A high-water-mark slot; feed through track(). */
    struct Maximum
    {
        std::uint64_t value = 0;
        bool touched = false;

        void
        track(std::uint64_t v)
        {
            if (v > value)
                value = v;
            touched = true;
        }

        template <class Ar> void ckpt(Ar &ar) { ar(value, touched); }
    };

    /** An averaging slot; a count of zero means "never sampled". */
    struct Average
    {
        double sum = 0.0;
        std::uint64_t count = 0;

        void
        addSample(double value)
        {
            sum += value;
            count += 1;
        }

        double
        mean() const
        {
            return count ? sum / static_cast<double>(count) : 0.0;
        }

        template <class Ar> void ckpt(Ar &ar) { ar(sum, count); }
    };

    explicit StatSet(std::string name_) : setName(std::move(name_)) {}

    // ---- Handle registration (register once, bump by reference). ----
    //
    // The returned references stay valid for the StatSet's lifetime;
    // registering the same name twice returns the same slot, and the
    // string-keyed calls below alias it too.

    Counter &addCounter(const std::string &name)
    {
        return counters[name];
    }

    Maximum &addMaximum(const std::string &name) { return maxima[name]; }

    Average &addAverage(const std::string &name)
    {
        return averages[name];
    }

    HistogramData &addHistogram(const std::string &name)
    {
        return histograms[name];
    }

    // ---- String-keyed recording (cold paths, tests). ----

    /** Increment counter @p name by @p delta. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters[name].add(delta);
    }

    /** Record @p value into high-water-mark stat @p name. */
    void
    trackMax(const std::string &name, std::uint64_t value)
    {
        maxima[name].track(value);
    }

    /** Record a sample into averaging stat @p name. */
    void
    sample(const std::string &name, double value)
    {
        averages[name].addSample(value);
    }

    /** Record @p value into histogram stat @p name. */
    void
    histSample(const std::string &name, std::uint64_t value)
    {
        histograms[name].record(value);
    }

    // ---- Queries. ----

    /** Read a counter (0 if never touched). */
    std::uint64_t
    counter(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second.value;
    }

    /** Read a high-water mark (0 if never touched). */
    std::uint64_t
    maximum(const std::string &name) const
    {
        auto it = maxima.find(name);
        return it == maxima.end() ? 0 : it->second.value;
    }

    /** Read the mean of an averaging stat (0 if never sampled). */
    double
    mean(const std::string &name) const
    {
        auto it = averages.find(name);
        return it == averages.end() ? 0.0 : it->second.mean();
    }

    /** Number of samples recorded into an averaging stat. */
    std::uint64_t
    sampleCount(const std::string &name) const
    {
        auto it = averages.find(name);
        return it == averages.end() ? 0 : it->second.count;
    }

    /** Read a histogram (nullptr if never sampled). */
    const HistogramData *
    histogram(const std::string &name) const
    {
        auto it = histograms.find(name);
        if (it == histograms.end() || it->second.count == 0)
            return nullptr;
        return &it->second;
    }

    // Read-only views for structured export (metrics JSON). Consumers
    // must skip untouched slots (touched == false / count == 0): those
    // are registered-only handles that never fired.
    const std::map<std::string, Counter> &
    allCounters() const
    {
        return counters;
    }

    const std::map<std::string, Maximum> &
    allMaxima() const
    {
        return maxima;
    }

    const std::map<std::string, Average> &
    allAverages() const
    {
        return averages;
    }

    const std::map<std::string, HistogramData> &
    allHistograms() const
    {
        return histograms;
    }

    /** Merge all stats from @p other into this set. */
    void merge(const StatSet &other);

    /**
     * Render all stats as "name.stat value" lines. Output is
     * locale-independent and byte-stable across environments (numbers
     * are formatted via std::to_chars), so dumps are diffable.
     * Registered-but-never-touched slots are omitted.
     */
    std::string dump() const;

    const std::string &name() const { return setName; }

    /**
     * Drop all recorded values. Slots registered through addCounter()
     * and friends are reset in place, not erased, so outstanding
     * handles stay valid.
     */
    void
    clear()
    {
        for (auto &[name, slot] : counters)
            slot = Counter{};
        for (auto &[name, slot] : maxima)
            slot = Maximum{};
        for (auto &[name, slot] : averages)
            slot = Average{};
        for (auto &[name, slot] : histograms)
            slot.reset();
    }

    /**
     * Checkpoint hook. Loads write slots *in place* by key instead of
     * clearing the maps, so handles returned by addCounter() and
     * friends (references into node-based storage) stay valid across a
     * restore. The snapshot's slot set always covers the freshly
     * registered one (the same constructors ran before the restore),
     * so the merged result equals the snapshot exactly.
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ckptSlots(ar, counters);
        ckptSlots(ar, maxima);
        ckptSlots(ar, averages);
        ckptSlots(ar, histograms);
    }

  private:
    template <class Ar, class Map>
    static void
    ckptSlots(Ar &ar, Map &map)
    {
        if constexpr (Ar::saving) {
            std::uint64_t n = map.size();
            ar.raw(&n, sizeof(n));
            for (auto &[name, slot] : map) {
                std::string key = name;
                ar(key, slot);
            }
        } else {
            std::uint64_t n = 0;
            ar.raw(&n, sizeof(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                std::string key;
                ar(key);
                ar(map[key]);
            }
        }
    }

    std::string setName;
    std::map<std::string, Counter> counters;
    std::map<std::string, Maximum> maxima;
    std::map<std::string, Average> averages;
    std::map<std::string, HistogramData> histograms;
};

} // namespace getm

#endif // GETM_COMMON_STATS_HH
