/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Every simulated component owns a StatSet; counters and scalar trackers
 * are registered by name so benches and tests can query results uniformly.
 */

#ifndef GETM_COMMON_STATS_HH
#define GETM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace getm {

/**
 * A flat bag of named statistics.
 *
 * Three flavours are supported:
 *  - counters: monotonically increasing event counts (inc())
 *  - maxima:   high-water marks (trackMax())
 *  - averages: sum/count pairs reported as means (sample())
 */
class StatSet
{
  public:
    explicit StatSet(std::string name_) : setName(std::move(name_)) {}

    /** Increment counter @p name by @p delta. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters[name] += delta;
    }

    /** Record @p value into high-water-mark stat @p name. */
    void
    trackMax(const std::string &name, std::uint64_t value)
    {
        auto &slot = maxima[name];
        if (value > slot)
            slot = value;
    }

    /** Record a sample into averaging stat @p name. */
    void
    sample(const std::string &name, double value)
    {
        auto &avg = averages[name];
        avg.sum += value;
        avg.count += 1;
    }

    /** Read a counter (0 if never touched). */
    std::uint64_t
    counter(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Read a high-water mark (0 if never touched). */
    std::uint64_t
    maximum(const std::string &name) const
    {
        auto it = maxima.find(name);
        return it == maxima.end() ? 0 : it->second;
    }

    /** Read the mean of an averaging stat (0 if never sampled). */
    double
    mean(const std::string &name) const
    {
        auto it = averages.find(name);
        if (it == averages.end() || it->second.count == 0)
            return 0.0;
        return it->second.sum / static_cast<double>(it->second.count);
    }

    /** Number of samples recorded into an averaging stat. */
    std::uint64_t
    sampleCount(const std::string &name) const
    {
        auto it = averages.find(name);
        return it == averages.end() ? 0 : it->second.count;
    }

    /** Merge all stats from @p other into this set. */
    void merge(const StatSet &other);

    /** Render all stats as "name.stat value" lines. */
    std::string dump() const;

    const std::string &name() const { return setName; }

    /** Drop all recorded values. */
    void
    clear()
    {
        counters.clear();
        maxima.clear();
        averages.clear();
    }

  private:
    struct Average
    {
        double sum = 0.0;
        std::uint64_t count = 0;
    };

    std::string setName;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::uint64_t> maxima;
    std::map<std::string, Average> averages;
};

} // namespace getm

#endif // GETM_COMMON_STATS_HH
