/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Every simulated component owns a StatSet; counters and scalar trackers
 * are registered by name so benches and tests can query results uniformly.
 */

#ifndef GETM_COMMON_STATS_HH
#define GETM_COMMON_STATS_HH

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace getm {

/**
 * A power-of-two-bucketed distribution.
 *
 * Bucket 0 holds the value 0; bucket k (k >= 1) holds values in
 * [2^(k-1), 2^k - 1]. This keeps histograms tiny regardless of the
 * value range while preserving the order-of-magnitude shape that
 * latency/occupancy distributions need.
 */
struct HistogramData
{
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t minValue = ~static_cast<std::uint64_t>(0);
    std::uint64_t maxValue = 0;

    /** Bucket index for @p value. */
    static unsigned
    bucketOf(std::uint64_t value)
    {
        return static_cast<unsigned>(std::bit_width(value));
    }

    /** Smallest value falling into bucket @p index. */
    static std::uint64_t
    bucketLow(unsigned index)
    {
        return index == 0 ? 0 : (static_cast<std::uint64_t>(1)
                                 << (index - 1));
    }

    /** Largest value falling into bucket @p index. */
    static std::uint64_t
    bucketHigh(unsigned index)
    {
        return index == 0 ? 0 : ((static_cast<std::uint64_t>(1) << index)
                                 - 1);
    }

    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

/**
 * A flat bag of named statistics.
 *
 * Four flavours are supported:
 *  - counters:   monotonically increasing event counts (inc())
 *  - maxima:     high-water marks (trackMax())
 *  - averages:   sum/count pairs reported as means (sample())
 *  - histograms: power-of-two-bucketed distributions (histSample())
 */
class StatSet
{
  public:
    struct Average
    {
        double sum = 0.0;
        std::uint64_t count = 0;
    };

    explicit StatSet(std::string name_) : setName(std::move(name_)) {}

    /** Increment counter @p name by @p delta. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters[name] += delta;
    }

    /** Record @p value into high-water-mark stat @p name. */
    void
    trackMax(const std::string &name, std::uint64_t value)
    {
        auto &slot = maxima[name];
        if (value > slot)
            slot = value;
    }

    /** Record a sample into averaging stat @p name. */
    void
    sample(const std::string &name, double value)
    {
        auto &avg = averages[name];
        avg.sum += value;
        avg.count += 1;
    }

    /** Read a counter (0 if never touched). */
    std::uint64_t
    counter(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Read a high-water mark (0 if never touched). */
    std::uint64_t
    maximum(const std::string &name) const
    {
        auto it = maxima.find(name);
        return it == maxima.end() ? 0 : it->second;
    }

    /** Read the mean of an averaging stat (0 if never sampled). */
    double
    mean(const std::string &name) const
    {
        auto it = averages.find(name);
        if (it == averages.end() || it->second.count == 0)
            return 0.0;
        return it->second.sum / static_cast<double>(it->second.count);
    }

    /** Number of samples recorded into an averaging stat. */
    std::uint64_t
    sampleCount(const std::string &name) const
    {
        auto it = averages.find(name);
        return it == averages.end() ? 0 : it->second.count;
    }

    /** Record @p value into histogram stat @p name. */
    void
    histSample(const std::string &name, std::uint64_t value)
    {
        HistogramData &hist = histograms[name];
        const unsigned bucket = HistogramData::bucketOf(value);
        if (hist.buckets.size() <= bucket)
            hist.buckets.resize(bucket + 1);
        hist.buckets[bucket] += 1;
        hist.count += 1;
        hist.sum += value;
        if (value < hist.minValue)
            hist.minValue = value;
        if (value > hist.maxValue)
            hist.maxValue = value;
    }

    /** Read a histogram (nullptr if never sampled). */
    const HistogramData *
    histogram(const std::string &name) const
    {
        auto it = histograms.find(name);
        return it == histograms.end() ? nullptr : &it->second;
    }

    // Read-only views for structured export (metrics JSON).
    const std::map<std::string, std::uint64_t> &
    allCounters() const
    {
        return counters;
    }

    const std::map<std::string, std::uint64_t> &
    allMaxima() const
    {
        return maxima;
    }

    const std::map<std::string, Average> &
    allAverages() const
    {
        return averages;
    }

    const std::map<std::string, HistogramData> &
    allHistograms() const
    {
        return histograms;
    }

    /** Merge all stats from @p other into this set. */
    void merge(const StatSet &other);

    /**
     * Render all stats as "name.stat value" lines. Output is
     * locale-independent and byte-stable across environments (numbers
     * are formatted via std::to_chars), so dumps are diffable.
     */
    std::string dump() const;

    const std::string &name() const { return setName; }

    /** Drop all recorded values. */
    void
    clear()
    {
        counters.clear();
        maxima.clear();
        averages.clear();
        histograms.clear();
    }

  private:
    std::string setName;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::uint64_t> maxima;
    std::map<std::string, Average> averages;
    std::map<std::string, HistogramData> histograms;
};

} // namespace getm

#endif // GETM_COMMON_STATS_HH
