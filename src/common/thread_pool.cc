#include "common/thread_pool.hh"

namespace getm {

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads, std::size_t queue_capacity)
{
    const unsigned n = num_threads ? num_threads : defaultThreads();
    capacity = queue_capacity ? queue_capacity
                              : static_cast<std::size_t>(2) * n;
    workerThreads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workerThreads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    queueNotEmpty.notify_all();
    queueNotFull.notify_all();
    for (std::thread &t : workerThreads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        queueNotFull.wait(lock, [this] {
            return queue.size() < capacity || stopping;
        });
        if (stopping)
            return; // Destructor has begun; drop the task.
        queue.push_back(std::move(task));
        ++inFlight;
    }
    queueNotEmpty.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    allIdle.wait(lock, [this] { return inFlight == 0; });
    if (firstError) {
        std::exception_ptr error = std::move(firstError);
        firstError = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            queueNotEmpty.wait(lock, [this] {
                return !queue.empty() || stopping;
            });
            if (queue.empty())
                return; // stopping, and nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
        }
        queueNotFull.notify_one();
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mtx);
            --inFlight;
            if (error && !firstError)
                firstError = std::move(error);
        }
        allIdle.notify_all();
    }
}

} // namespace getm
