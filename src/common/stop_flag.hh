/**
 * @file
 * Process-wide graceful-stop flag.
 *
 * The CLIs install SIGINT/SIGTERM handlers that call requestStop();
 * the simulation loops poll stopRequested() at every iteration top (a
 * barrier point of the parallel loop) and wind down cleanly: final
 * checkpoint when enabled, partial metrics flushed, exit 128+signal.
 *
 * A lock-free std::atomic<int> store is async-signal-safe, which is
 * all a handler does here; everything else (checkpoint write, metric
 * flush) happens on the simulation thread after the poll.
 */

#ifndef GETM_COMMON_STOP_FLAG_HH
#define GETM_COMMON_STOP_FLAG_HH

#include <atomic>

namespace getm {

namespace detail {
inline std::atomic<int> stopSignalValue{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handlers need a lock-free stop flag");
} // namespace detail

/** Record a termination request (async-signal-safe). */
inline void
requestStop(int signal)
{
    detail::stopSignalValue.store(signal, std::memory_order_relaxed);
}

/** The signal that requested the stop, or 0 when none has. */
inline int
stopSignal()
{
    return detail::stopSignalValue.load(std::memory_order_relaxed);
}

/** Has a graceful stop been requested? */
inline bool
stopRequested()
{
    return stopSignal() != 0;
}

/** Reset the flag (tests; a fresh embedded run). */
inline void
clearStopRequest()
{
    detail::stopSignalValue.store(0, std::memory_order_relaxed);
}

} // namespace getm

#endif // GETM_COMMON_STOP_FLAG_HH
