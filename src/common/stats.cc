#include "common/stats.hh"

#include <sstream>

namespace getm {

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, value] : other.maxima)
        trackMax(name, value);
    for (const auto &[name, avg] : other.averages) {
        auto &slot = averages[name];
        slot.sum += avg.sum;
        slot.count += avg.count;
    }
}

std::string
StatSet::dump() const
{
    std::ostringstream out;
    for (const auto &[name, value] : counters)
        out << setName << '.' << name << ' ' << value << '\n';
    for (const auto &[name, value] : maxima)
        out << setName << '.' << name << ".max " << value << '\n';
    for (const auto &[name, avg] : averages) {
        const double mean =
            avg.count ? avg.sum / static_cast<double>(avg.count) : 0.0;
        out << setName << '.' << name << ".avg " << mean << '\n';
    }
    return out.str();
}

} // namespace getm
