#include "common/stats.hh"

#include <algorithm>
#include <locale>
#include <sstream>

#include "common/json.hh"

namespace getm {

void
StatSet::merge(const StatSet &other)
{
    // Untouched slots are registration artefacts (handles that never
    // fired); merging them would materialize names the source never
    // reported.
    for (const auto &[name, slot] : other.counters) {
        if (!slot.touched)
            continue;
        counters[name].add(slot.value);
    }
    for (const auto &[name, slot] : other.maxima) {
        if (!slot.touched)
            continue;
        maxima[name].track(slot.value);
    }
    for (const auto &[name, avg] : other.averages) {
        if (avg.count == 0)
            continue;
        auto &slot = averages[name];
        slot.sum += avg.sum;
        slot.count += avg.count;
    }
    for (const auto &[name, hist] : other.histograms) {
        if (hist.count == 0)
            continue;
        HistogramData &slot = histograms[name];
        if (slot.buckets.size() < hist.buckets.size())
            slot.buckets.resize(hist.buckets.size());
        for (std::size_t i = 0; i < hist.buckets.size(); ++i)
            slot.buckets[i] += hist.buckets[i];
        slot.count += hist.count;
        slot.sum += hist.sum;
        slot.minValue = std::min(slot.minValue, hist.minValue);
        slot.maxValue = std::max(slot.maxValue, hist.maxValue);
    }
}

std::string
StatSet::dump() const
{
    std::ostringstream out;
    // Byte-stable output: the classic locale suppresses grouping
    // separators, and doubles go through std::to_chars (jsonNumber), not
    // the stream's locale-dependent formatting.
    out.imbue(std::locale::classic());
    for (const auto &[name, slot] : counters) {
        if (!slot.touched)
            continue;
        out << setName << '.' << name << ' ' << slot.value << '\n';
    }
    for (const auto &[name, slot] : maxima) {
        if (!slot.touched)
            continue;
        out << setName << '.' << name << ".max " << slot.value << '\n';
    }
    for (const auto &[name, avg] : averages) {
        if (avg.count == 0)
            continue;
        out << setName << '.' << name << ".avg " << jsonNumber(avg.mean())
            << '\n';
    }
    for (const auto &[name, hist] : histograms) {
        if (hist.count == 0)
            continue;
        out << setName << '.' << name << ".samples " << hist.count
            << '\n';
        out << setName << '.' << name << ".mean "
            << jsonNumber(hist.mean()) << '\n';
        for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
            if (!hist.buckets[i])
                continue;
            out << setName << '.' << name << ".bucket["
                << HistogramData::bucketLow(static_cast<unsigned>(i))
                << ".."
                << HistogramData::bucketHigh(static_cast<unsigned>(i))
                << "] " << hist.buckets[i] << '\n';
        }
    }
    return out.str();
}

} // namespace getm
