#include "common/stats.hh"

#include <algorithm>
#include <locale>
#include <sstream>

#include "common/json.hh"

namespace getm {

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, value] : other.maxima)
        trackMax(name, value);
    for (const auto &[name, avg] : other.averages) {
        auto &slot = averages[name];
        slot.sum += avg.sum;
        slot.count += avg.count;
    }
    for (const auto &[name, hist] : other.histograms) {
        HistogramData &slot = histograms[name];
        if (slot.buckets.size() < hist.buckets.size())
            slot.buckets.resize(hist.buckets.size());
        for (std::size_t i = 0; i < hist.buckets.size(); ++i)
            slot.buckets[i] += hist.buckets[i];
        slot.count += hist.count;
        slot.sum += hist.sum;
        slot.minValue = std::min(slot.minValue, hist.minValue);
        slot.maxValue = std::max(slot.maxValue, hist.maxValue);
    }
}

std::string
StatSet::dump() const
{
    std::ostringstream out;
    // Byte-stable output: the classic locale suppresses grouping
    // separators, and doubles go through std::to_chars (jsonNumber), not
    // the stream's locale-dependent formatting.
    out.imbue(std::locale::classic());
    for (const auto &[name, value] : counters)
        out << setName << '.' << name << ' ' << value << '\n';
    for (const auto &[name, value] : maxima)
        out << setName << '.' << name << ".max " << value << '\n';
    for (const auto &[name, avg] : averages) {
        const double mean =
            avg.count ? avg.sum / static_cast<double>(avg.count) : 0.0;
        out << setName << '.' << name << ".avg " << jsonNumber(mean)
            << '\n';
    }
    for (const auto &[name, hist] : histograms) {
        out << setName << '.' << name << ".samples " << hist.count
            << '\n';
        out << setName << '.' << name << ".mean "
            << jsonNumber(hist.mean()) << '\n';
        for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
            if (!hist.buckets[i])
                continue;
            out << setName << '.' << name << ".bucket["
                << HistogramData::bucketLow(static_cast<unsigned>(i))
                << ".."
                << HistogramData::bucketHigh(static_cast<unsigned>(i))
                << "] " << hist.buckets[i] << '\n';
        }
    }
    return out.str();
}

} // namespace getm
