/**
 * @file
 * gem5-style categorized debug tracing.
 *
 * Categories are enabled with the GETM_DEBUG environment variable, a
 * comma-separated list (e.g. GETM_DEBUG=getm,wtm,core) or "all".
 * Tracing compiles in unconditionally but costs one boolean test per
 * site when disabled; simulators live and die by their traces.
 *
 *     DTRACE(getm, "[%llu] P%u LD wid=%u ...", now, part, wid);
 */

#ifndef GETM_COMMON_DEBUG_HH
#define GETM_COMMON_DEBUG_HH

#include <cstdio>

namespace getm {
namespace debug {

/** Trace categories. */
enum class Category : unsigned
{
    Getm,   ///< GETM validation/commit units and core engine.
    Wtm,    ///< WarpTM validation ordering and decisions.
    Eapg,   ///< EAPG broadcasts / pauses / early aborts.
    Core,   ///< SIMT core scheduling, tx begin/commit/abort.
    Mem,    ///< Partition-local traffic (non-tx, atomics).
    NumCategories,
};

/** True if @p category was enabled via GETM_DEBUG. */
bool enabled(Category category);

/** printf to stderr (callers should gate on enabled()). */
void tracef(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace debug
} // namespace getm

/** Trace @p fmt under category @p cat (no trailing newline needed). */
#define DTRACE(cat, ...)                                                  \
    do {                                                                  \
        if (::getm::debug::enabled(::getm::debug::Category::cat))         \
            ::getm::debug::tracef(__VA_ARGS__);                           \
    } while (0)

#endif // GETM_COMMON_DEBUG_HH
