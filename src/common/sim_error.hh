/**
 * @file
 * Typed, catchable simulation errors with structured diagnostics.
 *
 * Simulation pathologies (deadlock, livelock, cycle-limit overruns,
 * wall-clock timeouts, invalid configurations) are *recoverable* from
 * the harness's point of view: a sweep must survive a stuck point and
 * record what happened. They therefore throw SimError rather than
 * calling panic()/abort(), which stays reserved for genuine internal
 * invariant violations (simulator bugs).
 *
 * A SimError carries a SimDiagnostic: a plain-data snapshot of the
 * stuck machine (cycle, progress counters, per-warp scheduler states,
 * starving warps, in-flight NoC messages, GETM metadata/stall-buffer
 * occupancy, top conflict addresses). The snapshot renders as
 * human-readable text (toText(), printed by the CLIs) and as a JSON
 * object (toJson(), embedded in the metrics document's "failure"
 * section -- see obs/metrics.hh).
 */

#ifndef GETM_COMMON_SIM_ERROR_HH
#define GETM_COMMON_SIM_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace getm {

/** What went wrong, from the harness's point of view. */
enum class SimErrorKind : std::uint8_t
{
    Deadlock,   ///< No future events, yet the run is not done.
    Livelock,   ///< Events fire but nothing retires or commits.
    CycleLimit, ///< The max_cycles safety bound was exceeded.
    WallTimeout,///< The --timeout-sec wall-clock budget was exceeded.
    Config,     ///< Invalid configuration rejected up front.
    Internal,   ///< Escaped internal error, wrapped for reporting.
    Checkpoint, ///< Unusable checkpoint file (corrupt, skewed, wrong).
    Interrupt,  ///< SIGINT/SIGTERM clean stop at an epoch boundary.
};

/** Stable upper-case kind name ("DEADLOCK", "LIVELOCK", ...). */
const char *simErrorKindName(SimErrorKind kind);

/** Lower-case status token recorded in sweep/failure documents
 *  ("deadlock", "livelock", "cycle-limit", "timeout", ...). */
const char *simErrorStatus(SimErrorKind kind);

/**
 * Process exit code the CLIs use for this failure kind. The contract
 * (docs/DURABILITY.md): 0 success, 2 usage error, 3 verification or
 * checker violation, 4 general SimError taxonomy, 5 watchdog/timeout
 * guards (livelock, wall-clock, cycle-limit), 128+signal for a clean
 * SIGINT/SIGTERM stop.
 */
int simErrorExitCode(SimErrorKind kind);

/** Exit codes shared by getm-sim and getm-sweep (see above). */
inline constexpr int exitUsage = 2;
inline constexpr int exitVerification = 3;
inline constexpr int exitSimError = 4;
inline constexpr int exitWatchdog = 5;

/** Structured snapshot of a failed simulation, attached to SimError. */
struct SimDiagnostic
{
    SimErrorKind kind = SimErrorKind::Internal;
    std::string message;

    std::uint64_t cycle = 0;        ///< Simulated cycle at failure.
    std::uint64_t sinceProgressCycles = 0; ///< Watchdog window burned.
    std::uint64_t instructions = 0; ///< Warp instructions retired.
    std::uint64_t commitLanes = 0;  ///< Lane-level tx commits.
    std::uint64_t nocInFlightUp = 0;   ///< Messages in the up crossbar.
    std::uint64_t nocInFlightDown = 0; ///< ... and the down crossbar.

    /** Scheduler-state histogram over every resident warp. */
    std::vector<std::pair<std::string, unsigned>> warpStates;

    /** Warps stuck in long consecutive-abort streaks (worst first). */
    struct StarvingWarp
    {
        unsigned core = 0;
        unsigned slot = 0;
        std::uint64_t gwid = 0;
        unsigned consecutiveAborts = 0;
        std::string state;
    };
    std::vector<StarvingWarp> starvingWarps;

    /** GETM per-partition occupancy (empty for other protocols). */
    struct PartitionRow
    {
        unsigned partition = 0;
        unsigned metaOccupancy = 0;  ///< Precise entries in use.
        unsigned metaLocked = 0;     ///< ... of which hold write locks.
        unsigned stallOccupancy = 0; ///< Requests parked in the buffer.
    };
    std::vector<PartitionRow> partitions;

    /** Most-contended granules (from the conflict profiler). */
    struct HotAddr
    {
        std::uint64_t addr = 0;
        std::uint64_t total = 0;
    };
    std::vector<HotAddr> hotAddrs;

    /** Multi-line human-readable dump (for stderr). */
    std::string toText() const;

    /** Render as one JSON object (the metrics "failure.diagnostic"). */
    std::string toJson() const;
};

/**
 * A recoverable simulation failure. what() is
 * "<KIND>: <message>"; the full snapshot rides in diagnostic().
 */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, const std::string &message)
        : std::runtime_error(std::string(simErrorKindName(kind)) + ": " +
                             message)
    {
        diag.kind = kind;
        diag.message = message;
    }

    explicit SimError(SimDiagnostic diagnostic)
        : std::runtime_error(
              std::string(simErrorKindName(diagnostic.kind)) + ": " +
              diagnostic.message),
          diag(std::move(diagnostic))
    {
    }

    SimErrorKind kind() const { return diag.kind; }
    const SimDiagnostic &diagnostic() const { return diag; }

  private:
    SimDiagnostic diag;
};

} // namespace getm

#endif // GETM_COMMON_SIM_ERROR_HH
