#include "common/cycle_workers.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace getm {

namespace {

/** One polite spin iteration: pause a few times, then yield. */
inline void
spinWait(unsigned &spins)
{
#if defined(__x86_64__) || defined(__i386__)
    if (spins < 256) {
        _mm_pause();
        ++spins;
        return;
    }
#else
    if (spins < 64) {
        ++spins;
        return;
    }
#endif
    // Past the spin budget: let someone else run. This keeps the pool
    // correct (if slow) even when workers outnumber hardware threads,
    // e.g. a sweep that oversubscribes sweep jobs x sim threads.
    std::this_thread::yield();
}

} // namespace

CycleWorkers::CycleWorkers(unsigned num_workers)
    : workers(num_workers < 1 ? 1 : num_workers),
      done(workers > 1 ? workers - 1 : 0)
{
    threads.reserve(workers > 1 ? workers - 1 : 0);
    for (unsigned i = 1; i < workers; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

CycleWorkers::~CycleWorkers()
{
    stopping.store(true, std::memory_order_release);
    for (auto &thread : threads)
        thread.join();
}

void
CycleWorkers::run(const PhaseFn &fn)
{
    const std::uint64_t epoch =
        goEpoch.load(std::memory_order_relaxed) + 1;
    phase = &fn;
    goEpoch.store(epoch, std::memory_order_release); // broadcast
    fn(0);                                           // caller's share
    for (auto &slot : done) {
        unsigned spins = 0;
        while (slot.epoch.load(std::memory_order_acquire) != epoch)
            spinWait(spins);
    }
    phase = nullptr;
}

void
CycleWorkers::workerLoop(unsigned index)
{
    std::uint64_t seen = 0;
    for (;;) {
        unsigned spins = 0;
        std::uint64_t epoch;
        while ((epoch = goEpoch.load(std::memory_order_acquire)) ==
               seen) {
            if (stopping.load(std::memory_order_acquire))
                return;
            spinWait(spins);
        }
        (*phase)(index);
        done[index - 1].epoch.store(epoch, std::memory_order_release);
        seen = epoch;
    }
}

} // namespace getm
