/**
 * @file
 * A small fixed-size thread pool with a bounded work queue.
 *
 * Built for the sweep harness (tools/getm-sweep), where each task is a
 * complete simulation: tasks are coarse (seconds to minutes), so the
 * pool optimizes for simplicity and backpressure rather than
 * per-task overhead. submit() blocks while the queue is full, which
 * bounds memory when a producer enumerates thousands of points, and
 * wait() gives the producer a completion barrier.
 *
 * Tasks may throw: an exception escaping a task is captured on the
 * worker thread and rethrown from the next wait() (first one wins;
 * later ones are dropped). The pool itself stays usable -- remaining
 * tasks still run -- so a caller that wants per-task isolation (like
 * the sweep runner) should catch inside the task instead.
 */

#ifndef GETM_COMMON_THREAD_POOL_HH
#define GETM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace getm {

class ThreadPool
{
  public:
    /**
     * Start @p num_threads workers.
     *
     * @param num_threads    0 means std::thread::hardware_concurrency()
     *                       (itself clamped to at least 1).
     * @param queue_capacity Maximum queued-but-unclaimed tasks before
     *                       submit() blocks; 0 means 2 x num_threads.
     */
    explicit ThreadPool(unsigned num_threads = 0,
                        std::size_t queue_capacity = 0);

    /** Drains the queue (runs or discards nothing: waits) and joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task; blocks while the queue is at capacity.
     * Must not be called after the destructor has begun.
     */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished running. If any
     * task threw since the last wait(), rethrows the first captured
     * exception (the destructor swallows one that is never collected).
     */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workerThreads.size());
    }

    /** hardware_concurrency() with the zero case clamped to 1. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable queueNotFull;  ///< submit() waits here.
    std::condition_variable queueNotEmpty; ///< workers wait here.
    std::condition_variable allIdle;       ///< wait() waits here.
    std::deque<std::function<void()>> queue;
    std::size_t capacity;
    std::size_t inFlight = 0; ///< Queued + currently executing.
    std::exception_ptr firstError; ///< First escaped task exception.
    bool stopping = false;
    std::vector<std::thread> workerThreads;
};

} // namespace getm

#endif // GETM_COMMON_THREAD_POOL_HH
