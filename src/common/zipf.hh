/**
 * @file
 * Deterministic Zipfian and scrambled-Zipfian rank generators.
 *
 * Implements the rejection-free closed form of Gray et al. ("Quickly
 * generating billion-record synthetic databases", SIGMOD '94), the same
 * shape YCSB's ZipfianGenerator uses: the zeta normalisation constant is
 * precomputed once, after which each draw costs two pow() calls and no
 * rejection loop. theta = 0 degenerates to the uniform distribution;
 * theta -> 1 approaches the classic 1/rank law (theta must stay < 1).
 *
 * ZipfianGenerator::next() returns a *rank*: 0 is the hottest item, 1
 * the second hottest, and so on. Real key spaces are not sorted by
 * popularity, so ScrambledZipfian composes the rank draw with a seeded
 * *bijective* permutation of [0, n) (a cycle-walking xorshift-multiply
 * permutation). Unlike YCSB's hash-mod scramble, a bijection preserves
 * the marginal distribution exactly: the multiset of per-key masses is
 * untouched, only which key carries which mass changes. rankOf() inverts
 * the permutation, which is what lets the conflict profiler's hot-address
 * report be translated back into "zipf rank r" labels.
 *
 * All draws consume exactly one Rng value, so generation is reproducible
 * across platforms and independent of call-site inlining.
 */

#ifndef GETM_COMMON_ZIPF_HH
#define GETM_COMMON_ZIPF_HH

#include <cstdint>

#include "common/rng.hh"

namespace getm {

/** Rank-ordered Zipfian draws over [0, n) (rank 0 = hottest). */
class ZipfianGenerator
{
  public:
    /**
     * @param n     Item count (>= 1).
     * @param theta Skew in [0, 1): 0 = uniform; 0.99 = YCSB default.
     */
    ZipfianGenerator(std::uint64_t n, double theta);

    /** Draw one rank in [0, n); consumes one value from @p rng. */
    std::uint64_t next(Rng &rng) const;

    /** Analytic probability mass of @p rank. */
    double mass(std::uint64_t rank) const;

    std::uint64_t items() const { return n; }
    double skew() const { return theta; }

    /** Generalized harmonic number sum_{i=1..n} 1/i^theta. */
    static double zeta(std::uint64_t n, double theta);

  private:
    std::uint64_t n;
    double theta;
    double alpha; ///< 1 / (1 - theta).
    double zetan; ///< zeta(n, theta).
    double eta;   ///< Gray et al. eta term.
};

/**
 * Zipfian draws whose popularity ranking is scattered over the key
 * space by a seeded bijection of [0, n).
 */
class ScrambledZipfian
{
  public:
    ScrambledZipfian(std::uint64_t n, double theta, std::uint64_t salt);

    /** Draw one key in [0, n); consumes one value from @p rng. */
    std::uint64_t
    next(Rng &rng) const
    {
        return scramble(zipf.next(rng));
    }

    /** The key holding popularity rank @p rank (a bijection). */
    std::uint64_t scramble(std::uint64_t rank) const;

    /** Inverse of scramble(): the popularity rank of @p key. */
    std::uint64_t rankOf(std::uint64_t key) const;

    const ZipfianGenerator &ranks() const { return zipf; }

  private:
    ZipfianGenerator zipf;
    std::uint64_t n;
    std::uint64_t mask;     ///< 2^bits - 1, smallest power of two >= n.
    std::uint64_t mulOdd;   ///< Seeded odd multiplier (invertible).
    std::uint64_t mulInv;   ///< Modular inverse of mulOdd mod 2^bits.
    std::uint64_t xorConst; ///< Seeded xor constant.
    unsigned bits;          ///< Permutation width.
};

} // namespace getm

#endif // GETM_COMMON_ZIPF_HH
