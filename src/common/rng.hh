/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload generation, H3 hash
 * matrices, backoff jitter) draws from explicitly seeded Rng instances so
 * that every experiment is exactly reproducible.
 */

#ifndef GETM_COMMON_RNG_HH
#define GETM_COMMON_RNG_HH

#include <cstdint>

namespace getm {

/**
 * xoshiro256** PRNG (Blackman & Vigna), seeded via splitmix64.
 *
 * Fast, high-quality, and trivially reproducible across platforms.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; the seed is expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless method would be overkill here; a
        // simple 128-bit multiply keeps the distribution unbiased enough
        // for workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Checkpoint hook (ckpt/serial.hh): the four state words. */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        for (auto &word : state)
            ar(word);
    }

    /** splitmix64 step, exposed for seeding other structures. */
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace getm

#endif // GETM_COMMON_RNG_HH
