/**
 * @file
 * The register-based micro-ISA executed by the simulated SIMT cores.
 *
 * This replaces GPGPU-Sim's PTX front end (see DESIGN.md, substitutions).
 * The ISA is deliberately small but covers everything the paper's
 * workloads need: integer ALU ops, predicated PDOM branches with explicit
 * reconvergence points, global loads/stores (with an L1-bypass flag for
 * volatile data in the lock-based variants), LLC-side atomics, and the
 * txbegin/txcommit transaction delimiters of Fig. 1.
 */

#ifndef GETM_ISA_INSTRUCTION_HH
#define GETM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace getm {

/** Number of 64-bit registers per thread. */
constexpr unsigned numRegs = 64;

/** Program counter type (index into the kernel's instruction vector). */
using Pc = std::uint32_t;

/** Opcodes of the micro-ISA. */
enum class Opcode : std::uint8_t
{
    // ALU (rd = ra OP rb-or-imm)
    Add, Sub, Mul, DivU, RemU,
    MinS, MaxS,
    And, Or, Xor, Shl, ShrL, ShrA,
    SetLtS, SetLtU, SetEq, SetNe, SetLeS,
    // rd = imm (64-bit)
    LoadImm,
    // rd = special value (SpecialReg in imm)
    ReadSpecial,
    // rd = mix(ra, rb-or-imm): one-cycle hardware hash
    Hash,
    // Control flow (target/rpc fields)
    BranchEqz, BranchNez, Jump,
    // Memory: LD rd, [ra + imm] ; ST [ra + imm], rb
    Load, Store,
    // Atomics (execute at the LLC partition, bypass L1):
    // CAS: rd = old, [ra], compare rb, swap rc
    // Exch/Add: rd = old, [ra], operand rb
    AtomCas, AtomExch, AtomAdd,
    // Transactions
    TxBegin, TxCommit,
    // Memory ordering: wait until all outstanding stores are acked
    Fence,
    // Misc
    Nop, Exit,
};

/** Values readable via ReadSpecial. */
enum class SpecialReg : std::uint8_t
{
    ThreadId,   ///< Global thread id across the whole launch.
    LaneId,     ///< Lane index within the warp.
    WarpId,     ///< Global warp id across the whole launch.
    NumThreads, ///< Total threads in the launch.
};

/** Flags modifying memory instructions. */
enum MemFlags : std::uint8_t
{
    MemNone = 0,
    /**
     * Bypass the L1 (CUDA "volatile"). Required for mutable shared data
     * in the fine-grained-lock variants, since the simulated GPU -- like
     * real ones -- has no L1 coherence.
     */
    MemBypassL1 = 1,
};

/** A decoded instruction. Fixed-width fields keep decode trivial. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0; ///< Destination register.
    std::uint8_t ra = 0; ///< First source register.
    std::uint8_t rb = 0; ///< Second source register.
    std::uint8_t rc = 0; ///< Third source register (AtomCas swap).
    /** True if rb is replaced by imm for ALU/Hash ops. */
    bool bImm = false;
    std::uint8_t memFlags = MemNone;
    std::int64_t imm = 0; ///< Immediate / address offset / special-reg id.
    Pc target = 0;        ///< Branch/jump target.
    Pc rpc = 0;           ///< Reconvergence PC for divergent branches.

    bool
    isBranch() const
    {
        return op == Opcode::BranchEqz || op == Opcode::BranchNez ||
               op == Opcode::Jump;
    }

    bool
    isMemory() const
    {
        return op == Opcode::Load || op == Opcode::Store || isAtomic();
    }

    bool
    isAtomic() const
    {
        return op == Opcode::AtomCas || op == Opcode::AtomExch ||
               op == Opcode::AtomAdd;
    }

    /** Disassemble for debugging and tests. */
    std::string toString() const;
};

/**
 * Functional hash used by the Hash instruction (and by workload setup so
 * host-side and device-side hashing agree). splitmix64 finalizer over the
 * two operands.
 */
inline std::uint64_t
hashMix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace getm

#endif // GETM_ISA_INSTRUCTION_HH
