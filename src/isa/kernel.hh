/**
 * @file
 * A compiled kernel: the unit of work launched onto the simulated GPU.
 */

#ifndef GETM_ISA_KERNEL_HH
#define GETM_ISA_KERNEL_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace getm {

/** An immutable instruction sequence plus launch metadata. */
class Kernel
{
  public:
    Kernel() = default;

    Kernel(std::string name_, std::vector<Instruction> code_)
        : kernelName(std::move(name_)), instructions(std::move(code_))
    {
    }

    const Instruction &
    at(Pc pc) const
    {
        return instructions[pc];
    }

    Pc size() const { return static_cast<Pc>(instructions.size()); }
    bool empty() const { return instructions.empty(); }
    const std::string &name() const { return kernelName; }

    /** Full disassembly listing. */
    std::string disassemble() const;

  private:
    std::string kernelName;
    std::vector<Instruction> instructions;
};

} // namespace getm

#endif // GETM_ISA_KERNEL_HH
