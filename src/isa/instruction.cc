#include "isa/instruction.hh"

#include <sstream>

#include "isa/kernel.hh"

namespace getm {

namespace {

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::DivU: return "divu";
      case Opcode::RemU: return "remu";
      case Opcode::MinS: return "mins";
      case Opcode::MaxS: return "maxs";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::ShrL: return "shrl";
      case Opcode::ShrA: return "shra";
      case Opcode::SetLtS: return "slts";
      case Opcode::SetLtU: return "sltu";
      case Opcode::SetEq: return "seq";
      case Opcode::SetNe: return "sne";
      case Opcode::SetLeS: return "sles";
      case Opcode::LoadImm: return "li";
      case Opcode::ReadSpecial: return "rdsr";
      case Opcode::Hash: return "hash";
      case Opcode::BranchEqz: return "beqz";
      case Opcode::BranchNez: return "bnez";
      case Opcode::Jump: return "jmp";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::AtomCas: return "atom.cas";
      case Opcode::AtomExch: return "atom.exch";
      case Opcode::AtomAdd: return "atom.add";
      case Opcode::TxBegin: return "txbegin";
      case Opcode::TxCommit: return "txcommit";
      case Opcode::Fence: return "fence";
      case Opcode::Nop: return "nop";
      case Opcode::Exit: return "exit";
    }
    return "???";
}

} // namespace

std::string
Instruction::toString() const
{
    std::ostringstream out;
    out << mnemonic(op);
    switch (op) {
      case Opcode::LoadImm:
        out << " r" << +rd << ", " << imm;
        break;
      case Opcode::ReadSpecial:
        out << " r" << +rd << ", sr" << imm;
        break;
      case Opcode::BranchEqz:
      case Opcode::BranchNez:
        out << " r" << +ra << ", @" << target << " (rpc @" << rpc << ")";
        break;
      case Opcode::Jump:
        out << " @" << target;
        break;
      case Opcode::Load:
        out << " r" << +rd << ", [r" << +ra << (imm >= 0 ? "+" : "") << imm
            << "]" << ((memFlags & MemBypassL1) ? " .vol" : "");
        break;
      case Opcode::Store:
        out << " [r" << +ra << (imm >= 0 ? "+" : "") << imm << "], r" << +rb
            << ((memFlags & MemBypassL1) ? " .vol" : "");
        break;
      case Opcode::AtomCas:
        out << " r" << +rd << ", [r" << +ra << "], r" << +rb << ", r" << +rc;
        break;
      case Opcode::AtomExch:
      case Opcode::AtomAdd:
        out << " r" << +rd << ", [r" << +ra << "], r" << +rb;
        break;
      case Opcode::TxBegin:
      case Opcode::TxCommit:
      case Opcode::Fence:
      case Opcode::Nop:
      case Opcode::Exit:
        break;
      default:
        out << " r" << +rd << ", r" << +ra << ", ";
        if (bImm)
            out << imm;
        else
            out << "r" << +rb;
        break;
    }
    return out.str();
}

std::string
Kernel::disassemble() const
{
    std::ostringstream out;
    out << "; kernel " << kernelName << " (" << instructions.size()
        << " insts)\n";
    for (Pc pc = 0; pc < size(); ++pc)
        out << pc << ":\t" << instructions[pc].toString() << '\n';
    return out.str();
}

} // namespace getm
