#include "isa/kernel_builder.hh"

#include "common/log.hh"

namespace getm {

KernelBuilder::Label
KernelBuilder::newLabel()
{
    labelPcs.push_back(-1);
    return Label{static_cast<std::uint32_t>(labelPcs.size() - 1)};
}

void
KernelBuilder::bind(Label label)
{
    if (labelPcs[label.id] != -1)
        panic("label %u bound twice in kernel %s", label.id,
              kernelName.c_str());
    labelPcs[label.id] = static_cast<std::int64_t>(code.size());
}

Instruction &
KernelBuilder::emit(Opcode op)
{
    code.emplace_back();
    code.back().op = op;
    return code.back();
}

void
KernelBuilder::alu(Opcode op, Reg rd, Reg ra, Reg rb)
{
    Instruction &inst = emit(op);
    inst.rd = rd.index;
    inst.ra = ra.index;
    inst.rb = rb.index;
}

void
KernelBuilder::alui(Opcode op, Reg rd, Reg ra, std::int64_t imm)
{
    Instruction &inst = emit(op);
    inst.rd = rd.index;
    inst.ra = ra.index;
    inst.bImm = true;
    inst.imm = imm;
}

void
KernelBuilder::li(Reg rd, std::int64_t imm)
{
    Instruction &inst = emit(Opcode::LoadImm);
    inst.rd = rd.index;
    inst.imm = imm;
}

void
KernelBuilder::readSpecial(Reg rd, SpecialReg which)
{
    Instruction &inst = emit(Opcode::ReadSpecial);
    inst.rd = rd.index;
    inst.imm = static_cast<std::int64_t>(which);
}

void
KernelBuilder::hash(Reg rd, Reg ra, Reg rb)
{
    Instruction &inst = emit(Opcode::Hash);
    inst.rd = rd.index;
    inst.ra = ra.index;
    inst.rb = rb.index;
}

void
KernelBuilder::hashi(Reg rd, Reg ra, std::int64_t seed)
{
    Instruction &inst = emit(Opcode::Hash);
    inst.rd = rd.index;
    inst.ra = ra.index;
    inst.bImm = true;
    inst.imm = seed;
}

void
KernelBuilder::beqz(Reg ra, Label target, Label rpc)
{
    Instruction &inst = emit(Opcode::BranchEqz);
    inst.ra = ra.index;
    fixups.push_back({here() - 1, target.id, false});
    fixups.push_back({here() - 1, rpc.id, true});
}

void
KernelBuilder::bnez(Reg ra, Label target, Label rpc)
{
    Instruction &inst = emit(Opcode::BranchNez);
    inst.ra = ra.index;
    fixups.push_back({here() - 1, target.id, false});
    fixups.push_back({here() - 1, rpc.id, true});
}

void
KernelBuilder::jump(Label target)
{
    emit(Opcode::Jump);
    fixups.push_back({here() - 1, target.id, false});
}

void
KernelBuilder::load(Reg rd, Reg ra, std::int64_t offset, std::uint8_t flags)
{
    Instruction &inst = emit(Opcode::Load);
    inst.rd = rd.index;
    inst.ra = ra.index;
    inst.imm = offset;
    inst.memFlags = flags;
}

void
KernelBuilder::store(Reg ra, Reg rb, std::int64_t offset, std::uint8_t flags)
{
    Instruction &inst = emit(Opcode::Store);
    inst.ra = ra.index;
    inst.rb = rb.index;
    inst.imm = offset;
    inst.memFlags = flags;
}

void
KernelBuilder::atomCas(Reg rd, Reg ra, Reg rb, Reg rc)
{
    Instruction &inst = emit(Opcode::AtomCas);
    inst.rd = rd.index;
    inst.ra = ra.index;
    inst.rb = rb.index;
    inst.rc = rc.index;
    inst.memFlags = MemBypassL1;
}

void
KernelBuilder::atomExch(Reg rd, Reg ra, Reg rb)
{
    Instruction &inst = emit(Opcode::AtomExch);
    inst.rd = rd.index;
    inst.ra = ra.index;
    inst.rb = rb.index;
    inst.memFlags = MemBypassL1;
}

void
KernelBuilder::atomAdd(Reg rd, Reg ra, Reg rb)
{
    Instruction &inst = emit(Opcode::AtomAdd);
    inst.rd = rd.index;
    inst.ra = ra.index;
    inst.rb = rb.index;
    inst.memFlags = MemBypassL1;
}

void
KernelBuilder::txBegin()
{
    emit(Opcode::TxBegin);
}

void
KernelBuilder::txCommit()
{
    emit(Opcode::TxCommit);
}

void
KernelBuilder::fence()
{
    emit(Opcode::Fence);
}

void
KernelBuilder::nop()
{
    emit(Opcode::Nop);
}

void
KernelBuilder::exit()
{
    emit(Opcode::Exit);
}

Kernel
KernelBuilder::build()
{
    for (const Fixup &fixup : fixups) {
        const std::int64_t pc = labelPcs[fixup.targetLabel];
        if (pc < 0)
            panic("unbound label %u in kernel %s", fixup.targetLabel,
                  kernelName.c_str());
        if (fixup.isRpc)
            code[fixup.at].rpc = static_cast<Pc>(pc);
        else
            code[fixup.at].target = static_cast<Pc>(pc);
    }
    // Guarantee termination even if the author forgot an Exit.
    if (code.empty() || code.back().op != Opcode::Exit)
        emit(Opcode::Exit);
    return Kernel(kernelName, std::move(code));
}

} // namespace getm
