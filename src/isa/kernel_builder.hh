/**
 * @file
 * Small assembler for micro-ISA kernels.
 *
 * Provides labels with backpatching and mnemonic-style emit helpers so
 * workloads read like assembly listings. Divergent branches must name an
 * explicit reconvergence label (the immediate post-dominator), which the
 * SIMT stack uses for PDOM reconvergence.
 */

#ifndef GETM_ISA_KERNEL_BUILDER_HH
#define GETM_ISA_KERNEL_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace getm {

/** Register name wrapper for emit-helper readability. */
struct Reg
{
    std::uint8_t index;
    explicit constexpr Reg(unsigned i) : index(static_cast<uint8_t>(i)) {}
};

/** Kernel assembler with label backpatching. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name_) : kernelName(std::move(name_))
    {
    }

    /** Opaque label handle. */
    struct Label
    {
        std::uint32_t id;
    };

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    // --- ALU -------------------------------------------------------------
    void alu(Opcode op, Reg rd, Reg ra, Reg rb);
    void alui(Opcode op, Reg rd, Reg ra, std::int64_t imm);

    void add(Reg rd, Reg ra, Reg rb) { alu(Opcode::Add, rd, ra, rb); }
    void addi(Reg rd, Reg ra, std::int64_t i) { alui(Opcode::Add, rd, ra, i); }
    void sub(Reg rd, Reg ra, Reg rb) { alu(Opcode::Sub, rd, ra, rb); }
    void mul(Reg rd, Reg ra, Reg rb) { alu(Opcode::Mul, rd, ra, rb); }
    void muli(Reg rd, Reg ra, std::int64_t i) { alui(Opcode::Mul, rd, ra, i); }
    void divu(Reg rd, Reg ra, Reg rb) { alu(Opcode::DivU, rd, ra, rb); }
    void remu(Reg rd, Reg ra, Reg rb) { alu(Opcode::RemU, rd, ra, rb); }
    void remui(Reg rd, Reg ra, std::int64_t i)
    {
        alui(Opcode::RemU, rd, ra, i);
    }
    void andi(Reg rd, Reg ra, std::int64_t i) { alui(Opcode::And, rd, ra, i); }
    void ori(Reg rd, Reg ra, std::int64_t i) { alui(Opcode::Or, rd, ra, i); }
    void xori(Reg rd, Reg ra, std::int64_t i) { alui(Opcode::Xor, rd, ra, i); }
    void shli(Reg rd, Reg ra, std::int64_t i) { alui(Opcode::Shl, rd, ra, i); }
    void shri(Reg rd, Reg ra, std::int64_t i)
    {
        alui(Opcode::ShrL, rd, ra, i);
    }
    void sltu(Reg rd, Reg ra, Reg rb) { alu(Opcode::SetLtU, rd, ra, rb); }
    void slts(Reg rd, Reg ra, Reg rb) { alu(Opcode::SetLtS, rd, ra, rb); }
    void sltsi(Reg rd, Reg ra, std::int64_t i)
    {
        alui(Opcode::SetLtS, rd, ra, i);
    }
    void seq(Reg rd, Reg ra, Reg rb) { alu(Opcode::SetEq, rd, ra, rb); }
    void seqi(Reg rd, Reg ra, std::int64_t i)
    {
        alui(Opcode::SetEq, rd, ra, i);
    }
    void sne(Reg rd, Reg ra, Reg rb) { alu(Opcode::SetNe, rd, ra, rb); }
    void snei(Reg rd, Reg ra, std::int64_t i)
    {
        alui(Opcode::SetNe, rd, ra, i);
    }
    void mins(Reg rd, Reg ra, Reg rb) { alu(Opcode::MinS, rd, ra, rb); }
    void maxs(Reg rd, Reg ra, Reg rb) { alu(Opcode::MaxS, rd, ra, rb); }

    /** rd = imm (full 64-bit immediate). */
    void li(Reg rd, std::int64_t imm);
    /** rd = ra (pseudo-op). */
    void mov(Reg rd, Reg ra) { alui(Opcode::Add, rd, ra, 0); }
    /** rd = special register. */
    void readSpecial(Reg rd, SpecialReg which);
    /** rd = hashMix(ra, rb). */
    void hash(Reg rd, Reg ra, Reg rb);
    /** rd = hashMix(ra, seed). */
    void hashi(Reg rd, Reg ra, std::int64_t seed);

    // --- Control flow ----------------------------------------------------
    /** Branch to @p target if ra == 0; reconverge at @p rpc. */
    void beqz(Reg ra, Label target, Label rpc);
    /** Branch to @p target if ra != 0; reconverge at @p rpc. */
    void bnez(Reg ra, Label target, Label rpc);
    /** Unconditional jump (no divergence). */
    void jump(Label target);

    // --- Memory ----------------------------------------------------------
    /** rd = mem[ra + offset]. */
    void load(Reg rd, Reg ra, std::int64_t offset = 0,
              std::uint8_t flags = MemNone);
    /** mem[ra + offset] = rb. */
    void store(Reg ra, Reg rb, std::int64_t offset = 0,
               std::uint8_t flags = MemNone);
    /** rd = CAS(mem[ra], compare=rb, swap=rc). */
    void atomCas(Reg rd, Reg ra, Reg rb, Reg rc);
    /** rd = Exch(mem[ra], rb). */
    void atomExch(Reg rd, Reg ra, Reg rb);
    /** rd = FetchAdd(mem[ra], rb). */
    void atomAdd(Reg rd, Reg ra, Reg rb);

    // --- Transactions / misc ----------------------------------------------
    void txBegin();
    void txCommit();
    /** Wait until all prior (volatile) stores are globally visible. */
    void fence();
    void nop();
    void exit();

    /** Current instruction count (next emitted PC). */
    Pc here() const { return static_cast<Pc>(code.size()); }

    /** Resolve labels and produce the kernel. */
    Kernel build();

  private:
    Instruction &emit(Opcode op);

    struct Fixup
    {
        Pc at;
        std::uint32_t targetLabel;
        bool isRpc; ///< Patch rpc field instead of target.
    };

    std::string kernelName;
    std::vector<Instruction> code;
    std::vector<std::int64_t> labelPcs; // -1 when unbound
    std::vector<Fixup> fixups;
};

} // namespace getm

#endif // GETM_ISA_KERNEL_BUILDER_HH
