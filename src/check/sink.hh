/**
 * @file
 * Event interface between the simulator and the runtime checker.
 *
 * Like ObsSink, a CheckSink is a nullable pointer installed on every
 * SIMT core and memory partition; when no checker is configured the
 * pointer is null and the hot paths pay a single predictable branch.
 * Engines stay decoupled from the checker implementation: they report
 * *what happened*, the checker decides what it means.
 *
 * Placement contract (this is what makes the checker sound):
 *
 *  - readObserved() fires where transactional load data is bound to a
 *    value -- at the memory partition's serialization point (GETM
 *    respondLoad, WarpTM WtmTxLoad), never at core delivery time.
 *  - writeApplied() / externalWrite() fire adjacent to the actual
 *    BackingStore mutation, so the checker's shadow memory advances in
 *    lockstep with functional memory in simulation event order.
 *  - attemptBegin/Aborted/Committed fire at the SIMT core's single
 *    accounting points (execTxBegin, abortTxLanes, retireTxAttempt).
 *    At retire the per-lane redo logs are still intact and carry the
 *    committed write intent.
 *
 * Attribution: (gwid, lane) identifies a thread slot; the checker
 * tracks attempts per slot because partition messages do not carry
 * thread ids and global warp ids are reused across warp relaunches.
 */

#ifndef GETM_CHECK_SINK_HH
#define GETM_CHECK_SINK_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "tm/tx_log.hh"

namespace getm {

/** Receiver of transaction-lifecycle and memory events. */
class CheckSink
{
  public:
    virtual ~CheckSink() = default;

    /** Lanes in @p lanes of (core-assigned) warp @p gwid start a new
     *  transaction attempt; lane 0 executes thread @p first_tid. */
    virtual void attemptBegin(GlobalWarpId gwid, LaneMask lanes,
                              std::uint32_t first_tid) = 0;

    /** A transactional load bound @p value for @p addr at the
     *  partition's serialization point. */
    virtual void readObserved(GlobalWarpId gwid, LaneId lane, Addr addr,
                              std::uint32_t value) = 0;

    /** Lanes of the current attempt aborted (will retry or die). */
    virtual void attemptAborted(GlobalWarpId gwid, LaneMask lanes) = 0;

    /**
     * One lane's attempt committed. @p writes is the lane's redo log
     * (the write intent); the matching writeApplied() calls may come
     * before (WarpTM-EL) or after (GETM, WarpTM-LL) this event.
     */
    virtual void attemptCommitted(GlobalWarpId gwid, LaneId lane,
                                  const std::vector<LogEntry> &writes) = 0;

    /** A committed transactional write of @p value hit memory. */
    virtual void writeApplied(GlobalWarpId gwid, LaneId lane, Addr addr,
                              std::uint32_t value) = 0;

    /** A non-transactional store or atomic mutated memory. */
    virtual void externalWrite(Addr addr, std::uint32_t value) = 0;
};

} // namespace getm

#endif // GETM_CHECK_SINK_HH
