/**
 * @file
 * Online serializability & opacity checker.
 *
 * The Checker consumes the CheckSink event stream and maintains, in
 * lockstep with functional memory, a *shadow* multi-version history of
 * every address the simulation touches. Because every BackingStore
 * mutation on a simulated path has an adjacent writeApplied() /
 * externalWrite() hook, the newest shadow version always equals the
 * store's content at the same simulation instant; a transactional read
 * that disagrees with it proves a write bypassed an instrumented path
 * or a value was corrupted in flight (opacity: even doomed attempts
 * must observe consistent committed state).
 *
 * Committed transactions additionally enter an incremental conflict
 * graph. Edges:
 *
 *   WR  version writer -> committed reader         (at reader commit)
 *   WW  previous version writer -> new writer      (at version install)
 *   RW  committed reader -> *immediate successor*  (at whichever of
 *       reader-commit / successor-install happens second)
 *
 * RW anti-dependencies to later overwriters follow transitively via
 * the WW chain, so immediate successors suffice. The graph is kept a
 * DAG with the Pearce-Kelly incremental topological-order algorithm;
 * an insertion that would close a cycle is reported as a
 * SerializabilityCycle and *not* inserted, so detection keeps working
 * afterwards. Epoch GC (every gcPeriod commits) prunes dead versions
 * and condenses retired graph nodes while preserving reachability
 * between the surviving ("pinned") nodes, so a pruned interior node
 * can never hide a future cycle.
 *
 * Commit intent (the redo log captured at attemptCommitted) is
 * cross-checked against the applies that actually hit memory:
 * mismatched value => CorruptApply, never applied => LostWrite.
 *
 * The checker is a pure observer: it owns no stats counters, issues no
 * memory traffic, and never perturbs simulated timing.
 */

#ifndef GETM_CHECK_CHECKER_HH
#define GETM_CHECK_CHECKER_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/sink.hh"
#include "check/violation.hh"
#include "mem/backing_store.hh"

namespace getm {

class Checker : public CheckSink
{
  public:
    explicit Checker(CheckLevel level);

    // CheckSink events (see sink.hh for the placement contract).
    void attemptBegin(GlobalWarpId gwid, LaneMask lanes,
                      std::uint32_t first_tid) override;
    void readObserved(GlobalWarpId gwid, LaneId lane, Addr addr,
                      std::uint32_t value) override;
    void attemptAborted(GlobalWarpId gwid, LaneMask lanes) override;
    void attemptCommitted(GlobalWarpId gwid, LaneId lane,
                          const std::vector<LogEntry> &writes) override;
    void writeApplied(GlobalWarpId gwid, LaneId lane, Addr addr,
                      std::uint32_t value) override;
    void externalWrite(Addr addr, std::uint32_t value) override;

    /**
     * End-of-run pass: report LostWrite for commit intent that never
     * reached memory and FinalStateMismatch where @p store disagrees
     * with the shadow (a write escaped instrumentation entirely).
     */
    void finish(const BackingStore &store);

    /**
     * CheckLevel::Ref: diff @p actual against @p ref (a BackingStore
     * the caller ran through check::referenceRun with identical
     * initial contents) over every address the simulation touched.
     */
    void crossCheckReference(const BackingStore &ref,
                             const BackingStore &actual);

    const CheckReport &report() const { return report_; }
    CheckLevel level() const { return level_; }

    /** Commits between GC passes (test hook; default 4096). */
    void setGcPeriod(std::uint64_t period) { gcPeriod = period ? period : 1; }

    /**
     * Checkpoint hook: the complete shadow history, per-lane attempt
     * attribution, conflict graph, and the accumulating report. The
     * check level itself is construction-time config and must already
     * match (the config hash guarantees it).
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(report_, eventSeq, txCounter, gcPeriod, commitsSinceGc,
           shadow, slots, nodes, ordCounter);
    }

  private:
    /** One committed write of one version of one address. */
    struct Version
    {
        std::uint64_t writer;    ///< Checker tx id; 0 = initial/external.
        std::uint32_t value;
        std::uint64_t installSeq; ///< Global event order of the install.
        std::vector<std::uint64_t> committedReaders;

        template <class Ar>
        void
        ckpt(Ar &ar)
        {
            ar(writer, value, installSeq, committedReaders);
        }
    };

    struct AddrState
    {
        std::vector<Version> versions; ///< installSeq-ascending.

        template <class Ar> void ckpt(Ar &ar) { ar(versions); }
    };

    /** A read bound at the partition, with the version it observed. */
    struct ReadRec
    {
        Addr addr;
        std::uint32_t value;
        std::uint64_t installSeq;
        std::uint64_t writer;

        template <class Ar>
        void
        ckpt(Ar &ar)
        {
            ar(addr, value, installSeq, writer);
        }
    };

    struct WriteIntent
    {
        Addr addr;
        std::uint32_t value;
        bool applied;

        template <class Ar> void ckpt(Ar &ar) { ar(addr, value, applied); }
    };

    /** An in-flight transaction attempt of one lane slot. */
    struct Attempt
    {
        std::uint64_t id = 0;
        std::uint32_t tid = 0;
        std::vector<ReadRec> reads;
        /** Applies seen while still current (WarpTM-EL commits at the
         *  core before the attempt retires). */
        std::vector<std::pair<Addr, std::uint32_t>> earlyApplies;

        template <class Ar>
        void
        ckpt(Ar &ar)
        {
            ar(id, tid, reads, earlyApplies);
        }
    };

    /** A committed attempt whose applies are still in flight. */
    struct PendingApply
    {
        std::uint64_t tx;
        std::vector<WriteIntent> intents;

        template <class Ar> void ckpt(Ar &ar) { ar(tx, intents); }
    };

    /**
     * Per-(warp, lane) attempt attribution. Partition messages carry
     * (gwid, lane) but no transaction id; the drain invariants of all
     * protocols guarantee reads bind while the issuing attempt is
     * still `cur`, while GETM / WarpTM-LL applies can land after the
     * lane retired (hence the pending deque).
     */
    struct LaneSlot
    {
        bool active = false;
        Attempt cur;
        std::deque<PendingApply> pending;

        template <class Ar> void ckpt(Ar &ar) { ar(active, cur, pending); }
    };

    /** Conflict-graph node, keyed by checker tx id. */
    struct TxNode
    {
        std::uint64_t ord; ///< Pearce-Kelly topological index.
        std::unordered_set<std::uint64_t> out;
        std::unordered_set<std::uint64_t> in;

        template <class Ar> void ckpt(Ar &ar) { ar(ord, out, in); }
    };

    void addViolation(ViolationKind kind, Addr addr, std::uint64_t tx,
                      std::uint32_t expected, std::uint32_t actual,
                      std::string detail);

    /** Append a version; wires WW + pending RW edges to the writer. */
    void installVersion(Addr addr, std::uint64_t writer,
                        std::uint32_t value);

    TxNode &ensureNode(std::uint64_t tx);

    /**
     * Insert u -> v, maintaining the topological order (Pearce-Kelly).
     * If the edge would close a cycle it is reported and dropped.
     */
    void addEdge(std::uint64_t u, std::uint64_t v, const char *dep,
                 Addr addr);

    Version *findVersion(AddrState &st, std::uint64_t install_seq,
                         std::size_t *index = nullptr);

    void maybeGc();
    void gc();

    static std::uint64_t
    slotKey(GlobalWarpId gwid, LaneId lane)
    {
        return static_cast<std::uint64_t>(gwid) * warpSize + lane;
    }

    CheckLevel level_;
    CheckReport report_;

    std::uint64_t eventSeq = 0;
    std::uint64_t txCounter = 0;
    std::uint64_t gcPeriod = 4096;
    std::uint64_t commitsSinceGc = 0;

    std::unordered_map<Addr, AddrState> shadow;
    std::unordered_map<std::uint64_t, LaneSlot> slots;
    std::unordered_map<std::uint64_t, TxNode> nodes;
    std::uint64_t ordCounter = 0;

    static constexpr std::size_t maxSamples = 16;
};

} // namespace getm

#endif // GETM_CHECK_CHECKER_HH
