/**
 * @file
 * Typed violation taxonomy and report of the runtime checker.
 *
 * Every problem the checker can detect is one of these kinds, so tests
 * and CI can assert *which* invariant a fault broke rather than just
 * "something failed". Mirrors the style of obs/abort_reason.hh: a
 * single enum, a stable machine-readable name, and array-sized Count.
 */

#ifndef GETM_CHECK_VIOLATION_HH
#define GETM_CHECK_VIOLATION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace getm {

/** How much checking a run performs. */
enum class CheckLevel : std::uint8_t
{
    Off = 0, ///< No checker constructed; zero overhead.
    Read,    ///< Read validity + commit apply/intent cross-check.
    Serial,  ///< Read + incremental conflict-serializability graph.
    Ref,     ///< Serial + final-memory diff vs. the reference executor.
};

/** Parse "off" / "read" / "serial" / "ref" (or 0-3); false if unknown. */
bool parseCheckLevel(const std::string &text, CheckLevel &out);

/** Stable lower-case name, accepted back by parseCheckLevel(). */
const char *checkLevelName(CheckLevel level);

/** Which correctness invariant a detected violation broke. */
enum class ViolationKind : std::uint8_t
{
    /**
     * A transactional read observed a value different from the latest
     * write the checker saw applied to that address (opacity: every
     * read, even by a doomed attempt, must see current committed
     * state; all four protocols bind read data at the functional
     * memory's serialization point).
     */
    InconsistentRead = 0,
    /** The committed-transaction conflict graph contains a cycle. */
    SerializabilityCycle,
    /** A committed write was applied with a different value than the
     *  transaction logged (redo-log / commit-unit corruption). */
    CorruptApply,
    /** A committed write was never applied to memory. */
    LostWrite,
    /** End-of-run memory differs from the checker's applied-write
     *  shadow (a write bypassed every instrumented path). */
    FinalStateMismatch,
    /** Final memory differs from the single-threaded reference
     *  executor (CheckLevel::Ref only; order-sensitive kernels are
     *  expected to diverge -- see docs/CHECKING.md). */
    RefMismatch,
    Count
};

constexpr unsigned numViolationKinds =
    static_cast<unsigned>(ViolationKind::Count);

/** Stable machine-readable name ("SERIALIZABILITY_CYCLE", ...). */
constexpr const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::InconsistentRead: return "INCONSISTENT_READ";
      case ViolationKind::SerializabilityCycle:
        return "SERIALIZABILITY_CYCLE";
      case ViolationKind::CorruptApply: return "CORRUPT_APPLY";
      case ViolationKind::LostWrite: return "LOST_WRITE";
      case ViolationKind::FinalStateMismatch:
        return "FINAL_STATE_MISMATCH";
      case ViolationKind::RefMismatch: return "REF_MISMATCH";
      case ViolationKind::Count: break;
    }
    return "?";
}

/** One detected violation (the first few are kept verbatim). */
struct Violation
{
    ViolationKind kind = ViolationKind::InconsistentRead;
    Addr addr = invalidAddr;      ///< Offending address (when known).
    std::uint64_t tx = 0;         ///< Checker transaction id (0: none).
    std::uint32_t expected = 0;   ///< Expected value (when applicable).
    std::uint32_t actual = 0;     ///< Observed value (when applicable).
    std::string detail;           ///< Human-readable one-liner.

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(kind, addr, tx, expected, actual, detail);
    }
};

/** Everything the checker learned during one run. */
struct CheckReport
{
    CheckLevel level = CheckLevel::Off;

    // Coverage counters (diagnostics, never exported to StatSet so a
    // checked run's stats stay byte-identical to an unchecked one).
    std::uint64_t txBegins = 0;
    std::uint64_t txCommits = 0;
    std::uint64_t txAborts = 0;
    std::uint64_t readsChecked = 0;
    std::uint64_t writesApplied = 0;
    std::uint64_t graphEdges = 0;
    std::uint64_t gcRuns = 0;
    std::uint64_t nodesReclaimed = 0;

    std::array<std::uint64_t, numViolationKinds> byKind{};
    std::uint64_t totalViolations = 0;

    /** First few violations in detection order (capped). */
    std::vector<Violation> samples;

    /** One-line human summary ("clean" or per-kind counts). */
    std::string summary() const;

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(level, txBegins, txCommits, txAborts, readsChecked,
           writesApplied, graphEdges, gcRuns, nodesReclaimed, byKind,
           totalViolations, samples);
    }
};

} // namespace getm

#endif // GETM_CHECK_VIOLATION_HH
