/**
 * @file
 * Single-threaded reference executor.
 *
 * Runs a Kernel one thread at a time, sequentially, with no timing, no
 * warps, and no SIMT stack -- just plain per-thread control flow. Two
 * consumers:
 *
 *  - differential tests: for race-free kernels (each thread touches
 *    disjoint data) the simulated GPU must produce exactly the same
 *    memory image, pinning down the PDOM reconvergence machinery;
 *  - the runtime checker at CheckLevel::Ref: a final-memory oracle for
 *    workloads whose result is order-insensitive (commutative updates).
 *    Order-sensitive kernels legitimately diverge -- the serialization
 *    order the GPU picked need not be thread-id order -- so RefMismatch
 *    is advisory there (see docs/CHECKING.md).
 */

#ifndef GETM_CHECK_REFERENCE_EXEC_HH
#define GETM_CHECK_REFERENCE_EXEC_HH

#include <array>
#include <cstdint>

#include "isa/kernel.hh"
#include "mem/backing_store.hh"

namespace getm {
namespace check {

/** Execute @p kernel for threads [0, n) sequentially against @p mem. */
inline void
referenceRun(const Kernel &kernel, std::uint64_t n_threads,
             BackingStore &mem)
{
    for (std::uint64_t tid = 0; tid < n_threads; ++tid) {
        std::array<std::int64_t, numRegs> regs{};
        Pc pc = 0;
        for (std::uint64_t steps = 0; steps < 1'000'000; ++steps) {
            const Instruction &inst = kernel.at(pc);
            auto operand_b = [&]() {
                return inst.bImm ? inst.imm : regs[inst.rb];
            };
            const std::uint64_t ua =
                static_cast<std::uint64_t>(regs[inst.ra]);
            switch (inst.op) {
              case Opcode::Add:
                regs[inst.rd] = regs[inst.ra] + operand_b();
                break;
              case Opcode::Sub:
                regs[inst.rd] = regs[inst.ra] - operand_b();
                break;
              case Opcode::Mul:
                regs[inst.rd] = regs[inst.ra] * operand_b();
                break;
              case Opcode::DivU: {
                const auto ub =
                    static_cast<std::uint64_t>(operand_b());
                regs[inst.rd] =
                    ub ? static_cast<std::int64_t>(ua / ub) : 0;
                break;
              }
              case Opcode::RemU: {
                const auto ub =
                    static_cast<std::uint64_t>(operand_b());
                regs[inst.rd] =
                    ub ? static_cast<std::int64_t>(ua % ub) : 0;
                break;
              }
              case Opcode::MinS:
                regs[inst.rd] = std::min(regs[inst.ra], operand_b());
                break;
              case Opcode::MaxS:
                regs[inst.rd] = std::max(regs[inst.ra], operand_b());
                break;
              case Opcode::And:
                regs[inst.rd] = regs[inst.ra] & operand_b();
                break;
              case Opcode::Or:
                regs[inst.rd] = regs[inst.ra] | operand_b();
                break;
              case Opcode::Xor:
                regs[inst.rd] = regs[inst.ra] ^ operand_b();
                break;
              case Opcode::Shl:
                regs[inst.rd] = static_cast<std::int64_t>(
                    ua << (operand_b() & 63));
                break;
              case Opcode::ShrL:
                regs[inst.rd] = static_cast<std::int64_t>(
                    ua >> (operand_b() & 63));
                break;
              case Opcode::ShrA:
                regs[inst.rd] = regs[inst.ra] >> (operand_b() & 63);
                break;
              case Opcode::SetLtS:
                regs[inst.rd] = regs[inst.ra] < operand_b();
                break;
              case Opcode::SetLtU:
                regs[inst.rd] =
                    ua < static_cast<std::uint64_t>(operand_b());
                break;
              case Opcode::SetEq:
                regs[inst.rd] = regs[inst.ra] == operand_b();
                break;
              case Opcode::SetNe:
                regs[inst.rd] = regs[inst.ra] != operand_b();
                break;
              case Opcode::SetLeS:
                regs[inst.rd] = regs[inst.ra] <= operand_b();
                break;
              case Opcode::LoadImm:
                regs[inst.rd] = inst.imm;
                break;
              case Opcode::ReadSpecial:
                switch (static_cast<SpecialReg>(inst.imm)) {
                  case SpecialReg::ThreadId:
                    regs[inst.rd] = static_cast<std::int64_t>(tid);
                    break;
                  case SpecialReg::LaneId:
                    regs[inst.rd] =
                        static_cast<std::int64_t>(tid % warpSize);
                    break;
                  case SpecialReg::WarpId:
                    regs[inst.rd] =
                        static_cast<std::int64_t>(tid / warpSize);
                    break;
                  case SpecialReg::NumThreads:
                    regs[inst.rd] =
                        static_cast<std::int64_t>(n_threads);
                    break;
                }
                break;
              case Opcode::Hash:
                regs[inst.rd] = static_cast<std::int64_t>(hashMix(
                    ua, static_cast<std::uint64_t>(operand_b())));
                break;
              case Opcode::BranchEqz:
                if (regs[inst.ra] == 0) {
                    pc = inst.target;
                    continue;
                }
                break;
              case Opcode::BranchNez:
                if (regs[inst.ra] != 0) {
                    pc = inst.target;
                    continue;
                }
                break;
              case Opcode::Jump:
                pc = inst.target;
                continue;
              case Opcode::Load:
                regs[inst.rd] = static_cast<std::int32_t>(mem.read(
                    static_cast<Addr>(regs[inst.ra] + inst.imm)));
                break;
              case Opcode::Store:
                mem.write(static_cast<Addr>(regs[inst.ra] + inst.imm),
                          static_cast<std::uint32_t>(regs[inst.rb]));
                break;
              case Opcode::AtomCas:
                regs[inst.rd] = static_cast<std::int32_t>(mem.atomicCas(
                    static_cast<Addr>(regs[inst.ra]),
                    static_cast<std::uint32_t>(regs[inst.rb]),
                    static_cast<std::uint32_t>(regs[inst.rc])));
                break;
              case Opcode::AtomExch:
                regs[inst.rd] = static_cast<std::int32_t>(mem.atomicExch(
                    static_cast<Addr>(regs[inst.ra]),
                    static_cast<std::uint32_t>(regs[inst.rb])));
                break;
              case Opcode::AtomAdd:
                regs[inst.rd] = static_cast<std::int32_t>(mem.atomicAdd(
                    static_cast<Addr>(regs[inst.ra]),
                    static_cast<std::uint32_t>(regs[inst.rb])));
                break;
              case Opcode::TxBegin:
              case Opcode::TxCommit:
              case Opcode::Fence:
              case Opcode::Nop:
                break; // sequential execution: transactions are trivial
              case Opcode::Exit:
                steps = ~0ull - 1; // terminate the thread
                break;
            }
            if (inst.op == Opcode::Exit)
                break;
            ++pc;
        }
    }
}

} // namespace check
} // namespace getm

#endif // GETM_CHECK_REFERENCE_EXEC_HH
