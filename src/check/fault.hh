/**
 * @file
 * Protocol fault injection: deliberately corrupt protocol decisions so
 * the checker can prove it detects real isolation failures.
 *
 * Each FaultKind names one decision point inside a protocol engine;
 * the engine asks the injector whether to mutate that decision. The
 * injector draws from its *own* RNG (never the simulator's), so a run
 * with injection enabled is bit-identical to a clean run everywhere
 * except the injected decisions themselves.
 *
 * Every simulated component (each SIMT core, each memory partition)
 * owns a *separate* injector whose counter-based stream is derived from
 * the run seed and the component's identity (GpuSystem seeds core c
 * with `seed ^ c`). A component's fire() sequence therefore depends
 * only on its own decision history — never on how components interleave
 * across worker threads — which is what lets `--inject` runs keep the
 * parallel cycle loop (docs/PARALLELISM.md) instead of forcing
 * sim_threads = 1.
 *
 * Faults corrupt *isolation*, never the engines' internal bookkeeping:
 * e.g. ForceStoreGrant still records the write reservation so GETM's
 * commit unit does not panic -- the damage is confined to letting a
 * timestamp-order conflict slip through.
 */

#ifndef GETM_CHECK_FAULT_HH
#define GETM_CHECK_FAULT_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/rng.hh"

namespace getm {

/** Injectable protocol faults (one decision point each). */
enum class FaultKind : std::uint8_t
{
    None = 0,
    /** GETM: grant a tx load without bumping the granule's rts, so a
     *  logically earlier writer can sneak in after the read. */
    SkipRtsBump,
    /** GETM: grant a conflicting store on an unlocked granule instead
     *  of aborting the requester (timestamp check suppressed). */
    ForceStoreGrant,
    /** WarpTM-LL / EAPG: suppress a lane's value-validation failure at
     *  the partition, committing despite a stale read. */
    CommitStaleRead,
    /** WarpTM-EL: ignore a lane's instant-validation failure. */
    SkipValidation,
    /** Any protocol: apply a committed write with a flipped low bit. */
    CorruptCommit,
    /** Any protocol: silently drop one committed write at apply. */
    DropCommitWrite,
    /**
     * GETM: skip releasing a granule's write reservation at commit, so
     * the granule stays locked by a retired warp forever. Unlike the
     * isolation faults above, this one corrupts *liveness*: waiters
     * park indefinitely and the run ends in a DEADLOCK/LIVELOCK
     * SimError. It exists to stress the forward-progress watchdog and
     * the sweep harness's failure isolation (docs/ROBUSTNESS.md).
     */
    LeakLock,
    Count
};

constexpr unsigned numFaultKinds = static_cast<unsigned>(FaultKind::Count);

/** Stable name ("skip-rts-bump", ...), accepted by parseFaultKind(). */
constexpr const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::SkipRtsBump: return "skip-rts-bump";
      case FaultKind::ForceStoreGrant: return "force-store-grant";
      case FaultKind::CommitStaleRead: return "commit-stale-read";
      case FaultKind::SkipValidation: return "skip-validation";
      case FaultKind::CorruptCommit: return "corrupt-commit";
      case FaultKind::DropCommitWrite: return "drop-commit-write";
      case FaultKind::LeakLock: return "leak-lock";
      case FaultKind::Count: break;
    }
    return "?";
}

/** Parse a fault name; false if unknown. */
bool parseFaultKind(const std::string &text, FaultKind &out);

/**
 * The injector engines consult at their decision points. fire() is a
 * Bernoulli draw at the configured probability, counted per kind so
 * tests can assert an enabled fault actually had opportunities.
 *
 * Draws come from a splitmix64 counter stream: the n-th probabilistic
 * decision of a given injector is a pure function of (seed, n), so the
 * sequence is reproducible from the component's seed alone. At
 * probability 1.0 the stream is never consulted at all, keeping the
 * long-standing deterministic fixtures (which all inject at 1.0)
 * byte-identical across this scheme and its predecessor.
 */
class FaultInjector
{
  public:
    FaultInjector(FaultKind kind, double probability, std::uint64_t seed)
        : kind_(kind), prob(probability), stream(seed ^ 0xfa017ca7a10full)
    {
    }

    FaultKind kind() const { return kind_; }

    /** Should the @p k decision point misbehave this time? */
    bool
    fire(FaultKind k)
    {
        if (k != kind_)
            return false;
        if (prob < 1.0 && !chance())
            return false;
        ++fires[static_cast<unsigned>(k)];
        return true;
    }

    /** Checkpoint hook: the counter stream position and fire counts
     *  (kind/probability are reconstructed from configuration). */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(stream, fires);
    }

    /** Times fire() returned true for @p k. */
    std::uint64_t
    count(FaultKind k) const
    {
        return fires[static_cast<unsigned>(k)];
    }

  private:
    /** One Bernoulli draw from the counter stream. */
    bool
    chance()
    {
        const std::uint64_t bits = Rng::splitmix64(stream);
        return (bits >> 11) * 0x1.0p-53 < prob;
    }

    FaultKind kind_;
    double prob;
    std::uint64_t stream;
    std::array<std::uint64_t, numFaultKinds> fires{};
};

} // namespace getm

#endif // GETM_CHECK_FAULT_HH
