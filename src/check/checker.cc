/**
 * @file
 * Checker implementation: shadow versions, Pearce-Kelly cycle
 * detection, epoch GC, and end-of-run cross checks.
 */

#include "check/checker.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "check/fault.hh"

namespace getm {

bool
parseCheckLevel(const std::string &text, CheckLevel &out)
{
    if (text == "off" || text == "0") {
        out = CheckLevel::Off;
    } else if (text == "read" || text == "1") {
        out = CheckLevel::Read;
    } else if (text == "serial" || text == "on" || text == "2") {
        out = CheckLevel::Serial;
    } else if (text == "ref" || text == "3") {
        out = CheckLevel::Ref;
    } else {
        return false;
    }
    return true;
}

const char *
checkLevelName(CheckLevel level)
{
    switch (level) {
      case CheckLevel::Off: return "off";
      case CheckLevel::Read: return "read";
      case CheckLevel::Serial: return "serial";
      case CheckLevel::Ref: return "ref";
    }
    return "?";
}

bool
parseFaultKind(const std::string &text, FaultKind &out)
{
    for (unsigned k = 0; k < numFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        if (text == faultKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::string
CheckReport::summary() const
{
    std::ostringstream os;
    os << "check[" << checkLevelName(level) << "]: ";
    if (totalViolations == 0) {
        os << "clean (" << txCommits << " commits, " << txAborts
           << " aborts, " << readsChecked << " reads checked, "
           << writesApplied << " writes applied, " << graphEdges
           << " edges)";
    } else {
        os << totalViolations << " violation(s):";
        for (unsigned k = 0; k < numViolationKinds; ++k) {
            if (byKind[k]) {
                os << ' ' << violationKindName(static_cast<ViolationKind>(k))
                   << '=' << byKind[k];
            }
        }
    }
    return os.str();
}

Checker::Checker(CheckLevel level) : level_(level)
{
    report_.level = level;
}

void
Checker::addViolation(ViolationKind kind, Addr addr, std::uint64_t tx,
                      std::uint32_t expected, std::uint32_t actual,
                      std::string detail)
{
    ++report_.byKind[static_cast<unsigned>(kind)];
    ++report_.totalViolations;
    if (report_.samples.size() < maxSamples) {
        report_.samples.push_back(
            {kind, addr, tx, expected, actual, std::move(detail)});
    }
}

void
Checker::attemptBegin(GlobalWarpId gwid, LaneMask lanes,
                      std::uint32_t first_tid)
{
    for (LaneId lane = 0; lane < warpSize; ++lane) {
        if (!(lanes & (1u << lane)))
            continue;
        LaneSlot &slot = slots[slotKey(gwid, lane)];
        slot.active = true;
        slot.cur = Attempt{};
        slot.cur.id = ++txCounter;
        slot.cur.tid = first_tid + lane;
        ++report_.txBegins;
    }
}

void
Checker::readObserved(GlobalWarpId gwid, LaneId lane, Addr addr,
                      std::uint32_t value)
{
    ++report_.readsChecked;
    AddrState &st = shadow[addr];
    LaneSlot &slot = slots[slotKey(gwid, lane)];
    if (st.versions.empty()) {
        // First touch: adopt the store's value as the initial version
        // (workload setup writes host-side, below the hooks).
        st.versions.push_back({0, value, ++eventSeq, {}});
    } else if (st.versions.back().value != value) {
        std::ostringstream os;
        os << "tx read of 0x" << std::hex << addr << std::dec
           << " observed a value the shadow never saw applied";
        addViolation(ViolationKind::InconsistentRead, addr,
                     slot.active ? slot.cur.id : 0,
                     st.versions.back().value, value, os.str());
        return; // do not bind the bogus value to a version
    }
    if (slot.active && level_ >= CheckLevel::Serial) {
        const Version &v = st.versions.back();
        slot.cur.reads.push_back({addr, value, v.installSeq, v.writer});
    }
}

void
Checker::attemptAborted(GlobalWarpId gwid, LaneMask lanes)
{
    for (LaneId lane = 0; lane < warpSize; ++lane) {
        if (!(lanes & (1u << lane)))
            continue;
        LaneSlot &slot = slots[slotKey(gwid, lane)];
        if (!slot.active)
            continue;
        ++report_.txAborts;
        slot.active = false;
        slot.cur = Attempt{};
    }
}

void
Checker::attemptCommitted(GlobalWarpId gwid, LaneId lane,
                          const std::vector<LogEntry> &writes)
{
    ++report_.txCommits;
    LaneSlot &slot = slots[slotKey(gwid, lane)];
    if (!slot.active) {
        // Commit without a begin: the hooks missed an attempt start.
        slot.cur = Attempt{};
        slot.cur.id = ++txCounter;
    }
    Attempt att = std::move(slot.cur);
    slot.active = false;
    slot.cur = Attempt{};

    PendingApply pa;
    pa.tx = att.id;
    for (const LogEntry &e : writes)
        pa.intents.push_back({e.addr, e.value, false});

    // WarpTM-EL applied at the core before retiring: match those
    // applies against the intent now.
    for (const auto &[addr, value] : att.earlyApplies) {
        WriteIntent *intent = nullptr;
        for (WriteIntent &in : pa.intents) {
            if (!in.applied && in.addr == addr) {
                intent = &in;
                break;
            }
        }
        if (!intent) {
            std::ostringstream os;
            os << "T" << att.id << " (tid " << att.tid
               << ") applied a write it never logged";
            addViolation(ViolationKind::CorruptApply, addr, att.id, 0,
                         value, os.str());
            continue;
        }
        intent->applied = true;
        if (intent->value != value) {
            std::ostringstream os;
            os << "T" << att.id << " (tid " << att.tid
               << ") logged one value but memory got another";
            addViolation(ViolationKind::CorruptApply, addr, att.id,
                         intent->value, value, os.str());
        }
    }

    if (level_ >= CheckLevel::Serial) {
        ensureNode(att.id);
        for (const ReadRec &r : att.reads) {
            if (r.writer != 0 && r.writer != att.id)
                addEdge(r.writer, att.id, "WR", r.addr);
            auto shadow_it = shadow.find(r.addr);
            if (shadow_it == shadow.end())
                continue;
            std::size_t idx = 0;
            Version *v = findVersion(shadow_it->second, r.installSeq, &idx);
            if (!v)
                continue;
            v->committedReaders.push_back(att.id);
            auto &vs = shadow_it->second.versions;
            if (idx + 1 < vs.size()) {
                const std::uint64_t succ = vs[idx + 1].writer;
                if (succ != 0 && succ != att.id)
                    addEdge(att.id, succ, "RW", r.addr);
            }
        }
    }

    bool outstanding = false;
    for (const WriteIntent &in : pa.intents)
        outstanding |= !in.applied;
    if (outstanding)
        slot.pending.push_back(std::move(pa));

    maybeGc();
}

void
Checker::writeApplied(GlobalWarpId gwid, LaneId lane, Addr addr,
                      std::uint32_t value)
{
    ++report_.writesApplied;
    LaneSlot &slot = slots[slotKey(gwid, lane)];
    std::uint64_t owner = 0;

    // GETM / WarpTM-LL: applies land at the partitions after the lane
    // retired; the oldest pending intent for this address owns it.
    for (PendingApply &pa : slot.pending) {
        for (WriteIntent &in : pa.intents) {
            if (!in.applied && in.addr == addr) {
                in.applied = true;
                owner = pa.tx;
                if (in.value != value) {
                    std::ostringstream os;
                    os << "T" << pa.tx
                       << " logged one value but memory got another";
                    addViolation(ViolationKind::CorruptApply, addr,
                                 pa.tx, in.value, value, os.str());
                }
                break;
            }
        }
        if (owner)
            break;
    }
    if (!owner && slot.active) {
        // WarpTM-EL: core-side apply before the attempt retires.
        owner = slot.cur.id;
        slot.cur.earlyApplies.emplace_back(addr, value);
    }
    if (!owner) {
        addViolation(ViolationKind::CorruptApply, addr, 0, 0, value,
                     "commit apply with no owning transaction attempt");
    }
    installVersion(addr, owner, value);

    while (!slot.pending.empty()) {
        const PendingApply &front = slot.pending.front();
        bool done = true;
        for (const WriteIntent &in : front.intents)
            done &= in.applied;
        if (!done)
            break;
        slot.pending.pop_front();
    }
}

void
Checker::externalWrite(Addr addr, std::uint32_t value)
{
    installVersion(addr, 0, value);
}

void
Checker::installVersion(Addr addr, std::uint64_t writer,
                        std::uint32_t value)
{
    AddrState &st = shadow[addr];
    if (!st.versions.empty() && writer != 0 &&
        level_ >= CheckLevel::Serial) {
        const Version &prev = st.versions.back();
        if (prev.writer != 0 && prev.writer != writer)
            addEdge(prev.writer, writer, "WW", addr);
        for (std::uint64_t reader : prev.committedReaders) {
            if (reader != writer)
                addEdge(reader, writer, "RW", addr);
        }
        ensureNode(writer);
    }
    st.versions.push_back({writer, value, ++eventSeq, {}});
}

Checker::TxNode &
Checker::ensureNode(std::uint64_t tx)
{
    auto [it, fresh] = nodes.try_emplace(tx);
    if (fresh)
        it->second.ord = ++ordCounter;
    return it->second;
}

Checker::Version *
Checker::findVersion(AddrState &st, std::uint64_t install_seq,
                     std::size_t *index)
{
    auto &vs = st.versions;
    auto it = std::lower_bound(
        vs.begin(), vs.end(), install_seq,
        [](const Version &v, std::uint64_t s) { return v.installSeq < s; });
    if (it == vs.end() || it->installSeq != install_seq)
        return nullptr;
    if (index)
        *index = static_cast<std::size_t>(it - vs.begin());
    return &*it;
}

void
Checker::addEdge(std::uint64_t u, std::uint64_t v, const char *dep,
                 Addr addr)
{
    if (u == v)
        return;
    TxNode &nu = ensureNode(u);
    TxNode &nv = ensureNode(v); // references survive rehash
    if (nu.out.count(v))
        return;

    if (nv.ord < nu.ord) {
        // Affected region: does v already reach u? (Sound because ord
        // is a valid topological order, so any v ->* u path stays
        // within ord <= ord[u].)
        const std::uint64_t ub = nu.ord;
        std::unordered_map<std::uint64_t, std::uint64_t> parent;
        std::vector<std::uint64_t> stack{v};
        std::vector<std::uint64_t> deltaF;
        parent.emplace(v, v);
        bool cycle = false;
        while (!stack.empty()) {
            const std::uint64_t x = stack.back();
            stack.pop_back();
            if (x == u) {
                cycle = true;
                break;
            }
            deltaF.push_back(x);
            for (std::uint64_t y : nodes[x].out) {
                if (parent.count(y) || nodes[y].ord > ub)
                    continue;
                parent.emplace(y, x);
                stack.push_back(y);
            }
        }
        if (cycle) {
            std::ostringstream os;
            os << dep << " edge T" << u << "->T" << v << " on 0x"
               << std::hex << addr << std::dec << " closes cycle: T" << u;
            std::vector<std::uint64_t> path;
            for (std::uint64_t x = u; x != v; x = parent[x])
                path.push_back(x);
            path.push_back(v);
            for (auto it = path.rbegin(); it != path.rend(); ++it)
                os << "->T" << *it;
            addViolation(ViolationKind::SerializabilityCycle, addr, u, 0,
                         0, os.str());
            return; // keep the graph a DAG so detection stays alive
        }
        // Reorder (Pearce-Kelly): shift the region reaching u below
        // the region reachable from v.
        const std::uint64_t lb = nv.ord;
        std::unordered_set<std::uint64_t> seen;
        std::vector<std::uint64_t> deltaB;
        stack.assign(1, u);
        seen.insert(u);
        while (!stack.empty()) {
            const std::uint64_t x = stack.back();
            stack.pop_back();
            deltaB.push_back(x);
            for (std::uint64_t y : nodes[x].in) {
                if (seen.count(y) || nodes[y].ord < lb)
                    continue;
                seen.insert(y);
                stack.push_back(y);
            }
        }
        auto by_ord = [this](std::uint64_t a, std::uint64_t b) {
            return nodes[a].ord < nodes[b].ord;
        };
        std::sort(deltaB.begin(), deltaB.end(), by_ord);
        std::sort(deltaF.begin(), deltaF.end(), by_ord);
        std::vector<std::uint64_t> pool;
        pool.reserve(deltaB.size() + deltaF.size());
        for (std::uint64_t x : deltaB)
            pool.push_back(nodes[x].ord);
        for (std::uint64_t x : deltaF)
            pool.push_back(nodes[x].ord);
        std::sort(pool.begin(), pool.end());
        std::size_t slot = 0;
        for (std::uint64_t x : deltaB)
            nodes[x].ord = pool[slot++];
        for (std::uint64_t x : deltaF)
            nodes[x].ord = pool[slot++];
    }

    nu.out.insert(v);
    nv.in.insert(u);
    ++report_.graphEdges;
}

void
Checker::maybeGc()
{
    if (++commitsSinceGc < gcPeriod)
        return;
    commitsSinceGc = 0;
    gc();
}

void
Checker::gc()
{
    ++report_.gcRuns;

    // Pin everything a future event can still reference: in-flight
    // attempts, committed attempts with outstanding applies, and the
    // exact versions in-flight reads bound to.
    std::unordered_set<std::uint64_t> pinned;
    std::unordered_map<Addr, std::unordered_set<std::uint64_t>> keepSeqs;
    for (auto &[key, slot] : slots) {
        (void)key;
        if (slot.active) {
            pinned.insert(slot.cur.id);
            for (const ReadRec &r : slot.cur.reads) {
                keepSeqs[r.addr].insert(r.installSeq);
                if (r.writer)
                    pinned.insert(r.writer);
            }
        }
        for (const PendingApply &pa : slot.pending)
            pinned.insert(pa.tx);
    }

    // Prune version lists to the newest version plus pinned ones; the
    // writers and committed readers of surviving versions stay in the
    // graph because future WW / RW / WR edges can still name them.
    for (auto &[addr, st] : shadow) {
        auto &vs = st.versions;
        if (vs.size() > 1) {
            auto keep_it = keepSeqs.find(addr);
            std::vector<Version> kept;
            for (std::size_t i = 0; i < vs.size(); ++i) {
                const bool keep =
                    i + 1 == vs.size() ||
                    (keep_it != keepSeqs.end() &&
                     keep_it->second.count(vs[i].installSeq));
                if (keep)
                    kept.push_back(std::move(vs[i]));
            }
            vs = std::move(kept);
        }
        for (const Version &v : vs) {
            if (v.writer)
                pinned.insert(v.writer);
            for (std::uint64_t r : v.committedReaders)
                pinned.insert(r);
        }
    }

    if (level_ < CheckLevel::Serial || nodes.empty())
        return;

    // Condense: future edges only attach to pinned nodes, but a future
    // cycle may route *through* retired interior nodes, so preserve
    // pinned-to-pinned reachability with direct edges before dropping
    // them. An existing u ->* p path implies ord[u] < ord[p], so the
    // shortcut edge needs no reordering.
    for (auto &[id, node] : nodes) {
        if (!pinned.count(id))
            continue;
        std::vector<std::uint64_t> stack;
        std::unordered_set<std::uint64_t> visited;
        std::vector<std::uint64_t> reached;
        for (std::uint64_t s : node.out) {
            if (!pinned.count(s) && visited.insert(s).second)
                stack.push_back(s);
        }
        while (!stack.empty()) {
            const std::uint64_t x = stack.back();
            stack.pop_back();
            for (std::uint64_t y : nodes[x].out) {
                if (pinned.count(y)) {
                    reached.push_back(y);
                } else if (visited.insert(y).second) {
                    stack.push_back(y);
                }
            }
        }
        for (std::uint64_t p : reached) {
            if (p != id && !node.out.count(p)) {
                node.out.insert(p);
                nodes[p].in.insert(id);
            }
        }
    }

    std::uint64_t removed = 0;
    auto prune_set = [&](std::unordered_set<std::uint64_t> &s) {
        for (auto it = s.begin(); it != s.end();) {
            if (!pinned.count(*it))
                it = s.erase(it);
            else
                ++it;
        }
    };
    for (auto it = nodes.begin(); it != nodes.end();) {
        if (pinned.count(it->first)) {
            prune_set(it->second.out);
            prune_set(it->second.in);
            ++it;
        } else {
            it = nodes.erase(it);
            ++removed;
        }
    }
    report_.nodesReclaimed += removed;
}

void
Checker::finish(const BackingStore &store)
{
    for (const auto &[key, slot] : slots) {
        (void)key;
        for (const PendingApply &pa : slot.pending) {
            for (const WriteIntent &in : pa.intents) {
                if (in.applied)
                    continue;
                std::ostringstream os;
                os << "T" << pa.tx << " committed a write to 0x"
                   << std::hex << in.addr << std::dec
                   << " that never reached memory";
                addViolation(ViolationKind::LostWrite, in.addr, pa.tx,
                             in.value, store.read(in.addr), os.str());
            }
        }
    }
    for (const auto &[addr, st] : shadow) {
        const std::uint32_t actual = store.read(addr);
        if (actual != st.versions.back().value) {
            std::ostringstream os;
            os << "memory at 0x" << std::hex << addr << std::dec
               << " diverged from the applied-write shadow";
            addViolation(ViolationKind::FinalStateMismatch, addr, 0,
                         st.versions.back().value, actual, os.str());
        }
    }
}

void
Checker::crossCheckReference(const BackingStore &ref,
                             const BackingStore &actual)
{
    for (const auto &[addr, st] : shadow) {
        (void)st;
        const std::uint32_t want = ref.read(addr);
        const std::uint32_t got = actual.read(addr);
        if (want != got) {
            std::ostringstream os;
            os << "final memory at 0x" << std::hex << addr << std::dec
               << " differs from the sequential reference execution";
            addViolation(ViolationKind::RefMismatch, addr, 0, want, got,
                         os.str());
        }
    }
}

} // namespace getm
