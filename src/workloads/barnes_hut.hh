/**
 * @file
 * BH: Barnes-Hut tree build (paper Table III, from Burtscher &
 * Pingali [46]).
 *
 * The tree-build phase's sharing pattern is what matters for TM: every
 * body walks from the root down a (deterministic, per-body) path through
 * a 4-ary tree and claims the first empty node it encounters. Contention
 * is extreme near the root early on and spreads down the tree as it
 * fills, exactly like octree insertion. A linear-probe fallback
 * guarantees placement if a path is exhausted.
 */

#ifndef GETM_WORKLOADS_BARNES_HUT_HH
#define GETM_WORKLOADS_BARNES_HUT_HH

#include "workloads/workload.hh"

namespace getm {

/** Tree-build benchmark. */
class BarnesHutWorkload : public Workload
{
  public:
    BarnesHutWorkload(double scale, std::uint64_t seed);

    BenchId id() const override { return BenchId::Bh; }
    void setup(GpuSystem &gpu, bool lock_variant) override;
    std::uint64_t numThreads() const override { return bodies; }
    bool verify(GpuSystem &gpu, std::string &why) const override;

  private:
    /** Sentinel marking pre-built internal (non-claimable) nodes. */
    static constexpr std::uint32_t internalMark = 0x7fffffffu;

    std::uint64_t bodies;
    std::uint64_t nodes;
    std::uint64_t seed;
    Addr treeBase = 0;
};

} // namespace getm

#endif // GETM_WORKLOADS_BARNES_HUT_HH
