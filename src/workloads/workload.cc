#include "workloads/workload.hh"

#include <algorithm>

#include "common/log.hh"
#include "oltp/bank.hh"
#include "oltp/ycsb.hh"
#include "workloads/apriori.hh"
#include "workloads/atm.hh"
#include "workloads/barnes_hut.hh"
#include "workloads/cloth.hh"
#include "workloads/cuda_cuts.hh"
#include "workloads/hashtable.hh"

namespace getm {

std::uint64_t
scaledCount(const char *what, double base, double scale,
            std::uint64_t min)
{
    const auto scaled = static_cast<std::uint64_t>(base * scale);
    if (scaled < min) {
        warn("scale %g yields %llu %s; clamping to the minimum of %llu",
             scale, static_cast<unsigned long long>(scaled), what,
             static_cast<unsigned long long>(min));
        return min;
    }
    return scaled;
}

std::uint64_t
scaledThreads(double base, double scale)
{
    return std::max<std::uint64_t>(
        warpSize,
        static_cast<std::uint64_t>(base * scale) / warpSize * warpSize);
}

std::unique_ptr<Workload>
makeWorkload(BenchId id, double scale, std::uint64_t seed)
{
    switch (id) {
      case BenchId::HtH:
      case BenchId::HtM:
      case BenchId::HtL:
        return std::make_unique<HashTableWorkload>(id, scale, seed);
      case BenchId::Atm:
        return std::make_unique<AtmWorkload>(scale, seed);
      case BenchId::Cl:
      case BenchId::ClTo:
        return std::make_unique<ClothWorkload>(id, scale, seed);
      case BenchId::Bh:
        return std::make_unique<BarnesHutWorkload>(scale, seed);
      case BenchId::Cc:
        return std::make_unique<CudaCutsWorkload>(scale, seed);
      case BenchId::Ap:
        return std::make_unique<AprioriWorkload>(scale, seed);
      case BenchId::Ycsb:
        return std::make_unique<YcsbWorkload>(YcsbParams{}, scale, seed);
      case BenchId::Bank:
        return std::make_unique<BankWorkload>(BankParams{}, scale, seed);
    }
    panic("unknown benchmark id");
}

std::vector<BenchId>
allBenchIds()
{
    return {BenchId::HtH, BenchId::HtM, BenchId::HtL, BenchId::Atm,
            BenchId::Cl,  BenchId::ClTo, BenchId::Bh, BenchId::Cc,
            BenchId::Ap};
}

const char *
benchName(BenchId id)
{
    switch (id) {
      case BenchId::HtH: return "HT-H";
      case BenchId::HtM: return "HT-M";
      case BenchId::HtL: return "HT-L";
      case BenchId::Atm: return "ATM";
      case BenchId::Cl: return "CL";
      case BenchId::ClTo: return "CLto";
      case BenchId::Bh: return "BH";
      case BenchId::Cc: return "CC";
      case BenchId::Ap: return "AP";
      case BenchId::Ycsb: return "YCSB";
      case BenchId::Bank: return "BANK";
    }
    return "?";
}

unsigned
optimalConcurrency(BenchId id, ProtocolKind protocol)
{
    // Paper Table IV. Columns: WTM, EAPG, WTM-EL, GETM.
    const unsigned unlimited = 0xffffffffu;
    struct Row
    {
        unsigned wtm, eapg, el, getm;
    };
    Row row{1, 1, 1, 1};
    switch (id) {
      case BenchId::HtH: row = {2, 2, 8, 8}; break;
      case BenchId::HtM: row = {8, 4, 8, 8}; break;
      case BenchId::HtL: row = {8, 4, 8, 8}; break;
      case BenchId::Atm: row = {4, 4, 4, 4}; break;
      case BenchId::Cl: row = {2, 2, 4, 4}; break;
      case BenchId::ClTo: row = {4, 2, 4, 4}; break;
      case BenchId::Bh:
        row = {unlimited, 2, 2, 8};
        break;
      case BenchId::Cc:
        row = {unlimited, unlimited, unlimited, unlimited};
        break;
      case BenchId::Ap: row = {1, 1, 1, 1}; break;
      // Beyond the paper; tuned like the closest Table III shapes
      // (ATM for BANK, HT-M for YCSB's skewed read/write mix).
      case BenchId::Ycsb: row = {4, 4, 8, 8}; break;
      case BenchId::Bank: row = {4, 4, 4, 4}; break;
    }
    switch (protocol) {
      case ProtocolKind::WarpTmLL: return row.wtm;
      case ProtocolKind::Eapg: return row.eapg;
      case ProtocolKind::WarpTmEL: return row.el;
      case ProtocolKind::Getm: return row.getm;
      default: return unlimited;
    }
}

} // namespace getm
