#include "workloads/apriori.hh"

#include <algorithm>

#include "isa/kernel_builder.hh"
#include "workloads/lock_utils.hh"

namespace getm {

AprioriWorkload::AprioriWorkload(double scale, std::uint64_t seed_)
    : counters(64), seed(seed_)
{
    // 4000 records at scale 1.0, 4 records per thread.
    records = scaledCount("apriori records", 4000, scale, 64);
    recordsPerThread = 4;
    threads = std::max<std::uint64_t>(
        warpSize,
        (records / recordsPerThread + warpSize - 1) / warpSize * warpSize);
    records = threads * recordsPerThread;
}

void
AprioriWorkload::setup(GpuSystem &gpu, bool lock_variant)
{
    countersBase = gpu.memory().allocate(4 * counters);
    locksBase = lock_variant ? gpu.memory().allocate(4 * counters) : 0;
    itemsBase = gpu.memory().allocate(8 * records);

    for (std::uint64_t r = 0; r < records; ++r) {
        // Skewed candidate selection: low-numbered counters are hot.
        const std::uint64_t h = hashMix(r, seed);
        const std::uint32_t c1 =
            static_cast<std::uint32_t>((h & 0xffff) % (counters / 4));
        std::uint32_t c2 = static_cast<std::uint32_t>(
            ((h >> 16) & 0xffff) % counters);
        if (c2 == c1)
            c2 = (c2 + 1) % counters; // two distinct itemset counters
        gpu.memory().write(itemsBase + 8 * r, c1);
        gpu.memory().write(itemsBase + 8 * r + 4, c2);
    }

    KernelBuilder kb(std::string("AP") + (lock_variant ? ".lock" : ".tm"));
    const Reg tid(1), rec(2), i(3), addr(4), c1(5), c2(6), a1(7), a2(8);
    const Reg v(9), one(10), cond(11), old(12);

    kb.readSpecial(tid, SpecialReg::ThreadId);
    kb.muli(rec, tid, recordsPerThread);
    kb.li(i, 0);
    kb.li(one, 1);

    auto head = kb.newLabel();
    auto exit_label = kb.newLabel();
    kb.bind(head);
    kb.add(addr, rec, i);
    kb.shli(addr, addr, 3);
    kb.addi(addr, addr, static_cast<std::int64_t>(itemsBase));
    kb.load(c1, addr);
    kb.load(c2, addr, 4);
    kb.shli(a1, c1, 2);
    kb.addi(a1, a1, static_cast<std::int64_t>(countersBase));
    kb.shli(a2, c2, 2);
    kb.addi(a2, a2, static_cast<std::int64_t>(countersBase));

    if (lock_variant) {
        // RMS-TM-style fine-grained locking: one lock per candidate
        // counter, acquired in address order.
        const Reg l1(14), l2(15), t0(16), t1(17), t2(18), v2(19);
        (void)old;
        kb.addi(l1, a1, static_cast<std::int64_t>(locksBase) -
                            static_cast<std::int64_t>(countersBase));
        kb.addi(l2, a2, static_cast<std::int64_t>(locksBase) -
                            static_cast<std::int64_t>(countersBase));
        emitTwoLockCritical(kb, l1, l2, t0, t1, t2, [&] {
            kb.load(v, a1, 0, MemBypassL1);
            kb.load(v2, a2, 0, MemBypassL1);
            kb.addi(v, v, 1);
            kb.addi(v2, v2, 1);
            kb.store(a1, v, 0, MemBypassL1);
            kb.store(a2, v2, 0, MemBypassL1);
        });
    } else {
        const Reg v2(13);
        kb.txBegin();
        // Loads first, stores last: keeps the encounter-time write
        // reservations (GETM) as short as possible, as a compiler would.
        kb.load(v, a1);
        kb.load(v2, a2);
        kb.addi(v, v, 1);
        kb.addi(v2, v2, 1);
        kb.store(a1, v);
        kb.store(a2, v2);
        kb.txCommit();
    }

    kb.addi(i, i, 1);
    kb.sltsi(cond, i, recordsPerThread);
    kb.bnez(cond, head, exit_label);
    kb.bind(exit_label);
    kb.exit();
    builtKernel = kb.build();
}

bool
AprioriWorkload::verify(GpuSystem &gpu, std::string &why) const
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < counters; ++c)
        total += gpu.memory().read(countersBase + 4 * c);
    const std::uint64_t expect = 2 * records;
    if (total != expect) {
        why = "counter total " + std::to_string(total) + " != " +
              std::to_string(expect);
        return false;
    }
    return true;
}

} // namespace getm
