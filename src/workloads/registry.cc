#include "workloads/registry.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/json.hh"
#include "common/log.hh"
#include "oltp/bank.hh"
#include "oltp/ycsb.hh"

namespace getm {

namespace {

bool
equalsIgnoreCase(const std::string &a, const char *b)
{
    std::size_t i = 0;
    for (; i < a.size() && b[i]; ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return i == a.size() && !b[i];
}

const BenchParamInfo *
findParam(const BenchInfo &info, const std::string &key)
{
    for (const BenchParamInfo &param : info.params)
        if (equalsIgnoreCase(key, param.key))
            return &param;
    return nullptr;
}

std::string
paramList(const BenchInfo &info)
{
    std::string out;
    for (const BenchParamInfo &param : info.params) {
        if (!out.empty())
            out += ", ";
        out += param.key;
    }
    return out;
}

} // namespace

const std::vector<BenchInfo> &
benchRegistry()
{
    static const std::vector<BenchInfo> registry = [] {
        std::vector<BenchInfo> r;
        for (const BenchId id : allBenchIds())
            r.push_back(BenchInfo{id, benchName(id),
                                  "paper Table III benchmark", {}});
        r.push_back(BenchInfo{
            BenchId::Ycsb, "YCSB",
            "zipfian KV with a read/RMW/blind-write mix (src/oltp/)",
            {
                {"theta", 0.9, 0.0, 0.999,
                 "zipfian skew (0 = uniform)"},
                {"keys", 4000000, 64, 1e12,
                 "key-space size at scale 1.0"},
                {"ops", 4, 1, 8, "operations per transaction"},
                {"read", 50, 0, 100, "percent of ops that read"},
                {"rmw", 40, 0, 100,
                 "percent of ops that read-modify-write (the rest "
                 "blind-write)"},
            }});
        r.push_back(BenchInfo{
            BenchId::Bank, "BANK",
            "TPC-C-lite transfers: 2 accounts + teller + branch "
            "audit rows (src/oltp/)",
            {
                {"theta", 0.6, 0.0, 0.999,
                 "zipfian account skew (0 = uniform)"},
                {"accounts", 1000000, 64, 1e12,
                 "account count at scale 1.0"},
                {"branches", 16, 1, 65536,
                 "branch audit rows (absolute, not scaled)"},
                {"tellers", 160, 1, 1048576,
                 "teller audit rows (absolute, not scaled)"},
                {"amax", 500, 1, 1000000, "maximum transfer amount"},
            }});
        return r;
    }();
    return registry;
}

const BenchInfo *
findBench(const std::string &name)
{
    for (const BenchInfo &info : benchRegistry())
        if (equalsIgnoreCase(name, info.name))
            return &info;
    return nullptr;
}

std::string
registeredBenchNames()
{
    std::string out;
    for (const BenchInfo &info : benchRegistry()) {
        if (!out.empty())
            out += " ";
        out += info.name;
    }
    return out;
}

std::string
WorkloadSpec::token() const
{
    std::string out = name;
    for (const auto &[key, value] : params)
        out += ":" + key + "=" + jsonNumber(value);
    return out;
}

double
WorkloadSpec::param(const std::string &key) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return v;
    const BenchInfo *info = findBench(name);
    if (info)
        if (const BenchParamInfo *p = findParam(*info, key))
            return p->def;
    panic("workload %s has no parameter '%s'", name.c_str(),
          key.c_str());
}

bool
parseWorkloadSpec(const std::string &text, WorkloadSpec &spec,
                  std::string &error)
{
    spec = WorkloadSpec{};

    // Split on ':'.
    std::vector<std::string> parts;
    std::string part;
    for (const char ch : text + ":") {
        if (ch == ':') {
            parts.push_back(part);
            part.clear();
        } else {
            part += ch;
        }
    }
    if (parts.empty() || parts[0].empty()) {
        error = "empty bench name (known: " + registeredBenchNames() +
                ")";
        return false;
    }

    const BenchInfo *info = findBench(parts[0]);
    if (!info) {
        error = "unknown bench '" + parts[0] +
                "' (known: " + registeredBenchNames() + ")";
        return false;
    }
    spec.name = info->name;

    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &token = parts[i];
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = spec.name + ": expected key=value, got '" + token +
                    "'";
            return false;
        }
        const std::string key = token.substr(0, eq);
        const std::string value_text = token.substr(eq + 1);
        const BenchParamInfo *param = findParam(*info, key);
        if (!param) {
            error = spec.name + " has no parameter '" + key + "'" +
                    (info->params.empty()
                         ? " (it takes none)"
                         : " (parameters: " + paramList(*info) + ")");
            return false;
        }
        char *end = nullptr;
        const double value = std::strtod(value_text.c_str(), &end);
        if (value_text.empty() || !end || *end != '\0' ||
            !std::isfinite(value)) {
            error = spec.name + ": bad value '" + value_text +
                    "' for parameter '" + param->key + "'";
            return false;
        }
        if (value < param->min || value > param->max) {
            error = spec.name + ": parameter '" +
                    std::string(param->key) + "' = " +
                    jsonNumber(value) + " out of range [" +
                    jsonNumber(param->min) + ", " +
                    jsonNumber(param->max) + "]";
            return false;
        }
        for (const auto &[seen_key, seen_value] : spec.params) {
            (void)seen_value;
            if (seen_key == param->key) {
                error = spec.name + ": duplicate parameter '" +
                        seen_key + "'";
                return false;
            }
        }
        spec.params.emplace_back(param->key, value);
    }

    std::sort(spec.params.begin(), spec.params.end());

    // Cross-parameter constraints.
    if (info->id == BenchId::Ycsb &&
        spec.param("read") + spec.param("rmw") > 100.0) {
        error = "YCSB: read + rmw percentages exceed 100";
        return false;
    }
    return true;
}

std::vector<std::pair<std::string, double>>
resolvedParams(const WorkloadSpec &spec)
{
    std::vector<std::pair<std::string, double>> out;
    const BenchInfo *info = findBench(spec.name);
    if (!info)
        return out;
    for (const BenchParamInfo &param : info->params)
        out.emplace_back(param.key, spec.param(param.key));
    std::sort(out.begin(), out.end());
    return out;
}

std::unique_ptr<Workload>
makeWorkload(const WorkloadSpec &spec, double scale, std::uint64_t seed)
{
    const BenchInfo *info = findBench(spec.name);
    if (!info)
        panic("unknown workload '%s'", spec.name.c_str());
    switch (info->id) {
      case BenchId::Ycsb: {
        YcsbParams params;
        params.theta = spec.param("theta");
        params.keys = spec.param("keys");
        params.opsPerTx = static_cast<unsigned>(spec.param("ops"));
        params.readPct = spec.param("read");
        params.rmwPct = spec.param("rmw");
        return std::make_unique<YcsbWorkload>(params, scale, seed,
                                              spec.token());
      }
      case BenchId::Bank: {
        BankParams params;
        params.theta = spec.param("theta");
        params.accounts = spec.param("accounts");
        params.branches =
            static_cast<std::uint64_t>(spec.param("branches"));
        params.tellers =
            static_cast<std::uint64_t>(spec.param("tellers"));
        params.maxAmount =
            static_cast<std::uint32_t>(spec.param("amax"));
        return std::make_unique<BankWorkload>(params, scale, seed,
                                              spec.token());
      }
      default:
        return makeWorkload(info->id, scale, seed);
    }
}

unsigned
optimalConcurrency(const WorkloadSpec &spec, ProtocolKind protocol)
{
    const BenchInfo *info = findBench(spec.name);
    return optimalConcurrency(info ? info->id : BenchId::HtH, protocol);
}

} // namespace getm
