/**
 * @file
 * AP: Apriori-style data mining (paper Table III, from RMS-TM [48]).
 *
 * Threads scan records and bump support counters for the candidate
 * itemsets each record contains. The candidate table is tiny, so a few
 * counters are extremely contended -- the paper reports this benchmark's
 * abort rate at thousands per 1 K commits under GETM, while commits stay
 * cheap enough that GETM still wins. The hand-optimized baseline uses
 * plain atomic adds (no locks needed for counters).
 */

#ifndef GETM_WORKLOADS_APRIORI_HH
#define GETM_WORKLOADS_APRIORI_HH

#include "workloads/workload.hh"

namespace getm {

/** Candidate-counter update benchmark. */
class AprioriWorkload : public Workload
{
  public:
    AprioriWorkload(double scale, std::uint64_t seed);

    BenchId id() const override { return BenchId::Ap; }
    void setup(GpuSystem &gpu, bool lock_variant) override;
    std::uint64_t numThreads() const override { return threads; }
    bool verify(GpuSystem &gpu, std::string &why) const override;

  private:
    std::uint64_t threads;
    std::uint64_t records;
    unsigned recordsPerThread;
    unsigned counters;
    std::uint64_t seed;
    Addr countersBase = 0;
    Addr locksBase = 0;
    Addr itemsBase = 0; ///< Two candidate indices per record.
};

} // namespace getm

#endif // GETM_WORKLOADS_APRIORI_HH
