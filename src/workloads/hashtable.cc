#include "workloads/hashtable.hh"

#include <algorithm>
#include <unordered_set>

#include "common/log.hh"
#include "workloads/lock_utils.hh"

namespace getm {

namespace {

std::uint64_t
bucketCount(BenchId id, double scale)
{
    std::uint64_t base;
    switch (id) {
      case BenchId::HtH: base = 8000; break;
      case BenchId::HtM: base = 80000; break;
      default: base = 800000; break;
    }
    return scaledCount("hash buckets", static_cast<double>(base), scale,
                       16);
}

} // namespace

HashTableWorkload::HashTableWorkload(BenchId id, double scale,
                                     std::uint64_t seed_)
    : benchId(id), threads(scaledThreads(23040, scale)),
      buckets(bucketCount(id, scale)), seed(seed_)
{
}

void
HashTableWorkload::setup(GpuSystem &gpu, bool lock_variant)
{
    headsBase = gpu.memory().allocate(4 * buckets);
    locksBase = lock_variant ? gpu.memory().allocate(4 * buckets) : 0;
    nodesBase = gpu.memory().allocate(8 * threads);

    KernelBuilder kb(std::string(benchName(benchId)) +
                     (lock_variant ? ".lock" : ".tm"));
    const Reg tid(1), key(2), bucket(3), head(4), node(5), old(6);
    const Reg lock(7), t0(8), t1(9), t2(10), tmp(11);

    kb.readSpecial(tid, SpecialReg::ThreadId);
    // key = nonzero hash of the thread id (verify() recomputes it).
    kb.hashi(key, tid, static_cast<std::int64_t>(seed));
    kb.andi(key, key, 0x7ffffffe);
    kb.ori(key, key, 1);
    kb.remui(bucket, key, static_cast<std::int64_t>(buckets));
    kb.shli(head, bucket, 2);
    kb.addi(head, head, static_cast<std::int64_t>(headsBase));
    kb.shli(node, tid, 3);
    kb.addi(node, node, static_cast<std::int64_t>(nodesBase));
    kb.store(node, key); // node.key (private)

    if (lock_variant) {
        kb.shli(lock, bucket, 2);
        kb.addi(lock, lock, static_cast<std::int64_t>(locksBase));
        emitOneLockCritical(kb, lock, t0, t1, t2, [&] {
            kb.load(old, head, 0, MemBypassL1);
            kb.store(node, old, 4, MemBypassL1); // node.next = old head
            kb.mov(tmp, node);
            kb.store(head, tmp, 0, MemBypassL1); // head = node
        });
    } else {
        kb.txBegin();
        kb.load(old, head);
        kb.store(node, old, 4); // node.next = old head
        kb.store(head, node);   // head = node
        kb.txCommit();
    }
    kb.exit();
    builtKernel = kb.build();
}

bool
HashTableWorkload::verify(GpuSystem &gpu, std::string &why) const
{
    std::uint64_t found = 0;
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t b = 0; b < buckets; ++b) {
        Addr node = gpu.memory().read(headsBase + 4 * b);
        std::uint64_t chain = 0;
        while (node != 0) {
            if (node < nodesBase || node >= nodesBase + 8 * threads ||
                (node - nodesBase) % 8 != 0) {
                why = "corrupt chain pointer in bucket " +
                      std::to_string(b);
                return false;
            }
            if (!seen.insert(node).second) {
                why = "node linked twice (lost insert) in bucket " +
                      std::to_string(b);
                return false;
            }
            const std::uint32_t key = gpu.memory().read(node);
            const std::uint64_t tid = (node - nodesBase) / 8;
            std::uint64_t expect = hashMix(tid, seed);
            expect = (expect & 0x7ffffffe) | 1;
            if (key != static_cast<std::uint32_t>(expect)) {
                why = "node for tid " + std::to_string(tid) +
                      " holds wrong key";
                return false;
            }
            if (expect % buckets != b) {
                why = "key in wrong bucket " + std::to_string(b);
                return false;
            }
            ++found;
            if (++chain > threads) {
                why = "cycle in bucket " + std::to_string(b);
                return false;
            }
            node = gpu.memory().read(node + 4);
        }
    }
    if (found != threads) {
        why = "expected " + std::to_string(threads) + " nodes, found " +
              std::to_string(found);
        return false;
    }
    return true;
}

} // namespace getm
