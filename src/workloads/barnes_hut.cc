#include "workloads/barnes_hut.hh"

#include <algorithm>
#include <vector>

#include "isa/kernel_builder.hh"

namespace getm {

BarnesHutWorkload::BarnesHutWorkload(double scale, std::uint64_t seed_)
    : bodies(scaledThreads(30000, scale)), seed(seed_)
{
    // Complete 4-ary tree with at least 4x as many nodes as bodies.
    nodes = 1;
    std::uint64_t level = 1;
    while (nodes < 4 * bodies) {
        level *= 4;
        nodes += level;
    }
}

void
BarnesHutWorkload::setup(GpuSystem &gpu, bool lock_variant)
{
    treeBase = gpu.memory().allocate(4 * nodes);

    // Pre-build the internal skeleton: in the real benchmark the upper
    // octree levels already exist when the bulk of the bodies insert
    // (the tree is grown level by level over prior launches), so bodies
    // contend at the leaf frontier, not at the root. Internal nodes are
    // marked with a sentinel the walk treats as "occupied".
    std::uint64_t frontier = 1;
    std::uint64_t internal_nodes = 0;
    while (frontier < bodies) {
        internal_nodes = internal_nodes * 4 + 1;
        frontier *= 4;
    }
    for (std::uint64_t n = 0; n < internal_nodes; ++n)
        gpu.memory().write(treeBase + 4 * n, internalMark);

    KernelBuilder kb(std::string("BH") + (lock_variant ? ".lock" : ".tm"));
    const Reg tid(1), node(2), depth(3), addr(4), val(5), claimed(6);
    const Reg child(7), tmp(8), bodyval(9), zero(10);

    kb.readSpecial(tid, SpecialReg::ThreadId);
    kb.addi(bodyval, tid, 1); // stored body id; non-zero
    kb.li(zero, 0);

    // Each body's insertion is one logical operation: walk down from the
    // root along a per-body path and claim the first empty node. The
    // transactional variant wraps the whole walk in a single transaction
    // (path reads + one claiming write), as in the KiloTM/WarpTM port of
    // the benchmark; the hand-optimized variant claims with bare CAS.
    auto emit_walk = [&](bool transactional) {
        // Registers are re-initialized inside the transaction: aborted
        // lanes re-execute from after TxBegin without register rollback.
        kb.li(node, 0);
        kb.li(depth, 0);
        kb.li(claimed, 0);
        auto head = kb.newLabel();
        auto done = kb.newLabel();
        auto descend = kb.newLabel();
        kb.bind(head);
        kb.shli(addr, node, 2);
        kb.addi(addr, addr, static_cast<std::int64_t>(treeBase));
        if (transactional) {
            kb.load(val, addr);
            auto occupied = kb.newLabel();
            kb.bnez(val, occupied, occupied);
            kb.store(addr, bodyval); // claim the empty node
            kb.li(claimed, 1);
            kb.bind(occupied);
        } else {
            kb.atomCas(val, addr, zero, bodyval);
            kb.seqi(claimed, val, 0);
        }
        kb.bnez(claimed, done, done);
        kb.bind(descend);
        // Descend: node = 4*node + 1 + h(tid, depth) & 3.
        kb.hash(child, tid, depth);
        kb.andi(child, child, 3);
        kb.shli(tmp, node, 2);
        kb.addi(tmp, tmp, 1);
        kb.add(node, tmp, child);
        kb.addi(depth, depth, 1);
        // Fallback: wrap into linear probing if the path leaves the tree.
        kb.sltsi(tmp, node, static_cast<std::int64_t>(nodes));
        auto in_range = kb.newLabel();
        kb.bnez(tmp, in_range, in_range);
        kb.remui(node, node, static_cast<std::int64_t>(nodes));
        kb.bind(in_range);
        kb.jump(head);
        kb.bind(done);
    };

    if (lock_variant) {
        emit_walk(false);
    } else {
        kb.txBegin();
        emit_walk(true);
        kb.txCommit();
    }
    kb.exit();
    builtKernel = kb.build();
}

bool
BarnesHutWorkload::verify(GpuSystem &gpu, std::string &why) const
{
    std::vector<bool> placed(bodies, false);
    std::uint64_t count = 0;
    for (std::uint64_t n = 0; n < nodes; ++n) {
        const std::uint32_t val = gpu.memory().read(treeBase + 4 * n);
        if (val == 0 || val == internalMark)
            continue;
        if (val > bodies) {
            why = "node " + std::to_string(n) + " holds invalid body " +
                  std::to_string(val);
            return false;
        }
        if (placed[val - 1]) {
            why = "body " + std::to_string(val - 1) + " placed twice";
            return false;
        }
        placed[val - 1] = true;
        ++count;
    }
    if (count != bodies) {
        why = "placed " + std::to_string(count) + " of " +
              std::to_string(bodies) + " bodies";
        return false;
    }
    return true;
}

} // namespace getm
