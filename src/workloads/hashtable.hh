/**
 * @file
 * HT-H / HT-M / HT-L: populate a chained hash table (paper Table III).
 *
 * Each thread inserts one key at the head of its bucket's chain; the
 * bucket count (8 K / 80 K / 800 K at scale 1.0) sets the contention
 * level. The transactional variant wraps the three-access head insert in
 * a transaction; the lock variant takes a per-bucket spin lock.
 */

#ifndef GETM_WORKLOADS_HASHTABLE_HH
#define GETM_WORKLOADS_HASHTABLE_HH

#include "workloads/workload.hh"

namespace getm {

/** Chained-hash-table population benchmark. */
class HashTableWorkload : public Workload
{
  public:
    HashTableWorkload(BenchId id, double scale, std::uint64_t seed);

    BenchId id() const override { return benchId; }
    void setup(GpuSystem &gpu, bool lock_variant) override;
    std::uint64_t numThreads() const override { return threads; }
    bool verify(GpuSystem &gpu, std::string &why) const override;

  private:
    BenchId benchId;
    std::uint64_t threads;
    std::uint64_t buckets;
    std::uint64_t seed;
    Addr headsBase = 0;
    Addr locksBase = 0;
    Addr nodesBase = 0;
};

} // namespace getm

#endif // GETM_WORKLOADS_HASHTABLE_HH
