/**
 * @file
 * Emit helpers for fine-grained-lock kernel variants.
 *
 * Both helpers produce the SIMT-deadlock-free pattern of paper Fig. 1:
 * a loop on a per-thread done flag with CAS lock acquisition inside, so
 * lanes that fail to acquire do not starve lanes that succeeded (the
 * classic lockstep-execution pitfall the paper's introduction describes).
 * Critical-section bodies must use L1-bypassing (volatile) accesses --
 * the GPU has no L1 coherence.
 */

#ifndef GETM_WORKLOADS_LOCK_UTILS_HH
#define GETM_WORKLOADS_LOCK_UTILS_HH

#include <functional>

#include "isa/kernel_builder.hh"

namespace getm {

/**
 * Emit a critical section protected by one lock.
 *
 * @param kb    Builder to emit into.
 * @param lock  Register holding the lock-word address (preserved).
 * @param t0,t1,t2 Scratch registers (clobbered).
 * @param body  Emits the critical section (volatile accesses).
 */
void emitOneLockCritical(KernelBuilder &kb, Reg lock, Reg t0, Reg t1,
                         Reg t2, const std::function<void()> &body);

/**
 * Emit a critical section protected by two locks, acquired in address
 * order to avoid lock-order deadlock (Fig. 1).
 *
 * @param lockA,lockB Registers holding the two lock-word addresses
 *                    (clobbered: reordered into outer/inner).
 */
void emitTwoLockCritical(KernelBuilder &kb, Reg lockA, Reg lockB, Reg t0,
                         Reg t1, Reg t2, const std::function<void()> &body);

/**
 * Emit a critical section protected by any number of locks — the
 * N-lock generalization of emitTwoLockCritical for multi-record
 * transactions (src/oltp/). A lane that fails to acquire lock i
 * releases locks 0..i-1 and retries the whole ladder through the same
 * done-flag loop, so the pattern stays SIMT-deadlock-free.
 *
 * @param locks Registers holding the lock-word addresses (preserved),
 *              already in a globally consistent acquisition order
 *              (e.g. ascending address) — the caller's responsibility,
 *              since only it knows the address layout.
 */
void emitMultiLockCritical(KernelBuilder &kb,
                           const std::vector<Reg> &locks, Reg t0,
                           Reg t1, Reg t2,
                           const std::function<void()> &body);

} // namespace getm

#endif // GETM_WORKLOADS_LOCK_UTILS_HH
