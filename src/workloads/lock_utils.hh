/**
 * @file
 * Emit helpers for fine-grained-lock kernel variants.
 *
 * Both helpers produce the SIMT-deadlock-free pattern of paper Fig. 1:
 * a loop on a per-thread done flag with CAS lock acquisition inside, so
 * lanes that fail to acquire do not starve lanes that succeeded (the
 * classic lockstep-execution pitfall the paper's introduction describes).
 * Critical-section bodies must use L1-bypassing (volatile) accesses --
 * the GPU has no L1 coherence.
 */

#ifndef GETM_WORKLOADS_LOCK_UTILS_HH
#define GETM_WORKLOADS_LOCK_UTILS_HH

#include <functional>

#include "isa/kernel_builder.hh"

namespace getm {

/**
 * Emit a critical section protected by one lock.
 *
 * @param kb    Builder to emit into.
 * @param lock  Register holding the lock-word address (preserved).
 * @param t0,t1,t2 Scratch registers (clobbered).
 * @param body  Emits the critical section (volatile accesses).
 */
void emitOneLockCritical(KernelBuilder &kb, Reg lock, Reg t0, Reg t1,
                         Reg t2, const std::function<void()> &body);

/**
 * Emit a critical section protected by two locks, acquired in address
 * order to avoid lock-order deadlock (Fig. 1).
 *
 * @param lockA,lockB Registers holding the two lock-word addresses
 *                    (clobbered: reordered into outer/inner).
 */
void emitTwoLockCritical(KernelBuilder &kb, Reg lockA, Reg lockB, Reg t0,
                         Reg t1, Reg t2, const std::function<void()> &body);

} // namespace getm

#endif // GETM_WORKLOADS_LOCK_UTILS_HH
