/**
 * @file
 * ATM: parallel bank-account transfers (paper Fig. 1 and Table III).
 *
 * Each thread moves a fixed amount between two randomly chosen accounts.
 * The transactional kernel is the right-hand side of Fig. 1; the lock
 * kernel is the left-hand side (address-ordered per-account spin locks
 * with a done-flag loop against SIMT deadlock).
 */

#ifndef GETM_WORKLOADS_ATM_HH
#define GETM_WORKLOADS_ATM_HH

#include "workloads/workload.hh"

namespace getm {

/** Bank-transfer benchmark. */
class AtmWorkload : public Workload
{
  public:
    AtmWorkload(double scale, std::uint64_t seed);

    BenchId id() const override { return BenchId::Atm; }
    void setup(GpuSystem &gpu, bool lock_variant) override;
    std::uint64_t numThreads() const override { return threads; }
    bool verify(GpuSystem &gpu, std::string &why) const override;

  private:
    std::uint64_t threads;
    std::uint64_t accounts;
    std::uint64_t seed;
    Addr accountsBase = 0;
    Addr locksBase = 0;
    Addr srcBase = 0;
    Addr dstBase = 0;
    std::uint64_t initialTotal = 0;
};

} // namespace getm

#endif // GETM_WORKLOADS_ATM_HH
