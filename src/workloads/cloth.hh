/**
 * @file
 * CL / CLto: cloth-physics edge constraint relaxation (paper Table III,
 * from Brownsword's OpenCL cloth demo [45]).
 *
 * The cloth is a W x H grid of vertices; each thread relaxes one edge by
 * moving both endpoint positions a quarter of the way towards each
 * other. CL wraps the whole relaxation (2 loads + 2 stores) in one
 * transaction; CLto is the transaction-optimized version with two
 * smaller transactions (one per endpoint), which shortens conflict
 * windows at the cost of an extra commit.
 */

#ifndef GETM_WORKLOADS_CLOTH_HH
#define GETM_WORKLOADS_CLOTH_HH

#include "workloads/workload.hh"

namespace getm {

/** Cloth edge-relaxation benchmark. */
class ClothWorkload : public Workload
{
  public:
    ClothWorkload(BenchId id, double scale, std::uint64_t seed);

    BenchId id() const override { return benchId; }
    void setup(GpuSystem &gpu, bool lock_variant) override;
    std::uint64_t numThreads() const override { return edges; }
    bool verify(GpuSystem &gpu, std::string &why) const override;

  private:
    BenchId benchId;
    std::uint64_t width;
    std::uint64_t height;
    std::uint64_t vertices;
    std::uint64_t edges;
    std::uint64_t seed;
    Addr posBase = 0;
    Addr locksBase = 0;
    Addr eaBase = 0;
    Addr ebBase = 0;
    std::int64_t initialSum = 0;
};

} // namespace getm

#endif // GETM_WORKLOADS_CLOTH_HH
