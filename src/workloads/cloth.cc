#include "workloads/cloth.hh"

#include <algorithm>
#include <cmath>

#include "workloads/lock_utils.hh"

namespace getm {

ClothWorkload::ClothWorkload(BenchId id, double scale, std::uint64_t seed_)
    : benchId(id), seed(seed_)
{
    // 60 K edges at scale 1.0: a grid with 2*W*H - W - H edges; a
    // 175x87 grid gives ~30 K vertices and ~60 K edges.
    const double target_edges =
        static_cast<double>(scaledCount("cloth edges", 60000, scale, 64));
    width = std::max<std::uint64_t>(
        4, static_cast<std::uint64_t>(std::sqrt(target_edges / 2.0)));
    height = width;
    vertices = width * height;
    edges = 2 * width * height - width - height;
}

void
ClothWorkload::setup(GpuSystem &gpu, bool lock_variant)
{
    posBase = gpu.memory().allocate(4 * vertices);
    locksBase = lock_variant ? gpu.memory().allocate(4 * vertices) : 0;
    eaBase = gpu.memory().allocate(4 * edges);
    ebBase = gpu.memory().allocate(4 * edges);

    initialSum = 0;
    for (std::uint64_t v = 0; v < vertices; ++v) {
        const std::uint32_t pos =
            static_cast<std::uint32_t>(hashMix(v, seed) % 1024);
        gpu.memory().write(posBase + 4 * v, pos);
        initialSum += pos;
    }
    // Edge list: horizontal then vertical grid edges.
    std::uint64_t e = 0;
    for (std::uint64_t y = 0; y < height; ++y)
        for (std::uint64_t x = 0; x + 1 < width; ++x, ++e) {
            gpu.memory().write(eaBase + 4 * e,
                               static_cast<std::uint32_t>(y * width + x));
            gpu.memory().write(
                ebBase + 4 * e,
                static_cast<std::uint32_t>(y * width + x + 1));
        }
    for (std::uint64_t y = 0; y + 1 < height; ++y)
        for (std::uint64_t x = 0; x < width; ++x, ++e) {
            gpu.memory().write(eaBase + 4 * e,
                               static_cast<std::uint32_t>(y * width + x));
            gpu.memory().write(
                ebBase + 4 * e,
                static_cast<std::uint32_t>((y + 1) * width + x));
        }

    KernelBuilder kb(std::string(benchName(benchId)) +
                     (lock_variant ? ".lock" : ".tm"));
    const Reg tid(1), tmp(2), va(3), vb(4), pa(5), pb(6), xa(7), xb(8);
    const Reg d(9), lockA(10), lockB(11), t0(12), t1(13), t2(14);

    kb.readSpecial(tid, SpecialReg::ThreadId);
    kb.shli(tmp, tid, 2);
    kb.addi(va, tmp, static_cast<std::int64_t>(eaBase));
    kb.load(va, va);
    kb.addi(vb, tmp, static_cast<std::int64_t>(ebBase));
    kb.load(vb, vb);
    kb.shli(pa, va, 2);
    kb.addi(pa, pa, static_cast<std::int64_t>(posBase));
    kb.shli(pb, vb, 2);
    kb.addi(pb, pb, static_cast<std::int64_t>(posBase));

    // Relaxation: d = (pos[b] - pos[a]) / 4; pos[a] += d; pos[b] -= d.
    if (lock_variant) {
        kb.shli(lockA, va, 2);
        kb.addi(lockA, lockA, static_cast<std::int64_t>(locksBase));
        kb.shli(lockB, vb, 2);
        kb.addi(lockB, lockB, static_cast<std::int64_t>(locksBase));
        emitTwoLockCritical(kb, lockA, lockB, t0, t1, t2, [&] {
            kb.load(xa, pa, 0, MemBypassL1);
            kb.load(xb, pb, 0, MemBypassL1);
            kb.sub(d, xb, xa);
            kb.alui(Opcode::ShrA, d, d, 2);
            kb.add(xa, xa, d);
            kb.sub(xb, xb, d);
            kb.store(pa, xa, 0, MemBypassL1);
            kb.store(pb, xb, 0, MemBypassL1);
        });
    } else if (benchId == BenchId::Cl) {
        kb.txBegin();
        kb.load(xa, pa);
        kb.load(xb, pb);
        kb.sub(d, xb, xa);
        kb.alui(Opcode::ShrA, d, d, 2);
        kb.add(xa, xa, d);
        kb.sub(xb, xb, d);
        kb.store(pa, xa);
        kb.store(pb, xb);
        kb.txCommit();
    } else {
        // CLto: split into two shorter transactions; d carries between
        // them in a register, so the pair still conserves the sum.
        kb.txBegin();
        kb.load(xa, pa);
        kb.load(xb, pb);
        kb.sub(d, xb, xa);
        kb.alui(Opcode::ShrA, d, d, 2);
        kb.add(xa, xa, d);
        kb.store(pa, xa);
        kb.txCommit();
        kb.txBegin();
        kb.load(xb, pb);
        kb.sub(xb, xb, d);
        kb.store(pb, xb);
        kb.txCommit();
    }
    kb.exit();
    builtKernel = kb.build();
}

bool
ClothWorkload::verify(GpuSystem &gpu, std::string &why) const
{
    std::int64_t sum = 0;
    for (std::uint64_t v = 0; v < vertices; ++v)
        sum += static_cast<std::int32_t>(gpu.memory().read(posBase + 4 * v));
    if (sum != initialSum) {
        why = "position sum not conserved: " + std::to_string(sum) +
              " != " + std::to_string(initialSum);
        return false;
    }
    return true;
}

} // namespace getm
