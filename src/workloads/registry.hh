/**
 * @file
 * Parameterized workload registry.
 *
 * The closed `BenchId` enum covers the paper's Table III kernels; the
 * OLTP family (src/oltp/) needs per-instance parameters — zipfian
 * theta, key-space size, operation mixes — so `--bench` and sweep
 * manifests accept *workload specs*:
 *
 *     HT-H                    a bare registered name
 *     YCSB:theta=0.95         name plus key=value parameters,
 *     BANK:theta=0.7:amax=100 colon-separated
 *
 * A parsed spec is canonicalized (registered-name casing, parameters
 * sorted by key, numbers in jsonNumber form) so equal specs always
 * produce equal tokens — tokens are used verbatim in sweep point ids
 * and in spec hashes. Parameter-free specs canonicalize to exactly the
 * bare bench name, which keeps every pre-existing point id and resume
 * hash byte-identical.
 *
 * Unknown names and parameters fail with a message that lists what IS
 * registered — the registry is the single source of truth behind
 * `--list-benches` on both CLIs.
 */

#ifndef GETM_WORKLOADS_REGISTRY_HH
#define GETM_WORKLOADS_REGISTRY_HH

#include <string>
#include <utility>
#include <vector>

#include "workloads/workload.hh"

namespace getm {

/** A parsed, canonical `--bench` value: name + explicit parameters. */
struct WorkloadSpec
{
    std::string name; ///< Canonical registered name ("HT-H", "YCSB").
    /** Explicitly given parameters, sorted by key. */
    std::vector<std::pair<std::string, double>> params;

    WorkloadSpec() = default;
    explicit WorkloadSpec(std::string name_) : name(std::move(name_)) {}

    /** Canonical text form: `NAME` or `NAME:k=v:k=v`. */
    std::string token() const;

    bool
    operator==(const WorkloadSpec &other) const
    {
        return name == other.name && params == other.params;
    }
    bool operator!=(const WorkloadSpec &other) const
    {
        return !(*this == other);
    }

    /** Parameter value with the registry default applied. */
    double param(const std::string &key) const;
};

/** One tunable of a registered workload family. */
struct BenchParamInfo
{
    const char *key;
    double def;
    double min;
    double max;
    const char *help;
};

/** One registered workload family. */
struct BenchInfo
{
    BenchId id;
    const char *name;    ///< Canonical spelling.
    const char *summary; ///< One-line description for --list-benches.
    std::vector<BenchParamInfo> params;
};

/** Every registered family: the nine paper benches, then OLTP. */
const std::vector<BenchInfo> &benchRegistry();

/** Look up a family by (case-insensitive) name; null if unknown. */
const BenchInfo *findBench(const std::string &name);

/** Comma-separated canonical names, for error messages. */
std::string registeredBenchNames();

/**
 * Parse `NAME[:key=value]...` into a canonical spec.
 * @return false with @p error set (listing registered names, or the
 *         family's parameters) on any problem.
 */
bool parseWorkloadSpec(const std::string &text, WorkloadSpec &spec,
                       std::string &error);

/**
 * Every parameter of @p spec's family with defaults applied, sorted by
 * key. This resolved form — not the explicit-only token — is what spec
 * hashes fold in, so editing a registry default invalidates exactly the
 * sweep points it affects (same rule as config provenance).
 */
std::vector<std::pair<std::string, double>>
resolvedParams(const WorkloadSpec &spec);

/** Instantiate @p spec at the given scale and seed. */
std::unique_ptr<Workload> makeWorkload(const WorkloadSpec &spec,
                                       double scale,
                                       std::uint64_t seed = 7);

/** Table IV optimum for the spec's family. */
unsigned optimalConcurrency(const WorkloadSpec &spec,
                            ProtocolKind protocol);

} // namespace getm

#endif // GETM_WORKLOADS_REGISTRY_HH
