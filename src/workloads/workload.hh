/**
 * @file
 * The TM benchmark suite of paper Table III.
 *
 * Each workload lays out its data in the GPU's functional memory, builds
 * a micro-ISA kernel -- a transactional variant and a hand-optimized
 * fine-grained-lock variant (used when the GPU runs ProtocolKind::FgLock)
 * -- and verifies its invariants after the run. The verification is what
 * makes the whole suite double as an end-to-end correctness test for
 * every protocol engine.
 *
 * Sizes are scaled by a single factor so benches can trade fidelity for
 * simulation time; scale 1.0 approximates the paper's configurations.
 */

#ifndef GETM_WORKLOADS_WORKLOAD_HH
#define GETM_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu_system.hh"
#include "isa/kernel.hh"

namespace getm {

/** The nine benchmarks of Table III, plus the OLTP suite (src/oltp/). */
enum class BenchId
{
    HtH, ///< Populate a small (high-contention) chained hash table.
    HtM, ///< Medium hash table.
    HtL, ///< Large (low-contention) hash table.
    Atm, ///< Parallel bank-account transfers (Fig. 1).
    Cl,  ///< Cloth physics: edge constraint relaxation.
    ClTo,///< Transaction-optimized cloth (split transactions).
    Bh,  ///< Barnes-Hut tree build: claim nodes along root paths.
    Cc,  ///< CudaCuts: push-relabel flow on a pixel grid.
    Ap,  ///< Apriori data mining: few highly contended counters.
    Ycsb,///< YCSB-style zipfian KV read/RMW/write mix (beyond the paper).
    Bank,///< TPC-C-lite multi-account transfers with hot-account skew.
};

/**
 * The benchmarks of Table III, in paper order. Deliberately excludes
 * the OLTP family: `bench = all` in sweeps and the figure suites mean
 * "the paper's suite". The registry (workloads/registry.hh) is the
 * complete list.
 */
std::vector<BenchId> allBenchIds();

/** Short paper name ("HT-H", "ATM", ...). */
const char *benchName(BenchId id);

/** A configured benchmark instance. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual BenchId id() const = 0;
    /**
     * Display/metrics identity. Parameterized workloads override this
     * with their canonical spec token (e.g. "YCSB:theta=0.95").
     */
    virtual std::string name() const { return benchName(id()); }

    /**
     * Lay out memory and build the kernel.
     * @param lock_variant Build the fine-grained-lock kernel instead of
     *                     the transactional one.
     */
    virtual void setup(GpuSystem &gpu, bool lock_variant) = 0;

    /** The kernel built by setup(). */
    const Kernel &kernel() const { return builtKernel; }

    /** Number of threads to launch. */
    virtual std::uint64_t numThreads() const = 0;

    /**
     * Check post-run invariants.
     * @param why Filled with a diagnostic on failure.
     */
    virtual bool verify(GpuSystem &gpu, std::string &why) const = 0;

    /**
     * Describe @p addr for the conflict profiler's hot-address report
     * ("account 17 (zipf rank 0)", ...). @return false when the
     * workload has nothing to say about the address (the default).
     */
    virtual bool
    addrInfo(Addr addr, std::string &label) const
    {
        (void)addr;
        (void)label;
        return false;
    }

  protected:
    Kernel builtKernel;
};

/**
 * Scale a base element count, clamping to @p min so fractional scales
 * can never produce a degenerate (or zero-sized) structure. Emits a
 * warn() naming @p what when the clamp engages.
 */
std::uint64_t scaledCount(const char *what, double base, double scale,
                          std::uint64_t min);

/**
 * Scale a base thread count to a whole number of warps, never below
 * one warp. All workloads derive their launch size this way.
 */
std::uint64_t scaledThreads(double base, double scale);

/**
 * Create a benchmark at the given scale.
 *
 * @param scale 1.0 approximates the paper's sizes (tens of thousands of
 *              threads); benches default to smaller factors.
 * @param seed  Workload-generation seed.
 */
std::unique_ptr<Workload> makeWorkload(BenchId id, double scale,
                                       std::uint64_t seed = 7);

/**
 * Optimal transactional concurrency (warps per core allowed in
 * transactions) per benchmark and protocol, from paper Table IV.
 */
unsigned optimalConcurrency(BenchId id, ProtocolKind protocol);

} // namespace getm

#endif // GETM_WORKLOADS_WORKLOAD_HH
