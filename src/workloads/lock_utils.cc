#include "workloads/lock_utils.hh"

namespace getm {

void
emitOneLockCritical(KernelBuilder &kb, Reg lock, Reg t0, Reg t1, Reg t2,
                    const std::function<void()> &body)
{
    const Reg zero = t0, one = t1, old = t2;
    kb.li(zero, 0);
    kb.li(one, 1);
    // done flag lives in `old` after the section: loop on a separate
    // register to keep the pattern simple.
    const Reg done = t2; // reused: set only after release
    kb.li(done, 0);

    auto head = kb.newLabel();
    auto exit_label = kb.newLabel();
    auto tail = kb.newLabel();
    kb.bind(head);
    kb.bnez(done, exit_label, exit_label);
    {
        kb.atomCas(old, lock, zero, one);
        // `old` doubles as the done flag; non-zero means "retry".
        auto fail = kb.newLabel();
        kb.bnez(old, fail, tail);
        body();
        kb.fence(); // order the critical section's stores before release
        kb.store(lock, zero, 0, MemBypassL1); // release
        kb.li(done, 1);
        kb.jump(tail);
        kb.bind(fail);
        kb.li(done, 0);
        kb.bind(tail);
        kb.jump(head);
    }
    kb.bind(exit_label);
}

void
emitTwoLockCritical(KernelBuilder &kb, Reg lockA, Reg lockB, Reg t0,
                    Reg t1, Reg t2, const std::function<void()> &body)
{
    const Reg zero = t0, one = t1, tmp = t2;
    // Acquire in address order to avoid deadlock (Fig. 1).
    kb.maxs(tmp, lockA, lockB);
    kb.mins(lockB, lockA, lockB); // inner
    kb.mov(lockA, tmp);           // outer
    kb.li(zero, 0);
    kb.li(one, 1);
    const Reg done = tmp;
    kb.li(done, 0);

    auto head = kb.newLabel();
    auto exit_label = kb.newLabel();
    auto tail = kb.newLabel();
    kb.bind(head);
    kb.bnez(done, exit_label, exit_label);
    {
        kb.atomCas(done, lockA, zero, one);
        auto fail_outer = kb.newLabel();
        kb.bnez(done, fail_outer, tail);
        kb.atomCas(done, lockB, zero, one);
        auto fail_inner = kb.newLabel();
        auto inner_join = kb.newLabel();
        kb.bnez(done, fail_inner, inner_join);
        body();
        kb.fence(); // order the critical section's stores before release
        kb.store(lockB, zero, 0, MemBypassL1); // release inner
        kb.store(lockA, zero, 0, MemBypassL1); // release outer
        kb.li(done, 1);
        kb.jump(inner_join);
        kb.bind(fail_inner);
        kb.store(lockA, zero, 0, MemBypassL1); // got outer, not inner
        kb.li(done, 0);
        kb.bind(inner_join);
        kb.jump(tail);
        kb.bind(fail_outer);
        kb.li(done, 0);
        kb.bind(tail);
        kb.jump(head);
    }
    kb.bind(exit_label);
}

void
emitMultiLockCritical(KernelBuilder &kb, const std::vector<Reg> &locks,
                      Reg t0, Reg t1, Reg t2,
                      const std::function<void()> &body)
{
    const std::size_t n = locks.size();
    const Reg zero = t0, one = t1, done = t2;
    kb.li(zero, 0);
    kb.li(one, 1);
    kb.li(done, 0);

    auto head = kb.newLabel();
    auto exit_label = kb.newLabel();
    kb.bind(head);
    kb.bnez(done, exit_label, exit_label);

    // The acquisition ladder. Each level's branch reconverges at its
    // own join label; joins chain downward so every path — success or
    // failure at any depth — funnels through join[0] back to the
    // done-flag loop head (the exact shape of emitTwoLockCritical,
    // for any depth).
    std::vector<KernelBuilder::Label> fail, join;
    fail.reserve(n);
    join.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        fail.push_back(kb.newLabel());
        join.push_back(kb.newLabel());
        kb.atomCas(done, locks[i], zero, one);
        kb.bnez(done, fail[i], join[i]);
    }
    body();
    kb.fence(); // order the critical section's stores before release
    for (std::size_t i = n; i-- > 0;)
        kb.store(locks[i], zero, 0, MemBypassL1);
    kb.li(done, 1);
    kb.jump(join[n - 1]);
    for (std::size_t i = n; i-- > 0;) {
        kb.bind(fail[i]);
        for (std::size_t j = i; j-- > 0;)
            kb.store(locks[j], zero, 0, MemBypassL1); // release held
        kb.li(done, 0);
        kb.bind(join[i]);
        if (i > 0)
            kb.jump(join[i - 1]);
        else
            kb.jump(head);
    }
    kb.bind(exit_label);
}

} // namespace getm
