/**
 * @file
 * CC: CudaCuts image segmentation (paper Table III, from Vineet &
 * Narayanan [47]).
 *
 * The TM-relevant kernel of CudaCuts is push-relabel on the pixel grid:
 * each thread owns a pixel and repeatedly pushes excess flow to a
 * rotating neighbour. Transactions touch a pixel and one neighbour, so
 * contention exists but is localized; transactions are a small fraction
 * of total runtime (matching the paper's observation). The grid wraps
 * toroidally to avoid boundary special cases.
 */

#ifndef GETM_WORKLOADS_CUDA_CUTS_HH
#define GETM_WORKLOADS_CUDA_CUTS_HH

#include "workloads/workload.hh"

namespace getm {

/** Push-relabel grid benchmark. */
class CudaCutsWorkload : public Workload
{
  public:
    CudaCutsWorkload(double scale, std::uint64_t seed);

    BenchId id() const override { return BenchId::Cc; }
    void setup(GpuSystem &gpu, bool lock_variant) override;
    std::uint64_t numThreads() const override { return pixels; }
    bool verify(GpuSystem &gpu, std::string &why) const override;

  private:
    std::uint64_t width;
    std::uint64_t height;
    std::uint64_t pixels;
    unsigned rounds;
    std::uint64_t seed;
    Addr excessBase = 0;
    Addr locksBase = 0;
    std::int64_t initialTotal = 0;
};

} // namespace getm

#endif // GETM_WORKLOADS_CUDA_CUTS_HH
