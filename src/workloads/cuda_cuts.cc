#include "workloads/cuda_cuts.hh"

#include <algorithm>
#include <cmath>

#include "workloads/lock_utils.hh"

namespace getm {

CudaCutsWorkload::CudaCutsWorkload(double scale, std::uint64_t seed_)
    : rounds(4), seed(seed_)
{
    // 200 x 150 pixels at scale 1.0.
    const double target = static_cast<double>(
        scaledCount("CUDA-cuts pixels", 30000, scale, 64));
    width = std::max<std::uint64_t>(
        8, static_cast<std::uint64_t>(std::sqrt(target * 4.0 / 3.0)));
    height = std::max<std::uint64_t>(
        8, static_cast<std::uint64_t>(static_cast<double>(width) * 3 / 4));
    pixels = width * height;
}

void
CudaCutsWorkload::setup(GpuSystem &gpu, bool lock_variant)
{
    excessBase = gpu.memory().allocate(4 * pixels);
    locksBase = lock_variant ? gpu.memory().allocate(4 * pixels) : 0;

    initialTotal = 0;
    for (std::uint64_t p = 0; p < pixels; ++p) {
        const std::uint32_t e =
            static_cast<std::uint32_t>(hashMix(p, seed) % 256);
        gpu.memory().write(excessBase + 4 * p, e);
        initialTotal += e;
    }

    KernelBuilder kb(std::string("CC") + (lock_variant ? ".lock" : ".tm"));
    const Reg tid(1), x(2), y(3), round(4), q(5), pa(6), qa(7);
    const Reg e(8), eq(9), m(10), dir(11), tmp(12), cond(13);
    const Reg lockP(14), lockQ(15), t0(16), t1(17), t2(18);

    kb.readSpecial(tid, SpecialReg::ThreadId);
    kb.shli(pa, tid, 2);
    kb.addi(pa, pa, static_cast<std::int64_t>(excessBase));
    kb.remui(x, tid, static_cast<std::int64_t>(width));
    kb.alui(Opcode::DivU, y, tid, static_cast<std::int64_t>(width));
    kb.li(round, 0);

    auto head = kb.newLabel();
    auto exit_label = kb.newLabel();
    kb.bind(head);
    // Neighbour index for this round (torus): 0 right, 1 down, 2 left,
    // 3 up.
    kb.andi(dir, round, 3);
    // qx = x + (dir==0) - (dir==2); qy = y + (dir==1) - (dir==3)
    kb.seqi(tmp, dir, 0);
    kb.add(q, x, tmp);
    kb.seqi(tmp, dir, 2);
    kb.sub(q, q, tmp);
    kb.addi(q, q, static_cast<std::int64_t>(width)); // keep positive
    kb.remui(q, q, static_cast<std::int64_t>(width));
    kb.seqi(tmp, dir, 1);
    kb.add(tmp, y, tmp);
    kb.seqi(cond, dir, 3);
    kb.sub(tmp, tmp, cond);
    kb.addi(tmp, tmp, static_cast<std::int64_t>(height));
    kb.remui(tmp, tmp, static_cast<std::int64_t>(height));
    kb.muli(tmp, tmp, static_cast<std::int64_t>(width));
    kb.add(q, tmp, q); // neighbour pixel index
    kb.shli(qa, q, 2);
    kb.addi(qa, qa, static_cast<std::int64_t>(excessBase));

    auto push_excess = [&](std::uint8_t flags) {
        // m = excess/2 if excess > 16, else 0; move m from p to q.
        kb.load(e, pa, 0, flags);
        kb.load(eq, qa, 0, flags);
        kb.alui(Opcode::ShrA, m, e, 1);
        kb.sltsi(cond, e, 17);
        kb.seqi(cond, cond, 0); // cond = e > 16
        kb.mul(m, m, cond);
        kb.sub(e, e, m);
        kb.add(eq, eq, m);
        kb.store(pa, e, 0, flags);
        kb.store(qa, eq, 0, flags);
    };

    if (lock_variant) {
        kb.shli(lockP, tid, 2);
        kb.addi(lockP, lockP, static_cast<std::int64_t>(locksBase));
        kb.shli(lockQ, q, 2);
        kb.addi(lockQ, lockQ, static_cast<std::int64_t>(locksBase));
        emitTwoLockCritical(kb, lockP, lockQ, t0, t1, t2,
                            [&] { push_excess(MemBypassL1); });
    } else {
        kb.txBegin();
        push_excess(MemNone);
        kb.txCommit();
    }

    kb.addi(round, round, 1);
    kb.sltsi(cond, round, rounds);
    kb.bnez(cond, head, exit_label);
    kb.bind(exit_label);
    kb.exit();
    builtKernel = kb.build();
}

bool
CudaCutsWorkload::verify(GpuSystem &gpu, std::string &why) const
{
    std::int64_t total = 0;
    for (std::uint64_t p = 0; p < pixels; ++p)
        total +=
            static_cast<std::int32_t>(gpu.memory().read(excessBase + 4 * p));
    if (total != initialTotal) {
        why = "excess not conserved: " + std::to_string(total) +
              " != " + std::to_string(initialTotal);
        return false;
    }
    return true;
}

} // namespace getm
