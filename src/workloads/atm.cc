#include "workloads/atm.hh"

#include <algorithm>

#include "common/rng.hh"
#include "workloads/lock_utils.hh"

namespace getm {

AtmWorkload::AtmWorkload(double scale, std::uint64_t seed_)
    : threads(scaledThreads(23040, scale)),
      accounts(scaledCount("ATM accounts", 1000000, scale, 64)),
      seed(seed_)
{
}

void
AtmWorkload::setup(GpuSystem &gpu, bool lock_variant)
{
    accountsBase = gpu.memory().allocate(4 * accounts);
    locksBase = lock_variant ? gpu.memory().allocate(4 * accounts) : 0;
    srcBase = gpu.memory().allocate(4 * threads);
    dstBase = gpu.memory().allocate(4 * threads);

    Rng rng(seed);
    initialTotal = 0;
    for (std::uint64_t i = 0; i < accounts; ++i) {
        gpu.memory().write(accountsBase + 4 * i, 1000);
        initialTotal += 1000;
    }
    for (std::uint64_t t = 0; t < threads; ++t) {
        const std::uint64_t src = rng.below(accounts);
        std::uint64_t dst = rng.below(accounts);
        if (dst == src)
            dst = (dst + 1) % accounts;
        gpu.memory().write(srcBase + 4 * t,
                           static_cast<std::uint32_t>(src));
        gpu.memory().write(dstBase + 4 * t,
                           static_cast<std::uint32_t>(dst));
    }

    KernelBuilder kb(std::string("ATM") + (lock_variant ? ".lock" : ".tm"));
    const Reg tid(1), tmp(2), src(3), dst(4), sa(5), da(6), sv(7), dv(8);
    const Reg lockS(9), lockD(10), t0(11), t1(12), t2(13);

    kb.readSpecial(tid, SpecialReg::ThreadId);
    kb.shli(tmp, tid, 2);
    kb.addi(src, tmp, static_cast<std::int64_t>(srcBase));
    kb.load(src, src);
    kb.addi(dst, tmp, static_cast<std::int64_t>(dstBase));
    kb.load(dst, dst);
    kb.shli(sa, src, 2);
    kb.addi(sa, sa, static_cast<std::int64_t>(accountsBase));
    kb.shli(da, dst, 2);
    kb.addi(da, da, static_cast<std::int64_t>(accountsBase));

    if (lock_variant) {
        kb.shli(lockS, src, 2);
        kb.addi(lockS, lockS, static_cast<std::int64_t>(locksBase));
        kb.shli(lockD, dst, 2);
        kb.addi(lockD, lockD, static_cast<std::int64_t>(locksBase));
        emitTwoLockCritical(kb, lockS, lockD, t0, t1, t2, [&] {
            kb.load(sv, sa, 0, MemBypassL1);
            kb.load(dv, da, 0, MemBypassL1);
            kb.addi(sv, sv, -5);
            kb.addi(dv, dv, 5);
            kb.store(sa, sv, 0, MemBypassL1);
            kb.store(da, dv, 0, MemBypassL1);
        });
    } else {
        kb.txBegin();
        kb.load(sv, sa);
        kb.load(dv, da);
        kb.addi(sv, sv, -5);
        kb.addi(dv, dv, 5);
        kb.store(sa, sv);
        kb.store(da, dv);
        kb.txCommit();
    }
    kb.exit();
    builtKernel = kb.build();
}

bool
AtmWorkload::verify(GpuSystem &gpu, std::string &why) const
{
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < accounts; ++i)
        total += gpu.memory().read(accountsBase + 4 * i);
    if (total != initialTotal) {
        why = "balance not conserved: " + std::to_string(total) +
              " != " + std::to_string(initialTotal);
        return false;
    }
    return true;
}

} // namespace getm
