#include "mem/backing_store.hh"

#include "common/log.hh"

namespace getm {

BackingStore::Page &
BackingStore::pageFor(Addr addr)
{
    const std::uint64_t page_no = addr / pageBytes;
    auto &slot = pages[page_no];
    if (!slot)
        slot = std::make_unique<Page>(pageBytes / wordBytes, 0u);
    return *slot;
}

const BackingStore::Page *
BackingStore::pageForConst(Addr addr) const
{
    const std::uint64_t page_no = addr / pageBytes;
    auto it = pages.find(page_no);
    return it == pages.end() ? nullptr : it->second.get();
}

std::uint32_t
BackingStore::read(Addr addr) const
{
    if (addr % wordBytes != 0)
        panic("unaligned read at %#lx", static_cast<unsigned long>(addr));
    const Page *page = pageForConst(addr);
    if (!page)
        return 0;
    return (*page)[(addr % pageBytes) / wordBytes];
}

void
BackingStore::write(Addr addr, std::uint32_t value)
{
    if (addr % wordBytes != 0)
        panic("unaligned write at %#lx", static_cast<unsigned long>(addr));
    pageFor(addr)[(addr % pageBytes) / wordBytes] = value;
}

std::uint32_t
BackingStore::atomicCas(Addr addr, std::uint32_t compare, std::uint32_t swap)
{
    const std::uint32_t old = read(addr);
    if (old == compare)
        write(addr, swap);
    return old;
}

std::uint32_t
BackingStore::atomicExch(Addr addr, std::uint32_t value)
{
    const std::uint32_t old = read(addr);
    write(addr, value);
    return old;
}

std::uint32_t
BackingStore::atomicAdd(Addr addr, std::uint32_t value)
{
    const std::uint32_t old = read(addr);
    write(addr, old + value);
    return old;
}

Addr
BackingStore::allocate(std::uint64_t bytes, std::uint64_t align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        panic("allocation alignment must be a power of two");
    allocTop = (allocTop + align - 1) & ~(align - 1);
    const Addr base = allocTop;
    allocTop += bytes;
    return base;
}

} // namespace getm
