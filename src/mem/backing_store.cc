#include "mem/backing_store.hh"

#include "common/log.hh"

namespace getm {

namespace {

/** Split a page number into (root, leaf) directory indices. */
inline void
splitPage(std::uint64_t page_no, std::uint64_t &hi, std::uint64_t &lo,
          unsigned dir_bits, std::uint64_t fanout)
{
    hi = page_no >> dir_bits;
    lo = page_no & (fanout - 1);
    if (hi >= fanout)
        panic("address %#llx beyond the backing-store range",
              static_cast<unsigned long long>(page_no));
}

} // namespace

BackingStore::~BackingStore()
{
    for (auto &leaf_slot : root) {
        Leaf *leaf = leaf_slot.load(std::memory_order_relaxed);
        if (!leaf)
            continue;
        for (auto &page_slot : *leaf)
            delete[] page_slot.load(std::memory_order_relaxed);
        delete leaf;
    }
}

BackingStore::Word *
BackingStore::pageFor(Addr addr)
{
    const std::uint64_t page_no = addr / pageBytes;
    std::uint64_t hi, lo;
    splitPage(page_no, hi, lo, dirBits, dirFanout);

    Leaf *leaf = root[hi].load(std::memory_order_acquire);
    if (!leaf) {
        auto fresh = std::make_unique<Leaf>();
        Leaf *expected = nullptr;
        if (root[hi].compare_exchange_strong(expected, fresh.get(),
                                             std::memory_order_acq_rel))
            leaf = fresh.release();
        else
            leaf = expected; // another worker won the insert
    }

    Word *page = (*leaf)[lo].load(std::memory_order_acquire);
    if (!page) {
        // Value-initialised: every word starts at zero, like the old
        // vector-backed pages.
        Word *fresh = new Word[wordsPerPage]();
        Word *expected = nullptr;
        if ((*leaf)[lo].compare_exchange_strong(expected, fresh,
                                                std::memory_order_acq_rel))
            page = fresh;
        else {
            delete[] fresh;
            page = expected;
        }
    }
    return page;
}

const BackingStore::Word *
BackingStore::pageForConst(Addr addr) const
{
    const std::uint64_t page_no = addr / pageBytes;
    std::uint64_t hi, lo;
    splitPage(page_no, hi, lo, dirBits, dirFanout);
    const Leaf *leaf = root[hi].load(std::memory_order_acquire);
    if (!leaf)
        return nullptr;
    return (*leaf)[lo].load(std::memory_order_acquire);
}

std::uint32_t
BackingStore::read(Addr addr) const
{
    if (addr % wordBytes != 0)
        panic("unaligned read at %#lx", static_cast<unsigned long>(addr));
    const Word *page = pageForConst(addr);
    if (!page)
        return 0;
    return page[(addr % pageBytes) / wordBytes].load(
        std::memory_order_relaxed);
}

void
BackingStore::write(Addr addr, std::uint32_t value)
{
    if (addr % wordBytes != 0)
        panic("unaligned write at %#lx", static_cast<unsigned long>(addr));
    pageFor(addr)[(addr % pageBytes) / wordBytes].store(
        value, std::memory_order_relaxed);
}

std::uint32_t
BackingStore::atomicCas(Addr addr, std::uint32_t compare, std::uint32_t swap)
{
    if (addr % wordBytes != 0)
        panic("unaligned cas at %#lx", static_cast<unsigned long>(addr));
    Word &word = pageFor(addr)[(addr % pageBytes) / wordBytes];
    std::uint32_t expected = compare;
    word.compare_exchange_strong(expected, swap,
                                 std::memory_order_relaxed);
    return expected;
}

std::uint32_t
BackingStore::atomicExch(Addr addr, std::uint32_t value)
{
    if (addr % wordBytes != 0)
        panic("unaligned exch at %#lx", static_cast<unsigned long>(addr));
    return pageFor(addr)[(addr % pageBytes) / wordBytes].exchange(
        value, std::memory_order_relaxed);
}

std::uint32_t
BackingStore::atomicAdd(Addr addr, std::uint32_t value)
{
    if (addr % wordBytes != 0)
        panic("unaligned add at %#lx", static_cast<unsigned long>(addr));
    return pageFor(addr)[(addr % pageBytes) / wordBytes].fetch_add(
        value, std::memory_order_relaxed);
}

Addr
BackingStore::allocate(std::uint64_t bytes, std::uint64_t align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        panic("allocation alignment must be a power of two");
    allocTop = (allocTop + align - 1) & ~(align - 1);
    const Addr base = allocTop;
    allocTop += bytes;
    return base;
}

} // namespace getm
