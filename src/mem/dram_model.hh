/**
 * @file
 * Per-partition DRAM channel timing model.
 *
 * GETM's behaviour is dominated by LLC-side structures, so DRAM appears
 * as a banked backing latency: requests hash to banks, each bank
 * serializes service, and consecutive accesses to the same DRAM row hit
 * the open row buffer (FR-FCFS reordering is abstracted into the
 * row-hit discount; Table II's GDDR5 organization motivates the
 * defaults).
 */

#ifndef GETM_MEM_DRAM_MODEL_HH
#define GETM_MEM_DRAM_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace getm {

/** Timing-only banked DRAM channel. */
class DramModel
{
  public:
    struct Config
    {
        /** Cycles from service start to data return on a row miss. */
        Cycle accessLatency = 200;
        /** Cycles from service start to data return on a row hit. */
        Cycle rowHitLatency = 120;
        /** Minimum cycles between services on the same bank. */
        Cycle serviceInterval = 4;
        /** Banks per channel (GDDR5-like). */
        unsigned numBanks = 8;
        /** Bytes per DRAM row (row-buffer reach). */
        unsigned rowBytes = 2048;
        /** Maximum queued requests (Table II: 32); bounds run-ahead. */
        unsigned queueDepth = 32;
    };

    DramModel(std::string name_, const Config &config);

    /**
     * Enqueue a line request for @p addr at time @p now.
     * @return the cycle at which the data will be available.
     */
    Cycle enqueue(Cycle now, Addr addr = 0);

    /** Earliest cycle at which a new request could start service. */
    Cycle nextFreeCycle() const;

    StatSet &stats() { return statSet; }

    /** Checkpoint hook: bank service clocks + open rows + stats. */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(banks, statSet);
    }

  private:
    struct Bank
    {
        Cycle nextService = 0;
        Addr openRow = invalidAddr;

        template <class Ar> void ckpt(Ar &ar) { ar(nextService, openRow); }
    };

    Config cfg;
    std::vector<Bank> banks;
    StatSet statSet;

    // Hot-path stat handles: one add/sample per request.
    StatSet::Counter &stRequests;
    StatSet::Counter &stRowHits;
    StatSet::Counter &stRowMisses;
    StatSet::Average &stQueueDelay;
};

} // namespace getm

#endif // GETM_MEM_DRAM_MODEL_HH
