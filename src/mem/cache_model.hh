/**
 * @file
 * Set-associative tag-array timing model (data lives in BackingStore).
 *
 * Used for both per-core L1 data caches and LLC slices. The model tracks
 * tags, LRU state and dirtiness; lookups report hit/miss plus the victim
 * that a fill would evict so callers can account for writebacks.
 */

#ifndef GETM_MEM_CACHE_MODEL_HH
#define GETM_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace getm {

/** Outcome of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty line was evicted by the fill (writeback traffic). */
    bool writeback = false;
    /** Address of the written-back line (if writeback). */
    Addr victimAddr = invalidAddr;
};

/** LRU set-associative cache tag model. */
class CacheModel
{
  public:
    /**
     * @param name_      Stat-set name.
     * @param size_bytes Total capacity.
     * @param assoc      Ways per set.
     * @param line_bytes Line size (power of two).
     */
    CacheModel(std::string name_, std::uint64_t size_bytes, unsigned assoc,
               unsigned line_bytes);

    /**
     * Access @p addr; on miss, fill it (allocate-on-miss for both reads
     * and writes). @p is_write marks the line dirty on hit or fill.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate a line if present (returns true if it was dirty). */
    bool invalidate(Addr addr);

    /** Drop all lines. */
    void flush();

    unsigned lineBytes() const { return lineSize; }
    std::uint64_t numSets() const { return sets; }
    unsigned associativity() const { return ways; }

    StatSet &stats() { return statSet; }
    const StatSet &stats() const { return statSet; }

    /** Checkpoint hook: tags, LRU clock, stats (geometry is config). */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(useClock, lines, statSet);
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;

        template <class Ar>
        void
        ckpt(Ar &ar)
        {
            ar(valid, dirty, tag, lastUse);
        }
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddr(Addr tag, std::uint64_t set) const;

    unsigned lineSize;
    unsigned ways;
    std::uint64_t sets;
    std::uint64_t useClock = 0;
    std::vector<Line> lines;
    StatSet statSet;

    // Hot-path stat handles: one add per access, no map lookup.
    StatSet::Counter &stReadHits;
    StatSet::Counter &stWriteHits;
    StatSet::Counter &stReadMisses;
    StatSet::Counter &stWriteMisses;
    StatSet::Counter &stWritebacks;
};

} // namespace getm

#endif // GETM_MEM_CACHE_MODEL_HH
