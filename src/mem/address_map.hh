/**
 * @file
 * Address-to-memory-partition mapping.
 *
 * Mirrors GPGPU-Sim's line-interleaved partition hashing: consecutive
 * LLC lines map to consecutive partitions so that traffic spreads evenly.
 */

#ifndef GETM_MEM_ADDRESS_MAP_HH
#define GETM_MEM_ADDRESS_MAP_HH

#include "common/types.hh"

namespace getm {

/** Line-interleaved partition map. */
class AddressMap
{
  public:
    AddressMap(unsigned num_partitions, unsigned line_bytes)
        : partitions(num_partitions), lineSize(line_bytes)
    {
    }

    /** Partition owning byte address @p addr. */
    PartitionId
    partitionOf(Addr addr) const
    {
        // XOR-fold a few upper index bits in so power-of-two strides do
        // not pathologically hit a single partition.
        const Addr line = addr / lineSize;
        return static_cast<PartitionId>((line ^ (line / partitions)) %
                                        partitions);
    }

    /** Base address of the line containing @p addr. */
    Addr lineOf(Addr addr) const { return addr - addr % lineSize; }

    unsigned numPartitions() const { return partitions; }
    unsigned lineBytes() const { return lineSize; }

  private:
    unsigned partitions;
    unsigned lineSize;
};

} // namespace getm

#endif // GETM_MEM_ADDRESS_MAP_HH
