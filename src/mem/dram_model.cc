#include "mem/dram_model.hh"

#include <algorithm>

#include "common/log.hh"

namespace getm {

DramModel::DramModel(std::string name_, const Config &config)
    : cfg(config), banks(std::max(1u, config.numBanks)),
      statSet(std::move(name_)),
      stRequests(statSet.addCounter("requests")),
      stRowHits(statSet.addCounter("row_hits")),
      stRowMisses(statSet.addCounter("row_misses")),
      stQueueDelay(statSet.addAverage("queue_delay"))
{
    if (cfg.rowBytes == 0)
        fatal("DRAM row size must be non-zero");
}

Cycle
DramModel::enqueue(Cycle now, Addr addr)
{
    // Service is serialized per bank at cfg.serviceInterval; queueing
    // emerges from pushing the bank's next service point out (explicit
    // queue-depth refusal is unnecessary in an analytic model).
    const Addr row = addr / cfg.rowBytes;
    Bank &bank = banks[row % banks.size()];

    const Cycle start = now > bank.nextService ? now : bank.nextService;
    bank.nextService = start + cfg.serviceInterval;

    const bool row_hit = bank.openRow == row;
    bank.openRow = row;

    stRequests.add();
    (row_hit ? stRowHits : stRowMisses).add();
    stQueueDelay.addSample(static_cast<double>(start - now));
    return start + (row_hit ? cfg.rowHitLatency : cfg.accessLatency);
}

Cycle
DramModel::nextFreeCycle() const
{
    Cycle best = ~static_cast<Cycle>(0);
    for (const Bank &bank : banks)
        best = std::min(best, bank.nextService);
    return best;
}

} // namespace getm
