/**
 * @file
 * Miss-status holding registers for the per-core L1.
 *
 * Multiple warps missing on the same line while a fill is outstanding
 * merge into one memory request, as in real GPU L1s -- without MSHRs the
 * lockstep access patterns of SIMT code would multiply miss traffic
 * several-fold. Capacity is bounded; when full, requests fall back to
 * unmerged fetches (modelling replay without extra machinery).
 */

#ifndef GETM_MEM_MSHR_HH
#define GETM_MEM_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace getm {

/** One merged requester: a lane group of some warp's load. */
struct MshrTarget
{
    std::uint32_t warpSlot = 0;
    std::uint8_t reg = 0;  ///< Destination register of the load.
    LaneMask lanes = 0;    ///< Lanes of the group.
    Addr addrs[warpSize] = {}; ///< Per-lane word addresses.

    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(warpSlot, reg, lanes);
        for (Addr &a : addrs)
            ar(a);
    }
};

/** L1 MSHR file. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity = 32) : cap(capacity) {}

    /** A fill for @p line is already outstanding. */
    bool
    pending(Addr line) const
    {
        return entries.count(line) != 0;
    }

    /** Room to track another line? */
    bool hasRoom() const { return entries.size() < cap; }

    /**
     * Register a requester for @p line; returns true if this allocated a
     * new entry (i.e., a memory request must be sent).
     */
    bool
    add(Addr line, MshrTarget &&target)
    {
        auto [it, inserted] = entries.try_emplace(line);
        it->second.push_back(std::move(target));
        return inserted;
    }

    /** Remove and return all requesters merged on @p line. */
    std::vector<MshrTarget>
    take(Addr line)
    {
        auto it = entries.find(line);
        std::vector<MshrTarget> result = std::move(it->second);
        entries.erase(it);
        return result;
    }

    std::size_t occupancy() const { return entries.size(); }

    template <class Ar> void ckpt(Ar &ar) { ar(entries); }

  private:
    unsigned cap;
    std::unordered_map<Addr, std::vector<MshrTarget>> entries;
};

} // namespace getm

#endif // GETM_MEM_MSHR_HH
