#include "mem/cache_model.hh"

#include "common/log.hh"

namespace getm {

namespace {
bool
isPow2(std::uint64_t x)
{
    return x && (x & (x - 1)) == 0;
}
} // namespace

CacheModel::CacheModel(std::string name_, std::uint64_t size_bytes,
                       unsigned assoc, unsigned line_bytes)
    : lineSize(line_bytes), ways(assoc), statSet(std::move(name_)),
      stReadHits(statSet.addCounter("read_hits")),
      stWriteHits(statSet.addCounter("write_hits")),
      stReadMisses(statSet.addCounter("read_misses")),
      stWriteMisses(statSet.addCounter("write_misses")),
      stWritebacks(statSet.addCounter("writebacks"))
{
    if (!isPow2(line_bytes))
        fatal("cache line size must be a power of two");
    if (assoc == 0 || size_bytes % (static_cast<std::uint64_t>(assoc) *
                                    line_bytes) != 0) {
        fatal("cache size %llu not divisible by assoc*line",
              static_cast<unsigned long long>(size_bytes));
    }
    sets = size_bytes / (static_cast<std::uint64_t>(assoc) * line_bytes);
    lines.resize(sets * ways);
}

std::uint64_t
CacheModel::setIndex(Addr addr) const
{
    return (addr / lineSize) % sets;
}

Addr
CacheModel::tagOf(Addr addr) const
{
    return (addr / lineSize) / sets;
}

Addr
CacheModel::lineAddr(Addr tag, std::uint64_t set) const
{
    return (tag * sets + set) * lineSize;
}

CacheAccessResult
CacheModel::access(Addr addr, bool is_write)
{
    CacheAccessResult result;
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines[set * ways];

    ++useClock;
    Line *victim = nullptr;
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            line.dirty = line.dirty || is_write;
            (is_write ? stWriteHits : stReadHits).add();
            result.hit = true;
            return result;
        }
        if (!victim || !line.valid ||
            (victim->valid && line.lastUse < victim->lastUse)) {
            if (!victim || victim->valid)
                victim = &line;
        }
    }

    (is_write ? stWriteMisses : stReadMisses).add();
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimAddr = lineAddr(victim->tag, set);
        stWritebacks.add();
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = useClock;
    return result;
}

bool
CacheModel::contains(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines[set * ways];
    for (unsigned w = 0; w < ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

bool
CacheModel::invalidate(Addr addr)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines[set * ways];
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            const bool was_dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

void
CacheModel::flush()
{
    for (auto &line : lines) {
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace getm
