/**
 * @file
 * Functional model of the simulated global address space.
 *
 * Timing is modelled elsewhere (CacheModel / DramModel); this class only
 * holds data. Storage is paged so sparse address spaces stay cheap. All
 * workloads operate on 32-bit words, which is also the granularity of
 * value-based validation in WarpTM.
 */

#ifndef GETM_MEM_BACKING_STORE_HH
#define GETM_MEM_BACKING_STORE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace getm {

/** Byte-addressed, word-accessed sparse memory. */
class BackingStore
{
  public:
    static constexpr unsigned wordBytes = 4;

    /** Read the 32-bit word at byte address @p addr (must be aligned). */
    std::uint32_t read(Addr addr) const;

    /** Write the 32-bit word at byte address @p addr (must be aligned). */
    void write(Addr addr, std::uint32_t value);

    /** Atomically compare-and-swap; returns the old value. */
    std::uint32_t atomicCas(Addr addr, std::uint32_t compare,
                            std::uint32_t swap);

    /** Atomically exchange; returns the old value. */
    std::uint32_t atomicExch(Addr addr, std::uint32_t value);

    /** Atomically add; returns the old value. */
    std::uint32_t atomicAdd(Addr addr, std::uint32_t value);

    /**
     * Bump-allocate a region of @p bytes, aligned to @p align.
     * Used by workloads to lay out their data structures.
     */
    Addr allocate(std::uint64_t bytes, std::uint64_t align = 128);

    /** Total bytes allocated so far. */
    std::uint64_t allocated() const { return allocTop - baseAddr; }

  private:
    static constexpr std::uint64_t pageBytes = 1ull << 16;

    using Page = std::vector<std::uint32_t>;

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    // Reserve page 0 so that address 0 is never handed out (null-like).
    static constexpr Addr baseAddr = pageBytes;
    Addr allocTop = baseAddr;

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages;
};

} // namespace getm

#endif // GETM_MEM_BACKING_STORE_HH
