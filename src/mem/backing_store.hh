/**
 * @file
 * Functional model of the simulated global address space.
 *
 * Timing is modelled elsewhere (CacheModel / DramModel); this class only
 * holds data. Storage is paged so sparse address spaces stay cheap. All
 * workloads operate on 32-bit words, which is also the granularity of
 * value-based validation in WarpTM.
 *
 * Concurrency contract (docs/PARALLELISM.md): the parallel cycle loop
 * lets every SIMT core touch the store from its worker thread, so
 *  - words are relaxed atomics (a plain load/store on x86 — the serial
 *    loops compile to the same code and produce the same values);
 *  - the page directory is a two-level radix of atomic pointers with
 *    CAS insertion, so a first-touch allocation on one worker can never
 *    invalidate a concurrent lookup on another (an unordered_map rehash
 *    would).
 * Two lanes racing on the *same word* in the same cycle is a data race
 * in the simulated program; the store keeps the simulator well-defined
 * (word-level atomicity) but such programs are outside the
 * byte-determinism contract.
 */

#ifndef GETM_MEM_BACKING_STORE_HH
#define GETM_MEM_BACKING_STORE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace getm {

/** Byte-addressed, word-accessed sparse memory. */
class BackingStore
{
  public:
    static constexpr unsigned wordBytes = 4;

    BackingStore() = default;
    ~BackingStore();
    BackingStore(const BackingStore &) = delete;
    BackingStore &operator=(const BackingStore &) = delete;

    /** Read the 32-bit word at byte address @p addr (must be aligned). */
    std::uint32_t read(Addr addr) const;

    /** Write the 32-bit word at byte address @p addr (must be aligned). */
    void write(Addr addr, std::uint32_t value);

    /** Atomically compare-and-swap; returns the old value. */
    std::uint32_t atomicCas(Addr addr, std::uint32_t compare,
                            std::uint32_t swap);

    /** Atomically exchange; returns the old value. */
    std::uint32_t atomicExch(Addr addr, std::uint32_t value);

    /** Atomically add; returns the old value. */
    std::uint32_t atomicAdd(Addr addr, std::uint32_t value);

    /**
     * Bump-allocate a region of @p bytes, aligned to @p align.
     * Used by workloads to lay out their data structures.
     */
    Addr allocate(std::uint64_t bytes, std::uint64_t align = 128);

    /** Total bytes allocated so far. */
    std::uint64_t allocated() const { return allocTop - baseAddr; }

    /**
     * Checkpoint hook: the bump pointer plus *every* allocated page.
     * Allocation is monotonic (pages are never freed), so a snapshot's
     * page set always covers the set a freshly set-up store holds;
     * loading over a fresh store therefore rewrites every byte the
     * workload ever placed, and no stale setup data can survive under
     * a page the snapshot omitted.
     */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(allocTop);
        std::vector<std::uint32_t> buf(wordsPerPage);
        if constexpr (Ar::saving) {
            std::uint64_t npages = 0;
            forEachPage([&](std::uint64_t, Word *) { ++npages; });
            ar.raw(&npages, sizeof(npages));
            forEachPage([&](std::uint64_t index, Word *words) {
                ar.raw(&index, sizeof(index));
                for (std::uint64_t w = 0; w < wordsPerPage; ++w)
                    buf[w] = words[w].load(std::memory_order_relaxed);
                ar.raw(buf.data(), pageBytes);
            });
        } else {
            std::uint64_t npages = 0;
            ar.raw(&npages, sizeof(npages));
            for (std::uint64_t p = 0; p < npages; ++p) {
                std::uint64_t index = 0;
                ar.raw(&index, sizeof(index));
                Word *words = pageFor(index * pageBytes);
                ar.raw(buf.data(), pageBytes);
                for (std::uint64_t w = 0; w < wordsPerPage; ++w)
                    words[w].store(buf[w], std::memory_order_relaxed);
            }
        }
    }

  private:
    /** Visit every allocated page as (page index, word array). */
    template <class Fn>
    void
    forEachPage(Fn &&fn)
    {
        for (std::uint64_t i = 0; i < dirFanout; ++i) {
            Leaf *leaf = root[i].load(std::memory_order_relaxed);
            if (!leaf)
                continue;
            for (std::uint64_t j = 0; j < dirFanout; ++j) {
                Word *words = (*leaf)[j].load(std::memory_order_relaxed);
                if (words)
                    fn((i << dirBits) | j, words);
            }
        }
    }

    static constexpr std::uint64_t pageBytes = 1ull << 16;
    static constexpr std::uint64_t wordsPerPage = pageBytes / wordBytes;
    /** Directory fan-out: 2048 x 2048 pages of 64 KiB = 256 GiB. */
    static constexpr unsigned dirBits = 11;
    static constexpr std::uint64_t dirFanout = 1ull << dirBits;

    using Word = std::atomic<std::uint32_t>;
    /** One leaf directory: pointers to zero-initialised word arrays. */
    using Leaf = std::array<std::atomic<Word *>, dirFanout>;

    /** Find the page words for @p addr, allocating on first touch. */
    Word *pageFor(Addr addr);
    /** Find the page words for @p addr, or nullptr if never touched. */
    const Word *pageForConst(Addr addr) const;

    // Reserve page 0 so that address 0 is never handed out (null-like).
    static constexpr Addr baseAddr = pageBytes;
    Addr allocTop = baseAddr;

    /** Root directory; leaves and pages are CAS-inserted on demand. */
    std::array<std::atomic<Leaf *>, dirFanout> root{};
};

} // namespace getm

#endif // GETM_MEM_BACKING_STORE_HH
