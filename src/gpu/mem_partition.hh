/**
 * @file
 * A memory partition: LLC slice, DRAM channel, and the protocol's
 * validation/commit units (paper Fig. 5, right side).
 *
 * The partition pops at most one message per cycle from the up crossbar
 * (Table II: validation bandwidth 1 request/cycle per partition); the
 * handler's busy time gates subsequent pops. Outbound responses are
 * scheduled at their exact ready cycles and injected into the down
 * crossbar then.
 */

#ifndef GETM_GPU_MEM_PARTITION_HH
#define GETM_GPU_MEM_PARTITION_HH

#include <functional>
#include <memory>
#include <queue>

#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/cache_model.hh"
#include "mem/dram_model.hh"
#include "noc/crossbar.hh"
#include "tm/partition_iface.hh"

namespace getm {

struct GpuConfig;

/** One LLC partition with its protocol unit. */
class MemPartition : public PartitionContext
{
  public:
    MemPartition(PartitionId id, const GpuConfig &config,
                 const AddressMap &map, BackingStore &store,
                 Crossbar<MemMsg> &up, Crossbar<MemMsg> &down,
                 unsigned num_cores);

    /** Install the protocol unit (may be null for the lock baseline). */
    void setProtocol(std::unique_ptr<TmPartitionProtocol> unit);

    /** Emit due responses and process at most one inbound message. */
    void tick(Cycle now);

    /** Earliest future cycle at which this partition has work. */
    Cycle nextEventCycle(Cycle now) const;

    /** No queued output and not mid-operation. */
    bool idle(Cycle now) const;

    TmPartitionProtocol *protocol() { return proto.get(); }
    CacheModel &llc() { return llcCache; }

    /** Install the observability sink (may be null). */
    void setObserver(ObsSink *s) { sink = s; }

    /** Install the transaction tracer (may be null). */
    void setTracer(ObsSink *t) { traceSink = t; }

    /** Install the runtime checker sink (may be null). */
    void setChecker(CheckSink *s) { checkSink = s; }

    /** Install the fault injector (may be null). */
    void setFaults(FaultInjector *f) { faultInj = f; }

    /**
     * Divert down-crossbar injections (may be null to restore direct
     * sends). The parallel cycle loop stages partition sends on worker
     * threads and replays them at the barrier in partition order, the
     * same scheme as the cores' upward staging (docs/PARALLELISM.md).
     * @p fn receives the message and the cycle it became ready (the
     * send time the crossbar must charge).
     */
    void
    setDownSendFn(std::function<void(MemMsg &&, Cycle)> fn)
    {
        downSendFn = std::move(fn);
    }

    /** Apply a rollover stall penalty to the unit's pipeline. */
    void
    addPipelineStall(Cycle now, Cycle penalty)
    {
        if (popFree < now + penalty)
            popFree = now + penalty;
    }

    // --- PartitionContext ----------------------------------------------
    PartitionId partitionId() const override { return id; }
    unsigned numCores() const override { return cores; }
    void scheduleToCore(MemMsg &&msg, Cycle when) override;
    Cycle accessLlc(Addr line_addr, bool is_write, Cycle now) override;
    Cycle llcLatency() const override { return llcLat; }
    BackingStore &memory() override { return store; }
    StatSet &stats() override { return statSet; }
    ObsSink *obs() override { return sink; }
    ObsSink *trace() override { return traceSink; }
    CheckSink *check() override { return checkSink; }
    FaultInjector *faults() override { return faultInj; }

    /** Checkpoint hook for everything but the protocol unit (which the
     *  owner serializes through its virtual ckptSave/ckptLoad). */
    template <class Ar>
    void
    ckpt(Ar &ar)
    {
        ar(llcCache, dram, popFree, outSeq, outQueue, statSet);
    }

  private:
    /** Handle non-transactional reads/writes and atomics locally. */
    Cycle handleLocal(MemMsg &&msg, Cycle now);

    struct Outbound
    {
        Cycle when;
        std::uint64_t seq;
        MemMsg msg;

        bool
        operator>(const Outbound &other) const
        {
            return when != other.when ? when > other.when
                                      : seq > other.seq;
        }

        template <class Ar> void ckpt(Ar &ar) { ar(when, seq, msg); }
    };

    PartitionId id;
    unsigned cores;
    Cycle llcLat;
    const AddressMap &addrMap;
    BackingStore &store;
    Crossbar<MemMsg> &xbarUp;
    Crossbar<MemMsg> &xbarDown;
    CacheModel llcCache;
    DramModel dram;
    std::unique_ptr<TmPartitionProtocol> proto;
    ObsSink *sink = nullptr;
    ObsSink *traceSink = nullptr;
    CheckSink *checkSink = nullptr;
    FaultInjector *faultInj = nullptr;
    std::function<void(MemMsg &&, Cycle)> downSendFn;

    Cycle popFree = 0;
    std::uint64_t outSeq = 0;
    std::priority_queue<Outbound, std::vector<Outbound>,
                        std::greater<Outbound>>
        outQueue;
    StatSet statSet;

    // Hot-path stat handles: one add per handled request.
    StatSet::Counter &stDramWritebacks;
    StatSet::Counter &stNtxReads;
    StatSet::Counter &stNtxWrites;
    StatSet::Counter &stAtomics;
};

} // namespace getm

#endif // GETM_GPU_MEM_PARTITION_HH
