/**
 * @file
 * Top-level simulated GPU: SIMT cores, dual crossbars, and memory
 * partitions, wired with the selected TM protocol (paper Fig. 5).
 *
 * This is the main entry point of the library: construct a GpuSystem
 * from a GpuConfig, lay out workload data in memory(), and run() a
 * kernel. The simulation loop is cycle-driven with idle-cycle skipping,
 * so memory-latency-dominated phases cost nothing to simulate.
 */

#ifndef GETM_GPU_GPU_SYSTEM_HH
#define GETM_GPU_GPU_SYSTEM_HH

#include <chrono>
#include <memory>
#include <vector>

#include "check/violation.hh"
#include "common/sim_error.hh"
#include "core/getm_partition.hh"
#include "gpu/gpu_config.hh"
#include "gpu/mem_partition.hh"
#include "gpu/timeline.hh"
#include "isa/kernel.hh"
#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "noc/crossbar.hh"
#include "obs/observability.hh"
#include "obs/tx_tracer.hh"
#include "simt/simt_core.hh"
#include "warptm/wtm_common.hh"

namespace getm {

class Checker;
class FaultInjector;

/** Aggregate results of one kernel run. */
struct RunResult
{
    Cycle cycles = 0;              ///< Total kernel execution time.
    std::uint64_t commits = 0;     ///< Thread-level transaction commits.
    std::uint64_t aborts = 0;      ///< Thread-level transaction aborts.
    Cycle txExecCycles = 0;        ///< Warp-cycles executing tx code.
    Cycle txWaitCycles = 0;        ///< Warp-cycles waiting (throttle,
                                   ///< backoff, commit sequence).
    std::uint64_t xbarFlits = 0;   ///< Up+down crossbar flits (Fig. 12).
    double metaAccessCycles = 0;   ///< Mean metadata access (Fig. 13).
    unsigned stallPeakOccupancy = 0; ///< GPU-wide peak (Fig. 15).
    double stallWaitersPerAddr = 0;  ///< Mean queue depth (Fig. 16).
    std::uint64_t rollovers = 0;   ///< GETM timestamp rollovers taken.
    LogicalTs maxLogicalTs = 0;    ///< Highest warpts reached (GETM).
    StatSet stats{"run"};          ///< Everything else, merged.
    ObsReport obs;                 ///< Attribution, profiler, telemetry.
    CheckReport check;             ///< Runtime checker verdict (if on).

    /**
     * Cycles per logical-timestamp increment (paper Sec. V-B1 reports
     * 1265-15836 for its workloads, i.e., rollover is rare).
     */
    double
    cyclesPerTsIncrement() const
    {
        return maxLogicalTs
                   ? static_cast<double>(cycles) /
                         static_cast<double>(maxLogicalTs)
                   : 0.0;
    }

    /** Aborts per 1000 commits (Table IV). */
    double
    abortsPer1kCommits() const
    {
        return commits ? 1000.0 * static_cast<double>(aborts) /
                             static_cast<double>(commits)
                       : 0.0;
    }
};

/** The simulated GPU. */
class GpuSystem
{
  public:
    explicit GpuSystem(const GpuConfig &config);
    ~GpuSystem();

    /** Functional memory, for workload setup and verification. */
    BackingStore &memory() { return store; }

    const GpuConfig &config() const { return cfg; }

    /**
     * Run @p kernel over @p num_threads threads to completion.
     *
     * Simulation pathologies throw SimError (common/sim_error.hh)
     * with a diagnostic snapshot instead of killing the process:
     *  - CYCLE_LIMIT when @p max_cycles is exceeded;
     *  - DEADLOCK when no future events exist but the run is not done;
     *  - LIVELOCK when events keep firing but no instruction retires
     *    and no transaction lane commits for cfg.watchdogCycles;
     *  - WALL_TIMEOUT when cfg.timeoutSec of wall clock elapses.
     * The watchdog and timeout only *observe* progress counters at
     * already-visited cycles, so enabling them never changes the
     * cycle-accurate behaviour of a passing run.
     *
     * @param max_cycles Safety bound; SimError CYCLE_LIMIT if exceeded.
     */
    RunResult run(const Kernel &kernel, std::uint64_t num_threads,
                  Cycle max_cycles = 2'000'000'000ull);

    // Test access.
    SimtCore &coreAt(unsigned i) { return *coreArray[i]; }
    MemPartition &partitionAt(unsigned i) { return *partArray[i]; }
    unsigned numCores() const { return cfg.numCores; }
    unsigned numPartitions() const { return cfg.numPartitions; }

    /** Live observability hub (every protocol reports into it). */
    Observability &observabilityHub() { return observability; }

    /** Runtime checker, when cfg.checkLevel > 0 (else nullptr). */
    Checker *checkerPtr() { return checker.get(); }

    /** Transaction tracer, when cfg.traceTx > 0 (else nullptr). */
    TxTracer *tracerPtr() { return txTracer.get(); }

  private:
    void wireProtocol();
    void setupTelemetry();
    Cycle computeNextCycle(Cycle now) const;
    bool allDone() const;
    bool drained(Cycle now) const;

    /**
     * Event-driven main loop: per-component wake cycles are cached when
     * a component ticks, so idle components are neither ticked nor
     * rescanned. Returns the final cycle count.
     */
    Cycle runEventLoop(const Kernel &kernel, Cycle max_cycles);

    /** Pre-wake-list loop that ticks every component each visited
     *  cycle (GpuConfig::legacyLoop / GETM_LEGACY_LOOP fallback). */
    Cycle runLegacyLoop(const Kernel &kernel, Cycle max_cycles);

    /**
     * Multi-threaded variant of the event loop (cfg.simThreads > 1):
     * SIMT cores — and, with enough partitions, the memory partitions —
     * tick on a persistent worker pool; the crossbar handoff, commit-id
     * assignment, telemetry, and rollover stay on the calling thread.
     * All cross-component effects are staged per component and replayed
     * at a per-cycle barrier in the serial loops' global order — so the
     * results are byte-identical at any thread count, for every
     * protocol (WarpTM/EAPG commit ids go through the WtmShared
     * reservation scheme) and with fault injection enabled
     * (per-component counter streams). With cfg.simEpoch > 1, quiescent
     * stretches relax the barrier to one sync per epoch of up to
     * simEpoch cycles, bounded by the crossbar latency so no staged
     * message could have arrived inside the epoch. Full contract in
     * docs/PARALLELISM.md.
     */
    Cycle runParallelLoop(const Kernel &kernel, Cycle max_cycles,
                          unsigned threads);

    /**
     * Thread count the parallel loop will actually use: cfg.simThreads
     * clamped to the core count. Every protocol runs parallel now; the
     * historical serial fallbacks (shared WarpTM commit state, global
     * fault-injection RNG) were removed when those subsystems became
     * interleaving-independent.
     */
    unsigned effectiveSimThreads() const;

    /** GETM timestamp-rollover coordination; returns true if mid-flush. */
    void maybeRollover(Cycle now);

    /**
     * Monotone forward-progress measure: instructions retired plus tx
     * lanes committed, summed over every core. The watchdog declares
     * livelock when this stops moving for cfg.watchdogCycles.
     */
    std::uint64_t progressSample() const;

    /** Per-run state of the safety guards (one instance per loop). */
    struct GuardState
    {
        std::uint64_t lastProgressValue = 0;
        Cycle lastProgressCycle = 0;
        std::chrono::steady_clock::time_point wallStart;
        std::uint64_t iterations = 0;
    };

    /**
     * Run the safety guards for one visited cycle: the max_cycles
     * bound, the forward-progress watchdog (cfg.watchdogCycles), and
     * the wall-clock budget (cfg.timeoutSec). Throws the matching
     * SimError; on the happy path it only reads counters, so it can
     * never perturb simulated timing.
     */
    void checkGuards(const Kernel &kernel, Cycle now, Cycle max_cycles,
                     GuardState &guard);

    /** Snapshot the stuck machine into a SimError diagnostic. */
    SimDiagnostic buildDiagnostic(SimErrorKind kind, std::string message,
                                  Cycle now, Cycle since_progress);

    // --- durability (docs/DURABILITY.md) -------------------------------

    /**
     * Checkpoint compatibility hash for one run: FNV-1a over the
     * config-provenance pairs plus every state-shaping knob excluded
     * from provenance (checker level, tracer rate, fault injection,
     * telemetry) and the workload identity (kernel name, thread
     * count). A snapshot only restores into a bit-equivalent machine.
     */
    std::uint64_t checkpointHash(const Kernel &kernel,
                                 std::uint64_t num_threads) const;

    /** Serialize (Ar = ckpt::Writer) or restore (ckpt::Reader) the
     *  complete machine state, in one fixed component order. */
    template <class Ar> void ckptMachine(Ar &ar);

    /** Write an atomically-renamed snapshot of the machine at @p now
     *  into cfg.ckptDir (default "."). */
    void saveCheckpoint(Cycle now);

    /** Restore cfg.restorePath (file or directory); sets resumeCycle
     *  so the loops resume mid-kernel. Throws SimError CHECKPOINT on
     *  any corrupt, truncated, version- or config-skewed snapshot. */
    void restoreFromSnapshot();

    /**
     * Iteration-top durability hook, run by every loop at the start of
     * each visited cycle (a barrier point of the parallel loop): the
     * --ckpt-kill-at crash hook, pending SIGINT/SIGTERM (final
     * checkpoint + SimError INTERRUPT), and the periodic checkpoint.
     */
    void checkpointTop(const Kernel &kernel, Cycle now);

    GpuConfig cfg;
    BackingStore store;
    AddressMap addrMap;
    Crossbar<MemMsg> xbarUp;
    Crossbar<MemMsg> xbarDown;
    std::vector<std::unique_ptr<SimtCore>> coreArray;
    std::vector<std::unique_ptr<MemPartition>> partArray;
    std::shared_ptr<WtmShared> wtmShared;
    std::vector<GetmPartitionUnit *> getmUnits; // borrowed from partitions
    StallOccupancyTracker stallTracker;
    Timeline timeline;
    Observability observability;
    std::unique_ptr<TxTracer> txTracer;
    std::unique_ptr<Checker> checker;
    /**
     * One injector per component when cfg.injectFault > 0: cores first
     * (index = CoreId), then partitions (index = numCores + PartitionId).
     * Per-component counter streams keep fire() sequences independent of
     * worker interleaving (check/fault.hh).
     */
    std::vector<std::unique_ptr<FaultInjector>> faultInjectors;

    bool rolloverPending = false;
    std::uint64_t rollovers = 0;

    /** Next warp to assign (run()'s work source; checkpointed so a
     *  restored run keeps pulling from where the snapshot stopped). */
    std::uint64_t warpCursor = 0;

    /** This run's checkpoint compatibility hash (set by run()). */
    std::uint64_t ckptHash = 0;

    /** First cycle the loops simulate (nonzero after a restore). */
    Cycle resumeCycle = 0;

    /** Next periodic-checkpoint boundary (sampler-style alignment). */
    Cycle nextCkptDue = 0;

    /**
     * Live safety-guard state. A member (reset by run(), wall clock
     * re-armed by each loop) so checkpoints capture the watchdog's
     * progress window and a restored run resumes it exactly.
     */
    GuardState guard;

    /**
     * Live per-core observability shards while the parallel loop runs
     * (else null). buildDiagnostic() absorbs them into the hub first,
     * so error snapshots see the complete hot-address table no matter
     * which loop was running.
     */
    std::vector<ObsShard> *activeShards = nullptr;
};

} // namespace getm

#endif // GETM_GPU_GPU_SYSTEM_HH
