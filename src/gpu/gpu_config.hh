/**
 * @file
 * Whole-GPU configuration (paper Table II) and protocol selection.
 */

#ifndef GETM_GPU_GPU_CONFIG_HH
#define GETM_GPU_GPU_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/getm_partition.hh"
#include "mem/dram_model.hh"
#include "noc/crossbar.hh"
#include "simt/simt_core.hh"
#include "warptm/wtm_partition.hh"

namespace getm {

/** Which TM system (or the lock baseline) the GPU runs. */
enum class ProtocolKind : std::uint8_t
{
    FgLock,   ///< Fine-grained locks; no TM hardware at all.
    Getm,     ///< This paper's proposal (eager conflict detection).
    WarpTmLL, ///< WarpTM baseline (lazy-lazy).
    WarpTmEL, ///< Idealized eager-lazy WarpTM variant (Sec. III).
    Eapg,     ///< Idealized EarlyAbort/Pause-n-Go (Sec. VI-A).
};

/** Human-readable protocol name. */
const char *protocolName(ProtocolKind kind);

/** Full simulated-GPU configuration. */
struct GpuConfig
{
    unsigned numCores = 15;
    unsigned numPartitions = 6;

    CoreConfig core;

    // LLC slice per partition (Table II: 128 KB, 8-way, 128 B lines).
    std::uint64_t llcBytesPerPartition = 128 * 1024;
    unsigned llcAssoc = 8;
    unsigned lineBytes = 128;
    /** LLC memory scheduling latency (Table II: 330 cycles). */
    Cycle llcLatency = 330;

    CrossbarTiming::Config xbar;
    DramModel::Config dram;

    ProtocolKind protocol = ProtocolKind::Getm;

    // GETM structures (GPU-wide totals; divided across partitions).
    unsigned getmPreciseEntriesTotal = 4096;
    unsigned getmBloomEntriesTotal = 1024;
    unsigned getmGranule = 32;
    /** Ablation: max-registers approximate metadata (paper Sec. V-B1). */
    bool getmUseMaxRegisters = false;
    StallBuffer::Config getmStall;
    /** Force a timestamp rollover past this logical time (tests). */
    LogicalTs rolloverThreshold = ~static_cast<LogicalTs>(0);
    /** Modelled VU stall for one rollover (ring + core acks). */
    Cycle rolloverPenalty = 100;

    WtmPartitionConfig wtm;

    /** Write a Chrome-trace transaction timeline here (empty: off). */
    std::string timelinePath;

    /**
     * Telemetry sampling period in cycles (0: off). With idle-cycle
     * skipping, samples land on the first simulated cycle at or after
     * each interval boundary.
     */
    Cycle sampleInterval = 0;
    /** Rows kept in the exported hot-address conflict table. */
    unsigned hotAddrTopN = 16;

    /**
     * Runtime checker level (CheckLevel numeric value; 0 = off). Plain
     * unsigned so this header needs no src/check dependency; GpuSystem
     * interprets it. Never part of config provenance: a checked run
     * must hash and report identically to an unchecked one.
     */
    unsigned checkLevel = 0;

    /**
     * Per-transaction lifecycle tracing: trace every Nth transaction
     * (0 = off, 1 = all). Strictly observe-only — the tracer adds no
     * wake sources and no messages, so enabling it cannot change a
     * single simulated cycle (the TracerInvisible tests enforce this).
     * Like checkLevel, never part of config provenance.
     */
    std::uint64_t traceTx = 0;

    /** Injected protocol fault (FaultKind numeric value; 0 = none). */
    unsigned injectFault = 0;

    /** Probability of each injected fault decision firing. */
    double injectProb = 1.0;

    /**
     * Forward-progress watchdog: throw SimError(LIVELOCK) when no
     * instruction retires and no transaction lane commits for this
     * many simulated cycles (0 = off). Like checkLevel/injectFault,
     * never part of config provenance: the watchdog only observes, so
     * tuning it must not rehash sweeps or change reported configs.
     */
    Cycle watchdogCycles = 2'000'000;

    /** Wall-clock budget in seconds for one run; 0 = unlimited. Throws
     *  SimError(WALL_TIMEOUT). Also excluded from provenance. */
    double timeoutSec = 0.0;

    std::uint64_t seed = 12345;

    /**
     * Run the pre-wake-list tick-everything main loop instead of the
     * event-driven scheduler (also forced by the GETM_LEGACY_LOOP
     * environment variable). Escape hatch while the wake-list loop
     * beds in; slated for removal once it has soaked for a release.
     */
    bool legacyLoop = false;

    /**
     * Worker threads for the per-cycle simulation loop (1 = the serial
     * event-driven loop). Any value produces byte-identical results for
     * every protocol — the crossbar handoff serializes all
     * cross-component traffic in a deterministic order, WarpTM/EAPG
     * commit ids go through a reservation scheme, and fault injection
     * draws from per-component counter streams (docs/PARALLELISM.md) —
     * so, like checkLevel and watchdogCycles, this is never part of
     * config provenance.
     */
    unsigned simThreads = 1;

    /**
     * Maximum simulated cycles per synchronization epoch of the
     * parallel loop (1 = barrier every cycle). When both crossbars are
     * empty and no rollover or telemetry boundary is due, workers run
     * up to this many cycles between barriers; the loop caps the value
     * at xbar.latency + 1, which guarantees no message produced inside
     * an epoch could also arrive inside it, so results stay
     * byte-identical and this too is excluded from provenance.
     * Ignored (treated as 1) when simThreads <= 1.
     */
    unsigned simEpoch = 1;

    /**
     * Periodic checkpointing: write a snapshot every N simulated cycles
     * (0 = off). Snapshots land on the first epoch barrier at or after
     * each boundary, the same alignment rule the telemetry sampler
     * uses. Like checkLevel, never part of config provenance — and the
     * config hash embedded in checkpoint files is computed over
     * provenance fields only, so a run checkpointed with one cadence
     * restores under another.
     */
    Cycle ckptEvery = 0;

    /** Directory for checkpoint files (default "." when enabled). */
    std::string ckptDir;

    /** Restore machine state from this snapshot file (or the newest
     *  snapshot in this directory) before simulating. Empty: cold
     *  start. Excluded from provenance. */
    std::string restorePath;

    /**
     * Crash-test hook: abandon the run (SIGKILL-style, no cleanup and
     * no final checkpoint) at the first loop iteration at or after
     * this cycle (0 = off). Only reachable through `getm_sim
     * --ckpt-kill-at`; exists so the kill-resume CI job and the
     * determinism tests can cut a run at a precise point. Excluded
     * from provenance.
     */
    Cycle ckptKillAt = 0;

    /** GTX480-like baseline of Table II. */
    static GpuConfig gtx480();

    /** Scaled 56-core / 4 MB LLC configuration (Fig. 17). */
    static GpuConfig scaled56();

    /**
     * A reduced configuration for unit tests: fewer cores/warps so
     * simulations finish in milliseconds.
     */
    static GpuConfig testRig();
};

} // namespace getm

#endif // GETM_GPU_GPU_CONFIG_HH
