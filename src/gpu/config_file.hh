/**
 * @file
 * Plain-text configuration files for GpuConfig.
 *
 * A config file is a list of `key = value` lines (with `#` comments),
 * mirroring how GPGPU-Sim experiments are driven by gpgpusim.config
 * files. Unknown keys are an error -- silently ignored typos are how
 * simulation studies go wrong. Supported keys cover everything the
 * evaluation sweeps:
 *
 *     # Table II baseline, GETM at 64 B granularity
 *     cores = 15
 *     partitions = 6
 *     warps_per_core = 48
 *     tx_warp_limit = 8
 *     llc_kb_per_partition = 128
 *     llc_latency = 330
 *     getm_granule = 64
 *     getm_precise_entries = 4096
 *     getm_bloom_entries = 1024
 *     getm_max_registers = 0
 *     wtm_tcd_entries = 2048
 *     rollover_threshold = 0        # 0 = disabled
 *     seed = 7
 */

#ifndef GETM_GPU_CONFIG_FILE_HH
#define GETM_GPU_CONFIG_FILE_HH

#include <string>
#include <utility>
#include <vector>

#include "gpu/gpu_config.hh"

namespace getm {

/**
 * Apply `key = value` lines from @p text onto @p cfg.
 * @param error Filled with a diagnostic on failure.
 * @return false on parse error or unknown key.
 */
bool applyConfigText(const std::string &text, GpuConfig &cfg,
                     std::string &error);

/** Load @p path and apply it onto @p cfg. */
bool loadConfigFile(const std::string &path, GpuConfig &cfg,
                    std::string &error);

/**
 * Sanity-check @p cfg for values that would misbehave downstream
 * (zero core/partition/warp counts, zero line/granule sizes, a
 * degenerate Backoff::Config). Called at the end of applyConfigText()
 * so bad files are rejected at load time, and by the GpuSystem
 * constructor (which turns a failure into SimError CONFIG) so
 * programmatic configs get the same screening.
 *
 * @return false with @p error describing the first offending value.
 */
bool validateGpuConfig(const GpuConfig &cfg, std::string &error);

/**
 * Flatten @p cfg into ordered key/value pairs using the same key names
 * the config-file parser accepts (plus the protocol). This is the
 * config-provenance block of the exported metrics document: feeding the
 * values back through a config file reproduces the run.
 */
std::vector<std::pair<std::string, std::string>>
configProvenance(const GpuConfig &cfg);

} // namespace getm

#endif // GETM_GPU_CONFIG_FILE_HH
