#include "gpu/timeline.hh"

#include <fstream>
#include <locale>
#include <sstream>

#include "common/json.hh"

namespace getm {

std::string
Timeline::toJson() const
{
    std::ostringstream out;
    out.imbue(std::locale::classic());
    out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const Event &event : events) {
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"pid\":" << event.pid << ",\"tid\":" << event.tid
            << ",\"ts\":" << event.ts;
        switch (event.kind) {
          case Kind::Begin:
            out << ",\"ph\":\"B\",\"name\":\"" << jsonEscape(event.name)
                << "\"";
            break;
          case Kind::End:
            out << ",\"ph\":\"E\"";
            break;
          case Kind::Instant:
            out << ",\"ph\":\"i\",\"s\":\"t\",\"name\":\""
                << jsonEscape(event.name) << "\"";
            break;
          case Kind::Complete:
            out << ",\"ph\":\"X\",\"dur\":"
                << static_cast<std::uint64_t>(event.value)
                << ",\"name\":\"" << jsonEscape(event.name) << "\"";
            break;
          case Kind::Counter:
            out << ",\"ph\":\"C\",\"name\":\"" << jsonEscape(event.name)
                << "\",\"args\":{\"value\":" << jsonNumber(event.value)
                << "}";
            break;
          case Kind::ProcessName:
            out << ",\"ph\":\"M\",\"name\":\"process_name\","
                   "\"args\":{\"name\":\""
                << jsonEscape(event.name) << "\"}";
            break;
          case Kind::ThreadName:
            out << ",\"ph\":\"M\",\"name\":\"thread_name\","
                   "\"args\":{\"name\":\""
                << jsonEscape(event.name) << "\"}";
            break;
        }
        out << "}";
    }
    out << "\n]}\n";
    return out.str();
}

bool
Timeline::writeJson(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    file << toJson();
    return static_cast<bool>(file);
}

} // namespace getm
