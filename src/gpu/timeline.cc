#include "gpu/timeline.hh"

#include <fstream>
#include <sstream>

namespace getm {

std::string
Timeline::toJson() const
{
    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const Event &event : events) {
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"pid\":" << event.core << ",\"tid\":" << event.slot
            << ",\"ts\":" << event.ts;
        switch (event.kind) {
          case Kind::Begin:
            out << ",\"ph\":\"B\",\"name\":\"" << event.name << "\"";
            break;
          case Kind::End:
            out << ",\"ph\":\"E\"";
            break;
          case Kind::Instant:
            out << ",\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << event.name
                << "\"";
            break;
        }
        out << "}";
    }
    out << "\n]}\n";
    return out.str();
}

bool
Timeline::writeJson(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    file << toJson();
    return static_cast<bool>(file);
}

} // namespace getm
