#include "gpu/mem_partition.hh"

#include <algorithm>

#include "check/sink.hh"
#include "common/log.hh"
#include "gpu/gpu_config.hh"

namespace getm {

MemPartition::MemPartition(PartitionId id_, const GpuConfig &config,
                           const AddressMap &map, BackingStore &store_,
                           Crossbar<MemMsg> &up, Crossbar<MemMsg> &down,
                           unsigned num_cores)
    : id(id_), cores(num_cores), llcLat(config.llcLatency), addrMap(map),
      store(store_), xbarUp(up), xbarDown(down),
      llcCache("part" + std::to_string(id_) + ".llc",
               config.llcBytesPerPartition, config.llcAssoc,
               config.lineBytes),
      dram("part" + std::to_string(id_) + ".dram", config.dram),
      statSet("part" + std::to_string(id_)),
      stDramWritebacks(statSet.addCounter("dram_writebacks")),
      stNtxReads(statSet.addCounter("ntx_reads")),
      stNtxWrites(statSet.addCounter("ntx_writes")),
      stAtomics(statSet.addCounter("atomics"))
{
}

void
MemPartition::setProtocol(std::unique_ptr<TmPartitionProtocol> unit)
{
    proto = std::move(unit);
}

void
MemPartition::scheduleToCore(MemMsg &&msg, Cycle when)
{
    outQueue.push(Outbound{when, outSeq++, std::move(msg)});
}

Cycle
MemPartition::accessLlc(Addr line_addr, bool is_write, Cycle now)
{
    const Addr line = addrMap.lineOf(line_addr);
    const CacheAccessResult result = llcCache.access(line, is_write);
    if (result.hit)
        return 0;
    if (result.writeback)
        stDramWritebacks.add();
    const Cycle ready = dram.enqueue(now, line);
    return ready - now;
}

void
MemPartition::tick(Cycle now)
{
    // 1. Inject due responses into the down crossbar at their exact
    //    ready cycles (or stage them when the parallel loop diverted
    //    the injection point).
    while (!outQueue.empty() && outQueue.top().when <= now) {
        Outbound out = outQueue.top();
        outQueue.pop();
        if (downSendFn) {
            downSendFn(std::move(out.msg), out.when);
            continue;
        }
        const unsigned bytes = out.msg.bytes;
        const CoreId core = out.msg.core;
        xbarDown.send(id, core, bytes, out.when, std::move(out.msg));
    }

    // 2. Pop and process at most one inbound message per cycle, gated by
    //    the unit's busy time.
    if (popFree > now || !xbarUp.hasReady(id, now))
        return;
    MemMsg msg = xbarUp.popReady(id);
    Cycle busy;
    switch (msg.kind) {
      case MsgKind::NtxRead:
      case MsgKind::NtxWrite:
      case MsgKind::Atomic:
        busy = handleLocal(std::move(msg), now);
        break;
      default:
        if (!proto)
            panic("protocol message at partition with no protocol unit");
        busy = proto->handleRequest(std::move(msg), now);
        break;
    }
    popFree = now + std::max<Cycle>(1, busy);
}

Cycle
MemPartition::handleLocal(MemMsg &&msg, Cycle now)
{
    switch (msg.kind) {
      case MsgKind::NtxRead: {
        const Cycle extra = accessLlc(msg.addr, false, now);
        MemMsg resp;
        resp.kind = MsgKind::NtxReadResp;
        resp.core = msg.core;
        resp.partition = id;
        resp.wid = msg.wid;
        resp.warpSlot = msg.warpSlot;
        resp.addr = msg.addr;
        resp.flag = msg.flag;
        resp.txId = msg.txId;
        for (const LaneOp &op : msg.ops)
            resp.ops.push_back({op.lane, op.addr, store.read(op.addr), 0});
        // MSHR-tracked fills return a whole L1 line; volatile reads and
        // unmerged fallbacks return just the requested words.
        resp.bytes = msg.txId == 1
                         ? 8 + addrMap.lineBytes()
                         : 8 + 4 * static_cast<unsigned>(resp.ops.size());
        scheduleToCore(std::move(resp), now + 1 + llcLat + extra);
        stNtxReads.add();
        return 1;
      }

      case MsgKind::NtxWrite: {
        const Cycle extra = accessLlc(msg.addr, true, now);
        if (msg.flag) {
            // L1-bypass (volatile) store: the partition is the
            // serialization point; apply, notify TCD, and ack.
            for (const LaneOp &op : msg.ops) {
                store.write(op.addr, op.value);
                if (checkSink)
                    checkSink->externalWrite(op.addr, op.value);
                if (proto)
                    proto->noteDataWrite(op.addr, now);
            }
            MemMsg ack;
            ack.kind = MsgKind::NtxWriteAck;
            ack.core = msg.core;
            ack.partition = id;
            ack.wid = msg.wid;
            ack.warpSlot = msg.warpSlot;
            ack.bytes = 8;
            scheduleToCore(std::move(ack), now + 1 + llcLat + extra);
        }
        stNtxWrites.add();
        return 1;
      }

      case MsgKind::Atomic: {
        const Cycle extra = accessLlc(msg.addr, true, now);
        MemMsg resp;
        resp.kind = MsgKind::AtomicResp;
        resp.core = msg.core;
        resp.partition = id;
        resp.wid = msg.wid;
        resp.warpSlot = msg.warpSlot;
        resp.addr = msg.addr;
        // Atomics to the same line serialize here, one per cycle.
        for (const LaneOp &op : msg.ops) {
            std::uint32_t old;
            switch (static_cast<AtomicOp>(msg.aop)) {
              case AtomicOp::Cas:
                old = store.atomicCas(op.addr, op.value, op.aux);
                break;
              case AtomicOp::Exch:
                old = store.atomicExch(op.addr, op.value);
                break;
              default:
                old = store.atomicAdd(op.addr, op.value);
                break;
            }
            if (checkSink)
                checkSink->externalWrite(op.addr, store.read(op.addr));
            if (proto)
                proto->noteDataWrite(op.addr, now);
            resp.ops.push_back({op.lane, op.addr, old, 0});
        }
        const Cycle busy = std::max<Cycle>(1, msg.ops.size());
        resp.bytes = 8 + 4 * static_cast<unsigned>(resp.ops.size());
        scheduleToCore(std::move(resp), now + busy + llcLat + extra);
        stAtomics.add();
        return busy;
      }

      default:
        panic("handleLocal on non-local message");
    }
}

Cycle
MemPartition::nextEventCycle(Cycle now) const
{
    Cycle best = ~static_cast<Cycle>(0);
    if (!outQueue.empty())
        best = std::min(best, outQueue.top().when);
    if (xbarUp.hasReady(id, now))
        best = std::min(best, std::max(popFree, now + 1));
    if (proto)
        best = std::min(best, proto->nextEventCycle());
    return best;
}

bool
MemPartition::idle(Cycle now) const
{
    // popFree past `now` with nothing queued is not "busy": it only
    // gates future pops, of which there are none.
    return outQueue.empty() && !xbarUp.hasReady(id, now);
}

} // namespace getm
