/**
 * @file
 * Transaction-lifecycle timeline recorder.
 *
 * Records per-warp transactional spans (attempt begin -> commit/retire)
 * and instant events (aborts, retries, rollovers) and serializes them in
 * the Chrome trace-event JSON format, viewable in chrome://tracing or
 * Perfetto. Cores map to "processes" and warp slots to "threads", so a
 * loaded GPU renders as a familiar Gantt chart of transactions.
 *
 * Beyond spans, the recorder supports:
 *  - counter ("C") events: sampled telemetry rendered by Perfetto as
 *    counter tracks (warp occupancy, stall-buffer fill, ...);
 *  - metadata ("M") events: process_name/thread_name records so tracks
 *    appear as "core 3" / "warp slot 12" instead of bare pids/tids.
 *
 * All event names pass through jsonEscape(), so arbitrary names cannot
 * corrupt the emitted document.
 *
 * Enable via GpuConfig::timelinePath (or `getm_sim --timeline out.json`).
 */

#ifndef GETM_GPU_TIMELINE_HH
#define GETM_GPU_TIMELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace getm {

/** Collects trace events for one run. */
class Timeline
{
  public:
    virtual ~Timeline() = default;

    // The three core-facing recorders are virtual so the parallel cycle
    // loop can hand each core a deferring proxy (obs/deferred_sinks.hh)
    // that replays into the real recorder in deterministic order. The
    // serial-stage recorders below (complete/counter/name*) stay
    // non-virtual: only GpuSystem calls them.

    /** Open a span (Chrome "B" event). */
    virtual void
    begin(CoreId core, std::uint32_t slot, const char *name, Cycle ts)
    {
        events.push_back({Kind::Begin, core, slot, name, ts, 0.0});
    }

    /** Close the innermost span (Chrome "E" event). */
    virtual void
    end(CoreId core, std::uint32_t slot, Cycle ts)
    {
        events.push_back({Kind::End, core, slot, "", ts, 0.0});
    }

    /** Record an instant event (Chrome "i"). */
    virtual void
    instant(CoreId core, std::uint32_t slot, const char *name, Cycle ts)
    {
        events.push_back({Kind::Instant, core, slot, name, ts, 0.0});
    }

    /** Record a complete span (Chrome "X": start + duration). */
    void
    complete(std::uint32_t pid, std::uint32_t tid,
             const std::string &name, Cycle ts, Cycle dur)
    {
        events.push_back({Kind::Complete, pid, tid, name, ts,
                          static_cast<double>(dur)});
    }

    /** Record a counter sample (Chrome "C"; one track per name). */
    void
    counter(std::uint32_t pid, const std::string &name, Cycle ts,
            double value)
    {
        events.push_back({Kind::Counter, pid, 0, name, ts, value});
    }

    /** Name a process track ("M"/process_name, e.g. "core 3"). */
    void
    nameProcess(std::uint32_t pid, const std::string &name)
    {
        events.push_back({Kind::ProcessName, pid, 0, name, 0, 0.0});
    }

    /** Name a thread track ("M"/thread_name, e.g. "warp slot 12"). */
    void
    nameThread(std::uint32_t pid, std::uint32_t tid,
               const std::string &name)
    {
        events.push_back({Kind::ThreadName, pid, tid, name, 0, 0.0});
    }

    std::size_t size() const { return events.size(); }

    /** Checkpoint hook: every recorded event. */
    template <class Ar> void ckpt(Ar &ar) { ar(events); }

    /** Serialize as Chrome trace-event JSON. */
    std::string toJson() const;

    /** Write to @p path; returns false on I/O failure. */
    bool writeJson(const std::string &path) const;

  private:
    enum class Kind : std::uint8_t
    {
        Begin,
        End,
        Instant,
        Complete,
        Counter,
        ProcessName,
        ThreadName,
    };

    struct Event
    {
        Kind kind;
        std::uint32_t pid;
        std::uint32_t tid;
        std::string name;
        Cycle ts;
        double value;

        template <class Ar>
        void
        ckpt(Ar &ar)
        {
            ar(kind, pid, tid, name, ts, value);
        }
    };

    std::vector<Event> events;
};

} // namespace getm

#endif // GETM_GPU_TIMELINE_HH
