/**
 * @file
 * Transaction-lifecycle timeline recorder.
 *
 * Records per-warp transactional spans (attempt begin -> commit/retire)
 * and instant events (aborts, retries, rollovers) and serializes them in
 * the Chrome trace-event JSON format, viewable in chrome://tracing or
 * Perfetto. Cores map to "processes" and warp slots to "threads", so a
 * loaded GPU renders as a familiar Gantt chart of transactions.
 *
 * Enable via GpuConfig::timelinePath (or `getm-sim --timeline out.json`).
 */

#ifndef GETM_GPU_TIMELINE_HH
#define GETM_GPU_TIMELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace getm {

/** Collects trace events for one run. */
class Timeline
{
  public:
    /** Open a span (Chrome "B" event). */
    void
    begin(CoreId core, std::uint32_t slot, const char *name, Cycle ts)
    {
        events.push_back({Kind::Begin, core, slot, name, ts});
    }

    /** Close the innermost span (Chrome "E" event). */
    void
    end(CoreId core, std::uint32_t slot, Cycle ts)
    {
        events.push_back({Kind::End, core, slot, "", ts});
    }

    /** Record an instant event (Chrome "i"). */
    void
    instant(CoreId core, std::uint32_t slot, const char *name, Cycle ts)
    {
        events.push_back({Kind::Instant, core, slot, name, ts});
    }

    std::size_t size() const { return events.size(); }

    /** Serialize as Chrome trace-event JSON. */
    std::string toJson() const;

    /** Write to @p path; returns false on I/O failure. */
    bool writeJson(const std::string &path) const;

  private:
    enum class Kind : std::uint8_t
    {
        Begin,
        End,
        Instant,
    };

    struct Event
    {
        Kind kind;
        CoreId core;
        std::uint32_t slot;
        std::string name;
        Cycle ts;
    };

    std::vector<Event> events;
};

} // namespace getm

#endif // GETM_GPU_TIMELINE_HH
