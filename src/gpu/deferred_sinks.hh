/**
 * @file
 * Deferring sink proxies for the parallel cycle loop.
 *
 * The tracer (ObsSink), runtime checker (CheckSink), and timeline
 * recorder are single shared objects whose *output ordering is part of
 * their contract* — trace documents and timelines are emitted in event
 * order. When SIMT cores tick on worker threads, each core gets a
 * proxy that records every call into a per-core buffer instead; the
 * serial barrier stage replays the buffers in core order (deliver-stage
 * events before tick-stage events, matching the serial loops' global
 * order), so the shared objects observe exactly the event sequence the
 * serial loops would have produced. See docs/PARALLELISM.md.
 *
 * These proxies are allocated only when the corresponding feature is
 * enabled (they wrap nullable pointers that are otherwise null), so the
 * common fast path — tracing, checking, and timeline all off — never
 * pays for the deferral.
 */

#ifndef GETM_GPU_DEFERRED_SINKS_HH
#define GETM_GPU_DEFERRED_SINKS_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/sink.hh"
#include "core/stall_buffer.hh"
#include "gpu/timeline.hh"
#include "obs/sink.hh"

namespace getm {

/**
 * Per-component event buffer with replay buckets. For a core there are
 * two buckets per simulated cycle — deliver-stage events then
 * tick-stage events; a partition has one per cycle. The owning worker
 * points @c cur at the bucket for its current stage; the serial barrier
 * replays the buckets bucket-major across components in id order — the
 * exact global order of the serial loops. A relaxed epoch of K cycles
 * (docs/PARALLELISM.md) simply sizes the buffer at K bucket groups and
 * replays them cycle-major.
 */
struct CoreEventBuffer
{
    std::vector<std::vector<std::function<void()>>> buckets;
    unsigned cur = 0;

    CoreEventBuffer() : buckets(2) {}

    /** Size for @p n replay buckets (existing events must be drained). */
    void
    resize(unsigned n)
    {
        buckets.resize(n);
    }

    void
    push(std::function<void()> fn)
    {
        buckets[cur].push_back(std::move(fn));
    }

    /** Replay and drop one bucket's events, in recording order. */
    static void
    drain(std::vector<std::function<void()>> &bucket)
    {
        for (auto &fn : bucket)
            fn();
        bucket.clear();
    }
};

/** Records every ObsSink call for deterministic serial replay. */
class DeferredObsSink : public ObsSink
{
  public:
    DeferredObsSink(CoreEventBuffer &buffer, ObsSink &target_)
        : buf(buffer), target(target_)
    {
    }

    void
    abortEvent(AbortReason reason, Addr addr, PartitionId partition,
               unsigned lanes, Cycle now) override
    {
        buf.push([this, reason, addr, partition, lanes, now] {
            target.abortEvent(reason, addr, partition, lanes, now);
        });
    }

    void
    conflictEvent(AbortReason reason, Addr addr, PartitionId partition,
                  Cycle now) override
    {
        buf.push([this, reason, addr, partition, now] {
            target.conflictEvent(reason, addr, partition, now);
        });
    }

    void
    stallEvent(AbortReason reason, Addr addr, PartitionId partition,
               unsigned depth, Cycle now) override
    {
        buf.push([this, reason, addr, partition, depth, now] {
            target.stallEvent(reason, addr, partition, depth, now);
        });
    }

    void
    stallRelease(PartitionId partition, Cycle now) override
    {
        buf.push([this, partition, now] {
            target.stallRelease(partition, now);
        });
    }

    void
    txAttemptBegin(GlobalWarpId gwid, CoreId core, std::uint32_t slot,
                   unsigned attempt, unsigned lanes, Cycle now) override
    {
        buf.push([this, gwid, core, slot, attempt, lanes, now] {
            target.txAttemptBegin(gwid, core, slot, attempt, lanes, now);
        });
    }

    void
    txPhase(GlobalWarpId gwid, TxPhase phase, Cycle now) override
    {
        buf.push([this, gwid, phase, now] {
            target.txPhase(gwid, phase, now);
        });
    }

    void
    txAccessIssue(GlobalWarpId gwid, Addr granule, bool store,
                  Cycle now) override
    {
        buf.push([this, gwid, granule, store, now] {
            target.txAccessIssue(gwid, granule, store, now);
        });
    }

    void
    txAccessDecision(GlobalWarpId gwid, Addr granule,
                     PartitionId partition, bool ok, Cycle arrival,
                     Cycle ready) override
    {
        buf.push([this, gwid, granule, partition, ok, arrival, ready] {
            target.txAccessDecision(gwid, granule, partition, ok, arrival,
                                    ready);
        });
    }

    void
    txAccessResponse(GlobalWarpId gwid, Addr granule, Cycle now) override
    {
        buf.push([this, gwid, granule, now] {
            target.txAccessResponse(gwid, granule, now);
        });
    }

    void
    txStallEnter(GlobalWarpId gwid, Addr granule, PartitionId partition,
                 Cycle now) override
    {
        buf.push([this, gwid, granule, partition, now] {
            target.txStallEnter(gwid, granule, partition, now);
        });
    }

    void
    txStallExit(GlobalWarpId gwid, Addr granule, PartitionId partition,
                Cycle enqueued, Cycle now) override
    {
        buf.push([this, gwid, granule, partition, enqueued, now] {
            target.txStallExit(gwid, granule, partition, enqueued, now);
        });
    }

    void
    txConflict(GlobalWarpId victim, GlobalWarpId aborter,
               AbortReason reason, Addr addr, PartitionId partition,
               Cycle now) override
    {
        buf.push([this, victim, aborter, reason, addr, partition, now] {
            target.txConflict(victim, aborter, reason, addr, partition,
                              now);
        });
    }

    void
    txAbort(GlobalWarpId gwid, AbortReason reason, Addr addr,
            unsigned lanes, Cycle now) override
    {
        buf.push([this, gwid, reason, addr, lanes, now] {
            target.txAbort(gwid, reason, addr, lanes, now);
        });
    }

    void
    txCommitHandoff(GlobalWarpId gwid, Cycle now) override
    {
        buf.push([this, gwid, now] {
            target.txCommitHandoff(gwid, now);
        });
    }

    void
    txValidation(GlobalWarpId gwid, PartitionId partition, bool pass,
                 Cycle start, Cycle end) override
    {
        buf.push([this, gwid, partition, pass, start, end] {
            target.txValidation(gwid, partition, pass, start, end);
        });
    }

    void
    txRetire(GlobalWarpId gwid, unsigned committedLanes, bool willRetry,
             Cycle now) override
    {
        buf.push([this, gwid, committedLanes, willRetry, now] {
            target.txRetire(gwid, committedLanes, willRetry, now);
        });
    }

  private:
    CoreEventBuffer &buf;
    ObsSink &target;
};

/** Records every CheckSink call for deterministic serial replay. */
class DeferredCheckSink : public CheckSink
{
  public:
    DeferredCheckSink(CoreEventBuffer &buffer, CheckSink &target_)
        : buf(buffer), target(target_)
    {
    }

    void
    attemptBegin(GlobalWarpId gwid, LaneMask lanes,
                 std::uint32_t first_tid) override
    {
        buf.push([this, gwid, lanes, first_tid] {
            target.attemptBegin(gwid, lanes, first_tid);
        });
    }

    void
    readObserved(GlobalWarpId gwid, LaneId lane, Addr addr,
                 std::uint32_t value) override
    {
        buf.push([this, gwid, lane, addr, value] {
            target.readObserved(gwid, lane, addr, value);
        });
    }

    void
    attemptAborted(GlobalWarpId gwid, LaneMask lanes) override
    {
        buf.push([this, gwid, lanes] {
            target.attemptAborted(gwid, lanes);
        });
    }

    void
    attemptCommitted(GlobalWarpId gwid, LaneId lane,
                     const std::vector<LogEntry> &writes) override
    {
        // The redo log is cleared right after the call site; copy it.
        buf.push([this, gwid, lane, writes_copy = writes] {
            target.attemptCommitted(gwid, lane, writes_copy);
        });
    }

    void
    writeApplied(GlobalWarpId gwid, LaneId lane, Addr addr,
                 std::uint32_t value) override
    {
        buf.push([this, gwid, lane, addr, value] {
            target.writeApplied(gwid, lane, addr, value);
        });
    }

    void
    externalWrite(Addr addr, std::uint32_t value) override
    {
        buf.push([this, addr, value] {
            target.externalWrite(addr, value);
        });
    }

  private:
    CoreEventBuffer &buf;
    CheckSink &target;
};

/**
 * Records add/remove on the GPU-wide stall-occupancy gauge for
 * deterministic serial replay. The gauge's transient peak (Fig. 15)
 * depends on the order partitions touch it within a cycle, so pooled
 * partition ticking routes updates through this proxy; the barrier
 * replays them in partition order, reproducing the serial peak exactly.
 */
struct DeferredStallTracker : StallOccupancyTracker
{
    DeferredStallTracker(CoreEventBuffer &buffer,
                         StallOccupancyTracker &target_)
        : buf(buffer), target(target_)
    {
    }

    void
    add() override
    {
        buf.push([this] { target.add(); });
    }

    void
    remove() override
    {
        buf.push([this] { target.remove(); });
    }

    CoreEventBuffer &buf;
    StallOccupancyTracker &target;
};

/** Records timeline spans/instants for deterministic serial replay. */
class DeferredTimeline : public Timeline
{
  public:
    DeferredTimeline(CoreEventBuffer &buffer, Timeline &target_)
        : buf(buffer), target(target_)
    {
    }

    // Names are copied: the cores pass static strings today, but the
    // replay happens after the caller's frame is gone.
    void
    begin(CoreId core, std::uint32_t slot, const char *name,
          Cycle ts) override
    {
        buf.push([this, core, slot, name = std::string(name), ts] {
            target.begin(core, slot, name.c_str(), ts);
        });
    }

    void
    end(CoreId core, std::uint32_t slot, Cycle ts) override
    {
        buf.push([this, core, slot, ts] { target.end(core, slot, ts); });
    }

    void
    instant(CoreId core, std::uint32_t slot, const char *name,
            Cycle ts) override
    {
        buf.push([this, core, slot, name = std::string(name), ts] {
            target.instant(core, slot, name.c_str(), ts);
        });
    }

  private:
    CoreEventBuffer &buf;
    Timeline &target;
};

} // namespace getm

#endif // GETM_GPU_DEFERRED_SINKS_HH
