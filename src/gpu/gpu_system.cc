#include "gpu/gpu_system.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <string>

#include "check/checker.hh"
#include "check/fault.hh"
#include "ckpt/checkpoint.hh"
#include "ckpt/serial.hh"
#include "common/cycle_workers.hh"
#include "common/log.hh"
#include "common/stop_flag.hh"
#include "core/getm_core_tm.hh"
#include "gpu/config_file.hh"
#include "gpu/deferred_sinks.hh"
#include "eapg/eapg.hh"
#include "warptm/wtm_core_tm.hh"
#include "warptm/wtm_partition.hh"

namespace getm {

const char *
protocolName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::FgLock: return "FGLock";
      case ProtocolKind::Getm: return "GETM";
      case ProtocolKind::WarpTmLL: return "WarpTM-LL";
      case ProtocolKind::WarpTmEL: return "WarpTM-EL";
      case ProtocolKind::Eapg: return "EAPG";
    }
    return "?";
}

GpuConfig
GpuConfig::gtx480()
{
    GpuConfig cfg;
    cfg.numCores = 15;
    cfg.numPartitions = 6;
    cfg.core.maxWarps = 48;
    return cfg;
}

GpuConfig
GpuConfig::scaled56()
{
    GpuConfig cfg;
    cfg.numCores = 56;
    cfg.numPartitions = 8;
    cfg.core.maxWarps = 48;
    cfg.llcBytesPerPartition = 512 * 1024; // 4 MB total, 8 banks
    // Paper: for WarpTM the recency filter (TCD) doubles; for GETM only
    // the precise metadata table is doubled.
    cfg.wtm.tcdEntries = 4096;
    cfg.getmPreciseEntriesTotal = 8192;
    return cfg;
}

GpuConfig
GpuConfig::testRig()
{
    GpuConfig cfg;
    cfg.numCores = 2;
    cfg.numPartitions = 2;
    cfg.core.maxWarps = 4;
    cfg.llcBytesPerPartition = 32 * 1024;
    cfg.llcLatency = 20;
    cfg.dram.accessLatency = 40;
    cfg.getmPreciseEntriesTotal = 512;
    cfg.getmBloomEntriesTotal = 128;
    return cfg;
}

namespace {

/**
 * Screen a configuration before any member construction touches it (a
 * zero partition count would already break the AddressMap). Rejections
 * are recoverable CONFIG errors, not process aborts.
 */
const GpuConfig &
validatedConfig(const GpuConfig &config)
{
    std::string error;
    if (!validateGpuConfig(config, error))
        throw SimError(SimErrorKind::Config, error);
    return config;
}

} // namespace

GpuSystem::GpuSystem(const GpuConfig &config)
    : cfg(validatedConfig(config)),
      addrMap(cfg.numPartitions, cfg.lineBytes),
      xbarUp("xbar.up", cfg.numCores, cfg.numPartitions, cfg.xbar),
      xbarDown("xbar.down", cfg.numPartitions, cfg.numCores, cfg.xbar)
{
    CoreConfig core_cfg = cfg.core;
    core_cfg.lineBytes = cfg.lineBytes;
    core_cfg.txGranule = cfg.getmGranule;
    core_cfg.seed = cfg.seed;

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        coreArray.push_back(std::make_unique<SimtCore>(
            c, core_cfg, addrMap, store, [this, c](MemMsg &&msg) {
                const PartitionId part = msg.partition;
                const unsigned bytes = msg.bytes;
                xbarUp.send(c, part, bytes, coreArray[c]->now(),
                            std::move(msg));
            }));
    }
    for (PartitionId p = 0; p < cfg.numPartitions; ++p) {
        partArray.push_back(std::make_unique<MemPartition>(
            p, cfg, addrMap, store, xbarUp, xbarDown, cfg.numCores));
    }
    if (!cfg.timelinePath.empty())
        for (auto &core : coreArray)
            core->setTimeline(&timeline);
    for (auto &core : coreArray)
        core->setObserver(&observability);
    for (auto &part : partArray)
        part->setObserver(&observability);
    if (cfg.traceTx > 0) {
        txTracer = std::make_unique<TxTracer>(cfg.traceTx);
        for (auto &core : coreArray)
            core->setTracer(txTracer.get());
        for (auto &part : partArray)
            part->setTracer(txTracer.get());
        // Passive hop observer: delivery cycles are already decided
        // when the hook runs, so the NoC model cannot be perturbed.
        xbarUp.setSendHook(
            [this](const MemMsg &msg, Cycle sent, Cycle arrived) {
                txTracer->nocHop(true, sent, arrived, msg.bytes);
            });
        xbarDown.setSendHook(
            [this](const MemMsg &msg, Cycle sent, Cycle arrived) {
                txTracer->nocHop(false, sent, arrived, msg.bytes);
            });
    }
    if (cfg.checkLevel > 0) {
        checker = std::make_unique<Checker>(
            static_cast<CheckLevel>(cfg.checkLevel));
        for (auto &core : coreArray)
            core->setChecker(checker.get());
        for (auto &part : partArray)
            part->setChecker(checker.get());
    }
    if (cfg.injectFault > 0 &&
        cfg.injectFault < static_cast<unsigned>(FaultKind::Count)) {
        // One injector per component, each with a counter stream derived
        // from the component's identity, so a component's Bernoulli
        // draws depend only on its own decision history — never on how
        // components interleave across sim worker threads. Partitions
        // take a disjoint seed offset so core c and partition c (same
        // seed ^ id otherwise) do not share a stream.
        const auto kind = static_cast<FaultKind>(cfg.injectFault);
        for (CoreId c = 0; c < cfg.numCores; ++c)
            faultInjectors.push_back(std::make_unique<FaultInjector>(
                kind, cfg.injectProb, cfg.seed ^ c));
        for (PartitionId p = 0; p < cfg.numPartitions; ++p)
            faultInjectors.push_back(std::make_unique<FaultInjector>(
                kind, cfg.injectProb, cfg.seed ^ (0x9e00ull + p)));
        for (CoreId c = 0; c < cfg.numCores; ++c)
            coreArray[c]->setFaults(faultInjectors[c].get());
        for (PartitionId p = 0; p < cfg.numPartitions; ++p)
            partArray[p]->setFaults(
                faultInjectors[cfg.numCores + p].get());
    }
    wireProtocol();
    setupTelemetry();
}

void
GpuSystem::setupTelemetry()
{
    // Name every Perfetto track up front so traces open with "core N" /
    // "warp slot K" rows instead of bare pids/tids. Counter tracks live
    // on a dedicated pseudo-process after the cores.
    const std::uint32_t telemetry_pid = cfg.numCores;
    if (!cfg.timelinePath.empty()) {
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            timeline.nameProcess(c, "core " + std::to_string(c));
            for (std::uint32_t s = 0; s < cfg.core.maxWarps; ++s)
                timeline.nameThread(c, s,
                                    "warp slot " + std::to_string(s));
        }
        timeline.nameProcess(telemetry_pid, "telemetry");
        if (txTracer) {
            // Validation-unit spans live on their own pseudo-process,
            // one thread per partition, after the telemetry tracks.
            const std::uint32_t vu_pid = cfg.numCores + 1;
            timeline.nameProcess(vu_pid, "validation units");
            for (PartitionId p = 0; p < cfg.numPartitions; ++p)
                timeline.nameThread(vu_pid, p,
                                    "partition " + std::to_string(p));
            TxTraceEmit emit;
            emit.warpSpan = [this](CoreId core, std::uint32_t slot,
                                   const std::string &name, Cycle ts,
                                   Cycle dur) {
                timeline.complete(core, slot, name, ts, dur);
            };
            emit.warpInstant = [this](CoreId core, std::uint32_t slot,
                                      const std::string &name, Cycle ts) {
                timeline.instant(core, slot, name.c_str(), ts);
            };
            emit.vuSpan = [this, vu_pid](PartitionId partition,
                                         const std::string &name,
                                         Cycle ts, Cycle dur) {
                timeline.complete(vu_pid, partition, name, ts, dur);
            };
            txTracer->setEmit(std::move(emit));
        }
    }

    if (cfg.sampleInterval == 0)
        return;
    CycleSampler &sampler = observability.cycleSampler();
    sampler.setInterval(cfg.sampleInterval);
    sampler.addProbe("active_warps", [this] {
        unsigned total = 0;
        for (const auto &core : coreArray)
            total += core->activeWarps();
        return static_cast<double>(total);
    });
    sampler.addProbe("tx_warps", [this] {
        unsigned total = 0;
        for (const auto &core : coreArray)
            total += core->activeTxWarps();
        return static_cast<double>(total);
    });
    sampler.addProbe("stall_buffer_fill", [this] {
        return static_cast<double>(observability.stallOccupancy());
    });
    sampler.addProbe("mshr_fill", [this] {
        unsigned total = 0;
        for (const auto &core : coreArray)
            total += core->mshrOccupancy();
        return static_cast<double>(total);
    });
    sampler.addProbe("xbar_inflight", [this] {
        return static_cast<double>(xbarUp.inFlight() +
                                   xbarDown.inFlight());
    });
    if (!cfg.timelinePath.empty()) {
        const std::uint32_t pid = telemetry_pid;
        sampler.setEmit(
            [this, pid](const std::string &name, Cycle ts, double value) {
                timeline.counter(pid, name, ts, value);
            });
    }
}

GpuSystem::~GpuSystem() = default;

void
GpuSystem::wireProtocol()
{
    switch (cfg.protocol) {
      case ProtocolKind::FgLock:
        break; // no TM hardware

      case ProtocolKind::Getm: {
        GetmPartitionConfig part_cfg;
        part_cfg.meta.preciseEntries =
            std::max(16u, cfg.getmPreciseEntriesTotal / cfg.numPartitions);
        part_cfg.meta.bloomEntries =
            std::max(16u, cfg.getmBloomEntriesTotal / cfg.numPartitions);
        part_cfg.meta.seed = cfg.seed ^ 0x9e7a;
        part_cfg.meta.useMaxRegisters = cfg.getmUseMaxRegisters;
        part_cfg.stall = cfg.getmStall;
        part_cfg.granule = cfg.getmGranule;
        for (auto &core : coreArray)
            core->setProtocol(std::make_unique<GetmCoreTm>(*core));
        for (auto &part : partArray) {
            auto unit = std::make_unique<GetmPartitionUnit>(
                *part, part_cfg,
                "part" + std::to_string(part->partitionId()) + ".getm");
            unit->stallBuffer().setTracker(&stallTracker);
            getmUnits.push_back(unit.get());
            part->setProtocol(std::move(unit));
        }
        break;
      }

      case ProtocolKind::WarpTmLL:
      case ProtocolKind::WarpTmEL: {
        wtmShared = std::make_shared<WtmShared>();
        const WtmMode mode = cfg.protocol == ProtocolKind::WarpTmLL
                                 ? WtmMode::LazyLazy
                                 : WtmMode::EagerLazy;
        for (auto &core : coreArray)
            core->setProtocol(
                std::make_unique<WtmCoreTm>(*core, wtmShared, mode));
        for (auto &part : partArray)
            part->setProtocol(std::make_unique<WtmPartitionUnit>(
                *part, cfg.wtm,
                "part" + std::to_string(part->partitionId()) + ".wtm"));
        break;
      }

      case ProtocolKind::Eapg: {
        wtmShared = std::make_shared<WtmShared>();
        for (auto &core : coreArray)
            core->setProtocol(std::make_unique<EapgCoreTm>(*core,
                                                           wtmShared));
        for (auto &part : partArray)
            part->setProtocol(std::make_unique<EapgPartitionUnit>(
                *part, cfg.wtm,
                "part" + std::to_string(part->partitionId()) + ".eapg"));
        break;
      }
    }
}

bool
GpuSystem::allDone() const
{
    for (const auto &core : coreArray)
        if (!core->done())
            return false;
    return true;
}

bool
GpuSystem::drained(Cycle now) const
{
    // GETM commits are fire-and-forget: after the last warp retires, its
    // write log may still be crossing the interconnect. The run only
    // ends once every message has been delivered and processed.
    if (!xbarUp.idle() || !xbarDown.idle())
        return false;
    for (const auto &part : partArray)
        if (!part->idle(now))
            return false;
    return true;
}

Cycle
GpuSystem::computeNextCycle(Cycle now) const
{
    Cycle best = ~static_cast<Cycle>(0);
    for (const auto &core : coreArray)
        best = std::min(best, core->nextEventCycle(now + 1));
    for (const auto &part : partArray)
        best = std::min(best, part->nextEventCycle(now));
    best = std::min(best, xbarUp.nextArrival());
    best = std::min(best, xbarDown.nextArrival());
    if (best == ~static_cast<Cycle>(0))
        return best;
    return std::max(best, now + 1);
}

void
GpuSystem::maybeRollover(Cycle now)
{
    // No-op under the legacy loop (every core ticked this cycle); the
    // event loop skips not-due cores, whose clocks would otherwise lag
    // the rollover's forced aborts.
    for (auto &core : coreArray)
        core->syncClock(now);

    if (!rolloverPending) {
        LogicalTs max_ts = 0;
        for (GetmPartitionUnit *unit : getmUnits)
            max_ts = std::max(max_ts, unit->maxTimestamp());
        // Timestamps embed the warp id below tsWarpIdBits; the
        // threshold is expressed in logical-clock epochs.
        if (tsClock(max_ts) < cfg.rolloverThreshold)
            return;
        // Begin rollover: freeze transactional progress and force all
        // in-flight attempts to abort and release their reservations.
        rolloverPending = true;
        for (auto &core : coreArray) {
            core->setTxFrozen(true);
            for (Warp &warp : core->allWarps()) {
                if (!warp.inTx)
                    continue;
                const int txi = warp.transactionIndex();
                if (txi >= 0 && warp.stack[txi].mask)
                    core->abortTxLanes(warp, warp.stack[txi].mask, 0,
                                       AbortReason::Rollover, invalidAddr);
            }
        }
        inform("GETM timestamp rollover initiated at cycle %llu",
               static_cast<unsigned long long>(now));
        return;
    }

    // Mid-rollover: wait for quiescence, then flush and resume.
    for (const auto &core : coreArray)
        if (!core->quiescent())
            return;
    for (GetmPartitionUnit *unit : getmUnits)
        if (unit->metadata().lockedCount() ||
            unit->stallBuffer().occupancy())
            return;

    for (GetmPartitionUnit *unit : getmUnits)
        unit->flushForRollover(now);
    for (auto &part : partArray)
        part->addPipelineStall(now, cfg.rolloverPenalty);
    for (auto &core : coreArray) {
        for (Warp &warp : core->allWarps()) {
            warp.warpts = 0;
            warp.maxObservedTs = 0;
        }
        core->setTxFrozen(false);
    }
    rolloverPending = false;
    ++rollovers;
    inform("GETM timestamp rollover completed at cycle %llu",
           static_cast<unsigned long long>(now));
}

std::uint64_t
GpuSystem::progressSample() const
{
    std::uint64_t total = 0;
    for (const auto &core : coreArray)
        total += core->instructionsRetired() + core->commitLaneCount();
    return total;
}

void
GpuSystem::checkGuards(const Kernel &kernel, Cycle now, Cycle max_cycles,
                       GuardState &guard)
{
    if (now >= max_cycles)
        throw SimError(buildDiagnostic(
            SimErrorKind::CycleLimit,
            "kernel " + kernel.name() + " exceeded max cycles (" +
                std::to_string(max_cycles) + ")",
            now, now - guard.lastProgressCycle));

    // Livelock watchdog: sampled only once the window has elapsed, so
    // a passing run pays one counter sum per cfg.watchdogCycles.
    if (cfg.watchdogCycles &&
        now - guard.lastProgressCycle >= cfg.watchdogCycles) {
        const std::uint64_t sample = progressSample();
        if (sample != guard.lastProgressValue) {
            guard.lastProgressValue = sample;
            guard.lastProgressCycle = now;
        } else {
            throw SimError(buildDiagnostic(
                SimErrorKind::Livelock,
                "no instruction retired and no transaction committed "
                "for " +
                    std::to_string(now - guard.lastProgressCycle) +
                    " cycles",
                now, now - guard.lastProgressCycle));
        }
    }

    // Wall-clock budget, checked every 256 loop iterations so the
    // clock read stays off the per-cycle path.
    if (cfg.timeoutSec > 0.0 && (++guard.iterations & 255) == 0) {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - guard.wallStart)
                .count();
        if (elapsed >= cfg.timeoutSec)
            throw SimError(buildDiagnostic(
                SimErrorKind::WallTimeout,
                "wall-clock budget of " +
                    std::to_string(cfg.timeoutSec) + " s exceeded",
                now, now - guard.lastProgressCycle));
    }
}

SimDiagnostic
GpuSystem::buildDiagnostic(SimErrorKind kind, std::string message,
                           Cycle now, Cycle since_progress)
{
    // Under the parallel loop, core-side abort attribution lives in
    // per-core shards until the end of the run; fold it in so the
    // hot-address table below is complete (absorbing clears the
    // shards, so the final end-of-run merge stays correct).
    if (activeShards)
        for (ObsShard &shard : *activeShards)
            observability.absorbShard(shard);

    SimDiagnostic diag;
    diag.kind = kind;
    diag.message = std::move(message);
    diag.cycle = now;
    diag.sinceProgressCycles = since_progress;
    for (const auto &core : coreArray) {
        diag.instructions += core->instructionsRetired();
        diag.commitLanes += core->commitLaneCount();
    }
    diag.nocInFlightUp = xbarUp.inFlight();
    diag.nocInFlightDown = xbarDown.inFlight();

    // Scheduler-state histogram and the worst consecutive-abort
    // streaks (warps at or past a quarter of the starvation ceiling).
    constexpr unsigned num_states =
        static_cast<unsigned>(WarpState::Idle) + 1;
    std::array<unsigned, num_states> state_counts{};
    const unsigned starve_floor =
        std::max(1u, cfg.core.starvationAbortCeiling / 4);
    for (auto &core : coreArray) {
        for (const Warp &warp : core->allWarps()) {
            ++state_counts[static_cast<unsigned>(warp.state)];
            if (warp.inTx &&
                warp.backoff.consecutiveAborts() >= starve_floor) {
                SimDiagnostic::StarvingWarp row;
                row.core = core->id();
                row.slot = warp.slot;
                row.gwid = warp.gwid;
                row.consecutiveAborts = warp.backoff.consecutiveAborts();
                row.state = warpStateName(warp.state);
                diag.starvingWarps.push_back(std::move(row));
            }
        }
    }
    for (unsigned s = 0; s < num_states; ++s)
        if (state_counts[s])
            diag.warpStates.emplace_back(
                warpStateName(static_cast<WarpState>(s)),
                state_counts[s]);
    std::sort(diag.starvingWarps.begin(), diag.starvingWarps.end(),
              [](const SimDiagnostic::StarvingWarp &a,
                 const SimDiagnostic::StarvingWarp &b) {
                  return a.consecutiveAborts > b.consecutiveAborts;
              });
    if (diag.starvingWarps.size() > 16)
        diag.starvingWarps.resize(16);

    for (std::size_t p = 0; p < getmUnits.size(); ++p) {
        SimDiagnostic::PartitionRow row;
        row.partition = static_cast<unsigned>(p);
        row.metaOccupancy = getmUnits[p]->metadata().occupancy();
        row.metaLocked = getmUnits[p]->metadata().lockedCount();
        row.stallOccupancy = getmUnits[p]->stallBuffer().occupancy();
        diag.partitions.push_back(row);
    }

    for (const HotAddrRow &row : observability.profiler().topN(8))
        diag.hotAddrs.push_back({row.addr, row.total});
    return diag;
}

Cycle
GpuSystem::runLegacyLoop(const Kernel &kernel, Cycle max_cycles)
{
    Cycle now = resumeCycle;
    const bool getm_rollover =
        cfg.protocol == ProtocolKind::Getm &&
        cfg.rolloverThreshold != ~static_cast<LogicalTs>(0);
    const bool el_micro = cfg.protocol == ProtocolKind::WarpTmEL;
    guard.wallStart = std::chrono::steady_clock::now();

    while (!allDone() || !drained(now)) {
        checkGuards(kernel, now, max_cycles, guard);
        checkpointTop(kernel, now);

        for (auto &part : partArray)
            part->tick(now);
        for (auto &core : coreArray) {
            const CoreId c = core->id();
            while (xbarDown.hasReady(c, now))
                core->deliver(xbarDown.popReady(c), now);
        }
        for (auto &core : coreArray)
            core->tick(now);

        // EL commit micro-phase: commits the engines parked during the
        // ticks run serially in core order, in every loop flavour, so
        // one-thread and N-thread runs share one schedule.
        if (el_micro)
            for (auto &core : coreArray)
                core->runDeferredProtocolWork(now);

        observability.cycleSampler().maybeSample(now);

        if (getm_rollover || rolloverPending)
            maybeRollover(now);

        Cycle next = computeNextCycle(now);
        // Wake at sample boundaries too, so idle-cycle skipping cannot
        // starve the telemetry series (a skipped boundary would collapse
        // several samples into one).
        if (next != ~static_cast<Cycle>(0) &&
            observability.cycleSampler().enabled())
            next = std::max<Cycle>(
                now + 1,
                std::min(next,
                         observability.cycleSampler().nextSampleCycle()));
        if (next == ~static_cast<Cycle>(0)) {
            if (allDone() && drained(now))
                break;
            if (rolloverPending) {
                now = now + 1; // draining towards quiescence
                continue;
            }
            throw SimError(buildDiagnostic(
                SimErrorKind::Deadlock,
                "no future events at cycle " + std::to_string(now),
                now, now - guard.lastProgressCycle));
        }
        now = next;
    }
    return now;
}

Cycle
GpuSystem::runEventLoop(const Kernel &kernel, Cycle max_cycles)
{
    // The legacy loop ticks every component on every visited cycle, but
    // a tick on a component whose nextEventCycle() lies in the future is
    // a no-op: component state only changes inside tick()/deliver() (or
    // under maybeRollover(), handled below). The wake caches therefore
    // stay valid between ticks, and skipping not-due components is
    // timing-equivalent to the legacy loop. Message arrivals are the one
    // external wake source; they are caught by the hasReady() due-checks
    // and the raw crossbar nextArrival() terms in the global next.
    const Cycle never = ~static_cast<Cycle>(0);
    const unsigned ncores = static_cast<unsigned>(coreArray.size());
    const unsigned nparts = static_cast<unsigned>(partArray.size());

    // Cycle 0 behaves like the legacy loop's first iteration: everything
    // is due once, then earns its cached wake. After a restore, the
    // first visited cycle plays the same role: forcing every component
    // due is harmless (ticking a not-due component is a no-op, the
    // equivalence this loop is built on), and each then earns its
    // cached wake from restored state.
    std::vector<Cycle> coreWake(ncores, resumeCycle);
    std::vector<Cycle> partWake(nparts, resumeCycle);

    Cycle now = resumeCycle;
    const bool getm_rollover =
        cfg.protocol == ProtocolKind::Getm &&
        cfg.rolloverThreshold != ~static_cast<LogicalTs>(0);
    const bool el_micro = cfg.protocol == ProtocolKind::WarpTmEL;
    guard.wallStart = std::chrono::steady_clock::now();

    while (!allDone() || !drained(now)) {
        checkGuards(kernel, now, max_cycles, guard);
        checkpointTop(kernel, now);

        for (PartitionId p = 0; p < nparts; ++p) {
            if (partWake[p] <= now || xbarUp.hasReady(p, now)) {
                partArray[p]->tick(now);
                partWake[p] = partArray[p]->nextEventCycle(now);
            }
        }
        for (CoreId c = 0; c < ncores; ++c) {
            if (!xbarDown.hasReady(c, now))
                continue;
            SimtCore &core = *coreArray[c];
            do
                core.deliver(xbarDown.popReady(c), now);
            while (xbarDown.hasReady(c, now));
            // A delivery can unblock same-cycle work; force the tick.
            if (coreWake[c] > now)
                coreWake[c] = now;
        }
        for (CoreId c = 0; c < ncores; ++c) {
            if (coreWake[c] <= now) {
                coreArray[c]->tick(now);
                coreWake[c] = coreArray[c]->nextEventCycle(now + 1);
            }
        }

        // EL commit micro-phase (see runLegacyLoop): refresh the wake of
        // any core whose deferred commit retired or restarted warps.
        if (el_micro) {
            for (CoreId c = 0; c < ncores; ++c)
                if (coreArray[c]->runDeferredProtocolWork(now))
                    coreWake[c] = coreArray[c]->nextEventCycle(now + 1);
        }

        observability.cycleSampler().maybeSample(now);

        if (getm_rollover || rolloverPending) {
            const bool was_pending = rolloverPending;
            maybeRollover(now);
            if (rolloverPending != was_pending) {
                // Rollover transitions mutate cores (freeze/unfreeze,
                // forced aborts) and partitions (flush, pipeline stall)
                // from outside their tick(); recompute every wake.
                for (CoreId c = 0; c < ncores; ++c)
                    coreWake[c] = coreArray[c]->nextEventCycle(now + 1);
                for (PartitionId p = 0; p < nparts; ++p)
                    partWake[p] = partArray[p]->nextEventCycle(now);
            }
        }

        Cycle next = never;
        for (Cycle wake : coreWake)
            next = std::min(next, wake);
        for (Cycle wake : partWake)
            next = std::min(next, wake);
        next = std::min(next, xbarUp.nextArrival());
        next = std::min(next, xbarDown.nextArrival());
        if (next != never)
            next = std::max(next, now + 1);
        // Wake at sample boundaries too, so idle-cycle skipping cannot
        // starve the telemetry series (a skipped boundary would collapse
        // several samples into one).
        if (next != never && observability.cycleSampler().enabled())
            next = std::max<Cycle>(
                now + 1,
                std::min(next,
                         observability.cycleSampler().nextSampleCycle()));
        if (next == never) {
            if (allDone() && drained(now))
                break;
            if (rolloverPending) {
                now = now + 1; // draining towards quiescence
                continue;
            }
            throw SimError(buildDiagnostic(
                SimErrorKind::Deadlock,
                "no future events at cycle " + std::to_string(now),
                now, now - guard.lastProgressCycle));
        }
        now = next;
    }
    return now;
}

namespace {

/** One xbarUp.send() recorded on a worker thread for serial replay. */
struct StagedSend
{
    PartitionId part;
    unsigned bytes;
    Cycle sentAt; ///< Sending core's clock at the original call.
    MemMsg msg;
};

/**
 * Per-core send staging with the same replay slots as CoreEventBuffer
 * (deferred_sinks.hh): for an epoch of K cycles, slot 2j holds the
 * deliver-stage sends of the epoch's cycle j and slot 2j+1 its
 * tick-stage sends (K = 1 is the classic two-bucket scheme). Replaying
 * slot-major across cores in id order reproduces the serial loops'
 * global send order exactly, and CrossbarTiming::route() timing depends
 * only on its arguments and the port-free state evolved in call order —
 * so the replayed messages get byte-identical arrival cycles, sequence
 * numbers, and stats.
 */
struct CoreSendStage
{
    std::vector<std::vector<StagedSend>> buckets;
    unsigned cur = 0;

    explicit CoreSendStage(unsigned slots = 2) : buckets(slots) {}
};

/** One partition down-crossbar injection staged for serial replay. */
struct StagedDownSend
{
    CoreId core;
    unsigned bytes;
    Cycle when; ///< The response's ready cycle (crossbar send time).
    MemMsg msg;
};

/**
 * Per-partition send staging: one slot per epoch cycle (partitions have
 * no deliver stage — their inbound pops happen inside tick()). Replayed
 * before the same cycle's core slots, in partition order — the serial
 * loops tick partitions first.
 */
struct PartSendStage
{
    std::vector<std::vector<StagedDownSend>> buckets;
    unsigned cur = 0;

    explicit PartSendStage(unsigned slots = 1) : buckets(slots) {}
};

} // namespace

unsigned
GpuSystem::effectiveSimThreads() const
{
    unsigned threads = cfg.simThreads;
    if (threads <= 1)
        return 1;
    if (threads > cfg.numCores) {
        debugLog("sim_threads=%u exceeds the %u simulated cores; clamping",
              threads, cfg.numCores);
        threads = cfg.numCores;
    }
    return threads;
}

Cycle
GpuSystem::runParallelLoop(const Kernel &kernel, Cycle max_cycles,
                           unsigned threads)
{
    // Cores — and, when there are enough of them to pay for the extra
    // barrier, partitions — tick on worker threads; the crossbar
    // handoff, commit-id assignment, telemetry, rollover, and the
    // guards stay on the calling thread. Worker-side effects on shared
    // objects are staged per component and replayed at the barrier in
    // the serial loops' global order, which is what makes any thread
    // count byte-identical to sim_threads=1 for every protocol
    // (contract: docs/PARALLELISM.md).
    const Cycle never = ~static_cast<Cycle>(0);
    const unsigned ncores = static_cast<unsigned>(coreArray.size());
    const unsigned nparts = static_cast<unsigned>(partArray.size());

    // Relaxed epoch budget: up to cfg.simEpoch cycles between barriers
    // while nothing is in flight, capped by the crossbar latency + 1 so
    // no message staged inside an epoch could have arrived inside it
    // (route() delivers no earlier than sent + latency + 1). WarpTM-EL
    // is excluded: its commit micro-phase is a serial point every cycle.
    const bool el_micro = cfg.protocol == ProtocolKind::WarpTmEL;
    const bool getm_rollover =
        cfg.protocol == ProtocolKind::Getm &&
        cfg.rolloverThreshold != ~static_cast<LogicalTs>(0);
    const unsigned epoch_max =
        el_micro ? 1
                 : std::min<unsigned>(std::max(1u, cfg.simEpoch),
                                      static_cast<unsigned>(
                                          cfg.xbar.latency) + 1);
    if (epoch_max < cfg.simEpoch)
        debugLog("sim_epoch=%u capped to %u (crossbar latency bound)",
              cfg.simEpoch, epoch_max);

    // Pooled partition ticking pays for its extra barrier only with
    // enough partitions; below the threshold partitions stay on the
    // calling thread (still staged when epochs are enabled).
    const bool pool_parts = nparts >= 4;
    const bool stage_parts = pool_parts || epoch_max > 1;
    const unsigned core_slots = 2 * epoch_max;

    std::vector<Cycle> coreWake(ncores, resumeCycle);
    std::vector<Cycle> partWake(nparts, resumeCycle);

    std::vector<CoreSendStage> sends(ncores, CoreSendStage(core_slots));
    std::vector<ObsShard> shards(ncores);
    const bool use_timeline = !cfg.timelinePath.empty();
    const bool defer_events = txTracer || checker || use_timeline;
    std::vector<CoreEventBuffer> events(defer_events ? ncores : 0);
    for (CoreEventBuffer &buf : events)
        buf.resize(core_slots);
    std::vector<std::unique_ptr<DeferredObsSink>> tracer_proxies;
    std::vector<std::unique_ptr<DeferredCheckSink>> check_proxies;
    std::vector<std::unique_ptr<DeferredTimeline>> timeline_proxies;

    for (CoreId c = 0; c < ncores; ++c) {
        coreArray[c]->setObserver(&shards[c]);
        coreArray[c]->setSendFn([this, c, &sends](MemMsg &&msg) {
            CoreSendStage &stage = sends[c];
            stage.buckets[stage.cur].push_back(StagedSend{
                msg.partition, msg.bytes, coreArray[c]->now(),
                std::move(msg)});
        });
        if (txTracer) {
            tracer_proxies.push_back(std::make_unique<DeferredObsSink>(
                events[c], *txTracer));
            coreArray[c]->setTracer(tracer_proxies.back().get());
        }
        if (checker) {
            check_proxies.push_back(std::make_unique<DeferredCheckSink>(
                events[c], *checker));
            coreArray[c]->setChecker(check_proxies.back().get());
        }
        if (use_timeline) {
            timeline_proxies.push_back(
                std::make_unique<DeferredTimeline>(events[c], timeline));
            coreArray[c]->setTimeline(timeline_proxies.back().get());
        }
    }

    // Partition staging: down-crossbar injections and every
    // shared-sink call (observability hub, tracer, checker, and the
    // GPU-wide stall gauge) are recorded per partition and replayed in
    // partition order at the barrier. The hub proxy is unconditional —
    // unlike cores, partitions report conflict/stall attribution into
    // the order-sensitive hub directly rather than into shards.
    std::vector<PartSendStage> partSends(stage_parts ? nparts : 0,
                                         PartSendStage(epoch_max));
    std::vector<CoreEventBuffer> partEvents(stage_parts ? nparts : 0);
    std::vector<std::unique_ptr<DeferredObsSink>> part_obs_proxies;
    std::vector<std::unique_ptr<DeferredObsSink>> part_tracer_proxies;
    std::vector<std::unique_ptr<DeferredCheckSink>> part_check_proxies;
    std::vector<std::unique_ptr<DeferredStallTracker>> stall_proxies;
    if (stage_parts) {
        for (PartitionId p = 0; p < nparts; ++p) {
            partEvents[p].resize(epoch_max);
            partArray[p]->setDownSendFn(
                [&partSends, p](MemMsg &&msg, Cycle when) {
                    PartSendStage &stage = partSends[p];
                    stage.buckets[stage.cur].push_back(StagedDownSend{
                        msg.core, msg.bytes, when, std::move(msg)});
                });
            part_obs_proxies.push_back(std::make_unique<DeferredObsSink>(
                partEvents[p], observability));
            partArray[p]->setObserver(part_obs_proxies.back().get());
            if (txTracer) {
                part_tracer_proxies.push_back(
                    std::make_unique<DeferredObsSink>(partEvents[p],
                                                      *txTracer));
                partArray[p]->setTracer(
                    part_tracer_proxies.back().get());
            }
            if (checker) {
                part_check_proxies.push_back(
                    std::make_unique<DeferredCheckSink>(partEvents[p],
                                                        *checker));
                partArray[p]->setChecker(
                    part_check_proxies.back().get());
            }
        }
        for (std::size_t p = 0; p < getmUnits.size(); ++p) {
            stall_proxies.push_back(
                std::make_unique<DeferredStallTracker>(partEvents[p],
                                                       stallTracker));
            getmUnits[p]->stallBuffer().setTracker(
                stall_proxies.back().get());
        }
    }

    // WarpTM/EAPG: commit ids go through the reservation scheme so the
    // live allocation in the core tick never races (wtm_common.hh).
    WtmShared *const wtm = wtmShared.get();
    if (wtm)
        wtm->beginStaging(ncores, core_slots);

    activeShards = &shards;

    // Rewire everything back to the shared objects and fold the shard
    // counters into the hub. Runs on every exit path — the staging
    // callbacks capture locals of this frame, and run()'s result
    // gathering expects the serial wiring.
    auto restore = [&] {
        for (CoreId c = 0; c < ncores; ++c) {
            coreArray[c]->setObserver(&observability);
            coreArray[c]->setSendFn([this, c](MemMsg &&msg) {
                const PartitionId part = msg.partition;
                const unsigned bytes = msg.bytes;
                xbarUp.send(c, part, bytes, coreArray[c]->now(),
                            std::move(msg));
            });
            if (txTracer)
                coreArray[c]->setTracer(txTracer.get());
            if (checker)
                coreArray[c]->setChecker(checker.get());
            if (use_timeline)
                coreArray[c]->setTimeline(&timeline);
        }
        if (stage_parts) {
            for (PartitionId p = 0; p < nparts; ++p) {
                partArray[p]->setDownSendFn(nullptr);
                partArray[p]->setObserver(&observability);
                if (txTracer)
                    partArray[p]->setTracer(txTracer.get());
                if (checker)
                    partArray[p]->setChecker(checker.get());
            }
            for (GetmPartitionUnit *unit : getmUnits)
                unit->stallBuffer().setTracker(&stallTracker);
        }
        if (wtm)
            wtm->endStaging();
        for (ObsShard &shard : shards)
            observability.absorbShard(shard);
        activeShards = nullptr;
    };

    // Commit the staged work of @p cycles_in_epoch simulated cycles in
    // the serial loops' global per-cycle order. For each cycle j:
    // partition sends then partition sink events (partition order —
    // the serial loops tick partitions first), commit-id assignment
    // for the cycle's deliver and tick stages (WtmShared, core order),
    // then core sends (sentinel ids patched) and core events, deliver
    // stage before tick stage, core order within each. Within a slot,
    // sends replay before sink events; the only shared object hearing
    // both is the tracer, whose nocHop() aggregation is commutative,
    // so the relative order is unobservable.
    auto flushSlots = [&](unsigned cycles_in_epoch) {
        for (unsigned j = 0; j < cycles_in_epoch; ++j) {
            if (stage_parts) {
                for (PartitionId p = 0; p < nparts; ++p) {
                    for (StagedDownSend &send : partSends[p].buckets[j])
                        xbarDown.send(p, send.core, send.bytes,
                                      send.when, std::move(send.msg));
                    partSends[p].buckets[j].clear();
                }
                for (PartitionId p = 0; p < nparts; ++p)
                    CoreEventBuffer::drain(partEvents[p].buckets[j]);
            }
            if (wtm) {
                wtm->assignSlot(2 * j);
                wtm->assignSlot(2 * j + 1);
            }
            for (unsigned stage = 0; stage < 2; ++stage) {
                const unsigned slot = 2 * j + stage;
                for (CoreId c = 0; c < ncores; ++c) {
                    for (StagedSend &send : sends[c].buckets[slot]) {
                        if (wtm)
                            send.msg.txId =
                                wtm->patchTxId(c, send.msg.txId);
                        xbarUp.send(c, send.part, send.bytes,
                                    send.sentAt, std::move(send.msg));
                    }
                    sends[c].buckets[slot].clear();
                }
                if (defer_events)
                    for (CoreId c = 0; c < ncores; ++c)
                        CoreEventBuffer::drain(events[c].buckets[slot]);
            }
        }
    };

    CycleWorkers pool(threads);

    Cycle now = resumeCycle;
    guard.wallStart = std::chrono::steady_clock::now();

    try {
        while (!allDone() || !drained(now)) {
            checkGuards(kernel, now, max_cycles, guard);
            // Iteration top is a barrier: all staged work of previous
            // cycles is flushed and the WtmShared stages are dormant,
            // so the machine is snapshot-consistent here.
            checkpointTop(kernel, now);
            if (wtm)
                wtm->resetEpoch();

            // Relaxed barrier: with both crossbars empty and no
            // rollover due, nothing any component does before cycle
            // now + epoch_max can reach another component (crossbar
            // latency bound, see epoch_max above), so workers may run
            // several cycles between syncs. Clamps keep the watchdog
            // and the telemetry sampler observing the exact cycles
            // they would have serially.
            Cycle tend = now + 1;
            if (epoch_max > 1 && !getm_rollover && !rolloverPending &&
                xbarUp.idle() && xbarDown.idle()) {
                tend = std::min(now + epoch_max, max_cycles);
                if (cfg.watchdogCycles)
                    tend = std::min(tend, guard.lastProgressCycle +
                                              cfg.watchdogCycles);
                if (observability.cycleSampler().enabled())
                    tend = std::min(
                        tend,
                        observability.cycleSampler().nextSampleCycle());
                tend = std::max(tend, now + 1);
            }
            const Cycle t0 = now;

            if (tend == t0 + 1) {
                // Lockstep cycle. Partition phase first: the serial
                // loops tick partitions before cores, and a partition's
                // store commit must be visible to same-cycle core
                // loads, so the phases need a barrier between them.
                if (pool_parts) {
                    pool.run([&, t0](unsigned worker) {
                        for (PartitionId p = worker; p < nparts;
                             p += threads) {
                            partSends[p].cur = 0;
                            partEvents[p].cur = 0;
                            if (partWake[p] <= t0 ||
                                xbarUp.hasReady(p, t0)) {
                                partArray[p]->tick(t0);
                                partWake[p] =
                                    partArray[p]->nextEventCycle(t0);
                            }
                        }
                    });
                } else {
                    for (PartitionId p = 0; p < nparts; ++p) {
                        if (stage_parts) {
                            partSends[p].cur = 0;
                            partEvents[p].cur = 0;
                        }
                        if (partWake[p] <= now ||
                            xbarUp.hasReady(p, now)) {
                            partArray[p]->tick(now);
                            partWake[p] =
                                partArray[p]->nextEventCycle(now);
                        }
                    }
                }

                // Core phase: worker w owns cores c with
                // c % threads == w — deliveries then the tick,
                // per-core work identical to the event loop. Each
                // core's downward inbox has a single owner this phase
                // (nothing sends down while cores run), and all upward
                // traffic is staged.
                pool.run([&, t0](unsigned worker) {
                    for (CoreId c = worker; c < ncores; c += threads) {
                        SimtCore &core = *coreArray[c];
                        sends[c].cur = 0;
                        if (defer_events)
                            events[c].cur = 0;
                        if (wtm)
                            wtm->stages[c].cur = 0;
                        if (xbarDown.hasReady(c, t0)) {
                            do
                                core.deliver(xbarDown.popReady(c), t0);
                            while (xbarDown.hasReady(c, t0));
                            // A delivery can unblock same-cycle work.
                            if (coreWake[c] > t0)
                                coreWake[c] = t0;
                        }
                        sends[c].cur = 1;
                        if (defer_events)
                            events[c].cur = 1;
                        if (wtm)
                            wtm->stages[c].cur = 1;
                        if (coreWake[c] <= t0) {
                            core.tick(t0);
                            coreWake[c] = core.nextEventCycle(t0 + 1);
                        }
                    }
                });

                flushSlots(1);

                // WarpTM-EL commit micro-phase: commits apply their
                // write log core-side, so they run serially in core id
                // order after the barrier — exactly where the serial
                // loops run them. Their sends were staged into the
                // tick bucket; flush again if any commit ran.
                if (el_micro) {
                    bool ran = false;
                    for (CoreId c = 0; c < ncores; ++c) {
                        if (coreArray[c]->runDeferredProtocolWork(now)) {
                            coreWake[c] =
                                coreArray[c]->nextEventCycle(now + 1);
                            ran = true;
                        }
                    }
                    if (ran)
                        flushSlots(1);
                }
            } else {
                // Epoch of tend - t0 quiescent cycles: one fused
                // pool.run, no intermediate barrier. Partitions can
                // only drain their own out-queues (the up crossbar is
                // idle, so nothing pops, and protocol state only
                // mutates on pops); cores see no deliveries (the down
                // crossbar is idle and down-traffic is staged), so the
                // phases touch disjoint state and every cross-cycle
                // dependency is within one component.
                pool.run([&, t0, tend](unsigned worker) {
                    for (PartitionId p = worker; p < nparts;
                         p += threads) {
                        MemPartition &part = *partArray[p];
                        for (Cycle t = std::max(t0, partWake[p]);
                             t < tend;
                             t = std::max(t + 1, partWake[p])) {
                            const unsigned j =
                                static_cast<unsigned>(t - t0);
                            partSends[p].cur = j;
                            partEvents[p].cur = j;
                            part.tick(t);
                            partWake[p] = part.nextEventCycle(t);
                        }
                    }
                    for (CoreId c = worker; c < ncores; c += threads) {
                        SimtCore &core = *coreArray[c];
                        for (Cycle t = std::max(t0, coreWake[c]);
                             t < tend;
                             t = std::max(t + 1, coreWake[c])) {
                            const unsigned slot =
                                2 * static_cast<unsigned>(t - t0) + 1;
                            sends[c].cur = slot;
                            if (defer_events)
                                events[c].cur = slot;
                            if (wtm)
                                wtm->stages[c].cur = slot;
                            core.tick(t);
                            coreWake[c] = core.nextEventCycle(t + 1);
                        }
                    }
                });

                flushSlots(static_cast<unsigned>(tend - t0));
                now = tend - 1;
            }

            observability.cycleSampler().maybeSample(now);

            if (getm_rollover || rolloverPending) {
                const bool was_pending = rolloverPending;
                maybeRollover(now);
                // Rollover transitions abort warps from outside their
                // tick(); the staging callbacks are still installed, so
                // commit whatever they recorded (maybeRollover itself
                // walks cores serially in id order, matching the replay
                // order).
                flushSlots(1);
                if (rolloverPending != was_pending) {
                    for (CoreId c = 0; c < ncores; ++c)
                        coreWake[c] =
                            coreArray[c]->nextEventCycle(now + 1);
                    for (PartitionId p = 0; p < nparts; ++p)
                        partWake[p] = partArray[p]->nextEventCycle(now);
                }
            }

            Cycle next = never;
            for (Cycle wake : coreWake)
                next = std::min(next, wake);
            for (Cycle wake : partWake)
                next = std::min(next, wake);
            next = std::min(next, xbarUp.nextArrival());
            next = std::min(next, xbarDown.nextArrival());
            if (next != never)
                next = std::max(next, now + 1);
            // Wake at sample boundaries too, so idle-cycle skipping
            // cannot starve the telemetry series.
            if (next != never &&
                observability.cycleSampler().enabled())
                next = std::max<Cycle>(
                    now + 1,
                    std::min(
                        next,
                        observability.cycleSampler().nextSampleCycle()));
            if (next == never) {
                if (allDone() && drained(now))
                    break;
                if (rolloverPending) {
                    now = now + 1; // draining towards quiescence
                    continue;
                }
                throw SimError(buildDiagnostic(
                    SimErrorKind::Deadlock,
                    "no future events at cycle " + std::to_string(now),
                    now, now - guard.lastProgressCycle));
            }
            now = next;
        }
    } catch (...) {
        restore();
        throw;
    }
    restore();
    return now;
}


std::uint64_t
GpuSystem::checkpointHash(const Kernel &kernel,
                          std::uint64_t num_threads) const
{
    constexpr std::uint64_t basis = 0xcbf29ce484222325ull;
    constexpr std::uint64_t prime = 0x100000001b3ull;
    std::uint64_t h = basis;
    auto mix = [&h, prime](const std::string &text) {
        for (unsigned char byte : text) {
            h ^= byte;
            h *= prime;
        }
        h ^= 0x1f; // field separator
        h *= prime;
    };
    for (const auto &[key, value] : configProvenance(cfg)) {
        mix(key);
        mix(value);
    }
    // State-shaping knobs deliberately excluded from sweep provenance
    // but baked into the snapshot payload or the run's dynamics.
    mix("check=" + std::to_string(cfg.checkLevel));
    mix("trace=" + std::to_string(cfg.traceTx));
    mix("fault=" + std::to_string(cfg.injectFault));
    mix("prob=" + std::to_string(cfg.injectProb));
    mix("sample=" + std::to_string(cfg.sampleInterval));
    mix(cfg.timelinePath.empty() ? "timeline=0" : "timeline=1");
    mix("kernel=" + kernel.name());
    mix("threads=" + std::to_string(num_threads));
    return h;
}

template <class Ar>
void
GpuSystem::ckptMachine(Ar &ar)
{
    // One fixed component order, shared by save and load. Optional
    // components (tracer, checker, injectors) are config-determined,
    // and the config hash guarantees both sides agree on the config.
    ar(store, xbarUp, xbarDown);
    for (auto &core : coreArray)
        ar(*core);
    for (auto &part : partArray) {
        ar(*part);
        if (TmPartitionProtocol *unit = part->protocol()) {
            if constexpr (Ar::saving)
                unit->ckptSave(ar);
            else
                unit->ckptLoad(ar);
        }
    }
    ar(stallTracker.current, stallTracker.peak);
    if (wtmShared)
        ar(wtmShared->nextCommitId);
    ar(rolloverPending, rollovers, warpCursor, timeline, observability);
    if (txTracer)
        ar(*txTracer);
    if (checker)
        ar(*checker);
    for (auto &injector : faultInjectors)
        ar(*injector);
    ar(guard.lastProgressValue, guard.lastProgressCycle,
       guard.iterations);
}

void
GpuSystem::saveCheckpoint(Cycle now)
{
    // Fold worker-local observability shards into the hub first: shard
    // sums are commutative, so absorbing early cannot change the
    // end-of-run report, and it makes the snapshot shard-free — a
    // restored run starts with fresh, empty shards, exactly matching
    // the just-absorbed state of the saving run.
    if (activeShards)
        for (ObsShard &shard : *activeShards)
            observability.absorbShard(shard);

    ckpt::Writer ar;
    ckptMachine(ar);
    ckpt::Snapshot snap;
    snap.configHash = ckptHash;
    snap.cycle = now;
    snap.payload = ar.take();
    const std::string dir =
        cfg.ckptDir.empty() ? std::string(".") : cfg.ckptDir;
    const std::string path = ckpt::writeSnapshot(dir, snap);
    inform("checkpoint written to %s (cycle %llu)", path.c_str(),
           static_cast<unsigned long long>(now));
}

void
GpuSystem::restoreFromSnapshot()
{
    const std::string path = ckpt::resolveRestorePath(cfg.restorePath);
    const ckpt::Snapshot snap = ckpt::readSnapshot(path, ckptHash);
    ckpt::Reader ar(snap.payload.data(), snap.payload.size());
    ckptMachine(ar);
    if (ar.remaining() != 0)
        throw SimError(SimErrorKind::Checkpoint,
                       "checkpoint payload corrupt (" +
                           std::to_string(ar.remaining()) +
                           " trailing bytes)");
    resumeCycle = snap.cycle;
    if (cfg.ckptEvery)
        nextCkptDue = CycleSampler::alignNext(snap.cycle, cfg.ckptEvery);
    inform("restored checkpoint %s (cycle %llu)", path.c_str(),
           static_cast<unsigned long long>(snap.cycle));
}

void
GpuSystem::checkpointTop(const Kernel &kernel, Cycle now)
{
    // Crash-test hook first: a real SIGKILL does not wait for
    // checkpoint work either. No cleanup, no flush, 128+9.
    if (cfg.ckptKillAt && now >= cfg.ckptKillAt)
        std::_Exit(137);

    if (stopRequested()) {
        const int sig = stopSignal();
        if (cfg.ckptEvery || !cfg.ckptDir.empty())
            saveCheckpoint(now);
        throw SimError(buildDiagnostic(
            SimErrorKind::Interrupt,
            "kernel " + kernel.name() + " stopped by signal " +
                std::to_string(sig) + " at cycle " + std::to_string(now),
            now, now - guard.lastProgressCycle));
    }

    if (cfg.ckptEvery && now >= nextCkptDue) {
        saveCheckpoint(now);
        nextCkptDue = CycleSampler::alignNext(now, cfg.ckptEvery);
    }
}

RunResult
GpuSystem::run(const Kernel &kernel, std::uint64_t num_threads,
               Cycle max_cycles)
{
    const std::uint64_t total_warps = (num_threads + warpSize - 1) /
                                      warpSize;
    warpCursor = 0;
    auto work = [this, total_warps,
                 num_threads](WarpAssignment &assign) -> bool {
        if (warpCursor >= total_warps)
            return false;
        const std::uint64_t w = warpCursor++;
        assign.firstTid = static_cast<std::uint32_t>(w * warpSize);
        const std::uint64_t remaining = num_threads - w * warpSize;
        assign.validLanes =
            remaining >= warpSize
                ? fullMask
                : ((1u << remaining) - 1);
        assign.gwid = 0; // assigned by the core from its slot
        return true;
    };

    for (auto &core : coreArray)
        core->startKernel(&kernel, num_threads, work, 0);

    // Durability setup. The restore overwrites everything startKernel
    // just initialized (including warpCursor), which is exactly the
    // point: the kernel pointer and work source are live-wired, the
    // machine state is the snapshot's.
    ckptHash = checkpointHash(kernel, num_threads);
    guard = GuardState{};
    resumeCycle = 0;
    nextCkptDue = cfg.ckptEvery
                      ? CycleSampler::alignNext(0, cfg.ckptEvery)
                      : 0;
    if (!cfg.restorePath.empty())
        restoreFromSnapshot();

    const bool legacy = cfg.legacyLoop ||
                        std::getenv("GETM_LEGACY_LOOP") != nullptr;
    const unsigned sim_threads = legacy ? 1 : effectiveSimThreads();
    Cycle now = 0;
    try {
        now = legacy ? runLegacyLoop(kernel, max_cycles)
              : sim_threads > 1
                  ? runParallelLoop(kernel, max_cycles, sim_threads)
                  : runEventLoop(kernel, max_cycles);
    } catch (const SimError &err) {
        // Final snapshot beside the diagnostic: every SimError leaves
        // the machine at a cycle boundary (the guards and the
        // iteration-top hooks throw before any tick, the deadlock
        // check after a cycle completed), so the snapshot is
        // resumable. INTERRUPT already wrote one in checkpointTop.
        if ((cfg.ckptEvery || !cfg.ckptDir.empty()) &&
            err.kind() != SimErrorKind::Interrupt &&
            err.kind() != SimErrorKind::Checkpoint) {
            try {
                saveCheckpoint(err.diagnostic().cycle);
            } catch (const SimError &ckpt_err) {
                warn("final checkpoint failed: %s", ckpt_err.what());
            }
        }
        throw;
    }

    // Gather results.
    RunResult result;
    result.cycles = now;
    result.rollovers = rollovers;
    // Report the logical-clock component: raw timestamps embed the
    // warp id in their low tsWarpIdBits for uniqueness.
    for (GetmPartitionUnit *unit : getmUnits)
        result.maxLogicalTs =
            std::max(result.maxLogicalTs, tsClock(unit->maxTimestamp()));
    for (auto &core : coreArray) {
        core->foldWarpStats();
        result.stats.merge(core->stats());
    }
    for (auto &part : partArray) {
        result.stats.merge(part->stats());
        result.stats.merge(part->llc().stats());
    }
    result.stats.merge(xbarUp.stats());
    result.stats.merge(xbarDown.stats());
    for (GetmPartitionUnit *unit : getmUnits) {
        result.stats.merge(unit->metadata().stats());
        result.stats.merge(unit->stallBuffer().stats());
    }

    result.commits = result.stats.counter("commits");
    result.aborts = result.stats.counter("aborts");
    result.txExecCycles = result.stats.counter("tx_exec_cycles");
    result.txWaitCycles = result.stats.counter("tx_wait_cycles");
    result.xbarFlits = xbarUp.totalFlits() + xbarDown.totalFlits();
    result.metaAccessCycles = result.stats.mean("access_cycles");
    result.stallPeakOccupancy = stallTracker.peak;
    result.stallWaitersPerAddr = result.stats.mean("waiters_per_addr");
    // Record the final partial telemetry window before snapshotting.
    observability.cycleSampler().finalize(now);
    result.obs = observability.report(cfg.hotAddrTopN);
    if (txTracer)
        result.obs.txTrace = txTracer->report(now);
    if (checker) {
        checker->finish(store);
        result.check = checker->report();
    }
    if (!cfg.timelinePath.empty()) {
        if (timeline.writeJson(cfg.timelinePath))
            inform("wrote transaction timeline to %s",
                   cfg.timelinePath.c_str());
        else
            warn("failed to write timeline to %s",
                 cfg.timelinePath.c_str());
    }
    return result;
}

} // namespace getm
