#include "gpu/gpu_system.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <string>

#include "check/checker.hh"
#include "check/fault.hh"
#include "common/cycle_workers.hh"
#include "common/log.hh"
#include "core/getm_core_tm.hh"
#include "gpu/config_file.hh"
#include "gpu/deferred_sinks.hh"
#include "eapg/eapg.hh"
#include "warptm/wtm_core_tm.hh"
#include "warptm/wtm_partition.hh"

namespace getm {

const char *
protocolName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::FgLock: return "FGLock";
      case ProtocolKind::Getm: return "GETM";
      case ProtocolKind::WarpTmLL: return "WarpTM-LL";
      case ProtocolKind::WarpTmEL: return "WarpTM-EL";
      case ProtocolKind::Eapg: return "EAPG";
    }
    return "?";
}

GpuConfig
GpuConfig::gtx480()
{
    GpuConfig cfg;
    cfg.numCores = 15;
    cfg.numPartitions = 6;
    cfg.core.maxWarps = 48;
    return cfg;
}

GpuConfig
GpuConfig::scaled56()
{
    GpuConfig cfg;
    cfg.numCores = 56;
    cfg.numPartitions = 8;
    cfg.core.maxWarps = 48;
    cfg.llcBytesPerPartition = 512 * 1024; // 4 MB total, 8 banks
    // Paper: for WarpTM the recency filter (TCD) doubles; for GETM only
    // the precise metadata table is doubled.
    cfg.wtm.tcdEntries = 4096;
    cfg.getmPreciseEntriesTotal = 8192;
    return cfg;
}

GpuConfig
GpuConfig::testRig()
{
    GpuConfig cfg;
    cfg.numCores = 2;
    cfg.numPartitions = 2;
    cfg.core.maxWarps = 4;
    cfg.llcBytesPerPartition = 32 * 1024;
    cfg.llcLatency = 20;
    cfg.dram.accessLatency = 40;
    cfg.getmPreciseEntriesTotal = 512;
    cfg.getmBloomEntriesTotal = 128;
    return cfg;
}

namespace {

/**
 * Screen a configuration before any member construction touches it (a
 * zero partition count would already break the AddressMap). Rejections
 * are recoverable CONFIG errors, not process aborts.
 */
const GpuConfig &
validatedConfig(const GpuConfig &config)
{
    std::string error;
    if (!validateGpuConfig(config, error))
        throw SimError(SimErrorKind::Config, error);
    return config;
}

} // namespace

GpuSystem::GpuSystem(const GpuConfig &config)
    : cfg(validatedConfig(config)),
      addrMap(cfg.numPartitions, cfg.lineBytes),
      xbarUp("xbar.up", cfg.numCores, cfg.numPartitions, cfg.xbar),
      xbarDown("xbar.down", cfg.numPartitions, cfg.numCores, cfg.xbar)
{
    CoreConfig core_cfg = cfg.core;
    core_cfg.lineBytes = cfg.lineBytes;
    core_cfg.txGranule = cfg.getmGranule;
    core_cfg.seed = cfg.seed;

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        coreArray.push_back(std::make_unique<SimtCore>(
            c, core_cfg, addrMap, store, [this, c](MemMsg &&msg) {
                const PartitionId part = msg.partition;
                const unsigned bytes = msg.bytes;
                xbarUp.send(c, part, bytes, coreArray[c]->now(),
                            std::move(msg));
            }));
    }
    for (PartitionId p = 0; p < cfg.numPartitions; ++p) {
        partArray.push_back(std::make_unique<MemPartition>(
            p, cfg, addrMap, store, xbarUp, xbarDown, cfg.numCores));
    }
    if (!cfg.timelinePath.empty())
        for (auto &core : coreArray)
            core->setTimeline(&timeline);
    for (auto &core : coreArray)
        core->setObserver(&observability);
    for (auto &part : partArray)
        part->setObserver(&observability);
    if (cfg.traceTx > 0) {
        txTracer = std::make_unique<TxTracer>(cfg.traceTx);
        for (auto &core : coreArray)
            core->setTracer(txTracer.get());
        for (auto &part : partArray)
            part->setTracer(txTracer.get());
        // Passive hop observer: delivery cycles are already decided
        // when the hook runs, so the NoC model cannot be perturbed.
        xbarUp.setSendHook(
            [this](const MemMsg &msg, Cycle sent, Cycle arrived) {
                txTracer->nocHop(true, sent, arrived, msg.bytes);
            });
        xbarDown.setSendHook(
            [this](const MemMsg &msg, Cycle sent, Cycle arrived) {
                txTracer->nocHop(false, sent, arrived, msg.bytes);
            });
    }
    if (cfg.checkLevel > 0) {
        checker = std::make_unique<Checker>(
            static_cast<CheckLevel>(cfg.checkLevel));
        for (auto &core : coreArray)
            core->setChecker(checker.get());
        for (auto &part : partArray)
            part->setChecker(checker.get());
    }
    if (cfg.injectFault > 0 &&
        cfg.injectFault < static_cast<unsigned>(FaultKind::Count)) {
        faultInjector = std::make_unique<FaultInjector>(
            static_cast<FaultKind>(cfg.injectFault), cfg.injectProb,
            cfg.seed);
        for (auto &core : coreArray)
            core->setFaults(faultInjector.get());
        for (auto &part : partArray)
            part->setFaults(faultInjector.get());
    }
    wireProtocol();
    setupTelemetry();
}

void
GpuSystem::setupTelemetry()
{
    // Name every Perfetto track up front so traces open with "core N" /
    // "warp slot K" rows instead of bare pids/tids. Counter tracks live
    // on a dedicated pseudo-process after the cores.
    const std::uint32_t telemetry_pid = cfg.numCores;
    if (!cfg.timelinePath.empty()) {
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            timeline.nameProcess(c, "core " + std::to_string(c));
            for (std::uint32_t s = 0; s < cfg.core.maxWarps; ++s)
                timeline.nameThread(c, s,
                                    "warp slot " + std::to_string(s));
        }
        timeline.nameProcess(telemetry_pid, "telemetry");
        if (txTracer) {
            // Validation-unit spans live on their own pseudo-process,
            // one thread per partition, after the telemetry tracks.
            const std::uint32_t vu_pid = cfg.numCores + 1;
            timeline.nameProcess(vu_pid, "validation units");
            for (PartitionId p = 0; p < cfg.numPartitions; ++p)
                timeline.nameThread(vu_pid, p,
                                    "partition " + std::to_string(p));
            TxTraceEmit emit;
            emit.warpSpan = [this](CoreId core, std::uint32_t slot,
                                   const std::string &name, Cycle ts,
                                   Cycle dur) {
                timeline.complete(core, slot, name, ts, dur);
            };
            emit.warpInstant = [this](CoreId core, std::uint32_t slot,
                                      const std::string &name, Cycle ts) {
                timeline.instant(core, slot, name.c_str(), ts);
            };
            emit.vuSpan = [this, vu_pid](PartitionId partition,
                                         const std::string &name,
                                         Cycle ts, Cycle dur) {
                timeline.complete(vu_pid, partition, name, ts, dur);
            };
            txTracer->setEmit(std::move(emit));
        }
    }

    if (cfg.sampleInterval == 0)
        return;
    CycleSampler &sampler = observability.cycleSampler();
    sampler.setInterval(cfg.sampleInterval);
    sampler.addProbe("active_warps", [this] {
        unsigned total = 0;
        for (const auto &core : coreArray)
            total += core->activeWarps();
        return static_cast<double>(total);
    });
    sampler.addProbe("tx_warps", [this] {
        unsigned total = 0;
        for (const auto &core : coreArray)
            total += core->activeTxWarps();
        return static_cast<double>(total);
    });
    sampler.addProbe("stall_buffer_fill", [this] {
        return static_cast<double>(observability.stallOccupancy());
    });
    sampler.addProbe("mshr_fill", [this] {
        unsigned total = 0;
        for (const auto &core : coreArray)
            total += core->mshrOccupancy();
        return static_cast<double>(total);
    });
    sampler.addProbe("xbar_inflight", [this] {
        return static_cast<double>(xbarUp.inFlight() +
                                   xbarDown.inFlight());
    });
    if (!cfg.timelinePath.empty()) {
        const std::uint32_t pid = telemetry_pid;
        sampler.setEmit(
            [this, pid](const std::string &name, Cycle ts, double value) {
                timeline.counter(pid, name, ts, value);
            });
    }
}

GpuSystem::~GpuSystem() = default;

void
GpuSystem::wireProtocol()
{
    switch (cfg.protocol) {
      case ProtocolKind::FgLock:
        break; // no TM hardware

      case ProtocolKind::Getm: {
        GetmPartitionConfig part_cfg;
        part_cfg.meta.preciseEntries =
            std::max(16u, cfg.getmPreciseEntriesTotal / cfg.numPartitions);
        part_cfg.meta.bloomEntries =
            std::max(16u, cfg.getmBloomEntriesTotal / cfg.numPartitions);
        part_cfg.meta.seed = cfg.seed ^ 0x9e7a;
        part_cfg.meta.useMaxRegisters = cfg.getmUseMaxRegisters;
        part_cfg.stall = cfg.getmStall;
        part_cfg.granule = cfg.getmGranule;
        for (auto &core : coreArray)
            core->setProtocol(std::make_unique<GetmCoreTm>(*core));
        for (auto &part : partArray) {
            auto unit = std::make_unique<GetmPartitionUnit>(
                *part, part_cfg,
                "part" + std::to_string(part->partitionId()) + ".getm");
            unit->stallBuffer().setTracker(&stallTracker);
            getmUnits.push_back(unit.get());
            part->setProtocol(std::move(unit));
        }
        break;
      }

      case ProtocolKind::WarpTmLL:
      case ProtocolKind::WarpTmEL: {
        wtmShared = std::make_shared<WtmShared>();
        const WtmMode mode = cfg.protocol == ProtocolKind::WarpTmLL
                                 ? WtmMode::LazyLazy
                                 : WtmMode::EagerLazy;
        for (auto &core : coreArray)
            core->setProtocol(
                std::make_unique<WtmCoreTm>(*core, wtmShared, mode));
        for (auto &part : partArray)
            part->setProtocol(std::make_unique<WtmPartitionUnit>(
                *part, cfg.wtm,
                "part" + std::to_string(part->partitionId()) + ".wtm"));
        break;
      }

      case ProtocolKind::Eapg: {
        wtmShared = std::make_shared<WtmShared>();
        for (auto &core : coreArray)
            core->setProtocol(std::make_unique<EapgCoreTm>(*core,
                                                           wtmShared));
        for (auto &part : partArray)
            part->setProtocol(std::make_unique<EapgPartitionUnit>(
                *part, cfg.wtm,
                "part" + std::to_string(part->partitionId()) + ".eapg"));
        break;
      }
    }
}

bool
GpuSystem::allDone() const
{
    for (const auto &core : coreArray)
        if (!core->done())
            return false;
    return true;
}

bool
GpuSystem::drained(Cycle now) const
{
    // GETM commits are fire-and-forget: after the last warp retires, its
    // write log may still be crossing the interconnect. The run only
    // ends once every message has been delivered and processed.
    if (!xbarUp.idle() || !xbarDown.idle())
        return false;
    for (const auto &part : partArray)
        if (!part->idle(now))
            return false;
    return true;
}

Cycle
GpuSystem::computeNextCycle(Cycle now) const
{
    Cycle best = ~static_cast<Cycle>(0);
    for (const auto &core : coreArray)
        best = std::min(best, core->nextEventCycle(now + 1));
    for (const auto &part : partArray)
        best = std::min(best, part->nextEventCycle(now));
    best = std::min(best, xbarUp.nextArrival());
    best = std::min(best, xbarDown.nextArrival());
    if (best == ~static_cast<Cycle>(0))
        return best;
    return std::max(best, now + 1);
}

void
GpuSystem::maybeRollover(Cycle now)
{
    // No-op under the legacy loop (every core ticked this cycle); the
    // event loop skips not-due cores, whose clocks would otherwise lag
    // the rollover's forced aborts.
    for (auto &core : coreArray)
        core->syncClock(now);

    if (!rolloverPending) {
        LogicalTs max_ts = 0;
        for (GetmPartitionUnit *unit : getmUnits)
            max_ts = std::max(max_ts, unit->maxTimestamp());
        if (max_ts < cfg.rolloverThreshold)
            return;
        // Begin rollover: freeze transactional progress and force all
        // in-flight attempts to abort and release their reservations.
        rolloverPending = true;
        for (auto &core : coreArray) {
            core->setTxFrozen(true);
            for (Warp &warp : core->allWarps()) {
                if (!warp.inTx)
                    continue;
                const int txi = warp.transactionIndex();
                if (txi >= 0 && warp.stack[txi].mask)
                    core->abortTxLanes(warp, warp.stack[txi].mask, 0,
                                       AbortReason::Rollover, invalidAddr);
            }
        }
        inform("GETM timestamp rollover initiated at cycle %llu",
               static_cast<unsigned long long>(now));
        return;
    }

    // Mid-rollover: wait for quiescence, then flush and resume.
    for (const auto &core : coreArray)
        if (!core->quiescent())
            return;
    for (GetmPartitionUnit *unit : getmUnits)
        if (unit->metadata().lockedCount() ||
            unit->stallBuffer().occupancy())
            return;

    for (GetmPartitionUnit *unit : getmUnits)
        unit->flushForRollover(now);
    for (auto &part : partArray)
        part->addPipelineStall(now, cfg.rolloverPenalty);
    for (auto &core : coreArray) {
        for (Warp &warp : core->allWarps()) {
            warp.warpts = 0;
            warp.maxObservedTs = 0;
        }
        core->setTxFrozen(false);
    }
    rolloverPending = false;
    ++rollovers;
    inform("GETM timestamp rollover completed at cycle %llu",
           static_cast<unsigned long long>(now));
}

std::uint64_t
GpuSystem::progressSample() const
{
    std::uint64_t total = 0;
    for (const auto &core : coreArray)
        total += core->instructionsRetired() + core->commitLaneCount();
    return total;
}

void
GpuSystem::checkGuards(const Kernel &kernel, Cycle now, Cycle max_cycles,
                       GuardState &guard)
{
    if (now >= max_cycles)
        throw SimError(buildDiagnostic(
            SimErrorKind::CycleLimit,
            "kernel " + kernel.name() + " exceeded max cycles (" +
                std::to_string(max_cycles) + ")",
            now, now - guard.lastProgressCycle));

    // Livelock watchdog: sampled only once the window has elapsed, so
    // a passing run pays one counter sum per cfg.watchdogCycles.
    if (cfg.watchdogCycles &&
        now - guard.lastProgressCycle >= cfg.watchdogCycles) {
        const std::uint64_t sample = progressSample();
        if (sample != guard.lastProgressValue) {
            guard.lastProgressValue = sample;
            guard.lastProgressCycle = now;
        } else {
            throw SimError(buildDiagnostic(
                SimErrorKind::Livelock,
                "no instruction retired and no transaction committed "
                "for " +
                    std::to_string(now - guard.lastProgressCycle) +
                    " cycles",
                now, now - guard.lastProgressCycle));
        }
    }

    // Wall-clock budget, checked every 256 loop iterations so the
    // clock read stays off the per-cycle path.
    if (cfg.timeoutSec > 0.0 && (++guard.iterations & 255) == 0) {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - guard.wallStart)
                .count();
        if (elapsed >= cfg.timeoutSec)
            throw SimError(buildDiagnostic(
                SimErrorKind::WallTimeout,
                "wall-clock budget of " +
                    std::to_string(cfg.timeoutSec) + " s exceeded",
                now, now - guard.lastProgressCycle));
    }
}

SimDiagnostic
GpuSystem::buildDiagnostic(SimErrorKind kind, std::string message,
                           Cycle now, Cycle since_progress)
{
    // Under the parallel loop, core-side abort attribution lives in
    // per-core shards until the end of the run; fold it in so the
    // hot-address table below is complete (absorbing clears the
    // shards, so the final end-of-run merge stays correct).
    if (activeShards)
        for (ObsShard &shard : *activeShards)
            observability.absorbShard(shard);

    SimDiagnostic diag;
    diag.kind = kind;
    diag.message = std::move(message);
    diag.cycle = now;
    diag.sinceProgressCycles = since_progress;
    for (const auto &core : coreArray) {
        diag.instructions += core->instructionsRetired();
        diag.commitLanes += core->commitLaneCount();
    }
    diag.nocInFlightUp = xbarUp.inFlight();
    diag.nocInFlightDown = xbarDown.inFlight();

    // Scheduler-state histogram and the worst consecutive-abort
    // streaks (warps at or past a quarter of the starvation ceiling).
    constexpr unsigned num_states =
        static_cast<unsigned>(WarpState::Idle) + 1;
    std::array<unsigned, num_states> state_counts{};
    const unsigned starve_floor =
        std::max(1u, cfg.core.starvationAbortCeiling / 4);
    for (auto &core : coreArray) {
        for (const Warp &warp : core->allWarps()) {
            ++state_counts[static_cast<unsigned>(warp.state)];
            if (warp.inTx &&
                warp.backoff.consecutiveAborts() >= starve_floor) {
                SimDiagnostic::StarvingWarp row;
                row.core = core->id();
                row.slot = warp.slot;
                row.gwid = warp.gwid;
                row.consecutiveAborts = warp.backoff.consecutiveAborts();
                row.state = warpStateName(warp.state);
                diag.starvingWarps.push_back(std::move(row));
            }
        }
    }
    for (unsigned s = 0; s < num_states; ++s)
        if (state_counts[s])
            diag.warpStates.emplace_back(
                warpStateName(static_cast<WarpState>(s)),
                state_counts[s]);
    std::sort(diag.starvingWarps.begin(), diag.starvingWarps.end(),
              [](const SimDiagnostic::StarvingWarp &a,
                 const SimDiagnostic::StarvingWarp &b) {
                  return a.consecutiveAborts > b.consecutiveAborts;
              });
    if (diag.starvingWarps.size() > 16)
        diag.starvingWarps.resize(16);

    for (std::size_t p = 0; p < getmUnits.size(); ++p) {
        SimDiagnostic::PartitionRow row;
        row.partition = static_cast<unsigned>(p);
        row.metaOccupancy = getmUnits[p]->metadata().occupancy();
        row.metaLocked = getmUnits[p]->metadata().lockedCount();
        row.stallOccupancy = getmUnits[p]->stallBuffer().occupancy();
        diag.partitions.push_back(row);
    }

    for (const HotAddrRow &row : observability.profiler().topN(8))
        diag.hotAddrs.push_back({row.addr, row.total});
    return diag;
}

Cycle
GpuSystem::runLegacyLoop(const Kernel &kernel, Cycle max_cycles)
{
    Cycle now = 0;
    const bool getm_rollover =
        cfg.protocol == ProtocolKind::Getm &&
        cfg.rolloverThreshold != ~static_cast<LogicalTs>(0);
    GuardState guard;
    guard.wallStart = std::chrono::steady_clock::now();

    while (!allDone() || !drained(now)) {
        checkGuards(kernel, now, max_cycles, guard);

        for (auto &part : partArray)
            part->tick(now);
        for (auto &core : coreArray) {
            const CoreId c = core->id();
            while (xbarDown.hasReady(c, now))
                core->deliver(xbarDown.popReady(c), now);
        }
        for (auto &core : coreArray)
            core->tick(now);

        observability.cycleSampler().maybeSample(now);

        if (getm_rollover || rolloverPending)
            maybeRollover(now);

        Cycle next = computeNextCycle(now);
        // Wake at sample boundaries too, so idle-cycle skipping cannot
        // starve the telemetry series (a skipped boundary would collapse
        // several samples into one).
        if (next != ~static_cast<Cycle>(0) &&
            observability.cycleSampler().enabled())
            next = std::max<Cycle>(
                now + 1,
                std::min(next,
                         observability.cycleSampler().nextSampleCycle()));
        if (next == ~static_cast<Cycle>(0)) {
            if (allDone() && drained(now))
                break;
            if (rolloverPending) {
                now = now + 1; // draining towards quiescence
                continue;
            }
            throw SimError(buildDiagnostic(
                SimErrorKind::Deadlock,
                "no future events at cycle " + std::to_string(now),
                now, now - guard.lastProgressCycle));
        }
        now = next;
    }
    return now;
}

Cycle
GpuSystem::runEventLoop(const Kernel &kernel, Cycle max_cycles)
{
    // The legacy loop ticks every component on every visited cycle, but
    // a tick on a component whose nextEventCycle() lies in the future is
    // a no-op: component state only changes inside tick()/deliver() (or
    // under maybeRollover(), handled below). The wake caches therefore
    // stay valid between ticks, and skipping not-due components is
    // timing-equivalent to the legacy loop. Message arrivals are the one
    // external wake source; they are caught by the hasReady() due-checks
    // and the raw crossbar nextArrival() terms in the global next.
    const Cycle never = ~static_cast<Cycle>(0);
    const unsigned ncores = static_cast<unsigned>(coreArray.size());
    const unsigned nparts = static_cast<unsigned>(partArray.size());

    // Cycle 0 behaves like the legacy loop's first iteration: everything
    // is due once, then earns its cached wake.
    std::vector<Cycle> coreWake(ncores, 0);
    std::vector<Cycle> partWake(nparts, 0);

    Cycle now = 0;
    const bool getm_rollover =
        cfg.protocol == ProtocolKind::Getm &&
        cfg.rolloverThreshold != ~static_cast<LogicalTs>(0);
    GuardState guard;
    guard.wallStart = std::chrono::steady_clock::now();

    while (!allDone() || !drained(now)) {
        checkGuards(kernel, now, max_cycles, guard);

        for (PartitionId p = 0; p < nparts; ++p) {
            if (partWake[p] <= now || xbarUp.hasReady(p, now)) {
                partArray[p]->tick(now);
                partWake[p] = partArray[p]->nextEventCycle(now);
            }
        }
        for (CoreId c = 0; c < ncores; ++c) {
            if (!xbarDown.hasReady(c, now))
                continue;
            SimtCore &core = *coreArray[c];
            do
                core.deliver(xbarDown.popReady(c), now);
            while (xbarDown.hasReady(c, now));
            // A delivery can unblock same-cycle work; force the tick.
            if (coreWake[c] > now)
                coreWake[c] = now;
        }
        for (CoreId c = 0; c < ncores; ++c) {
            if (coreWake[c] <= now) {
                coreArray[c]->tick(now);
                coreWake[c] = coreArray[c]->nextEventCycle(now + 1);
            }
        }

        observability.cycleSampler().maybeSample(now);

        if (getm_rollover || rolloverPending) {
            const bool was_pending = rolloverPending;
            maybeRollover(now);
            if (rolloverPending != was_pending) {
                // Rollover transitions mutate cores (freeze/unfreeze,
                // forced aborts) and partitions (flush, pipeline stall)
                // from outside their tick(); recompute every wake.
                for (CoreId c = 0; c < ncores; ++c)
                    coreWake[c] = coreArray[c]->nextEventCycle(now + 1);
                for (PartitionId p = 0; p < nparts; ++p)
                    partWake[p] = partArray[p]->nextEventCycle(now);
            }
        }

        Cycle next = never;
        for (Cycle wake : coreWake)
            next = std::min(next, wake);
        for (Cycle wake : partWake)
            next = std::min(next, wake);
        next = std::min(next, xbarUp.nextArrival());
        next = std::min(next, xbarDown.nextArrival());
        if (next != never)
            next = std::max(next, now + 1);
        // Wake at sample boundaries too, so idle-cycle skipping cannot
        // starve the telemetry series (a skipped boundary would collapse
        // several samples into one).
        if (next != never && observability.cycleSampler().enabled())
            next = std::max<Cycle>(
                now + 1,
                std::min(next,
                         observability.cycleSampler().nextSampleCycle()));
        if (next == never) {
            if (allDone() && drained(now))
                break;
            if (rolloverPending) {
                now = now + 1; // draining towards quiescence
                continue;
            }
            throw SimError(buildDiagnostic(
                SimErrorKind::Deadlock,
                "no future events at cycle " + std::to_string(now),
                now, now - guard.lastProgressCycle));
        }
        now = next;
    }
    return now;
}

namespace {

/** One xbarUp.send() recorded on a worker thread for serial replay. */
struct StagedSend
{
    PartitionId part;
    unsigned bytes;
    Cycle sentAt; ///< Sending core's clock at the original call.
    MemMsg msg;
};

/**
 * Per-core send staging with the same deliver/tick replay buckets as
 * CoreEventBuffer (deferred_sinks.hh): replaying bucket 0 for every
 * core in id order and then bucket 1 for every core in id order
 * reproduces the serial loops' global send order exactly, and
 * CrossbarTiming::route() timing depends only on its arguments and the
 * port-free state evolved in call order — so the replayed messages get
 * byte-identical arrival cycles, sequence numbers, and stats.
 */
struct CoreSendStage
{
    std::array<std::vector<StagedSend>, 2> buckets;
    unsigned cur = 0;
};

} // namespace

unsigned
GpuSystem::effectiveSimThreads() const
{
    unsigned threads = cfg.simThreads;
    if (threads <= 1)
        return 1;
    threads = std::min(threads, cfg.numCores);
    if (cfg.protocol == ProtocolKind::WarpTmLL ||
        cfg.protocol == ProtocolKind::WarpTmEL ||
        cfg.protocol == ProtocolKind::Eapg) {
        inform("%s shares commit state across cores; sim_threads=%u "
               "falls back to the serial event loop",
               protocolName(cfg.protocol), cfg.simThreads);
        return 1;
    }
    if (faultInjector) {
        inform("fault injection draws from one RNG across cores; "
               "sim_threads=%u falls back to the serial event loop",
               cfg.simThreads);
        return 1;
    }
    return threads;
}

Cycle
GpuSystem::runParallelLoop(const Kernel &kernel, Cycle max_cycles,
                           unsigned threads)
{
    // Cores tick on worker threads; everything else — partitions, the
    // crossbar handoff, telemetry, rollover, and the guards — stays on
    // the calling thread. Worker-side effects on shared objects are
    // staged per core and replayed at the per-cycle barrier in the
    // serial loops' global order, which is what makes any thread count
    // byte-identical to sim_threads=1 (contract: docs/PARALLELISM.md).
    const Cycle never = ~static_cast<Cycle>(0);
    const unsigned ncores = static_cast<unsigned>(coreArray.size());
    const unsigned nparts = static_cast<unsigned>(partArray.size());

    std::vector<Cycle> coreWake(ncores, 0);
    std::vector<Cycle> partWake(nparts, 0);

    std::vector<CoreSendStage> sends(ncores);
    std::vector<ObsShard> shards(ncores);
    const bool use_timeline = !cfg.timelinePath.empty();
    const bool defer_events = txTracer || checker || use_timeline;
    std::vector<CoreEventBuffer> events(defer_events ? ncores : 0);
    std::vector<std::unique_ptr<DeferredObsSink>> tracer_proxies;
    std::vector<std::unique_ptr<DeferredCheckSink>> check_proxies;
    std::vector<std::unique_ptr<DeferredTimeline>> timeline_proxies;

    for (CoreId c = 0; c < ncores; ++c) {
        coreArray[c]->setObserver(&shards[c]);
        coreArray[c]->setSendFn([this, c, &sends](MemMsg &&msg) {
            CoreSendStage &stage = sends[c];
            stage.buckets[stage.cur].push_back(StagedSend{
                msg.partition, msg.bytes, coreArray[c]->now(),
                std::move(msg)});
        });
        if (txTracer) {
            tracer_proxies.push_back(std::make_unique<DeferredObsSink>(
                events[c], *txTracer));
            coreArray[c]->setTracer(tracer_proxies.back().get());
        }
        if (checker) {
            check_proxies.push_back(std::make_unique<DeferredCheckSink>(
                events[c], *checker));
            coreArray[c]->setChecker(check_proxies.back().get());
        }
        if (use_timeline) {
            timeline_proxies.push_back(
                std::make_unique<DeferredTimeline>(events[c], timeline));
            coreArray[c]->setTimeline(timeline_proxies.back().get());
        }
    }
    activeShards = &shards;

    // Rewire the cores back to the shared objects and fold the shard
    // counters into the hub. Runs on every exit path — the staging
    // callbacks capture locals of this frame, and run()'s result
    // gathering expects the serial wiring.
    auto restore = [&] {
        for (CoreId c = 0; c < ncores; ++c) {
            coreArray[c]->setObserver(&observability);
            coreArray[c]->setSendFn([this, c](MemMsg &&msg) {
                const PartitionId part = msg.partition;
                const unsigned bytes = msg.bytes;
                xbarUp.send(c, part, bytes, coreArray[c]->now(),
                            std::move(msg));
            });
            if (txTracer)
                coreArray[c]->setTracer(txTracer.get());
            if (checker)
                coreArray[c]->setChecker(checker.get());
            if (use_timeline)
                coreArray[c]->setTimeline(&timeline);
        }
        for (ObsShard &shard : shards)
            observability.absorbShard(shard);
        activeShards = nullptr;
    };

    // Commit staged sends and replay deferred sink events: bucket 0
    // (deliver-stage) for every core in id order, then bucket 1
    // (tick-stage) likewise — the serial loops' global order. Within a
    // bucket, sends replay before tracer/checker/timeline events; the
    // only shared object hearing both is the tracer, whose nocHop()
    // aggregation is commutative, so the relative order is unobservable.
    auto flushStages = [&] {
        for (unsigned bucket = 0; bucket < 2; ++bucket) {
            for (CoreId c = 0; c < ncores; ++c) {
                for (StagedSend &send : sends[c].buckets[bucket])
                    xbarUp.send(c, send.part, send.bytes, send.sentAt,
                                std::move(send.msg));
                sends[c].buckets[bucket].clear();
            }
            if (defer_events)
                for (CoreId c = 0; c < ncores; ++c)
                    CoreEventBuffer::drain(events[c].buckets[bucket]);
        }
    };

    CycleWorkers pool(threads);

    Cycle now = 0;
    const bool getm_rollover =
        cfg.protocol == ProtocolKind::Getm &&
        cfg.rolloverThreshold != ~static_cast<LogicalTs>(0);
    GuardState guard;
    guard.wallStart = std::chrono::steady_clock::now();

    try {
        while (!allDone() || !drained(now)) {
            checkGuards(kernel, now, max_cycles, guard);

            // Partitions tick serially, exactly as in the event loop:
            // they own the order-sensitive observability (stall gauge)
            // and checker traffic, and they are a minority of the
            // per-cycle work.
            for (PartitionId p = 0; p < nparts; ++p) {
                if (partWake[p] <= now || xbarUp.hasReady(p, now)) {
                    partArray[p]->tick(now);
                    partWake[p] = partArray[p]->nextEventCycle(now);
                }
            }

            // Core phase: worker w owns cores c with c % threads == w —
            // deliveries then the tick, per-core work identical to the
            // event loop. Each core's downward inbox has a single
            // owner this phase (nothing sends down while cores run),
            // and all upward traffic is staged.
            const Cycle cur = now;
            pool.run([&, cur](unsigned worker) {
                for (CoreId c = worker; c < ncores; c += threads) {
                    SimtCore &core = *coreArray[c];
                    sends[c].cur = 0;
                    if (defer_events)
                        events[c].cur = 0;
                    if (xbarDown.hasReady(c, cur)) {
                        do
                            core.deliver(xbarDown.popReady(c), cur);
                        while (xbarDown.hasReady(c, cur));
                        // A delivery can unblock same-cycle work.
                        if (coreWake[c] > cur)
                            coreWake[c] = cur;
                    }
                    sends[c].cur = 1;
                    if (defer_events)
                        events[c].cur = 1;
                    if (coreWake[c] <= cur) {
                        core.tick(cur);
                        coreWake[c] = core.nextEventCycle(cur + 1);
                    }
                }
            });

            flushStages();

            observability.cycleSampler().maybeSample(now);

            if (getm_rollover || rolloverPending) {
                const bool was_pending = rolloverPending;
                maybeRollover(now);
                // Rollover transitions abort warps from outside their
                // tick(); the staging callbacks are still installed, so
                // commit whatever they recorded (maybeRollover itself
                // walks cores serially in id order, matching the replay
                // order).
                flushStages();
                if (rolloverPending != was_pending) {
                    for (CoreId c = 0; c < ncores; ++c)
                        coreWake[c] =
                            coreArray[c]->nextEventCycle(now + 1);
                    for (PartitionId p = 0; p < nparts; ++p)
                        partWake[p] = partArray[p]->nextEventCycle(now);
                }
            }

            Cycle next = never;
            for (Cycle wake : coreWake)
                next = std::min(next, wake);
            for (Cycle wake : partWake)
                next = std::min(next, wake);
            next = std::min(next, xbarUp.nextArrival());
            next = std::min(next, xbarDown.nextArrival());
            if (next != never)
                next = std::max(next, now + 1);
            // Wake at sample boundaries too, so idle-cycle skipping
            // cannot starve the telemetry series.
            if (next != never &&
                observability.cycleSampler().enabled())
                next = std::max<Cycle>(
                    now + 1,
                    std::min(
                        next,
                        observability.cycleSampler().nextSampleCycle()));
            if (next == never) {
                if (allDone() && drained(now))
                    break;
                if (rolloverPending) {
                    now = now + 1; // draining towards quiescence
                    continue;
                }
                throw SimError(buildDiagnostic(
                    SimErrorKind::Deadlock,
                    "no future events at cycle " + std::to_string(now),
                    now, now - guard.lastProgressCycle));
            }
            now = next;
        }
    } catch (...) {
        restore();
        throw;
    }
    restore();
    return now;
}

RunResult
GpuSystem::run(const Kernel &kernel, std::uint64_t num_threads,
               Cycle max_cycles)
{
    const std::uint64_t total_warps = (num_threads + warpSize - 1) /
                                      warpSize;
    auto next_warp = std::make_shared<std::uint64_t>(0);
    auto work = [next_warp, total_warps,
                 num_threads](WarpAssignment &assign) -> bool {
        if (*next_warp >= total_warps)
            return false;
        const std::uint64_t w = (*next_warp)++;
        assign.firstTid = static_cast<std::uint32_t>(w * warpSize);
        const std::uint64_t remaining = num_threads - w * warpSize;
        assign.validLanes =
            remaining >= warpSize
                ? fullMask
                : ((1u << remaining) - 1);
        assign.gwid = 0; // assigned by the core from its slot
        return true;
    };

    for (auto &core : coreArray)
        core->startKernel(&kernel, num_threads, work, 0);

    const bool legacy = cfg.legacyLoop ||
                        std::getenv("GETM_LEGACY_LOOP") != nullptr;
    const unsigned sim_threads = legacy ? 1 : effectiveSimThreads();
    const Cycle now =
        legacy ? runLegacyLoop(kernel, max_cycles)
        : sim_threads > 1
            ? runParallelLoop(kernel, max_cycles, sim_threads)
            : runEventLoop(kernel, max_cycles);

    // Gather results.
    RunResult result;
    result.cycles = now;
    result.rollovers = rollovers;
    for (GetmPartitionUnit *unit : getmUnits)
        result.maxLogicalTs =
            std::max(result.maxLogicalTs, unit->maxTimestamp());
    for (auto &core : coreArray) {
        core->foldWarpStats();
        result.stats.merge(core->stats());
    }
    for (auto &part : partArray) {
        result.stats.merge(part->stats());
        result.stats.merge(part->llc().stats());
    }
    result.stats.merge(xbarUp.stats());
    result.stats.merge(xbarDown.stats());
    for (GetmPartitionUnit *unit : getmUnits) {
        result.stats.merge(unit->metadata().stats());
        result.stats.merge(unit->stallBuffer().stats());
    }

    result.commits = result.stats.counter("commits");
    result.aborts = result.stats.counter("aborts");
    result.txExecCycles = result.stats.counter("tx_exec_cycles");
    result.txWaitCycles = result.stats.counter("tx_wait_cycles");
    result.xbarFlits = xbarUp.totalFlits() + xbarDown.totalFlits();
    result.metaAccessCycles = result.stats.mean("access_cycles");
    result.stallPeakOccupancy = stallTracker.peak;
    result.stallWaitersPerAddr = result.stats.mean("waiters_per_addr");
    // Record the final partial telemetry window before snapshotting.
    observability.cycleSampler().finalize(now);
    result.obs = observability.report(cfg.hotAddrTopN);
    if (txTracer)
        result.obs.txTrace = txTracer->report(now);
    if (checker) {
        checker->finish(store);
        result.check = checker->report();
    }
    if (!cfg.timelinePath.empty()) {
        if (timeline.writeJson(cfg.timelinePath))
            inform("wrote transaction timeline to %s",
                   cfg.timelinePath.c_str());
        else
            warn("failed to write timeline to %s",
                 cfg.timelinePath.c_str());
    }
    return result;
}

} // namespace getm
