#include "gpu/config_file.hh"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "check/fault.hh"
#include "check/violation.hh"

namespace getm {

namespace {

std::string
trim(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

bool
applyKey(GpuConfig &cfg, const std::string &key, std::uint64_t value)
{
    if (key == "cores")
        cfg.numCores = static_cast<unsigned>(value);
    else if (key == "partitions")
        cfg.numPartitions = static_cast<unsigned>(value);
    else if (key == "warps_per_core")
        cfg.core.maxWarps = static_cast<unsigned>(value);
    else if (key == "tx_warp_limit")
        cfg.core.txWarpLimit =
            value == 0 ? 0xffffffffu : static_cast<unsigned>(value);
    else if (key == "issue_width")
        cfg.core.issueWidth = static_cast<unsigned>(value);
    else if (key == "l1_kb")
        cfg.core.l1Bytes = value * 1024;
    else if (key == "llc_kb_per_partition")
        cfg.llcBytesPerPartition = value * 1024;
    else if (key == "llc_latency")
        cfg.llcLatency = value;
    else if (key == "line_bytes")
        cfg.lineBytes = static_cast<unsigned>(value);
    else if (key == "xbar_latency")
        cfg.xbar.latency = value;
    else if (key == "xbar_flit_bytes")
        cfg.xbar.flitBytes = static_cast<unsigned>(value);
    else if (key == "dram_latency")
        cfg.dram.accessLatency = value;
    else if (key == "dram_row_hit_latency")
        cfg.dram.rowHitLatency = value;
    else if (key == "dram_banks")
        cfg.dram.numBanks = static_cast<unsigned>(value);
    else if (key == "getm_granule")
        cfg.getmGranule = static_cast<unsigned>(value);
    else if (key == "getm_precise_entries")
        cfg.getmPreciseEntriesTotal = static_cast<unsigned>(value);
    else if (key == "getm_bloom_entries")
        cfg.getmBloomEntriesTotal = static_cast<unsigned>(value);
    else if (key == "getm_max_registers")
        cfg.getmUseMaxRegisters = value != 0;
    else if (key == "getm_stall_lines")
        cfg.getmStall.lines = static_cast<unsigned>(value);
    else if (key == "getm_stall_entries")
        cfg.getmStall.entriesPerLine = static_cast<unsigned>(value);
    else if (key == "wtm_tcd_entries")
        cfg.wtm.tcdEntries = static_cast<unsigned>(value);
    else if (key == "rollover_threshold")
        cfg.rolloverThreshold =
            value == 0 ? ~static_cast<LogicalTs>(0) : value;
    else if (key == "sample_interval")
        cfg.sampleInterval = value;
    else if (key == "trace_tx")
        cfg.traceTx = value;
    else if (key == "watchdog_cycles")
        cfg.watchdogCycles = value;
    else if (key == "sim_threads")
        cfg.simThreads = static_cast<unsigned>(value);
    else if (key == "sim_epoch")
        cfg.simEpoch = static_cast<unsigned>(value);
    else if (key == "hot_addrs")
        cfg.hotAddrTopN = static_cast<unsigned>(value);
    else if (key == "seed")
        cfg.seed = value;
    else
        return false;
    return true;
}

/**
 * Keys whose values are words, tried before the numeric parser. The
 * checker/injection/timeout keys are deliberately absent from
 * configProvenance(): enabling validation or a safety net must not
 * change a run's reported configuration or sweep spec hashes
 * (watchdog_cycles, trace_tx, sim_threads, and sim_epoch, handled by
 * the numeric parser, are excluded for the same reason — the first two
 * are observe-only and the parallel-loop knobs are determinism-neutral
 * by contract).
 */
bool
applyStringKey(GpuConfig &cfg, const std::string &key,
               const std::string &value_text, bool &handled)
{
    handled = true;
    if (key == "check") {
        CheckLevel level;
        if (!parseCheckLevel(value_text, level))
            return false;
        cfg.checkLevel = static_cast<unsigned>(level);
    } else if (key == "inject") {
        FaultKind kind;
        if (!parseFaultKind(value_text, kind))
            return false;
        cfg.injectFault = static_cast<unsigned>(kind);
    } else if (key == "inject_prob") {
        char *end = nullptr;
        const double prob = std::strtod(value_text.c_str(), &end);
        if (value_text.empty() || (end && *end != '\0') || prob < 0.0 ||
            prob > 1.0)
            return false;
        cfg.injectProb = prob;
    } else if (key == "timeout_sec") {
        char *end = nullptr;
        const double secs = std::strtod(value_text.c_str(), &end);
        if (value_text.empty() || (end && *end != '\0') || secs < 0.0)
            return false;
        cfg.timeoutSec = secs;
    } else {
        handled = false;
    }
    return true;
}

} // namespace

bool
applyConfigText(const std::string &text, GpuConfig &cfg,
                std::string &error)
{
    std::istringstream in(text);
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto comment = line.find('#');
        if (comment != std::string::npos)
            line.erase(comment);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            error = "line " + std::to_string(line_no) + ": expected "
                    "'key = value'";
            return false;
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value_text = trim(line.substr(eq + 1));
        bool handled = false;
        if (!applyStringKey(cfg, key, value_text, handled)) {
            error = "line " + std::to_string(line_no) +
                    ": bad value for '" + key + "'";
            return false;
        }
        if (handled)
            continue;
        char *end = nullptr;
        const std::uint64_t value =
            std::strtoull(value_text.c_str(), &end, 0);
        if (value_text.empty() || (end && *end != '\0')) {
            error = "line " + std::to_string(line_no) +
                    ": bad value for '" + key + "'";
            return false;
        }
        if (!applyKey(cfg, key, value)) {
            error = "line " + std::to_string(line_no) +
                    ": unknown key '" + key + "'";
            return false;
        }
    }
    return validateGpuConfig(cfg, error);
}

bool
validateGpuConfig(const GpuConfig &cfg, std::string &error)
{
    const auto reject = [&error](const std::string &why) {
        error = "invalid config: " + why;
        return false;
    };
    if (cfg.numCores == 0)
        return reject("cores must be nonzero");
    if (cfg.numPartitions == 0)
        return reject("partitions must be nonzero");
    if (cfg.core.maxWarps == 0)
        return reject("warps_per_core must be nonzero");
    if (cfg.core.issueWidth == 0)
        return reject("issue_width must be nonzero");
    if (cfg.lineBytes == 0)
        return reject("line_bytes must be nonzero");
    if (cfg.getmGranule == 0)
        return reject("getm_granule must be nonzero");
    if (cfg.core.backoff.baseWindow == 0)
        return reject("backoff base window must be nonzero");
    if (cfg.core.backoff.maxWindow < cfg.core.backoff.baseWindow)
        return reject("backoff max window smaller than base window");
    if (cfg.injectProb < 0.0 || cfg.injectProb > 1.0)
        return reject("inject_prob must be within [0, 1]");
    if (cfg.timeoutSec < 0.0)
        return reject("timeout_sec must be non-negative");
    if (cfg.simThreads == 0)
        return reject("sim_threads must be nonzero");
    if (cfg.simEpoch == 0)
        return reject("sim_epoch must be nonzero");
    return true;
}

bool
loadConfigFile(const std::string &path, GpuConfig &cfg,
               std::string &error)
{
    std::ifstream file(path);
    if (!file) {
        error = "cannot open " + path;
        return false;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    return applyConfigText(buffer.str(), cfg, error);
}

std::vector<std::pair<std::string, std::string>>
configProvenance(const GpuConfig &cfg)
{
    std::vector<std::pair<std::string, std::string>> out;
    auto add = [&out](const char *key, std::uint64_t value) {
        out.emplace_back(key, std::to_string(value));
    };
    out.emplace_back("protocol", protocolName(cfg.protocol));
    add("cores", cfg.numCores);
    add("partitions", cfg.numPartitions);
    add("warps_per_core", cfg.core.maxWarps);
    add("tx_warp_limit", cfg.core.txWarpLimit == 0xffffffffu
                             ? 0
                             : cfg.core.txWarpLimit);
    add("issue_width", cfg.core.issueWidth);
    add("l1_kb", cfg.core.l1Bytes / 1024);
    add("llc_kb_per_partition", cfg.llcBytesPerPartition / 1024);
    add("llc_latency", cfg.llcLatency);
    add("line_bytes", cfg.lineBytes);
    add("xbar_latency", cfg.xbar.latency);
    add("xbar_flit_bytes", cfg.xbar.flitBytes);
    add("dram_latency", cfg.dram.accessLatency);
    add("dram_row_hit_latency", cfg.dram.rowHitLatency);
    add("dram_banks", cfg.dram.numBanks);
    add("getm_granule", cfg.getmGranule);
    add("getm_precise_entries", cfg.getmPreciseEntriesTotal);
    add("getm_bloom_entries", cfg.getmBloomEntriesTotal);
    add("getm_max_registers", cfg.getmUseMaxRegisters ? 1 : 0);
    add("getm_stall_lines", cfg.getmStall.lines);
    add("getm_stall_entries", cfg.getmStall.entriesPerLine);
    add("wtm_tcd_entries", cfg.wtm.tcdEntries);
    add("rollover_threshold",
        cfg.rolloverThreshold == ~static_cast<LogicalTs>(0)
            ? 0
            : cfg.rolloverThreshold);
    add("sample_interval", cfg.sampleInterval);
    add("hot_addrs", cfg.hotAddrTopN);
    add("seed", cfg.seed);
    return out;
}

} // namespace getm
