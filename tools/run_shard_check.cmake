# Sharded-sweep durability check driven by ctest (docs/DURABILITY.md):
#
#  1. Run the smoke sweep as three disjoint shards (--shard 0/3, 1/3,
#     2/3) into separate working directories, then reassemble them with
#     --merge. The merged document must be byte-identical to the
#     checked-in golden single-process sweep.json -- sharding is pure
#     partitioning, invisible in the output bytes.
#  2. Crash-resume: run the full sweep with per-point checkpoints and
#     GETM_SWEEP_KILL_AT so the first point dies mid-kernel (exit 137,
#     the _Exit stand-in for SIGKILL). The identical rerun must report
#     "restored checkpoint ... (cycle N)" with N > 0 -- the retried
#     point resumes from its last snapshot, not cycle 0 -- and still
#     produce the golden bytes.
#
# Expected variables:
#   SWEEP_BIN - path to the getm-sweep binary
#   MANIFEST  - path to the smoke sweep manifest
#   OUT_DIR   - writable scratch directory
#   GOLDEN    - checked-in golden sweep.json for the manifest

set(work_dir "${OUT_DIR}/shard_check")
file(REMOVE_RECURSE "${work_dir}")
file(MAKE_DIRECTORY "${work_dir}")

# --- 1. three shards + merge ------------------------------------------------

set(shard_dir_args "")
foreach(shard 0 1 2)
    execute_process(
        COMMAND "${SWEEP_BIN}" --manifest "${MANIFEST}"
                --dir "${work_dir}/shard${shard}"
                --shard "${shard}/3" --jobs 2 --quiet
        RESULT_VARIABLE shard_status
        OUTPUT_VARIABLE shard_output
        ERROR_VARIABLE shard_output)
    if(NOT shard_status EQUAL 0)
        message(FATAL_ERROR
                "getm-sweep --shard ${shard}/3 failed "
                "(${shard_status}):\n${shard_output}")
    endif()
    list(APPEND shard_dir_args --merge "${work_dir}/shard${shard}")
endforeach()

execute_process(
    COMMAND "${SWEEP_BIN}" --manifest "${MANIFEST}"
            --dir "${work_dir}/merged" ${shard_dir_args} --quiet
    RESULT_VARIABLE merge_status
    OUTPUT_VARIABLE merge_output
    ERROR_VARIABLE merge_output)
if(NOT merge_status EQUAL 0)
    message(FATAL_ERROR
            "getm-sweep --merge failed (${merge_status}):\n"
            "${merge_output}")
endif()
message(STATUS "${merge_output}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${work_dir}/merged/sweep.json" "${GOLDEN}"
    RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "3-shard merged sweep.json differs from the golden "
            "single-process document ${GOLDEN}: sharding must be "
            "invisible in the output bytes (docs/DURABILITY.md)")
endif()
message(STATUS "3-shard merge is byte-identical to the golden sweep")

# --- 2. kill mid-point, resume from checkpoint ------------------------------

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env GETM_SWEEP_KILL_AT=3000
            "${SWEEP_BIN}" --manifest "${MANIFEST}"
            --dir "${work_dir}/killed"
            --checkpoint-every 1000 --jobs 1 --quiet
    RESULT_VARIABLE kill_status
    OUTPUT_VARIABLE kill_output
    ERROR_VARIABLE kill_output)
if(NOT kill_status EQUAL 137)
    message(FATAL_ERROR
            "GETM_SWEEP_KILL_AT=3000 should die with exit 137, got "
            "${kill_status}:\n${kill_output}")
endif()

execute_process(
    COMMAND "${SWEEP_BIN}" --manifest "${MANIFEST}"
            --dir "${work_dir}/killed"
            --checkpoint-every 1000 --jobs 1
    RESULT_VARIABLE resume_status
    OUTPUT_VARIABLE resume_output
    ERROR_VARIABLE resume_output)
if(NOT resume_status EQUAL 0)
    message(FATAL_ERROR
            "rerun after the kill failed (${resume_status}):\n"
            "${resume_output}")
endif()
if(NOT resume_output MATCHES
   "restored checkpoint .* \\(cycle ([0-9]+)\\)")
    message(FATAL_ERROR
            "rerun after the kill did not restore a checkpoint -- the "
            "killed point restarted from cycle 0:\n${resume_output}")
endif()
if(CMAKE_MATCH_1 EQUAL 0)
    message(FATAL_ERROR
            "rerun restored a checkpoint at cycle 0 -- no mid-kernel "
            "state survived the kill")
endif()
message(STATUS
        "killed point resumed from cycle ${CMAKE_MATCH_1}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${work_dir}/killed/sweep.json" "${GOLDEN}"
    RESULT_VARIABLE same_resumed)
if(NOT same_resumed EQUAL 0)
    message(FATAL_ERROR
            "kill+resume sweep.json differs from the golden document: "
            "restoring mid-kernel changed simulated behavior")
endif()
message(STATUS "kill+resume sweep.json is byte-identical to the golden")
