#!/usr/bin/env python3
"""Keep the documentation honest.

Two checks over README.md, EXPERIMENTS.md, DESIGN.md and docs/*.md:

1. Every repository path a document references must exist. A
   candidate path is a slash-containing token with a known source/doc
   extension (e.g. `src/obs/metrics.cc`, `configs/sweeps/smoke.sweep`),
   a directory reference rooted at a top-level source dir (e.g.
   `src/obs/`), or a bare UPPERCASE.md name (e.g. `DESIGN.md`).
   References are resolved against the referencing file's directory
   first, then the repository root. Paths under build output
   directories (`build/`, `out/`, absolute paths) are ignored: they
   only exist after a build.

2. Every `--flag` the documentation shows for a simulator CLI must be
   accepted by the binary. A flag is attributed to a binary when it
   appears on a (possibly backslash-continued) command line naming
   that binary, or in an inline code span consisting of just the flag
   (e.g. "the `--hot-addrs N` flag"). Accepted flags are scraped from
   the binary's --help output.

Additionally, `--require PATH` (repeatable) names repo-relative
documents that must exist — the contract docs a deleted or renamed
file would silently orphan (e.g. docs/PARALLELISM.md, whose absence
would leave the --sim-threads machinery undocumented).

Usage:
    check_docs.py --root REPO [--binary getm-sim=/path/to/getm-sim ...]
                  [--require docs/PARALLELISM.md ...]

Exits non-zero listing every violation (the docs_check ctest).
"""

import argparse
import os
import re
import subprocess
import sys

DOC_GLOBS = ["README.md", "EXPERIMENTS.md", "DESIGN.md"]
DOCS_DIR = "docs"

PATH_EXTENSIONS = (
    "md", "cc", "hh", "py", "cfg", "sweep", "cmake", "txt", "yml",
    "yaml",
)
PATH_RE = re.compile(
    r"(?<![\w/.-])((?:[A-Za-z0-9_.-]+/)+[A-Za-z0-9_.-]+\."
    r"(?:" + "|".join(PATH_EXTENSIONS) + r"))(?![\w-])")
DIR_RE = re.compile(
    r"(?<![\w/.-])((?:src|docs|tools|tests|bench|configs|examples)"
    r"(?:/[A-Za-z0-9_.-]+)*/)(?![\w.-])")
BARE_MD_RE = re.compile(r"(?<![\w/.-])([A-Z][A-Z_]+\.md)\b")
FLAG_RE = re.compile(r"(--[A-Za-z][A-Za-z0-9-]*)")
INLINE_CODE_RE = re.compile(r"`([^`]+)`")
# `--flag`, `--flag N`, `--flag FILE`, `--flag=VALUE` style inline
# spans.
FLAG_SPAN_RE = re.compile(r"^(--[A-Za-z][A-Za-z0-9-]*)(=\S+|\s+\S+)?$")

IGNORED_PREFIXES = ("build/", "out/", "/")


def doc_files(root):
    files = [os.path.join(root, name) for name in DOC_GLOBS]
    docs = os.path.join(root, DOCS_DIR)
    if os.path.isdir(docs):
        files += [os.path.join(docs, name)
                  for name in sorted(os.listdir(docs))
                  if name.endswith(".md")]
    return [f for f in files if os.path.isfile(f)]


def strip_urls(text):
    return re.sub(r"https?://\S+", "", text)


def check_paths(root, path, text, problems):
    rel_dir = os.path.dirname(path)
    refs = set(PATH_RE.findall(text)) | set(DIR_RE.findall(text)) | \
        set(BARE_MD_RE.findall(text))
    for ref in sorted(refs):
        if ref.startswith(IGNORED_PREFIXES):
            continue
        if os.path.exists(os.path.join(rel_dir, ref)):
            continue
        if os.path.exists(os.path.join(root, ref)):
            continue
        # C++ include paths are rooted at src/.
        if os.path.exists(os.path.join(root, "src", ref)):
            continue
        problems.append(f"{os.path.relpath(path, root)}: "
                        f"references missing path '{ref}'")


def binary_flags(binary_path):
    """Flags accepted per --help (which also exercises the binary)."""
    result = subprocess.run([binary_path, "--help"],
                            capture_output=True, text=True, timeout=60)
    if result.returncode != 0:
        raise RuntimeError(
            f"{binary_path} --help exited {result.returncode}")
    return set(FLAG_RE.findall(result.stdout + result.stderr))


def documented_flags(text, binary_names):
    """(binary_name_or_None, flag, line_no) triples found in @p text.

    binary_name is None for standalone inline-code flags, which are
    checked against the union of every binary's accepted flags.
    """
    found = []
    lines = text.split("\n")
    continuing = None  # binary name when the previous line ended in \
    for line_no, line in enumerate(lines, 1):
        owner = continuing
        if owner is None:
            for name in binary_names:
                if re.search(rf"(?<![\w-]){re.escape(name)}(?![\w-])",
                             line):
                    owner = name
                    break
        if owner is not None:
            for flag in FLAG_RE.findall(line):
                found.append((owner, flag, line_no))
            continuing = owner if line.rstrip().endswith("\\") else None
            continue
        for span in INLINE_CODE_RE.findall(line):
            match = FLAG_SPAN_RE.match(span.strip())
            if match:
                found.append((None, match.group(1), line_no))
    return found


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True)
    parser.add_argument("--binary", action="append", default=[],
                        metavar="NAME=PATH",
                        help="CLI to cross-check, e.g. "
                             "getm-sim=build/tools/getm-sim")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PATH",
                        help="repo-relative document that must exist, "
                             "e.g. docs/PARALLELISM.md")
    args = parser.parse_args()

    binaries = {}
    for spec in args.binary:
        name, _, binary_path = spec.partition("=")
        if not binary_path:
            parser.error(f"--binary wants NAME=PATH, got '{spec}'")
        binaries[name] = binary_flags(binary_path)
    union_flags = set().union(*binaries.values()) if binaries else set()

    problems = []
    for required in args.require:
        if not os.path.isfile(os.path.join(args.root, required)):
            problems.append(f"required document '{required}' is missing")
    files = doc_files(args.root)
    if not files:
        problems.append(f"no documentation found under {args.root}")
    for path in files:
        with open(path, encoding="utf-8") as fh:
            text = strip_urls(fh.read())
        check_paths(args.root, path, text, problems)
        if not binaries:
            continue
        rel = os.path.relpath(path, args.root)
        for owner, flag, line_no in documented_flags(text, binaries):
            accepted = binaries.get(owner, union_flags)
            if flag not in accepted:
                where = owner or "any documented CLI"
                problems.append(
                    f"{rel}:{line_no}: documents flag '{flag}' "
                    f"not accepted by {where}")

    if problems:
        for problem in problems:
            print(f"check_docs: {problem}", file=sys.stderr)
        print(f"check_docs: {len(problems)} problem(s)",
              file=sys.stderr)
        return 1
    names = ", ".join(binaries) if binaries else "no binaries"
    print(f"check_docs: OK ({len(files)} documents, "
          f"flags cross-checked against {names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
