# Simulator-throughput check driven by ctest and the perf-smoke CI job:
# run bench/perf_throughput in smoke mode, validate the emitted
# BENCH_perf.json, and (when a baseline is supplied) fail on a >25%
# geomean-throughput regression.
#
# Expected variables:
#   PERF_BIN - path to the perf_throughput binary
#   OUT_JSON - where to write BENCH_perf.json
#   BASELINE - optional path to a baseline BENCH_perf.json; when the
#              file does not exist yet it is created from this run and
#              the threshold is skipped (first-run bootstrap).
#
# Wall-clock throughput is machine-dependent, so the threshold only
# makes sense against a baseline produced on comparable hardware (the
# CI job compares against the artifact refreshed in CI). The generous
# 25% margin plus best-of-N timing inside the harness absorbs normal
# runner noise.

execute_process(
    COMMAND "${PERF_BIN}" --smoke --out "${OUT_JSON}"
    RESULT_VARIABLE perf_status
    OUTPUT_VARIABLE perf_output
    ERROR_VARIABLE perf_output)
message(STATUS "${perf_output}")
if(NOT perf_status EQUAL 0)
    message(FATAL_ERROR "perf_throughput failed (${perf_status})")
endif()

# string(JSON) both validates the document and extracts the geomean.
file(READ "${OUT_JSON}" current_doc)
string(JSON current_geo ERROR_VARIABLE json_error
       GET "${current_doc}" geomean_cycles_per_sec_int)
if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR "bad ${OUT_JSON}: ${json_error}")
endif()
message(STATUS "geomean throughput: ${current_geo} cycles/s")

if(NOT DEFINED BASELINE OR BASELINE STREQUAL "")
    return()
endif()

if(NOT EXISTS "${BASELINE}")
    file(COPY_FILE "${OUT_JSON}" "${BASELINE}")
    message(STATUS "baseline created at ${BASELINE}; threshold skipped "
                   "- [PERF-BASELINE-CREATED]")
    return()
endif()

file(READ "${BASELINE}" baseline_doc)
string(JSON baseline_geo ERROR_VARIABLE json_error
       GET "${baseline_doc}" geomean_cycles_per_sec_int)
if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR "bad baseline ${BASELINE}: ${json_error}")
endif()

math(EXPR threshold "(3 * ${baseline_geo}) / 4")
if(current_geo LESS threshold)
    message(FATAL_ERROR
            "throughput regression: ${current_geo} cycles/s is more "
            "than 25% below the baseline ${baseline_geo} cycles/s "
            "(threshold ${threshold})")
endif()
message(STATUS "throughput OK: ${current_geo} cycles/s vs baseline "
               "${baseline_geo} cycles/s (threshold ${threshold})")
