# Simulator-throughput check driven by ctest and the perf-smoke CI job:
# run bench/perf_throughput in smoke mode, validate the emitted
# BENCH_perf.json (including its --sim-threads scaling curve), and
# (when a baseline is supplied) fail on a >25% geomean-throughput
# regression or a >5% single-thread regression on the scaling point.
#
# Expected variables:
#   PERF_BIN      - path to the perf_throughput binary
#   OUT_JSON      - where to write BENCH_perf.json
#   BASELINE      - optional path to a baseline BENCH_perf.json; when
#                   the file does not exist yet it is created from this
#                   run and the thresholds are skipped (first-run
#                   bootstrap).
#   CHECK_SCALING - when set to a truthy value, require the 4-thread
#                   row of the scaling curve to reach >= 2x speedup
#                   over 1 thread. Only the CI job sets this: the
#                   check needs >= 4 real cores, and on smaller hosts
#                   the script prints [SKIP-SCALING-CHECK] and moves
#                   on instead of failing.
#
# Wall-clock throughput is machine-dependent, so the thresholds only
# make sense against a baseline produced on comparable hardware (the
# CI job compares against the artifact refreshed in CI). The generous
# 25% margin plus best-of-N timing inside the harness absorbs normal
# runner noise; the single-thread guard is tighter (5%) because it
# compares the same one point best-of-N against itself and exists to
# catch the parallel loop taxing the serial path (docs/PARALLELISM.md
# promises the 1-thread configuration stays on the event-driven loop).

execute_process(
    COMMAND "${PERF_BIN}" --smoke --out "${OUT_JSON}"
    RESULT_VARIABLE perf_status
    OUTPUT_VARIABLE perf_output
    ERROR_VARIABLE perf_output)
message(STATUS "${perf_output}")
if(NOT perf_status EQUAL 0)
    message(FATAL_ERROR "perf_throughput failed (${perf_status})")
endif()

# string(JSON) both validates the document and extracts the geomean.
file(READ "${OUT_JSON}" current_doc)
string(JSON current_geo ERROR_VARIABLE json_error
       GET "${current_doc}" geomean_cycles_per_sec_int)
if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR "bad ${OUT_JSON}: ${json_error}")
endif()
message(STATUS "geomean throughput: ${current_geo} cycles/s")

# The scaling curve is part of the report contract: its integer
# mirrors must always be present and well-formed.
string(JSON current_t1 ERROR_VARIABLE json_error
       GET "${current_doc}" thread_scaling t1_cycles_per_sec_int)
if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR
            "bad ${OUT_JSON}: missing thread_scaling curve "
            "(${json_error})")
endif()
string(JSON current_speedup4 ERROR_VARIABLE json_error
       GET "${current_doc}" thread_scaling speedup_x100_at_4)
if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR
            "bad ${OUT_JSON}: missing thread_scaling speedup mirror "
            "(${json_error})")
endif()
string(JSON host_threads ERROR_VARIABLE json_error
       GET "${current_doc}" thread_scaling host_hw_threads)
if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR
            "bad ${OUT_JSON}: missing thread_scaling host_hw_threads "
            "(${json_error})")
endif()
math(EXPR speedup4_pct "${current_speedup4}")
message(STATUS "single-thread rate: ${current_t1} cycles/s; "
               "4-thread speedup: ${speedup4_pct}/100x on "
               "${host_threads} hardware threads")

if(CHECK_SCALING)
    if(host_threads LESS 4)
        message(STATUS
                "host has only ${host_threads} hardware thread(s); a "
                "4-worker speedup target is meaningless here - "
                "[SKIP-SCALING-CHECK]")
    else()
        # Every measured curve must clear the floor: GETM (core-private
        # state) and WarpTM-LL/EAPG (shared commit ids through the
        # reservation scheme) alike.
        string(JSON num_curves ERROR_VARIABLE json_error
               LENGTH "${current_doc}" thread_scaling_curves)
        if(NOT json_error STREQUAL "NOTFOUND")
            message(FATAL_ERROR
                    "bad ${OUT_JSON}: missing thread_scaling_curves "
                    "(${json_error})")
        endif()
        math(EXPR last_curve "${num_curves} - 1")
        foreach(i RANGE ${last_curve})
            string(JSON curve_proto
                   GET "${current_doc}" thread_scaling_curves ${i}
                       protocol)
            string(JSON curve_speedup4
                   GET "${current_doc}" thread_scaling_curves ${i}
                       speedup_x100_at_4)
            if(curve_speedup4 LESS 200)
                message(FATAL_ERROR
                        "parallel cycle loop scaling regression "
                        "(${curve_proto}): --sim-threads 4 reached "
                        "only ${curve_speedup4}/100x speedup over 1 "
                        "thread on a ${host_threads}-thread host "
                        "(required >= 2.00x; see docs/PARALLELISM.md)")
            endif()
            message(STATUS
                    "scaling OK (${curve_proto}): --sim-threads 4 "
                    "speedup ${curve_speedup4}/100x >= 2.00x")
        endforeach()
    endif()
endif()

if(NOT DEFINED BASELINE OR BASELINE STREQUAL "")
    return()
endif()

if(NOT EXISTS "${BASELINE}")
    file(COPY_FILE "${OUT_JSON}" "${BASELINE}")
    message(STATUS "baseline created at ${BASELINE}; threshold skipped "
                   "- [PERF-BASELINE-CREATED]")
    return()
endif()

file(READ "${BASELINE}" baseline_doc)
string(JSON baseline_geo ERROR_VARIABLE json_error
       GET "${baseline_doc}" geomean_cycles_per_sec_int)
if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR "bad baseline ${BASELINE}: ${json_error}")
endif()

math(EXPR threshold "(3 * ${baseline_geo}) / 4")
if(current_geo LESS threshold)
    message(FATAL_ERROR
            "throughput regression: ${current_geo} cycles/s is more "
            "than 25% below the baseline ${baseline_geo} cycles/s "
            "(threshold ${threshold})")
endif()
message(STATUS "throughput OK: ${current_geo} cycles/s vs baseline "
               "${baseline_geo} cycles/s (threshold ${threshold})")

# Single-thread regression guard (5%): the parallel loop must be free
# when it is off. Baselines written before the scaling curve existed
# have no thread_scaling section; skip until the baseline refreshes.
string(JSON baseline_t1 ERROR_VARIABLE json_error
       GET "${baseline_doc}" thread_scaling t1_cycles_per_sec_int)
if(NOT json_error STREQUAL "NOTFOUND")
    message(STATUS "baseline predates the thread_scaling curve; "
                   "single-thread guard skipped until it refreshes")
elseif(baseline_t1 GREATER 0)
    math(EXPR t1_threshold "(19 * ${baseline_t1}) / 20")
    if(current_t1 LESS t1_threshold)
        message(FATAL_ERROR
                "single-thread throughput regression: ${current_t1} "
                "cycles/s is more than 5% below the baseline "
                "${baseline_t1} cycles/s (threshold ${t1_threshold}); "
                "the multi-threaded cycle loop must not tax "
                "--sim-threads 1 runs (docs/PARALLELISM.md)")
    endif()
    message(STATUS "single-thread OK: ${current_t1} cycles/s vs "
                   "baseline ${baseline_t1} cycles/s (threshold "
                   "${t1_threshold})")
endif()
