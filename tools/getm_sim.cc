/**
 * @file
 * getm_sim: command-line driver for the simulator.
 *
 * Runs any Table III benchmark under any protocol with the knobs the
 * evaluation sweeps, and prints a result summary (optionally the full
 * statistics dump or the kernel disassembly). Examples:
 *
 *     getm_sim --bench HT-H --protocol getm
 *     getm_sim --bench ATM --protocol warptm --scale 0.5 --stats
 *     getm_sim --bench AP --protocol fglock --disasm
 *     getm_sim --list
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "check/checker.hh"
#include "check/fault.hh"
#include "check/reference_exec.hh"
#include "common/sim_error.hh"
#include "common/stop_flag.hh"
#include "gpu/config_file.hh"
#include "gpu/gpu_system.hh"
#include "obs/metrics.hh"
#include "power/tm_structures.hh"
#include "workloads/registry.hh"

using namespace getm;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --bench SPEC        HT-H HT-M HT-L ATM CL CLto BH CC AP,\n"
        "                      or a parameterized OLTP spec such as\n"
        "                      YCSB:theta=0.95 or BANK:accounts=1e5\n"
        "                      (see --list-benches)\n"
        "  --protocol NAME     getm | warptm | warptm-el | eapg | fglock\n"
        "  --scale F           workload scale (default 0.25; 1.0 = paper)\n"
        "  --seed N            workload seed (default 7)\n"
        "  --concurrency N     tx warps/core (default: Table IV optimum;\n"
        "                      0 = unlimited)\n"
        "  --cores N           SIMT cores (default 15)\n"
        "  --partitions N      memory partitions (default 6)\n"
        "  --granule N         GETM metadata granularity bytes (def. 32)\n"
        "  --table-entries N   GETM precise entries GPU-wide (def. 4096)\n"
        "  --max-registers     GETM ablation: registers instead of Bloom\n"
        "  --rollover N        force GETM timestamp rollover at N\n"
        "  --config FILE       apply a key=value configuration file\n"
        "  --timeline FILE     write a Chrome-trace tx timeline\n"
        "                      (named tracks; telemetry counter rows)\n"
        "  --metrics FILE      write the full metrics document (JSON:\n"
        "                      stats tree, abort-reason breakdown,\n"
        "                      hot-address table, sampled time-series)\n"
        "  --sample-interval N telemetry sampling period in cycles\n"
        "                      (default 512 when --metrics is given,\n"
        "                      else 0 = off)\n"
        "  --hot-addrs N       rows in the hot-address table (def. 16)\n"
        "  --trace-tx N        trace every Nth transaction's lifecycle\n"
        "                      (1 = all; 0 = off). Adds a \"tx_trace\"\n"
        "                      section to --metrics and per-warp spans\n"
        "                      to --timeline; observe-only, so simulated\n"
        "                      timing is unchanged\n"
        "  --check[=LEVEL]     runtime correctness checker: read |\n"
        "                      serial (default) | ref. Violations go to\n"
        "                      stderr and fail the run; timing and all\n"
        "                      reported stats are unchanged\n"
        "  --inject=FAULT[@P]  inject a protocol fault with probability\n"
        "                      P (default 1): skip-rts-bump |\n"
        "                      force-store-grant | commit-stale-read |\n"
        "                      skip-validation | corrupt-commit |\n"
        "                      drop-commit-write | leak-lock\n"
        "  --sim-threads N     worker threads for the per-cycle loop\n"
        "                      (default 1). Results are byte-identical\n"
        "                      at any thread count and protocol; see\n"
        "                      docs/PARALLELISM.md for the contract and\n"
        "                      how to budget against sweep --jobs\n"
        "  --sim-epoch N       max cycles per parallel-loop sync epoch\n"
        "                      (default 1 = barrier every cycle; capped\n"
        "                      at crossbar latency + 1, still\n"
        "                      byte-identical)\n"
        "  --max-cycles N      per-run simulation safety bound\n"
        "                      (default 2000000000)\n"
        "  --watchdog-cycles N declare livelock after N visited cycles\n"
        "                      without an instruction retiring or a tx\n"
        "                      lane committing (default 2000000; 0 off)\n"
        "  --timeout-sec S     abort the run after S seconds of wall\n"
        "                      clock (default 0 = unlimited)\n"
        "  --checkpoint-every N  write a crash-safe machine snapshot\n"
        "                      every N simulated cycles (at the first\n"
        "                      epoch boundary at or past each multiple\n"
        "                      of N); restores are byte-identical\n"
        "  --checkpoint-dir D  snapshot directory (default .)\n"
        "  --restore PATH      resume from a snapshot file, or from the\n"
        "                      newest snapshot in a directory\n"
        "  --ckpt-kill-at N    crash-test hook: vanish (as if SIGKILLed,\n"
        "                      exit 137) at the first visited cycle >= N\n"
        "  --stats             dump all statistics\n"
        "  --json              machine-readable result summary\n"
        "  --disasm            print the kernel disassembly and exit\n"
        "  --area              print the protocol's area/power overheads\n"
        "  --list              list benchmarks and protocols\n"
        "  --list-benches      list every registered bench with its\n"
        "                      parameters, defaults and ranges\n"
        "exit codes: 0 ok; 1 internal error; 2 usage; 3 verification\n"
        "or checker violation; 4 simulation error; 5 watchdog guard\n"
        "(livelock, cycle limit, wall timeout); 128+N stopped by\n"
        "signal N (SIGINT/SIGTERM stop cleanly at the next cycle\n"
        "boundary, flushing metrics and a final checkpoint)\n",
        argv0);
}

void
listBenches()
{
    for (const BenchInfo &info : benchRegistry()) {
        std::printf("%-6s %s\n", info.name, info.summary);
        for (const BenchParamInfo &param : info.params)
            std::printf("       %-10s %-12g default; range [%g, %g]: %s\n",
                        param.key, param.def, param.min, param.max,
                        param.help);
    }
}

std::optional<ProtocolKind>
parseProtocol(std::string name)
{
    for (auto &ch : name)
        ch = static_cast<char>(std::tolower(ch));
    if (name == "getm")
        return ProtocolKind::Getm;
    if (name == "warptm" || name == "warptm-ll")
        return ProtocolKind::WarpTmLL;
    if (name == "warptm-el" || name == "el")
        return ProtocolKind::WarpTmEL;
    if (name == "eapg")
        return ProtocolKind::Eapg;
    if (name == "fglock" || name == "lock")
        return ProtocolKind::FgLock;
    return std::nullopt;
}

int
runSimulation(const WorkloadSpec &bench, ProtocolKind protocol,
              double scale, std::uint64_t seed, GpuConfig &cfg,
              bool dump_stats, bool disasm, bool json,
              const std::string &metrics_path,
              std::uint64_t max_cycles);

} // namespace

int
main(int argc, char **argv)
{
    WorkloadSpec bench{"HT-H"};
    ProtocolKind protocol = ProtocolKind::Getm;
    double scale = 0.25;
    std::uint64_t seed = 7;
    std::optional<unsigned> concurrency;
    GpuConfig cfg = GpuConfig::gtx480();
    bool dump_stats = false, disasm = false, area = false;
    bool json = false;
    std::string metrics_path;
    bool sample_interval_set = false;
    std::uint64_t max_cycles = 2'000'000'000ull;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--bench") {
            std::string spec_error;
            if (!parseWorkloadSpec(next(), bench, spec_error)) {
                std::fprintf(stderr, "%s\n", spec_error.c_str());
                return 2;
            }
        } else if (arg == "--protocol") {
            auto parsed = parseProtocol(next());
            if (!parsed) {
                std::fprintf(stderr, "unknown protocol\n");
                return 2;
            }
            protocol = *parsed;
        } else if (arg == "--scale") {
            scale = std::atof(next());
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--concurrency") {
            const unsigned long value = std::strtoul(next(), nullptr, 10);
            concurrency = value == 0 ? 0xffffffffu
                                     : static_cast<unsigned>(value);
        } else if (arg == "--cores") {
            cfg.numCores = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--partitions") {
            cfg.numPartitions = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--granule") {
            cfg.getmGranule = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--table-entries") {
            cfg.getmPreciseEntriesTotal =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--max-registers") {
            cfg.getmUseMaxRegisters = true;
        } else if (arg == "--rollover") {
            cfg.rolloverThreshold = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--config") {
            std::string error;
            if (!loadConfigFile(next(), cfg, error)) {
                std::fprintf(stderr, "config: %s\n", error.c_str());
                return 2;
            }
        } else if (arg == "--timeline") {
            cfg.timelinePath = next();
        } else if (arg == "--metrics") {
            metrics_path = next();
        } else if (arg == "--sample-interval") {
            cfg.sampleInterval = std::strtoull(next(), nullptr, 10);
            sample_interval_set = true;
        } else if (arg == "--hot-addrs") {
            cfg.hotAddrTopN = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--trace-tx") {
            cfg.traceTx = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--check" || arg.rfind("--check=", 0) == 0) {
            const std::string text =
                arg == "--check" ? "on" : arg.substr(8);
            CheckLevel level;
            if (!parseCheckLevel(text, level)) {
                std::fprintf(stderr, "bad check level '%s'\n",
                             text.c_str());
                return 2;
            }
            cfg.checkLevel = static_cast<unsigned>(level);
        } else if (arg.rfind("--inject=", 0) == 0) {
            std::string text = arg.substr(9);
            double prob = 1.0;
            const auto at = text.find('@');
            if (at != std::string::npos) {
                prob = std::atof(text.c_str() + at + 1);
                text.erase(at);
            }
            FaultKind kind;
            if (!parseFaultKind(text, kind) || prob < 0.0 ||
                prob > 1.0) {
                std::fprintf(stderr, "bad fault spec '%s'\n",
                             arg.c_str());
                return 2;
            }
            cfg.injectFault = static_cast<unsigned>(kind);
            cfg.injectProb = prob;
        } else if (arg == "--sim-threads") {
            cfg.simThreads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            if (cfg.simThreads == 0) {
                std::fprintf(stderr, "--sim-threads must be >= 1\n");
                return 2;
            }
        } else if (arg == "--sim-epoch") {
            cfg.simEpoch = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            if (cfg.simEpoch == 0) {
                std::fprintf(stderr, "--sim-epoch must be >= 1\n");
                return 2;
            }
        } else if (arg == "--max-cycles") {
            max_cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--watchdog-cycles") {
            cfg.watchdogCycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--timeout-sec") {
            cfg.timeoutSec = std::atof(next());
        } else if (arg == "--checkpoint-every") {
            cfg.ckptEvery = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--checkpoint-dir") {
            cfg.ckptDir = next();
        } else if (arg == "--restore") {
            cfg.restorePath = next();
        } else if (arg == "--ckpt-kill-at") {
            cfg.ckptKillAt = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--disasm") {
            disasm = true;
        } else if (arg == "--area") {
            area = true;
        } else if (arg == "--list") {
            std::printf("benchmarks: %s\n",
                        registeredBenchNames().c_str());
            std::printf("protocols: getm warptm warptm-el eapg "
                        "fglock\n");
            return 0;
        } else if (arg == "--list-benches") {
            listBenches();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (area) {
        const OverheadReport report = tmOverheads(protocol, cfg);
        for (const auto &row : report.rows)
            std::printf("%-32s %7.1f KB x%-3u %8.3f mm^2 %9.2f mW\n",
                        row.name.c_str(), row.kilobytesPerInstance,
                        row.instances, row.estimate.areaMm2,
                        row.estimate.powerMw);
        std::printf("%-32s %14s %8.3f mm^2 %9.2f mW\n", "TOTAL", "",
                    report.totalAreaMm2, report.totalPowerMw);
        return 0;
    }

    cfg.protocol = protocol;
    cfg.seed = seed;
    cfg.core.txWarpLimit =
        concurrency ? *concurrency : optimalConcurrency(bench, protocol);
    // A metrics document without time-series is half a metrics document:
    // default the sampler on unless the user chose an interval.
    if (!metrics_path.empty() && !sample_interval_set &&
        cfg.sampleInterval == 0)
        cfg.sampleInterval = 512;

    // Graceful shutdown: SIGINT/SIGTERM set a flag the simulation
    // loops poll at every cycle boundary; the run then stops cleanly
    // (final checkpoint when enabled) and surfaces here as SimError
    // INTERRUPT, flushing partial metrics before exiting 128+signal.
    std::signal(SIGINT, [](int sig) { requestStop(sig); });
    std::signal(SIGTERM, [](int sig) { requestStop(sig); });

    try {
        return runSimulation(bench, protocol, scale, seed, cfg,
                             dump_stats, disasm, json, metrics_path,
                             max_cycles);
    } catch (const SimError &e) {
        // A typed simulation pathology: dump the diagnostic snapshot,
        // export a failure document when metrics were requested, and
        // exit with the taxonomy's status (4 general, 5 watchdog,
        // 128+signal for a clean stop) — distinct from verification
        // failure (3) and usage errors (2).
        std::fprintf(stderr, "%s\n", e.diagnostic().toText().c_str());
        if (!metrics_path.empty()) {
            MetricsMeta meta;
            meta.bench = bench.token();
            meta.protocol = protocolName(protocol);
            meta.scale = scale;
            meta.seed = seed;
            meta.config = configProvenance(cfg);
            MetricsFailure failure;
            failure.status = simErrorStatus(e.kind());
            failure.kind = simErrorKindName(e.kind());
            failure.message = e.diagnostic().message;
            failure.diagnosticJson = e.diagnostic().toJson();
            std::string error;
            if (!writeFailureFile(metrics_path, meta, failure, error))
                std::fprintf(stderr, "metrics: %s\n", error.c_str());
            else if (!json)
                std::printf("wrote failure document to %s\n",
                            metrics_path.c_str());
        }
        if (e.kind() == SimErrorKind::Interrupt)
            return 128 + (stopSignal() ? stopSignal() : SIGTERM);
        return simErrorExitCode(e.kind());
    }
}

namespace {

int
runSimulation(const WorkloadSpec &bench, ProtocolKind protocol,
              double scale, std::uint64_t seed, GpuConfig &cfg,
              bool dump_stats, bool disasm, bool json,
              const std::string &metrics_path,
              std::uint64_t max_cycles)
{
    GpuSystem gpu(cfg);
    auto workload = makeWorkload(bench, scale, seed);
    workload->setup(gpu, protocol == ProtocolKind::FgLock);

    if (disasm) {
        std::printf("%s", workload->kernel().disassemble().c_str());
        return 0;
    }

    if (!json)
        std::printf("running %s under %s (scale %.3g, %llu threads)...\n",
                    bench.token().c_str(), protocolName(protocol), scale,
                    static_cast<unsigned long long>(
                        workload->numThreads()));
    RunResult result = gpu.run(workload->kernel(),
                               workload->numThreads(), max_cycles);

    // Label hot granules the workload can explain (zipf head keys,
    // hot accounts); paper workloads leave every label empty.
    bool have_labels = false;
    for (HotAddrRow &row : result.obs.hotAddrs)
        have_labels |= workload->addrInfo(row.addr, row.label);

    Checker *checker = gpu.checkerPtr();
    if (checker && checker->level() >= CheckLevel::Ref) {
        // Ref level: replay the kernel on a single-threaded reference
        // executor over an identically-seeded memory image and compare
        // final contents. Order-sensitive workloads can legitimately
        // diverge (see check/reference_exec.hh).
        GpuConfig ref_cfg = cfg;
        ref_cfg.checkLevel = 0;
        ref_cfg.injectFault = 0;
        GpuSystem ref_gpu(ref_cfg);
        auto ref_workload = makeWorkload(bench, scale, seed);
        ref_workload->setup(ref_gpu, protocol == ProtocolKind::FgLock);
        check::referenceRun(ref_workload->kernel(),
                            ref_workload->numThreads(), ref_gpu.memory());
        checker->crossCheckReference(ref_gpu.memory(), gpu.memory());
        result.check = checker->report();
    }

    const bool check_clean = result.check.totalViolations == 0;
    if (checker) {
        std::fprintf(stderr, "%s\n", result.check.summary().c_str());
        for (const Violation &v : result.check.samples)
            std::fprintf(stderr,
                         "  %s addr=%#llx tx=%llu expected=%u actual=%u"
                         "%s%s\n",
                         violationKindName(v.kind),
                         static_cast<unsigned long long>(v.addr),
                         static_cast<unsigned long long>(v.tx),
                         v.expected, v.actual,
                         v.detail.empty() ? "" : ": ",
                         v.detail.c_str());
    }

    std::string why;
    const bool ok = workload->verify(gpu, why) && check_clean;
    if (!check_clean && why.empty())
        why = "runtime checker reported violations";

    if (!metrics_path.empty()) {
        MetricsMeta meta;
        meta.bench = bench.token();
        meta.protocol = protocolName(protocol);
        meta.scale = scale;
        meta.seed = seed;
        meta.threads = workload->numThreads();
        meta.verified = ok;
        meta.cycles = result.cycles;
        meta.commits = result.commits;
        meta.aborts = result.aborts;
        meta.txExecCycles = result.txExecCycles;
        meta.txWaitCycles = result.txWaitCycles;
        meta.xbarFlits = result.xbarFlits;
        meta.rollovers = result.rollovers;
        meta.maxLogicalTs = result.maxLogicalTs;
        meta.config = configProvenance(cfg);
        if (result.check.totalViolations) {
            meta.checkLevel = checkLevelName(result.check.level);
            for (unsigned i = 0;
                 i < static_cast<unsigned>(ViolationKind::Count); ++i)
                if (result.check.byKind[i])
                    meta.checkViolations.emplace_back(
                        violationKindName(static_cast<ViolationKind>(i)),
                        result.check.byKind[i]);
        }
        std::string error;
        if (!writeMetricsFile(metrics_path, meta, result.stats,
                              result.obs, error)) {
            std::fprintf(stderr, "metrics: %s\n", error.c_str());
            return 1;
        }
        if (!json)
            std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }

    if (json) {
        std::printf("{\"bench\":\"%s\",\"protocol\":\"%s\","
                    "\"scale\":%g,\"threads\":%llu,"
                    "\"cycles\":%llu,\"commits\":%llu,"
                    "\"aborts\":%llu,\"tx_exec\":%llu,"
                    "\"tx_wait\":%llu,\"flits\":%llu,"
                    "\"rollovers\":%llu,\"verified\":%s}\n",
                    bench.token().c_str(), protocolName(protocol),
                    scale,
                    static_cast<unsigned long long>(
                        workload->numThreads()),
                    static_cast<unsigned long long>(result.cycles),
                    static_cast<unsigned long long>(result.commits),
                    static_cast<unsigned long long>(result.aborts),
                    static_cast<unsigned long long>(result.txExecCycles),
                    static_cast<unsigned long long>(result.txWaitCycles),
                    static_cast<unsigned long long>(result.xbarFlits),
                    static_cast<unsigned long long>(result.rollovers),
                    ok ? "true" : "false");
        return ok ? 0 : exitVerification;
    }
    std::printf("cycles        %llu\n",
                static_cast<unsigned long long>(result.cycles));
    std::printf("commits       %llu\n",
                static_cast<unsigned long long>(result.commits));
    std::printf("aborts        %llu (%.0f /1K commits)\n",
                static_cast<unsigned long long>(result.aborts),
                result.abortsPer1kCommits());
    for (unsigned i = 0; i < numAbortReasons; ++i)
        if (result.obs.abortLanesByReason[i])
            std::printf("  %-21s %llu\n",
                        abortReasonName(static_cast<AbortReason>(i)),
                        static_cast<unsigned long long>(
                            result.obs.abortLanesByReason[i]));
    std::printf("tx exec/wait  %llu / %llu warp-cycles\n",
                static_cast<unsigned long long>(result.txExecCycles),
                static_cast<unsigned long long>(result.txWaitCycles));
    std::printf("xbar flits    %llu\n",
                static_cast<unsigned long long>(result.xbarFlits));
    if (result.rollovers)
        std::printf("rollovers     %llu\n",
                    static_cast<unsigned long long>(result.rollovers));
    if (have_labels) {
        std::printf("hot addresses\n");
        for (const HotAddrRow &row : result.obs.hotAddrs) {
            if (row.label.empty())
                continue;
            std::printf("  %#10llx %8llu events  %s\n",
                        static_cast<unsigned long long>(row.addr),
                        static_cast<unsigned long long>(row.total),
                        row.label.c_str());
        }
    }
    std::printf("verification  %s%s%s\n", ok ? "PASS" : "FAIL",
                ok ? "" : ": ", ok ? "" : why.c_str());
    if (dump_stats)
        std::printf("\n%s", result.stats.dump().c_str());
    return ok ? 0 : exitVerification;
}

} // namespace
