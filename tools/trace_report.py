#!/usr/bin/env python3
"""Summarize a transaction trace produced with --trace-tx.

Accepts either a getm-metrics document that carries a "tx_trace"
section (getm-sim --trace-tx N --metrics out.json) or a standalone
getm-tx-trace document (getm-sweep --trace-tx N writes one per point
as points/<id>.trace.json).

Prints, from the trace alone:

  * the aggregate cycle breakdown (exec / noc / stall / validation /
    retry) with percentages — with --fig10, rearranged into the
    paper's Fig. 10 useful-execution vs. wasted-time split using the
    raw scheduler-state totals;
  * NoC hop statistics (mean latency and bytes per direction);
  * the longest kill chains (who aborted whom, where, and why);
  * the slowest traced transactions (--top N, default 5).

Before reporting, re-verifies the tracer's defining invariant on every
transaction: the five cycle categories sum exactly to the lifetime.
Exits non-zero if any row violates it, so this script doubles as a
trace checker in CI.

Usage: trace_report.py TRACE_OR_METRICS.json [--top N] [--fig10]
"""

import argparse
import json
import sys


def fail(why):
    print(f"trace_report: {why}", file=sys.stderr)
    return 1


def load_trace(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema not in ("getm-metrics", "getm-tx-trace"):
        raise ValueError(f"unsupported schema {schema!r}")
    trace = doc.get("tx_trace")
    if trace is None:
        raise ValueError("document has no tx_trace section "
                         "(was the run traced with --trace-tx?)")
    return doc, trace


def verify_sum_invariant(trace):
    """The categories must sum exactly to each transaction's lifetime."""
    bad = []
    for tx in trace["transactions"]:
        cycles = tx["cycles"]
        breakdown = (cycles["exec"] + cycles["noc"] + cycles["stall"]
                     + cycles["validation"] + cycles["retry"])
        if breakdown != tx["lifetime"]:
            bad.append((tx["trace_id"], breakdown, tx["lifetime"]))
    return bad


def pct(part, whole):
    return 100.0 * part / whole if whole else 0.0


def describe_link(link):
    where = (f" @ {link['addr_hex']} p{link['partition']}"
             if "addr_hex" in link else "")
    killer = (f"warp {link['aborter_warp']}"
              if link["aborter_warp"] >= 0 else "unknown warp")
    return (f"attempt {link['attempt']}: {link['reason']} by {killer}"
            f"{where} @ cycle {link['cycle']}")


def report(doc, trace, top, fig10):
    point = doc.get("point")
    meta = doc.get("meta", {})
    title = point or (f"{meta.get('bench', '?')}/"
                      f"{meta.get('protocol', '?')}" if meta else "trace")
    print(f"=== tx trace: {title} ===")
    print(f"sampled 1/{trace['sample_rate']}: traced {trace['traced']} "
          f"of {trace['tx_seen']} transactions "
          f"({trace['committed']} committed, {trace['open']} open at "
          f"end of run)")

    totals = trace["totals"]
    lifetime = totals["lifetime"]
    print(f"\ncycle accounting over {lifetime} traced warp-cycles:")
    for key in ("exec", "noc", "stall", "validation", "retry"):
        print(f"  {key:<11} {totals[key]:>12}  "
              f"{pct(totals[key], lifetime):6.2f}%")

    if fig10:
        # The paper's Fig. 10 splits transaction time into useful
        # execution vs. wasted (wait) time. The raw scheduler-state
        # totals mirror the run's tx_exec/tx_wait counters: exec+mem
        # is useful-ish execution, validate+backoff is waiting.
        useful = totals["raw_exec"] + totals["raw_mem"]
        wasted = totals["raw_validate"] + totals["raw_backoff"]
        whole = useful + wasted
        print("\nFig. 10 split (from raw scheduler states):")
        print(f"  useful execution {useful:>12}  "
              f"{pct(useful, whole):6.2f}%")
        print(f"  wasted (wait)    {wasted:>12}  "
              f"{pct(wasted, whole):6.2f}%")

    print()
    for direction in ("up", "down"):
        hop = trace["noc"][direction]
        mean = hop["latency_cycles"] / hop["msgs"] if hop["msgs"] else 0.0
        print(f"noc {direction:<4} {hop['msgs']:>10} msgs, "
              f"{hop['bytes']:>12} bytes, mean latency {mean:6.2f} "
              f"cycles")

    chains = trace["kill_chains"]
    if chains:
        print(f"\ntop kill chains ({len(chains)} exported):")
        for chain in chains:
            print(f"  tx {chain['trace_id']} (warp "
                  f"{chain['victim_warp']}): aborted "
                  f"{chain['length']} time(s)")
            for link in chain["links"]:
                print(f"    {describe_link(link)}")
    else:
        print("\nno aborts among traced transactions")

    txs = sorted(trace["transactions"], key=lambda t: t["lifetime"],
                 reverse=True)[:top]
    if txs:
        print(f"\nslowest {len(txs)} traced transactions:")
        for tx in txs:
            cycles = tx["cycles"]
            state = ("committed" if tx["committed"]
                     else "open at end of run")
            print(f"  tx {tx['trace_id']} warp {tx['warp']} "
                  f"(core {tx['core']} slot {tx['slot']}): "
                  f"{tx['lifetime']} cycles over {tx['attempts']} "
                  f"attempt(s), {state}")
            print(f"    exec {cycles['exec']} / noc {cycles['noc']} / "
                  f"stall {cycles['stall']} / validation "
                  f"{cycles['validation']} / retry {cycles['retry']}; "
                  f"{tx['accesses']['completed']}/"
                  f"{tx['accesses']['issued']} accesses completed")


def main(argv):
    parser = argparse.ArgumentParser(
        prog="trace_report.py",
        description="Summarize a --trace-tx transaction trace.")
    parser.add_argument("path", help="metrics or trace JSON document")
    parser.add_argument("--top", type=int, default=5,
                        help="slowest transactions to list (default 5)")
    parser.add_argument("--fig10", action="store_true",
                        help="print the Fig. 10 useful-vs-wasted split "
                             "from the raw scheduler-state totals")
    args = parser.parse_args(argv[1:])

    try:
        doc, trace = load_trace(args.path)
    except (OSError, json.JSONDecodeError, ValueError) as err:
        return fail(f"{args.path}: {err}")

    bad = verify_sum_invariant(trace)
    if bad:
        for trace_id, breakdown, lifetime in bad:
            print(f"trace_report: {args.path}: tx {trace_id}: cycle "
                  f"categories sum to {breakdown}, lifetime is "
                  f"{lifetime}", file=sys.stderr)
        return 1

    report(doc, trace, args.top, args.fig10)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
