# Sweep parallel-speedup check driven by ctest: time an 8-point sweep
# at --jobs 1 and --jobs 4 and require >= 2.5x wall-clock improvement.
# The check needs real parallel hardware; on machines with fewer than 4
# processors it prints the SKIP marker matched by the test's
# SKIP_REGULAR_EXPRESSION property and returns.
#
# Expected variables:
#   SWEEP_BIN - path to the getm-sweep binary
#   MANIFEST  - path to an 8-point sweep manifest
#   OUT_DIR   - writable scratch directory

cmake_host_system_information(RESULT num_cpus
                              QUERY NUMBER_OF_LOGICAL_CORES)
if(num_cpus LESS 4)
    message(STATUS "only ${num_cpus} logical cores; speedup check "
                   "needs >= 4 - [SKIP-SPEEDUP-CHECK]")
    return()
endif()

foreach(run "serial;1" "parallel;4")
    list(GET run 0 label)
    list(GET run 1 jobs)
    set(dir "${OUT_DIR}/sweep_speedup_${label}")
    file(REMOVE_RECURSE "${dir}")
    string(TIMESTAMP t0 "%s")
    execute_process(
        COMMAND "${SWEEP_BIN}" --manifest "${MANIFEST}" --dir "${dir}"
                --jobs "${jobs}" --quiet
        RESULT_VARIABLE sweep_status
        OUTPUT_VARIABLE sweep_output
        ERROR_VARIABLE sweep_output)
    string(TIMESTAMP t1 "%s")
    if(NOT sweep_status EQUAL 0)
        message(FATAL_ERROR
                "getm-sweep (--jobs ${jobs}) failed "
                "(${sweep_status}):\n${sweep_output}")
    endif()
    math(EXPR elapsed_${label} "${t1} - ${t0}")
    message(STATUS "--jobs ${jobs}: ${elapsed_${label}}s")
endforeach()

# Integer-second timing: require serial >= ceil(2.5 * parallel) with a
# little guard against a degenerate 0s parallel run.
if(elapsed_parallel LESS 1)
    set(elapsed_parallel 1)
endif()
math(EXPR threshold "(5 * ${elapsed_parallel} + 1) / 2")
if(elapsed_serial LESS threshold)
    message(FATAL_ERROR
            "parallel speedup below 2.5x: serial ${elapsed_serial}s vs "
            "parallel ${elapsed_parallel}s on 4 workers")
endif()
message(STATUS "speedup OK: serial ${elapsed_serial}s / parallel "
               "${elapsed_parallel}s >= 2.5x")
