# Checkpoint/restore determinism check driven by ctest: for every
# protocol (GETM, WarpTM-LL, WarpTM-EL, EAPG), at --sim-threads 1 and
# 4, with and without fault injection, run the same benchmark three
# ways:
#
#   base     uninterrupted, fully instrumented (--json stdout, metrics
#            document, timeline);
#   killed   identical instrumentation plus --checkpoint-every, cut
#            mid-flight by the --ckpt-kill-at crash hook (a SIGKILL
#            stand-in: std::_Exit, no cleanup, no final checkpoint);
#   restored --restore from the killed run's last snapshot.
#
# The contract (docs/DURABILITY.md): the restored run's stdout,
# metrics document, and timeline are byte-identical to base, the kill
# exits 137, and the restore genuinely resumes mid-kernel (cycle > 0,
# asserted via the "restored checkpoint ... (cycle N)" stderr line).
#
# Runs are executed inside per-run working directories so relative
# side-file paths -- which appear in stdout -- are identical bytes.
#
# Expected variables:
#   SIM_BIN - path to the getm-sim binary
#   OUT_DIR - writable scratch directory

set(work_dir "${OUT_DIR}/ckpt_check")
file(REMOVE_RECURSE "${work_dir}")
file(MAKE_DIRECTORY "${work_dir}")

set(kill_at 1500)
set(every 400)

foreach(protocol getm warptm warptm-el eapg)
    foreach(threads 1 4)
        foreach(variant plain inject)
            set(fixture "${protocol}_t${threads}_${variant}")
            set(extra_args "")
            if(variant STREQUAL "inject")
                set(extra_args --inject=skip-validation@0.02)
            endif()
            set(common_args --bench HT-H --protocol ${protocol}
                --scale 0.05 --sim-threads ${threads} --json
                --metrics m.json --timeline t.json ${extra_args})

            foreach(run base killed restored)
                set(run_dir "${work_dir}/${fixture}/${run}")
                file(MAKE_DIRECTORY "${run_dir}")
                set(run_args "${SIM_BIN}" ${common_args})
                if(run STREQUAL "killed")
                    list(APPEND run_args
                         --checkpoint-every ${every}
                         --checkpoint-dir ckpt
                         --ckpt-kill-at ${kill_at})
                elseif(run STREQUAL "restored")
                    list(APPEND run_args
                         --restore "${work_dir}/${fixture}/killed/ckpt")
                endif()
                execute_process(
                    COMMAND ${run_args}
                    WORKING_DIRECTORY "${run_dir}"
                    RESULT_VARIABLE sim_status
                    OUTPUT_FILE "${run_dir}/stdout.json"
                    ERROR_VARIABLE sim_stderr)
                if(run STREQUAL "killed")
                    if(NOT sim_status EQUAL 137)
                        message(FATAL_ERROR
                                "${fixture}: --ckpt-kill-at should "
                                "exit 137, got ${sim_status}:\n"
                                "${sim_stderr}")
                    endif()
                else()
                    if(NOT sim_status EQUAL 0)
                        message(FATAL_ERROR
                                "${fixture} (${run}) failed "
                                "(${sim_status}):\n${sim_stderr}")
                    endif()
                endif()
                if(run STREQUAL "restored")
                    if(NOT sim_stderr MATCHES
                       "restored checkpoint .* \\(cycle ([0-9]+)\\)")
                        message(FATAL_ERROR
                                "${fixture}: restore did not report "
                                "its resume cycle:\n${sim_stderr}")
                    endif()
                    if(CMAKE_MATCH_1 EQUAL 0)
                        message(FATAL_ERROR
                                "${fixture}: restore resumed at cycle "
                                "0 -- no mid-kernel state was loaded")
                    endif()
                endif()
            endforeach()

            foreach(artifact "stdout.json" "m.json" "t.json")
                execute_process(
                    COMMAND ${CMAKE_COMMAND} -E compare_files
                            "${work_dir}/${fixture}/base/${artifact}"
                            "${work_dir}/${fixture}/restored/${artifact}"
                    RESULT_VARIABLE same)
                if(NOT same EQUAL 0)
                    message(FATAL_ERROR
                            "${fixture}: ${artifact} differs between "
                            "the uninterrupted and the kill+restore "
                            "run: the snapshot missed machine state "
                            "(docs/DURABILITY.md)")
                endif()
            endforeach()
            message(STATUS
                    "${fixture}: kill at ${kill_at} + restore is "
                    "byte-identical")
        endforeach()
    endforeach()
endforeach()

# Cross-thread restore: snapshots carry no sim-thread count (threads
# are not provenance -- docs/PARALLELISM.md), so a checkpoint written
# at --sim-threads 4 must restore into a --sim-threads 1 run and still
# reproduce the single-threaded base bytes. Reuses getm_t4_plain's
# killed snapshot and getm_t1_plain's base artifacts.
set(cross_dir "${work_dir}/cross_thread")
file(MAKE_DIRECTORY "${cross_dir}")
execute_process(
    COMMAND "${SIM_BIN}" --bench HT-H --protocol getm --scale 0.05
            --sim-threads 1 --json --metrics m.json --timeline t.json
            --restore "${work_dir}/getm_t4_plain/killed/ckpt"
    WORKING_DIRECTORY "${cross_dir}"
    RESULT_VARIABLE cross_status
    OUTPUT_FILE "${cross_dir}/stdout.json"
    ERROR_VARIABLE cross_stderr)
if(NOT cross_status EQUAL 0)
    message(FATAL_ERROR
            "cross-thread restore failed (${cross_status}):\n"
            "${cross_stderr}")
endif()
foreach(artifact "stdout.json" "m.json" "t.json")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${work_dir}/getm_t1_plain/base/${artifact}"
                "${cross_dir}/${artifact}"
        RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR
                "cross-thread restore: ${artifact} differs from the "
                "--sim-threads 1 base -- a snapshot written at "
                "--sim-threads 4 must restore thread-count-blind")
    endif()
endforeach()
message(STATUS
        "t=4 snapshot restored into a t=1 run, byte-identical")
