# End-to-end metrics check driven by ctest: run the simulator with
# --metrics and validate the emitted document with check_metrics.py.
#
# Expected variables:
#   SIM_BIN  - path to the getm-sim binary
#   CHECKER  - path to check_metrics.py
#   PYTHON   - python3 interpreter
#   OUT_DIR  - writable scratch directory

set(metrics_file "${OUT_DIR}/metrics_check.json")

execute_process(
    COMMAND "${SIM_BIN}" --bench HT-H --protocol getm --scale 0.05
            --metrics "${metrics_file}"
    RESULT_VARIABLE sim_status
    OUTPUT_VARIABLE sim_output
    ERROR_VARIABLE sim_output)
if(NOT sim_status EQUAL 0)
    message(FATAL_ERROR "getm-sim failed (${sim_status}):\n${sim_output}")
endif()

execute_process(
    COMMAND "${PYTHON}" "${CHECKER}" "${metrics_file}"
    RESULT_VARIABLE check_status
    OUTPUT_VARIABLE check_output
    ERROR_VARIABLE check_output)
if(NOT check_status EQUAL 0)
    message(FATAL_ERROR
            "check_metrics.py failed (${check_status}):\n${check_output}")
endif()
message(STATUS "${check_output}")
