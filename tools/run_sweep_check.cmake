# Serial-vs-parallel sweep determinism check driven by ctest: run the
# smoke sweep once with --jobs 1 and once with --jobs 4 into separate
# directories, require the merged sweep.json bytes to be identical, and
# validate the merged document with check_metrics.py. A third run with
# --trace-tx 1 must also produce byte-identical sweep.json (tracing is
# observe-only and the trace lives in side files) plus one
# points/<id>.trace.json per point. A fourth run with --sim-threads 2
# exercises the multi-threaded cycle loop inside each point, which is
# contractually byte-deterministic (docs/PARALLELISM.md).
#
# Expected variables:
#   SWEEP_BIN - path to the getm-sweep binary
#   MANIFEST  - path to the sweep manifest to run
#   CHECKER   - path to check_metrics.py ("" to skip validation)
#   PYTHON    - python3 interpreter ("" to skip validation)
#   OUT_DIR   - writable scratch directory
#   GOLDEN    - optional checked-in golden sweep.json; when set, the
#               serial merged output must be byte-identical to it, so
#               any refactor that changes a single stat byte fails here

set(serial_dir "${OUT_DIR}/sweep_check_serial")
set(parallel_dir "${OUT_DIR}/sweep_check_parallel")
set(traced_dir "${OUT_DIR}/sweep_check_traced")
set(simthreads_dir "${OUT_DIR}/sweep_check_simthreads")
file(REMOVE_RECURSE "${serial_dir}" "${parallel_dir}" "${traced_dir}"
     "${simthreads_dir}")

foreach(run "serial;1" "parallel;4" "traced;2;--trace-tx;1"
        "simthreads;1;--sim-threads;2")
    list(GET run 0 label)
    list(GET run 1 jobs)
    set(extra_args "${run}")
    list(REMOVE_AT extra_args 0 1)
    execute_process(
        COMMAND "${SWEEP_BIN}" --manifest "${MANIFEST}"
                --dir "${OUT_DIR}/sweep_check_${label}"
                --jobs "${jobs}" --quiet ${extra_args}
        RESULT_VARIABLE sweep_status
        OUTPUT_VARIABLE sweep_output
        ERROR_VARIABLE sweep_output)
    if(NOT sweep_status EQUAL 0)
        message(FATAL_ERROR
                "getm-sweep (${label}, --jobs ${jobs}) failed "
                "(${sweep_status}):\n${sweep_output}")
    endif()
    message(STATUS "${sweep_output}")
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${serial_dir}/sweep.json" "${parallel_dir}/sweep.json"
    RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "merged sweep.json differs between --jobs 1 and --jobs 4: "
            "per-point isolation or merge ordering is broken")
endif()
message(STATUS "serial and parallel sweep.json are byte-identical")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${serial_dir}/sweep.json" "${traced_dir}/sweep.json"
    RESULT_VARIABLE same_traced)
if(NOT same_traced EQUAL 0)
    message(FATAL_ERROR
            "merged sweep.json differs with --trace-tx 1: the tracer "
            "perturbed simulated timing or leaked into the metrics "
            "documents (it must be observe-only, with traces in "
            "points/<id>.trace.json side files)")
endif()
file(GLOB trace_files "${traced_dir}/points/*.trace.json")
list(LENGTH trace_files num_traces)
if(num_traces EQUAL 0)
    message(FATAL_ERROR
            "--trace-tx 1 wrote no points/*.trace.json side files")
endif()
message(STATUS
        "traced sweep.json is byte-identical; ${num_traces} trace side "
        "file(s) written")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${serial_dir}/sweep.json" "${simthreads_dir}/sweep.json"
    RESULT_VARIABLE same_simthreads)
if(NOT same_simthreads EQUAL 0)
    message(FATAL_ERROR
            "merged sweep.json differs with --sim-threads 2: the "
            "multi-threaded cycle loop broke byte-determinism (see "
            "docs/PARALLELISM.md for the ordering contract)")
endif()
message(STATUS "--sim-threads 2 sweep.json is byte-identical")

if(DEFINED GOLDEN AND NOT GOLDEN STREQUAL "")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${serial_dir}/sweep.json" "${GOLDEN}"
        RESULT_VARIABLE same_golden)
    if(NOT same_golden EQUAL 0)
        message(FATAL_ERROR
                "sweep.json differs from the golden fixture ${GOLDEN}: "
                "simulated behavior or the metrics schema changed. If "
                "intentional, regenerate the fixture from "
                "${serial_dir}/sweep.json and explain the change in the "
                "commit message")
    endif()
    message(STATUS "sweep.json matches the golden fixture")
endif()

if(PYTHON AND CHECKER)
    execute_process(
        COMMAND "${PYTHON}" "${CHECKER}" "${serial_dir}/sweep.json"
                ${trace_files}
        RESULT_VARIABLE check_status
        OUTPUT_VARIABLE check_output
        ERROR_VARIABLE check_output)
    if(NOT check_status EQUAL 0)
        message(FATAL_ERROR
                "check_metrics.py failed (${check_status}):\n"
                "${check_output}")
    endif()
    message(STATUS "${check_output}")
endif()
