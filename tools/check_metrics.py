#!/usr/bin/env python3
"""Validate a getm-metrics or getm-sweep JSON document.

For a getm-metrics document, checks the schema identity, the presence
and types of every required section, and the cross-document invariants
the simulator guarantees:

  * sum(aborts_by_reason) == run.aborts (exact abort attribution);
  * every abort-reason table carries the full reason taxonomy, so
    consumers can sum tables without knowing the enum;
  * hot-address rows are sorted by total events and internally
    consistent (by_reason sums to total);
  * time-series rows are rectangular (one value per probe per sample)
    and sample cycles are strictly increasing, at least one interval
    apart.

A getm-metrics *failure* document (a "failure" section in place of
run/stats, written for points that ended in a typed simulation error;
see docs/ROBUSTNESS.md) is validated against its own reduced shape:
schema/meta/config plus a failure section with a known status.

For a getm-sweep document (written by getm-sweep, see docs/SWEEPS.md),
checks the sweep header and that every embedded point is itself a
valid getm-metrics document (full or failure), keyed and sorted by
point id, and that the header's failures index agrees with the
embedded failure documents.

Usage: check_metrics.py METRICS_OR_SWEEP.json [more.json ...]
Exits non-zero with a message on the first violation.
"""

import json
import sys

SCHEMA = "getm-metrics"
VERSION = 1
SWEEP_SCHEMA = "getm-sweep"
SWEEP_VERSION = 1

REASONS = [
    "NONE", "RAW_TS", "WAR_TS", "WAW_TS", "LOCKED_BY_WRITER",
    "STALL_BUFFER_FULL", "BLOOM_FALSE_POSITIVE", "INTRA_WARP",
    "VALIDATION_FAIL", "EAGER_VALIDATION_FAIL", "EARLY_ABORT", "ROLLOVER",
]

TOP_LEVEL = [
    "schema", "version", "meta", "config", "run", "aborts_by_reason",
    "stalls_by_reason", "stall", "distinct_conflict_addrs",
    "hot_addresses", "timeseries", "stats",
]

META_KEYS = ["bench", "protocol", "scale", "seed", "threads", "verified"]
RUN_KEYS = [
    "cycles", "commits", "aborts", "tx_exec_cycles", "tx_wait_cycles",
    "xbar_flits", "rollovers", "max_logical_ts", "aborts_per_1k_commits",
]
STATS_KEYS = ["counters", "maxima", "averages", "histograms"]

FAILURE_TOP_LEVEL = ["schema", "version", "meta", "config", "failure"]
FAILURE_KEYS = ["status", "kind", "message", "attempts"]
FAILURE_STATUSES = [
    "deadlock", "livelock", "cycle-limit", "timeout", "config", "error",
]


class CheckError(Exception):
    pass


def require(cond, why):
    if not cond:
        raise CheckError(why)


def check_reason_table(table, label):
    require(isinstance(table, dict), f"{label} is not an object")
    require(sorted(table) == sorted(REASONS),
            f"{label} keys differ from the reason taxonomy: "
            f"{sorted(set(table) ^ set(REASONS))}")
    for name, count in table.items():
        require(isinstance(count, int) and count >= 0,
                f"{label}[{name}] is not a non-negative integer")
    return sum(table.values())


def check_hot_addresses(rows):
    require(isinstance(rows, list), "hot_addresses is not an array")
    prev_total = None
    for i, row in enumerate(rows):
        label = f"hot_addresses[{i}]"
        for key in ("addr", "addr_hex", "partition", "total",
                    "mean_waiters", "by_reason"):
            require(key in row, f"{label} lacks '{key}'")
        require(row["addr_hex"] == hex(row["addr"]),
                f"{label}: addr_hex {row['addr_hex']} does not match "
                f"addr {row['addr']}")
        require(row["total"] > 0, f"{label}: empty row exported")
        by_reason = row["by_reason"]
        require(all(k in REASONS for k in by_reason),
                f"{label}: unknown reason in by_reason")
        require(sum(by_reason.values()) == row["total"],
                f"{label}: by_reason sums to "
                f"{sum(by_reason.values())}, total says {row['total']}")
        if prev_total is not None:
            require(row["total"] <= prev_total,
                    f"{label}: rows not sorted by total")
        prev_total = row["total"]


def check_timeseries(ts):
    for key in ("interval", "num_samples", "cycles", "series"):
        require(key in ts, f"timeseries lacks '{key}'")
    cycles = ts["cycles"]
    require(len(cycles) == ts["num_samples"],
            "timeseries.num_samples disagrees with cycles[]")
    for name, column in ts["series"].items():
        require(len(column) == len(cycles),
                f"timeseries.series[{name}] is not rectangular")
    interval = ts["interval"]
    for a, b in zip(cycles, cycles[1:]):
        require(b - a >= interval,
                f"samples at cycles {a} and {b} are closer than the "
                f"{interval}-cycle interval")
    if ts["num_samples"]:
        require(interval > 0, "samples recorded with interval 0")


def check_failure_document(doc):
    for key in FAILURE_TOP_LEVEL:
        require(key in doc, f"failure document lacks top-level '{key}'")
    require("run" not in doc and "stats" not in doc,
            "failure document carries run/stats sections")
    for key in ("bench", "protocol", "scale", "seed"):
        require(key in doc["meta"], f"meta lacks '{key}'")
    require(doc["meta"].get("verified") is False,
            "failure document claims verified")
    require(isinstance(doc["config"], dict) and doc["config"],
            "config provenance is missing or empty")
    failure = doc["failure"]
    for key in FAILURE_KEYS:
        require(key in failure, f"failure lacks '{key}'")
    require(failure["status"] in FAILURE_STATUSES,
            f"unknown failure status {failure['status']!r}")
    require(isinstance(failure["attempts"], int)
            and failure["attempts"] >= 1,
            "failure.attempts is not a positive integer")
    diag = failure.get("diagnostic")
    if diag is not None:
        for key in ("kind", "message", "cycle"):
            require(key in diag, f"failure.diagnostic lacks '{key}'")
    return doc


def check_sweep_document(doc):
    require(doc.get("version") == SWEEP_VERSION,
            f"sweep version is {doc.get('version')!r}, "
            f"want {SWEEP_VERSION}")
    for key in ("sweep", "points"):
        require(key in doc, f"sweep document lacks top-level '{key}'")
    header = doc["sweep"]
    for key in ("name", "manifest_hash", "num_points"):
        require(key in header, f"sweep header lacks '{key}'")
    points = doc["points"]
    require(isinstance(points, dict), "points is not an object")
    require(len(points) == header["num_points"],
            f"points holds {len(points)} entries, header says "
            f"{header['num_points']}")
    require(len(points) > 0, "sweep document has no points")
    ids = list(points)  # json.load preserves document order
    require(ids == sorted(ids), "point ids are not sorted")
    failed_ids = set()
    for point_id, point in points.items():
        try:
            check_document(point)
        except CheckError as err:
            raise CheckError(f"point {point_id}: {err}") from err
        if "failure" in point:
            failed_ids.add(point_id)
    declared = header.get("failures", {})
    require(set(declared) == failed_ids,
            f"sweep header declares failures {sorted(declared)}, "
            f"embedded failure documents are {sorted(failed_ids)}")
    if failed_ids:
        require(header.get("num_failed") == len(failed_ids),
                "sweep header num_failed disagrees with failures")
        for point_id, status in declared.items():
            require(points[point_id]["failure"]["status"] == status,
                    f"header status for {point_id} disagrees with its "
                    f"failure document")
    return doc


def check_document(doc):
    if doc.get("schema") == SWEEP_SCHEMA:
        return check_sweep_document(doc)
    require(doc.get("schema") == SCHEMA,
            f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    require(doc.get("version") == VERSION,
            f"version is {doc.get('version')!r}, want {VERSION}")
    if "failure" in doc:
        return check_failure_document(doc)
    for key in TOP_LEVEL:
        require(key in doc, f"document lacks top-level '{key}'")
    for key in META_KEYS:
        require(key in doc["meta"], f"meta lacks '{key}'")
    for key in RUN_KEYS:
        require(key in doc["run"], f"run lacks '{key}'")
    for key in STATS_KEYS:
        require(key in doc["stats"], f"stats lacks '{key}'")
    require(isinstance(doc["config"], dict) and doc["config"],
            "config provenance is missing or empty")

    abort_sum = check_reason_table(doc["aborts_by_reason"],
                                   "aborts_by_reason")
    require(abort_sum == doc["run"]["aborts"],
            f"aborts_by_reason sums to {abort_sum}, run.aborts is "
            f"{doc['run']['aborts']}")
    check_reason_table(doc["stalls_by_reason"], "stalls_by_reason")
    check_hot_addresses(doc["hot_addresses"])
    check_timeseries(doc["timeseries"])

    for name, hist in doc["stats"]["histograms"].items():
        total = sum(b["count"] for b in hist["buckets"])
        require(total == hist["count"],
                f"histogram {name}: buckets sum to {total}, count says "
                f"{hist['count']}")
    return doc


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            check_document(doc)
        except (OSError, json.JSONDecodeError, CheckError) as err:
            print(f"check_metrics: {path}: {err}", file=sys.stderr)
            return 1
        if doc.get("schema") == SWEEP_SCHEMA:
            failed = sum("failure" in p for p in doc["points"].values())
            print(f"check_metrics: {path}: OK "
                  f"(sweep {doc['sweep']['name']!r}, "
                  f"{len(doc['points'])} valid points"
                  + (f", {failed} failed" if failed else "") + ")")
        elif "failure" in doc:
            failure = doc["failure"]
            print(f"check_metrics: {path}: OK "
                  f"(failure document: {failure['status']}, "
                  f"{failure['attempts']} attempts)")
        else:
            run = doc["run"]
            print(f"check_metrics: {path}: OK "
                  f"({doc['meta']['bench']}/{doc['meta']['protocol']}, "
                  f"{run['aborts']} aborts attributed, "
                  f"{len(doc['hot_addresses'])} hot addresses, "
                  f"{doc['timeseries']['num_samples']} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
