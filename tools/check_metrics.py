#!/usr/bin/env python3
"""Validate a getm-metrics or getm-sweep JSON document.

For a getm-metrics document, checks the schema identity, the presence
and types of every required section, and the cross-document invariants
the simulator guarantees:

  * sum(aborts_by_reason) == run.aborts (exact abort attribution);
  * every abort-reason table carries the full reason taxonomy, so
    consumers can sum tables without knowing the enum;
  * hot-address rows are sorted by total events and internally
    consistent (by_reason sums to total);
  * time-series rows are rectangular (one value per probe per sample)
    and sample cycles are strictly increasing, at least one interval
    apart.

A getm-metrics *failure* document (a "failure" section in place of
run/stats, written for points that ended in a typed simulation error;
see docs/ROBUSTNESS.md) is validated against its own reduced shape:
schema/meta/config plus a failure section with a known status.

For a getm-sweep document (written by getm-sweep, see docs/SWEEPS.md),
checks the sweep header and that every embedded point is itself a
valid getm-metrics document (full or failure), keyed and sorted by
point id, and that the header's failures index agrees with the
embedded failure documents.

A getm-metrics document may carry a "tx_trace" section (written when
the run was traced with --trace-tx; getm-sweep instead writes it as a
standalone points/<id>.trace.json side file with schema
"getm-tx-trace", which this script also validates). The tracer's
defining invariant is checked per transaction: the exec/noc/stall/
validation/retry cycle categories sum exactly to the transaction's
lifetime, and every kill chain refers back to a traced transaction
whose abort list it restates.

Schema versions are parsed from src/obs/schema_version.hh, the single
source of truth shared with the C++ exporters.

Usage: check_metrics.py METRICS_OR_SWEEP_OR_TRACE.json [more.json ...]
Exits non-zero with a message on the first violation.
"""

import json
import pathlib
import re
import sys


def _schema_versions():
    """Read the version constants out of src/obs/schema_version.hh.

    The header keeps each constant in the exact shape
    `inline constexpr int NAME = N;` so this textual parse cannot
    drift from what the C++ exporters compile in.
    """
    header = (pathlib.Path(__file__).resolve().parent.parent
              / "src" / "obs" / "schema_version.hh")
    text = header.read_text(encoding="utf-8")
    found = dict(re.findall(
        r"^inline constexpr int (\w+) = (\d+);", text, re.MULTILINE))
    versions = {}
    for name in ("metricsSchemaVersion", "sweepSchemaVersion",
                 "txTraceSchemaVersion"):
        if name not in found:
            raise SystemExit(
                f"check_metrics: {header}: no `inline constexpr int "
                f"{name} = N;` line")
    return {name: int(found[name]) for name in found}


_VERSIONS = _schema_versions()
SCHEMA = "getm-metrics"
VERSION = _VERSIONS["metricsSchemaVersion"]
SWEEP_SCHEMA = "getm-sweep"
SWEEP_VERSION = _VERSIONS["sweepSchemaVersion"]
TRACE_SCHEMA = "getm-tx-trace"
TRACE_VERSION = _VERSIONS["txTraceSchemaVersion"]

REASONS = [
    "NONE", "RAW_TS", "WAR_TS", "WAW_TS", "LOCKED_BY_WRITER",
    "STALL_BUFFER_FULL", "BLOOM_FALSE_POSITIVE", "INTRA_WARP",
    "VALIDATION_FAIL", "EAGER_VALIDATION_FAIL", "EARLY_ABORT", "ROLLOVER",
]

TOP_LEVEL = [
    "schema", "version", "meta", "config", "run", "aborts_by_reason",
    "stalls_by_reason", "stall", "distinct_conflict_addrs",
    "hot_addresses", "timeseries", "stats",
]

META_KEYS = ["bench", "protocol", "scale", "seed", "threads", "verified"]
RUN_KEYS = [
    "cycles", "commits", "aborts", "tx_exec_cycles", "tx_wait_cycles",
    "xbar_flits", "rollovers", "max_logical_ts", "aborts_per_1k_commits",
]
STATS_KEYS = ["counters", "maxima", "averages", "histograms"]

FAILURE_TOP_LEVEL = ["schema", "version", "meta", "config", "failure"]
FAILURE_KEYS = ["status", "kind", "message", "attempts"]
FAILURE_STATUSES = [
    "deadlock", "livelock", "cycle-limit", "timeout", "config", "error",
    "checkpoint", "interrupted",
]


class CheckError(Exception):
    pass


def require(cond, why):
    if not cond:
        raise CheckError(why)


def check_reason_table(table, label):
    require(isinstance(table, dict), f"{label} is not an object")
    require(sorted(table) == sorted(REASONS),
            f"{label} keys differ from the reason taxonomy: "
            f"{sorted(set(table) ^ set(REASONS))}")
    for name, count in table.items():
        require(isinstance(count, int) and count >= 0,
                f"{label}[{name}] is not a non-negative integer")
    return sum(table.values())


def check_hot_addresses(rows):
    require(isinstance(rows, list), "hot_addresses is not an array")
    prev_total = None
    for i, row in enumerate(rows):
        label = f"hot_addresses[{i}]"
        for key in ("addr", "addr_hex", "partition", "total",
                    "mean_waiters", "by_reason"):
            require(key in row, f"{label} lacks '{key}'")
        require(row["addr_hex"] == hex(row["addr"]),
                f"{label}: addr_hex {row['addr_hex']} does not match "
                f"addr {row['addr']}")
        require(row["total"] > 0, f"{label}: empty row exported")
        if "label" in row:
            # Workload-provided granule description (OLTP benches map
            # granules back to "key N (zipf rank R)" / "branch B").
            # Optional: absent whenever the workload has no mapping.
            require(isinstance(row["label"], str) and row["label"],
                    f"{label}: label must be a non-empty string")
        by_reason = row["by_reason"]
        require(all(k in REASONS for k in by_reason),
                f"{label}: unknown reason in by_reason")
        require(sum(by_reason.values()) == row["total"],
                f"{label}: by_reason sums to "
                f"{sum(by_reason.values())}, total says {row['total']}")
        if prev_total is not None:
            require(row["total"] <= prev_total,
                    f"{label}: rows not sorted by total")
        prev_total = row["total"]


def check_timeseries(ts):
    for key in ("interval", "num_samples", "cycles", "series"):
        require(key in ts, f"timeseries lacks '{key}'")
    cycles = ts["cycles"]
    require(len(cycles) == ts["num_samples"],
            "timeseries.num_samples disagrees with cycles[]")
    for name, column in ts["series"].items():
        require(len(column) == len(cycles),
                f"timeseries.series[{name}] is not rectangular")
    interval = ts["interval"]
    for i, (a, b) in enumerate(zip(cycles, cycles[1:])):
        require(b > a,
                f"samples at cycles {a} and {b} are not strictly "
                f"increasing")
        # The last row may be the end-of-run flush of a partial window
        # (CycleSampler::finalize), so only interior gaps must span a
        # full interval.
        if i + 2 < len(cycles):
            require(b - a >= interval,
                    f"samples at cycles {a} and {b} are closer than "
                    f"the {interval}-cycle interval")
    if ts["num_samples"]:
        require(interval > 0, "samples recorded with interval 0")


TRACE_HEADER_KEYS = [
    "version", "sample_rate", "tx_seen", "traced", "committed", "open",
    "totals", "noc", "transactions", "kill_chains",
]
TRACE_TX_KEYS = [
    "trace_id", "warp", "core", "slot", "begin", "end", "lifetime",
    "attempts", "committed_lanes", "committed", "cycles", "accesses",
    "aborts",
]
TRACE_CYCLE_KEYS = ["exec", "noc", "stall", "validation", "retry"]


def check_trace_link(link, label):
    for key in ("attempt", "reason", "aborter_warp", "cycle"):
        require(key in link, f"{label} lacks '{key}'")
    require(link["reason"] in REASONS,
            f"{label}: unknown abort reason {link['reason']!r}")
    require(isinstance(link["aborter_warp"], int)
            and link["aborter_warp"] >= -1,
            f"{label}: aborter_warp {link['aborter_warp']!r} is not an "
            f"integer >= -1 (-1 means unknown)")
    if "addr" in link:
        require(link.get("addr_hex") == hex(link["addr"]),
                f"{label}: addr_hex does not match addr")
        require("partition" in link,
                f"{label}: addr without a conflict-site partition")


def check_tx_trace(trace):
    """Validate a tx_trace section (embedded or standalone).

    The load-bearing invariant is exact cycle accounting: for every
    traced transaction the exec/noc/stall/validation/retry categories
    sum to exactly end - begin, and the report totals are the exact
    sums of the per-transaction rows. Kill chains must restate the
    abort list of a transaction that is actually in the document.
    """
    for key in TRACE_HEADER_KEYS:
        require(key in trace, f"tx_trace lacks '{key}'")
    require(trace["version"] == TRACE_VERSION,
            f"tx_trace version is {trace['version']!r}, "
            f"want {TRACE_VERSION}")
    require(trace["sample_rate"] >= 1, "tx_trace sample_rate is 0")

    txs = trace["transactions"]
    require(isinstance(txs, list), "tx_trace.transactions is not an array")
    require(trace["traced"] == len(txs),
            f"tx_trace.traced says {trace['traced']}, transactions "
            f"holds {len(txs)}")
    require(trace["traced"] <= trace["tx_seen"],
            "tx_trace traced more transactions than it saw")

    by_id = {}
    totals = dict.fromkeys(TRACE_CYCLE_KEYS, 0)
    total_lifetime = 0
    committed = 0
    still_open = 0
    for i, tx in enumerate(txs):
        label = f"tx_trace.transactions[{i}]"
        for key in TRACE_TX_KEYS:
            require(key in tx, f"{label} lacks '{key}'")
        require(tx["trace_id"] == i,
                f"{label}: trace ids are not dense in trace order")
        by_id[tx["trace_id"]] = tx
        require(tx["end"] >= tx["begin"],
                f"{label}: ends before it begins")
        require(tx["lifetime"] == tx["end"] - tx["begin"],
                f"{label}: lifetime {tx['lifetime']} != end - begin")
        cycles = tx["cycles"]
        for key in TRACE_CYCLE_KEYS:
            require(key in cycles, f"{label}.cycles lacks '{key}'")
            require(isinstance(cycles[key], int) and cycles[key] >= 0,
                    f"{label}.cycles[{key}] is not a non-negative "
                    f"integer")
            totals[key] += cycles[key]
        breakdown = sum(cycles[key] for key in TRACE_CYCLE_KEYS)
        require(breakdown == tx["lifetime"],
                f"{label}: cycle categories sum to {breakdown}, "
                f"lifetime is {tx['lifetime']} (exact accounting "
                f"violated)")
        total_lifetime += tx["lifetime"]
        require(tx["attempts"] >= 1, f"{label}: zero attempts")
        accesses = tx["accesses"]
        require(accesses["completed"] <= accesses["issued"],
                f"{label}: more accesses completed than issued")
        if tx["committed"]:
            if tx["committed_lanes"] > 0:
                committed += 1
        else:
            still_open += 1
        # One attempt may collect several abort links (each in-flight
        # access that loses a conflict reports separately), so the list
        # can be longer than attempts -- but attempt indices must be
        # non-decreasing and in range.
        prev_attempt = 0
        for j, link in enumerate(tx["aborts"]):
            check_trace_link(link, f"{label}.aborts[{j}]")
            require(link["attempt"] < tx["attempts"],
                    f"{label}.aborts[{j}]: attempt index out of range")
            require(link["attempt"] >= prev_attempt,
                    f"{label}.aborts[{j}]: attempt index went backwards")
            prev_attempt = link["attempt"]

    require(trace["committed"] == committed,
            f"tx_trace.committed says {trace['committed']}, rows say "
            f"{committed}")
    require(trace["open"] == still_open,
            f"tx_trace.open says {trace['open']}, rows say {still_open}")
    header_totals = trace["totals"]
    for key in TRACE_CYCLE_KEYS:
        require(header_totals[key] == totals[key],
                f"tx_trace.totals[{key}] says {header_totals[key]}, "
                f"rows sum to {totals[key]}")
    require(header_totals["lifetime"] == total_lifetime,
            f"tx_trace.totals.lifetime says "
            f"{header_totals['lifetime']}, rows sum to {total_lifetime}")

    for direction in ("up", "down"):
        hop = trace["noc"][direction]
        for key in ("msgs", "latency_cycles", "bytes"):
            require(isinstance(hop[key], int) and hop[key] >= 0,
                    f"tx_trace.noc.{direction}[{key}] is not a "
                    f"non-negative integer")

    chains = trace["kill_chains"]
    require(isinstance(chains, list),
            "tx_trace.kill_chains is not an array")
    prev_len = None
    for i, chain in enumerate(chains):
        label = f"tx_trace.kill_chains[{i}]"
        for key in ("trace_id", "victim_warp", "length", "links"):
            require(key in chain, f"{label} lacks '{key}'")
        require(chain["trace_id"] in by_id,
                f"{label}: trace_id {chain['trace_id']} names no traced "
                f"transaction (referential integrity violated)")
        tx = by_id[chain["trace_id"]]
        require(chain["victim_warp"] == tx["warp"],
                f"{label}: victim_warp disagrees with its transaction")
        require(chain["length"] == len(chain["links"]) == len(
                tx["aborts"]),
                f"{label}: length/links disagree with the "
                f"transaction's abort list")
        for j, (link, abort) in enumerate(
                zip(chain["links"], tx["aborts"])):
            check_trace_link(link, f"{label}.links[{j}]")
            require(link["reason"] == abort["reason"]
                    and link["cycle"] == abort["cycle"],
                    f"{label}.links[{j}] does not restate the "
                    f"transaction's abort record")
        if prev_len is not None:
            require(chain["length"] <= prev_len,
                    f"{label}: chains not sorted by length")
        prev_len = chain["length"]
    return trace


def check_trace_document(doc):
    require(doc.get("version") == TRACE_VERSION,
            f"trace version is {doc.get('version')!r}, "
            f"want {TRACE_VERSION}")
    require("tx_trace" in doc, "trace document lacks 'tx_trace'")
    check_tx_trace(doc["tx_trace"])
    return doc


def check_failure_document(doc):
    for key in FAILURE_TOP_LEVEL:
        require(key in doc, f"failure document lacks top-level '{key}'")
    require("run" not in doc and "stats" not in doc,
            "failure document carries run/stats sections")
    for key in ("bench", "protocol", "scale", "seed"):
        require(key in doc["meta"], f"meta lacks '{key}'")
    require(doc["meta"].get("verified") is False,
            "failure document claims verified")
    require(isinstance(doc["config"], dict) and doc["config"],
            "config provenance is missing or empty")
    failure = doc["failure"]
    for key in FAILURE_KEYS:
        require(key in failure, f"failure lacks '{key}'")
    require(failure["status"] in FAILURE_STATUSES,
            f"unknown failure status {failure['status']!r}")
    require(isinstance(failure["attempts"], int)
            and failure["attempts"] >= 1,
            "failure.attempts is not a positive integer")
    diag = failure.get("diagnostic")
    if diag is not None:
        for key in ("kind", "message", "cycle"):
            require(key in diag, f"failure.diagnostic lacks '{key}'")
    return doc


def check_sweep_document(doc):
    require(doc.get("version") == SWEEP_VERSION,
            f"sweep version is {doc.get('version')!r}, "
            f"want {SWEEP_VERSION}")
    for key in ("sweep", "points"):
        require(key in doc, f"sweep document lacks top-level '{key}'")
    header = doc["sweep"]
    for key in ("name", "manifest_hash", "num_points"):
        require(key in header, f"sweep header lacks '{key}'")
    points = doc["points"]
    require(isinstance(points, dict), "points is not an object")
    require(len(points) == header["num_points"],
            f"points holds {len(points)} entries, header says "
            f"{header['num_points']}")
    require(len(points) > 0, "sweep document has no points")
    ids = list(points)  # json.load preserves document order
    require(ids == sorted(ids), "point ids are not sorted")
    failed_ids = set()
    for point_id, point in points.items():
        try:
            check_document(point)
        except CheckError as err:
            raise CheckError(f"point {point_id}: {err}") from err
        if "failure" in point:
            failed_ids.add(point_id)
    declared = header.get("failures", {})
    require(set(declared) == failed_ids,
            f"sweep header declares failures {sorted(declared)}, "
            f"embedded failure documents are {sorted(failed_ids)}")
    if failed_ids:
        require(header.get("num_failed") == len(failed_ids),
                "sweep header num_failed disagrees with failures")
        for point_id, status in declared.items():
            require(points[point_id]["failure"]["status"] == status,
                    f"header status for {point_id} disagrees with its "
                    f"failure document")
    return doc


def check_document(doc):
    if doc.get("schema") == SWEEP_SCHEMA:
        return check_sweep_document(doc)
    if doc.get("schema") == TRACE_SCHEMA:
        return check_trace_document(doc)
    require(doc.get("schema") == SCHEMA,
            f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    require(doc.get("version") == VERSION,
            f"version is {doc.get('version')!r}, want {VERSION}")
    if "failure" in doc:
        return check_failure_document(doc)
    for key in TOP_LEVEL:
        require(key in doc, f"document lacks top-level '{key}'")
    for key in META_KEYS:
        require(key in doc["meta"], f"meta lacks '{key}'")
    for key in RUN_KEYS:
        require(key in doc["run"], f"run lacks '{key}'")
    for key in STATS_KEYS:
        require(key in doc["stats"], f"stats lacks '{key}'")
    require(isinstance(doc["config"], dict) and doc["config"],
            "config provenance is missing or empty")

    abort_sum = check_reason_table(doc["aborts_by_reason"],
                                   "aborts_by_reason")
    require(abort_sum == doc["run"]["aborts"],
            f"aborts_by_reason sums to {abort_sum}, run.aborts is "
            f"{doc['run']['aborts']}")
    check_reason_table(doc["stalls_by_reason"], "stalls_by_reason")
    check_hot_addresses(doc["hot_addresses"])
    check_timeseries(doc["timeseries"])
    if "tx_trace" in doc:
        check_tx_trace(doc["tx_trace"])

    for name, hist in doc["stats"]["histograms"].items():
        total = sum(b["count"] for b in hist["buckets"])
        require(total == hist["count"],
                f"histogram {name}: buckets sum to {total}, count says "
                f"{hist['count']}")
    return doc


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            check_document(doc)
        except (OSError, json.JSONDecodeError, CheckError) as err:
            print(f"check_metrics: {path}: {err}", file=sys.stderr)
            return 1
        if doc.get("schema") == SWEEP_SCHEMA:
            failed = sum("failure" in p for p in doc["points"].values())
            print(f"check_metrics: {path}: OK "
                  f"(sweep {doc['sweep']['name']!r}, "
                  f"{len(doc['points'])} valid points"
                  + (f", {failed} failed" if failed else "") + ")")
        elif doc.get("schema") == TRACE_SCHEMA:
            trace = doc["tx_trace"]
            print(f"check_metrics: {path}: OK "
                  f"(tx trace, {trace['traced']} transactions, "
                  f"{trace['committed']} committed, "
                  f"{len(trace['kill_chains'])} kill chains)")
        elif "failure" in doc:
            failure = doc["failure"]
            print(f"check_metrics: {path}: OK "
                  f"(failure document: {failure['status']}, "
                  f"{failure['attempts']} attempts)")
        else:
            run = doc["run"]
            print(f"check_metrics: {path}: OK "
                  f"({doc['meta']['bench']}/{doc['meta']['protocol']}, "
                  f"{run['aborts']} aborts attributed, "
                  f"{len(doc['hot_addresses'])} hot addresses, "
                  f"{doc['timeseries']['num_samples']} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
