# Cycle-loop thread-count determinism check driven by ctest: run the
# same benchmark with --sim-threads 1, 2, and 8 and require the stdout
# result line (--json) and the full metrics document (--metrics,
# including the stats tree, abort attribution, hot-address table, and
# sampled time-series) to be byte-identical across all three. Unlike
# the sweep runner, getm-sim never clamps --sim-threads to the host's
# core count, so this exercises the parallel loop even on small
# machines (workers just oversubscribe, which the contract says is
# harmless).
#
# Fixtures:
#   - one plain fixture per protocol (GETM, WarpTM-LL, WarpTM-EL, and
#     EAPG all run parallel since commit-id reservation landed);
#   - an instrumented GETM fixture with the runtime checker,
#     transaction tracing, and the timeline recorder all enabled,
#     which pushes every worker-side event through the deferred
#     replay buffers;
#   - a probabilistic fault-injection fixture (per-component counter
#     streams must make the draw sequence interleaving-independent;
#     the run exits nonzero because the corruption fails verification,
#     identically at every thread count);
#   - a relaxed-barrier fixture with --sim-epoch 8 (multi-cycle
#     epochs between syncs must collapse to the serial schedule).
#
# Expected variables:
#   SIM_BIN - path to the getm-sim binary
#   OUT_DIR - writable scratch directory

set(work_dir "${OUT_DIR}/threads_check")
file(REMOVE_RECURSE "${work_dir}")
file(MAKE_DIRECTORY "${work_dir}")

set(fixtures
    plain_getm plain_warptm plain_warptm-el plain_eapg
    instrumented inject epoch)

foreach(fixture ${fixtures})
    set(protocol getm)
    set(extra_args "")
    set(may_fail FALSE)
    if(fixture MATCHES "^plain_(.+)$")
        set(protocol "${CMAKE_MATCH_1}")
    elseif(fixture STREQUAL "instrumented")
        set(extra_args --check --trace-tx 1)
    elseif(fixture STREQUAL "inject")
        # The fault corrupts the run on purpose; verification fails
        # (nonzero exit) but must fail the same way at every thread
        # count.
        set(extra_args --inject=skip-rts-bump@0.5)
        set(may_fail TRUE)
    elseif(fixture STREQUAL "epoch")
        set(protocol warptm)
        set(extra_args --sim-epoch 8)
    endif()

    foreach(threads 1 2 8)
        set(prefix "${work_dir}/${fixture}_t${threads}")
        set(run_args "${SIM_BIN}" --bench HT-H --protocol ${protocol}
            --scale 0.05 --sim-threads ${threads}
            --metrics "${prefix}.metrics.json" --json ${extra_args})
        if(fixture STREQUAL "instrumented")
            list(APPEND run_args --timeline "${prefix}.timeline.json")
        endif()
        execute_process(
            COMMAND ${run_args}
            RESULT_VARIABLE sim_status
            OUTPUT_FILE "${prefix}.stdout.json"
            ERROR_VARIABLE sim_stderr)
        if(NOT sim_status EQUAL 0 AND NOT may_fail)
            message(FATAL_ERROR
                    "getm-sim (${fixture}, --sim-threads ${threads}) "
                    "failed (${sim_status}):\n${sim_stderr}")
        endif()
        if(threads EQUAL 1)
            set(base_status "${sim_status}")
        elseif(NOT sim_status EQUAL base_status)
            message(FATAL_ERROR
                    "${fixture}: exit status differs between "
                    "--sim-threads 1 (${base_status}) and "
                    "--sim-threads ${threads} (${sim_status})")
        endif()
    endforeach()

    foreach(kind "stdout" "metrics")
        foreach(threads 2 8)
            execute_process(
                COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${work_dir}/${fixture}_t1.${kind}.json"
                        "${work_dir}/${fixture}_t${threads}.${kind}.json"
                RESULT_VARIABLE same)
            if(NOT same EQUAL 0)
                message(FATAL_ERROR
                        "${fixture} ${kind} output differs between "
                        "--sim-threads 1 and --sim-threads ${threads}: "
                        "the parallel cycle loop broke "
                        "byte-determinism (docs/PARALLELISM.md)")
            endif()
        endforeach()
    endforeach()
    if(fixture STREQUAL "instrumented")
        foreach(threads 2 8)
            execute_process(
                COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${work_dir}/${fixture}_t1.timeline.json"
                        "${work_dir}/${fixture}_t${threads}.timeline.json"
                RESULT_VARIABLE same_tl)
            if(NOT same_tl EQUAL 0)
                message(FATAL_ERROR
                        "timeline differs between --sim-threads 1 and "
                        "--sim-threads ${threads}: deferred event "
                        "replay is out of order")
            endif()
        endforeach()
    endif()
    message(STATUS
            "${fixture}: --sim-threads 1/2/8 outputs byte-identical")
endforeach()
