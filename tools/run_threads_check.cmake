# Cycle-loop thread-count determinism check driven by ctest: run the
# same benchmark with --sim-threads 1, 2, and 8 and require the stdout
# result line (--json) and the full metrics document (--metrics,
# including the stats tree, abort attribution, hot-address table, and
# sampled time-series) to be byte-identical across all three. Unlike
# the sweep runner, getm-sim never clamps --sim-threads to the host's
# core count, so this exercises the parallel loop even on small
# machines (workers just oversubscribe, which the contract says is
# harmless).
#
# Two fixtures run: a plain one, and one with the runtime checker,
# transaction tracing, and the timeline recorder all enabled, which
# pushes every worker-side event through the deferred replay buffers.
#
# Expected variables:
#   SIM_BIN - path to the getm-sim binary
#   OUT_DIR - writable scratch directory

set(work_dir "${OUT_DIR}/threads_check")
file(REMOVE_RECURSE "${work_dir}")
file(MAKE_DIRECTORY "${work_dir}")

foreach(fixture "plain" "instrumented")
    if(fixture STREQUAL "plain")
        set(extra_args "")
    else()
        set(extra_args --check --trace-tx 1)
    endif()
    foreach(threads 1 2 8)
        set(prefix "${work_dir}/${fixture}_t${threads}")
        set(run_args "${SIM_BIN}" --bench HT-H --protocol getm
            --scale 0.05 --sim-threads ${threads}
            --metrics "${prefix}.metrics.json" --json ${extra_args})
        if(NOT fixture STREQUAL "plain")
            list(APPEND run_args --timeline "${prefix}.timeline.json")
        endif()
        execute_process(
            COMMAND ${run_args}
            RESULT_VARIABLE sim_status
            OUTPUT_FILE "${prefix}.stdout.json"
            ERROR_VARIABLE sim_stderr)
        if(NOT sim_status EQUAL 0)
            message(FATAL_ERROR
                    "getm-sim (${fixture}, --sim-threads ${threads}) "
                    "failed (${sim_status}):\n${sim_stderr}")
        endif()
    endforeach()

    foreach(kind "stdout" "metrics")
        foreach(threads 2 8)
            execute_process(
                COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${work_dir}/${fixture}_t1.${kind}.json"
                        "${work_dir}/${fixture}_t${threads}.${kind}.json"
                RESULT_VARIABLE same)
            if(NOT same EQUAL 0)
                message(FATAL_ERROR
                        "${fixture} ${kind} output differs between "
                        "--sim-threads 1 and --sim-threads ${threads}: "
                        "the parallel cycle loop broke "
                        "byte-determinism (docs/PARALLELISM.md)")
            endif()
        endforeach()
    endforeach()
    if(NOT fixture STREQUAL "plain")
        foreach(threads 2 8)
            execute_process(
                COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${work_dir}/${fixture}_t1.timeline.json"
                        "${work_dir}/${fixture}_t${threads}.timeline.json"
                RESULT_VARIABLE same_tl)
            if(NOT same_tl EQUAL 0)
                message(FATAL_ERROR
                        "timeline differs between --sim-threads 1 and "
                        "--sim-threads ${threads}: deferred event "
                        "replay is out of order")
            endif()
        endforeach()
    endif()
    message(STATUS
            "${fixture}: --sim-threads 1/2/8 outputs byte-identical")
endforeach()
