/**
 * @file
 * getm-sweep: parallel, resumable experiment orchestrator.
 *
 * Enumerates the (config x workload x protocol) points of a sweep
 * manifest, runs each as an isolated in-process simulation on a worker
 * pool, and merges the per-point `getm-metrics` documents into one
 * `sweep.json` keyed by point id. Completed points whose spec hash
 * still matches are skipped on rerun, so an interrupted sweep resumes
 * where it stopped. See docs/SWEEPS.md for the manifest schema.
 *
 *     getm-sweep --manifest configs/sweeps/smoke.sweep
 *     getm-sweep --manifest configs/sweeps/fig11_exec_time.sweep \
 *         --dir out/fig11 --jobs 8
 *     getm-sweep --manifest m.sweep --list
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/sim_error.hh"
#include "common/stop_flag.hh"
#include "common/thread_pool.hh"
#include "sweep/runner.hh"
#include "workloads/registry.hh"

using namespace getm;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --manifest FILE [options]\n"
        "  --manifest FILE  sweep manifest (required; see docs/SWEEPS.md)\n"
        "  --dir DIR        working directory for per-point results and\n"
        "                   resume state (default: sweep-<name>)\n"
        "  --out FILE       merged document path (default: DIR/sweep.json)\n"
        "  --jobs N         worker threads (default: hardware threads)\n"
        "  --force          rerun every point, ignoring resume state\n"
        "  --trace-tx N     trace every Nth transaction per point and\n"
        "                   write DIR/points/<id>.trace.json; spec\n"
        "                   hashes and sweep.json bytes are unchanged\n"
        "  --sim-threads N  worker threads inside each point's cycle\n"
        "                   loop (default 1); byte-identical results at\n"
        "                   any value, clamped so jobs x threads stays\n"
        "                   within the machine (docs/PARALLELISM.md)\n"
        "  --shard I/N      run only the points whose enumeration index\n"
        "                   is I mod N (deterministic partitioning for\n"
        "                   multi-process/multi-host sweeps); reassemble\n"
        "                   with --merge (docs/DURABILITY.md)\n"
        "  --merge DIR      merge mode (repeatable): reassemble the\n"
        "                   merged sweep.json from completed shard\n"
        "                   working directories, byte-identical to the\n"
        "                   single-process document; no points run\n"
        "  --checkpoint-every N  snapshot each point's machine every N\n"
        "                   simulated cycles into DIR/ckpt/<id>; killed\n"
        "                   or retried points resume from their last\n"
        "                   checkpoint instead of cycle 0\n"
        "  --list           print the enumerated point ids and exit\n"
        "  --list-benches   list every registered bench with its\n"
        "                   parameters, defaults and ranges\n"
        "  --quiet          no per-point progress lines\n"
        "exit codes: 0 ok; 1 infrastructure error; 2 usage; 3 one or\n"
        "more points failed workload verification or the checker; 4 one\n"
        "or more points died in a typed simulation failure; 128+N\n"
        "stopped by signal N (SIGINT/SIGTERM: in-flight points stop at\n"
        "their next cycle boundary, flush final checkpoints when\n"
        "enabled, and the identical rerun resumes)\n",
        argv0);
}

/**
 * Map a completed outcome onto the taxonomy the usage text documents:
 * verification failures exit 3, typed simulation failures exit 4 (the
 * simulation failure wins when both occur -- it is the one a shard
 * orchestrator must triage first).
 */
int
sweepStatus(const SweepOutcome &outcome, const std::string &dir)
{
    int status = 0;
    if (outcome.unverified) {
        std::fprintf(stderr,
                     "getm-sweep: %u point%s FAILED workload "
                     "verification (see meta.verified)\n",
                     outcome.unverified,
                     outcome.unverified == 1 ? "" : "s");
        status = exitVerification;
    }
    if (outcome.failed) {
        std::fprintf(stderr,
                     "getm-sweep: %u point%s FAILED to simulate "
                     "(failure documents in %s/points):\n",
                     outcome.failed, outcome.failed == 1 ? "" : "s",
                     dir.c_str());
        for (const SweepFailure &f : outcome.failures)
            std::fprintf(stderr, "  %-10s %s (%u attempt%s): %s\n",
                         f.status.c_str(), f.id.c_str(), f.attempts,
                         f.attempts == 1 ? "" : "s",
                         f.message.c_str());
        status = exitSimError;
    }
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string manifest_path;
    SweepOptions options;
    options.dir.clear();
    std::vector<std::string> merge_dirs;
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--manifest") {
            manifest_path = next();
        } else if (arg == "--dir") {
            options.dir = next();
        } else if (arg == "--out") {
            options.outPath = next();
        } else if (arg == "--jobs") {
            options.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--force") {
            options.force = true;
        } else if (arg == "--trace-tx") {
            options.traceTx = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sim-threads") {
            options.simThreads =
                static_cast<unsigned>(std::atoi(next()));
            if (options.simThreads == 0) {
                std::fprintf(stderr, "--sim-threads must be >= 1\n");
                return 2;
            }
        } else if (arg == "--shard") {
            unsigned index = 0, count = 0;
            if (std::sscanf(next(), "%u/%u", &index, &count) != 2 ||
                count == 0 || index >= count) {
                std::fprintf(stderr,
                             "--shard wants I/N with 0 <= I < N\n");
                return 2;
            }
            options.shardIndex = index;
            options.shardCount = count;
        } else if (arg == "--merge") {
            merge_dirs.emplace_back(next());
        } else if (arg == "--checkpoint-every") {
            options.ckptEvery = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--list-benches") {
            for (const BenchInfo &info : benchRegistry()) {
                std::printf("%-6s %s\n", info.name, info.summary);
                for (const BenchParamInfo &param : info.params)
                    std::printf("       %-10s %-12g default; range "
                                "[%g, %g]: %s\n",
                                param.key, param.def, param.min,
                                param.max, param.help);
            }
            return 0;
        } else if (arg == "--quiet") {
            options.progress = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (manifest_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    SweepManifest manifest;
    std::string error;
    if (!manifest.load(manifest_path, error)) {
        std::fprintf(stderr, "getm-sweep: %s: %s\n",
                     manifest_path.c_str(), error.c_str());
        return 2;
    }

    if (list) {
        std::vector<SweepPoint> points;
        if (!manifest.enumerate(points, error)) {
            std::fprintf(stderr, "getm-sweep: %s\n", error.c_str());
            return 2;
        }
        for (const SweepPoint &point : points)
            std::printf("%s %s\n", point.specHashHex().c_str(),
                        point.id.c_str());
        std::printf("%zu points\n", points.size());
        return 0;
    }

    if (options.dir.empty())
        options.dir = "sweep-" + manifest.name();
    const std::string out_path = options.outPath.empty()
                                     ? options.dir + "/sweep.json"
                                     : options.outPath;

    SweepOutcome outcome;
    if (!merge_dirs.empty()) {
        // Merge mode: no simulation; reassemble the byte-identical
        // merged document from completed shard directories.
        if (!mergeSweep(manifest, options, merge_dirs, outcome,
                        error)) {
            std::fprintf(stderr, "getm-sweep: %s\n", error.c_str());
            return 1;
        }
        std::printf("%s: merged %u points from %zu shard%s -> %s\n",
                    manifest.name().c_str(), outcome.total,
                    merge_dirs.size(),
                    merge_dirs.size() == 1 ? "" : "s",
                    out_path.c_str());
        return sweepStatus(outcome, options.dir);
    }

    // Graceful shutdown: SIGINT/SIGTERM set a flag every in-flight
    // point's cycle loop polls at its next cycle boundary; points
    // wind down cleanly (final checkpoints when enabled), queued
    // points never start, and the identical rerun resumes.
    std::signal(SIGINT, [](int sig) { requestStop(sig); });
    std::signal(SIGTERM, [](int sig) { requestStop(sig); });

    const unsigned jobs =
        options.jobs ? options.jobs : ThreadPool::defaultThreads();
    if (options.progress)
        std::fprintf(stderr,
                     "getm-sweep: %s -> %s (%u worker%s)\n",
                     manifest.name().c_str(), options.dir.c_str(), jobs,
                     jobs == 1 ? "" : "s");

    if (!runSweep(manifest, options, outcome, error)) {
        std::fprintf(stderr, "getm-sweep: %s\n", error.c_str());
        return 1;
    }

    if (outcome.interrupted) {
        const int sig = stopSignal() ? stopSignal() : SIGTERM;
        std::fprintf(stderr,
                     "getm-sweep: stopped by signal %d; partial "
                     "results in %s (rerun to resume)\n",
                     sig, options.dir.c_str());
        return 128 + sig;
    }

    std::printf("%s: %u points (%u ran, %u resumed) -> %s\n",
                manifest.name().c_str(), outcome.total, outcome.ran,
                outcome.skipped, out_path.c_str());
    return sweepStatus(outcome, options.dir);
}
