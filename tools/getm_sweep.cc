/**
 * @file
 * getm-sweep: parallel, resumable experiment orchestrator.
 *
 * Enumerates the (config x workload x protocol) points of a sweep
 * manifest, runs each as an isolated in-process simulation on a worker
 * pool, and merges the per-point `getm-metrics` documents into one
 * `sweep.json` keyed by point id. Completed points whose spec hash
 * still matches are skipped on rerun, so an interrupted sweep resumes
 * where it stopped. See docs/SWEEPS.md for the manifest schema.
 *
 *     getm-sweep --manifest configs/sweeps/smoke.sweep
 *     getm-sweep --manifest configs/sweeps/fig11_exec_time.sweep \
 *         --dir out/fig11 --jobs 8
 *     getm-sweep --manifest m.sweep --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/thread_pool.hh"
#include "sweep/runner.hh"
#include "workloads/registry.hh"

using namespace getm;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --manifest FILE [options]\n"
        "  --manifest FILE  sweep manifest (required; see docs/SWEEPS.md)\n"
        "  --dir DIR        working directory for per-point results and\n"
        "                   resume state (default: sweep-<name>)\n"
        "  --out FILE       merged document path (default: DIR/sweep.json)\n"
        "  --jobs N         worker threads (default: hardware threads)\n"
        "  --force          rerun every point, ignoring resume state\n"
        "  --trace-tx N     trace every Nth transaction per point and\n"
        "                   write DIR/points/<id>.trace.json; spec\n"
        "                   hashes and sweep.json bytes are unchanged\n"
        "  --sim-threads N  worker threads inside each point's cycle\n"
        "                   loop (default 1); byte-identical results at\n"
        "                   any value, clamped so jobs x threads stays\n"
        "                   within the machine (docs/PARALLELISM.md)\n"
        "  --list           print the enumerated point ids and exit\n"
        "  --list-benches   list every registered bench with its\n"
        "                   parameters, defaults and ranges\n"
        "  --quiet          no per-point progress lines\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string manifest_path;
    SweepOptions options;
    options.dir.clear();
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--manifest") {
            manifest_path = next();
        } else if (arg == "--dir") {
            options.dir = next();
        } else if (arg == "--out") {
            options.outPath = next();
        } else if (arg == "--jobs") {
            options.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--force") {
            options.force = true;
        } else if (arg == "--trace-tx") {
            options.traceTx = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sim-threads") {
            options.simThreads =
                static_cast<unsigned>(std::atoi(next()));
            if (options.simThreads == 0) {
                std::fprintf(stderr, "--sim-threads must be >= 1\n");
                return 2;
            }
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--list-benches") {
            for (const BenchInfo &info : benchRegistry()) {
                std::printf("%-6s %s\n", info.name, info.summary);
                for (const BenchParamInfo &param : info.params)
                    std::printf("       %-10s %-12g default; range "
                                "[%g, %g]: %s\n",
                                param.key, param.def, param.min,
                                param.max, param.help);
            }
            return 0;
        } else if (arg == "--quiet") {
            options.progress = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (manifest_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    SweepManifest manifest;
    std::string error;
    if (!manifest.load(manifest_path, error)) {
        std::fprintf(stderr, "getm-sweep: %s: %s\n",
                     manifest_path.c_str(), error.c_str());
        return 2;
    }

    if (list) {
        std::vector<SweepPoint> points;
        if (!manifest.enumerate(points, error)) {
            std::fprintf(stderr, "getm-sweep: %s\n", error.c_str());
            return 2;
        }
        for (const SweepPoint &point : points)
            std::printf("%s %s\n", point.specHashHex().c_str(),
                        point.id.c_str());
        std::printf("%zu points\n", points.size());
        return 0;
    }

    if (options.dir.empty())
        options.dir = "sweep-" + manifest.name();

    const unsigned jobs =
        options.jobs ? options.jobs : ThreadPool::defaultThreads();
    if (options.progress)
        std::fprintf(stderr,
                     "getm-sweep: %s -> %s (%u worker%s)\n",
                     manifest.name().c_str(), options.dir.c_str(), jobs,
                     jobs == 1 ? "" : "s");

    SweepOutcome outcome;
    if (!runSweep(manifest, options, outcome, error)) {
        std::fprintf(stderr, "getm-sweep: %s\n", error.c_str());
        return 1;
    }

    const std::string out_path = options.outPath.empty()
                                     ? options.dir + "/sweep.json"
                                     : options.outPath;
    std::printf("%s: %u points (%u ran, %u resumed) -> %s\n",
                manifest.name().c_str(), outcome.total, outcome.ran,
                outcome.skipped, out_path.c_str());
    int status = 0;
    if (outcome.unverified) {
        std::fprintf(stderr,
                     "getm-sweep: %u point%s FAILED workload "
                     "verification (see meta.verified)\n",
                     outcome.unverified,
                     outcome.unverified == 1 ? "" : "s");
        status = 1;
    }
    if (outcome.failed) {
        std::fprintf(stderr,
                     "getm-sweep: %u point%s FAILED to simulate "
                     "(failure documents in %s/points):\n",
                     outcome.failed, outcome.failed == 1 ? "" : "s",
                     options.dir.c_str());
        for (const SweepFailure &f : outcome.failures)
            std::fprintf(stderr, "  %-10s %s (%u attempt%s): %s\n",
                         f.status.c_str(), f.id.c_str(), f.attempts,
                         f.attempts == 1 ? "" : "s",
                         f.message.c_str());
        status = 3;
    }
    return status;
}
