/**
 * @file
 * Contention study on the hash-table workload: sweep the table size
 * (HT-H / HT-M / HT-L) and the transactional-concurrency throttle, and
 * watch how GETM and WarpTM respond.
 *
 * This reproduces, interactively, the paper's Sec. III observation: lazy
 * validation caps useful concurrency at a couple of warps per core,
 * while eager conflict detection keeps scaling.
 */

#include <cstdio>

#include "gpu/gpu_system.hh"
#include "workloads/workload.hh"

using namespace getm;

int
main()
{
    const double scale = 0.25;
    const unsigned limits[] = {1, 2, 4, 8, 0xffffffffu};

    for (BenchId bench : {BenchId::HtH, BenchId::HtM, BenchId::HtL}) {
        std::printf("\n%s (scale %.2f)\n", benchName(bench), scale);
        std::printf("%-8s %14s %14s %18s %18s\n", "tx-warps",
                    "GETM cycles", "WarpTM cycles", "GETM aborts/1K",
                    "WarpTM aborts/1K");
        for (unsigned limit : limits) {
            double cycles[2] = {};
            double aborts[2] = {};
            int col = 0;
            for (ProtocolKind protocol :
                 {ProtocolKind::Getm, ProtocolKind::WarpTmLL}) {
                GpuConfig cfg = GpuConfig::gtx480();
                cfg.protocol = protocol;
                cfg.core.txWarpLimit = limit;
                GpuSystem gpu(cfg);
                auto workload = makeWorkload(bench, scale, 3);
                workload->setup(gpu, false);
                const RunResult result =
                    gpu.run(workload->kernel(), workload->numThreads());
                std::string why;
                if (!workload->verify(gpu, why)) {
                    std::fprintf(stderr, "verify failed: %s\n",
                                 why.c_str());
                    return 1;
                }
                cycles[col] = static_cast<double>(result.cycles);
                aborts[col] = result.abortsPer1kCommits();
                ++col;
            }
            if (limit == 0xffffffffu)
                std::printf("%-8s", "NL");
            else
                std::printf("%-8u", limit);
            std::printf(" %14.0f %14.0f %18.0f %18.0f\n", cycles[0],
                        cycles[1], aborts[0], aborts[1]);
        }
    }
    return 0;
}
