/**
 * @file
 * Quickstart: build a tiny transactional kernel with KernelBuilder, run
 * it on a GETM-equipped simulated GPU, and read back the results.
 *
 * The kernel is the paper's motivating example (Fig. 1, right side):
 * every thread transfers an amount between two bank accounts inside a
 * transaction -- no locks, no deadlock-avoidance gymnastics.
 */

#include <cstdio>

#include "gpu/gpu_system.hh"
#include "isa/kernel_builder.hh"

using namespace getm;

int
main()
{
    // 1. Configure a GTX480-like GPU running the GETM protocol.
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.protocol = ProtocolKind::Getm;
    GpuSystem gpu(cfg);

    // 2. Lay out the data: 64 accounts with 1000 credits each, and a
    //    (src, dst) pair per thread.
    const unsigned n_accounts = 64;
    const unsigned n_threads = 256;
    const Addr accounts = gpu.memory().allocate(4 * n_accounts);
    const Addr srcs = gpu.memory().allocate(4 * n_threads);
    const Addr dsts = gpu.memory().allocate(4 * n_threads);
    for (unsigned i = 0; i < n_accounts; ++i)
        gpu.memory().write(accounts + 4 * i, 1000);
    Rng rng(2026);
    for (unsigned t = 0; t < n_threads; ++t) {
        const std::uint32_t src =
            static_cast<std::uint32_t>(rng.below(n_accounts));
        std::uint32_t dst =
            static_cast<std::uint32_t>(rng.below(n_accounts));
        if (dst == src) // transfer-to-self would double-count
            dst = (dst + 1) % n_accounts;
        gpu.memory().write(srcs + 4 * t, src);
        gpu.memory().write(dsts + 4 * t, dst);
    }

    // 3. Write the kernel: txbegin / moves / txcommit (Fig. 1).
    KernelBuilder kb("quickstart");
    const Reg tid(1), tmp(2), src(3), dst(4), sa(5), da(6), sv(7), dv(8);
    kb.readSpecial(tid, SpecialReg::ThreadId);
    kb.shli(tmp, tid, 2);
    kb.addi(src, tmp, static_cast<std::int64_t>(srcs));
    kb.load(src, src);
    kb.addi(dst, tmp, static_cast<std::int64_t>(dsts));
    kb.load(dst, dst);
    kb.shli(sa, src, 2);
    kb.addi(sa, sa, static_cast<std::int64_t>(accounts));
    kb.shli(da, dst, 2);
    kb.addi(da, da, static_cast<std::int64_t>(accounts));
    kb.txBegin();
    kb.load(sv, sa);
    kb.load(dv, da);
    kb.addi(sv, sv, -10);
    kb.addi(dv, dv, 10);
    kb.store(sa, sv);
    kb.store(da, dv);
    kb.txCommit();
    kb.exit();
    Kernel kernel = kb.build();

    // 4. Run and inspect.
    const RunResult result = gpu.run(kernel, n_threads);
    std::printf("ran %u transactional transfers in %llu cycles\n",
                n_threads,
                static_cast<unsigned long long>(result.cycles));
    std::printf("commits: %llu, aborts: %llu (%.0f aborts/1K commits)\n",
                static_cast<unsigned long long>(result.commits),
                static_cast<unsigned long long>(result.aborts),
                result.abortsPer1kCommits());

    std::uint64_t total = 0;
    for (unsigned i = 0; i < n_accounts; ++i)
        total += gpu.memory().read(accounts + 4 * i);
    std::printf("total balance after run: %llu (expected %u) -> %s\n",
                static_cast<unsigned long long>(total), n_accounts * 1000,
                total == n_accounts * 1000ull ? "conserved" : "BROKEN");
    return total == n_accounts * 1000ull ? 0 : 1;
}
