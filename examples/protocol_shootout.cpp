/**
 * @file
 * Run every Table III benchmark under every protocol at a small scale
 * and print a one-screen comparison -- a miniature of the paper's
 * Fig. 11 that finishes in seconds. Also demonstrates post-run
 * invariant verification, which every workload ships with.
 */

#include <cstdio>
#include <string>

#include "gpu/gpu_system.hh"
#include "workloads/workload.hh"

using namespace getm;

int
main()
{
    const double scale = 0.05;
    const ProtocolKind protocols[] = {
        ProtocolKind::FgLock, ProtocolKind::WarpTmLL, ProtocolKind::Eapg,
        ProtocolKind::Getm};

    std::printf("cycles by protocol (scale %.2f; all runs verified)\n\n",
                scale);
    std::printf("%-8s", "bench");
    for (ProtocolKind protocol : protocols)
        std::printf(" %12s", protocolName(protocol));
    std::printf("\n");

    for (BenchId bench : allBenchIds()) {
        std::printf("%-8s", benchName(bench));
        for (ProtocolKind protocol : protocols) {
            GpuConfig cfg = GpuConfig::gtx480();
            cfg.protocol = protocol;
            cfg.core.txWarpLimit = optimalConcurrency(bench, protocol);
            GpuSystem gpu(cfg);
            auto workload = makeWorkload(bench, scale, 17);
            workload->setup(gpu, protocol == ProtocolKind::FgLock);
            const RunResult result =
                gpu.run(workload->kernel(), workload->numThreads());
            std::string why;
            if (!workload->verify(gpu, why)) {
                std::printf("\n%s/%s FAILED: %s\n", benchName(bench),
                            protocolName(protocol), why.c_str());
                return 1;
            }
            std::printf(" %12llu",
                        static_cast<unsigned long long>(result.cycles));
        }
        std::printf("\n");
    }
    return 0;
}
