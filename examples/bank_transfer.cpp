/**
 * @file
 * Bank-transfer scenario (the paper's ATM benchmark) comparing the
 * transactional version against the hand-optimized fine-grained-lock
 * version from Fig. 1 -- using the prebuilt workload library rather than
 * hand-written kernels.
 *
 * This is the paper's motivating case: the lock version needs ordered
 * acquisition and a done-flag loop to dodge SIMT deadlock; the TM
 * version is four memory accesses between txbegin/txcommit.
 */

#include <cstdio>

#include "gpu/gpu_system.hh"
#include "workloads/workload.hh"

using namespace getm;

namespace {

RunResult
runVariant(ProtocolKind protocol, double scale)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.protocol = protocol;
    cfg.core.txWarpLimit = optimalConcurrency(BenchId::Atm, protocol);
    GpuSystem gpu(cfg);

    auto workload = makeWorkload(BenchId::Atm, scale, /*seed=*/11);
    workload->setup(gpu, protocol == ProtocolKind::FgLock);
    const RunResult result =
        gpu.run(workload->kernel(), workload->numThreads());

    std::string why;
    if (!workload->verify(gpu, why)) {
        std::fprintf(stderr, "verification failed: %s\n", why.c_str());
        std::exit(1);
    }
    return result;
}

} // namespace

int
main()
{
    const double scale = 0.25; // ~250K accounts, ~5.8K transfers

    std::printf("%-12s %12s %10s %10s %14s\n", "variant", "cycles",
                "commits", "aborts", "xbar flits");
    for (ProtocolKind protocol :
         {ProtocolKind::FgLock, ProtocolKind::Getm,
          ProtocolKind::WarpTmLL}) {
        const RunResult result = runVariant(protocol, scale);
        std::printf("%-12s %12llu %10llu %10llu %14llu\n",
                    protocolName(protocol),
                    static_cast<unsigned long long>(result.cycles),
                    static_cast<unsigned long long>(result.commits),
                    static_cast<unsigned long long>(result.aborts),
                    static_cast<unsigned long long>(result.xbarFlits));
    }
    std::printf("\nAll three variants conserve the total balance; the "
                "interesting part is the\ncycle count and what the "
                "programmer had to write to get it (see Fig. 1).\n");
    return 0;
}
