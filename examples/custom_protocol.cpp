/**
 * @file
 * Tutorial: plugging a custom TM protocol into the simulator.
 *
 * The simulator's protocol engines implement TmCoreProtocol (core side)
 * and, when they need LLC-side machinery, TmPartitionProtocol. This
 * example implements "IdealTM" -- a zero-overhead transactional memory
 * whose accesses are free and whose commits validate and apply
 * instantaneously at the core. It is obviously not buildable hardware;
 * it is the *upper bound* every real design chases, and a ~100-line
 * demonstration of the plugin surface.
 *
 * The program then races IdealTM against GETM and WarpTM on the bank
 * workload: the gap between IdealTM and a real protocol is exactly the
 * cost of that protocol's conflict detection and commit machinery.
 */

#include <bit>
#include <cstdio>

#include "gpu/gpu_system.hh"
#include "workloads/workload.hh"

using namespace getm;

namespace {

/** An idealized TM: free accesses, instant value-validated commits. */
class IdealTm : public TmCoreProtocol
{
  public:
    explicit IdealTm(SimtCore &core_) : core(core_) {}

    void
    txAccess(Warp &warp, bool is_store, const LaneAddrs &addrs,
             const LaneVals &vals, LaneMask lanes,
             std::uint8_t rd) override
    {
        (void)rd;
        for (LaneId lane = 0; lane < warpSize; ++lane) {
            if (!(lanes & (1u << lane)))
                continue;
            const Addr addr = addrs[lane];
            if (is_store) {
                warp.logs[lane].addWrite(addr, vals[lane]);
            } else if (auto own = warp.logs[lane].findWrite(addr)) {
                core.writebackLane(warp, lane, *own); // read-own-write
            } else {
                const std::uint32_t value = core.memory().read(addr);
                warp.logs[lane].addRead(addr, value);
                core.writebackLane(warp, lane, value);
            }
        }
        // No messages, no latency: accesses are free. (A real engine
        // would core.sendToPartition() here and count outstanding
        // responses; see src/core/getm_core_tm.cc.)
    }

    void
    txCommitPoint(Warp &warp) override
    {
        const int txi = warp.transactionIndex();
        LaneMask committers = warp.stack[txi].mask;

        // Resolve intra-warp conflicts, then value-validate each lane's
        // read log against memory -- both instantaneous.
        const LaneMask survivors = IntraWarpCd::resolveAtCommit(
            warp.logs.data(), warpSize, committers);
        LaneMask failed = committers & ~survivors;
        for (LaneId lane = 0; lane < warpSize; ++lane) {
            if (!(survivors & (1u << lane)))
                continue;
            for (const LogEntry &entry : warp.logs[lane].readLog())
                if (core.memory().read(entry.addr) != entry.value) {
                    failed |= 1u << lane;
                    break;
                }
        }
        if (failed)
            core.abortTxLanes(warp, failed, warp.warpts);

        // Apply the winners' write logs atomically, right now.
        const LaneMask committed = committers & ~failed;
        for (LaneId lane = 0; lane < warpSize; ++lane)
            if (committed & (1u << lane))
                for (const LogEntry &entry : warp.logs[lane].writeLog())
                    core.memory().write(entry.addr, entry.value);

        core.retireTxAttempt(warp, committed);
    }

    void
    onResponse(Warp &, const MemMsg &) override
    {
        // IdealTM never sends partition messages, so none come back.
    }

  private:
    SimtCore &core;
};

RunResult
runAtm(ProtocolKind protocol, bool ideal, double scale)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.protocol = protocol;
    cfg.core.txWarpLimit = optimalConcurrency(BenchId::Atm, protocol);
    GpuSystem gpu(cfg);
    if (ideal)
        for (unsigned c = 0; c < gpu.numCores(); ++c)
            gpu.coreAt(c).setProtocol(
                std::make_unique<IdealTm>(gpu.coreAt(c)));

    auto workload = makeWorkload(BenchId::Atm, scale, 3);
    // IdealTM borrows the FgLock shell (it has no built-in engine) but
    // runs the *transactional* kernel.
    workload->setup(gpu, protocol == ProtocolKind::FgLock && !ideal);
    const RunResult result =
        gpu.run(workload->kernel(), workload->numThreads());
    std::string why;
    if (!workload->verify(gpu, why)) {
        std::fprintf(stderr, "verification failed: %s\n", why.c_str());
        std::exit(1);
    }
    return result;
}

} // namespace

int
main()
{
    const double scale = 0.5;
    std::printf("ATM under custom vs built-in protocols (scale %.2f)\n\n",
                scale);
    std::printf("%-12s %12s %10s %10s\n", "protocol", "cycles",
                "commits", "aborts");

    struct Row
    {
        const char *name;
        ProtocolKind protocol;
        bool ideal;
    };
    const Row rows[] = {
        // FgLock carries no engine, so it is a convenient shell for the
        // custom one.
        {"IdealTM", ProtocolKind::FgLock, true},
        {"GETM", ProtocolKind::Getm, false},
        {"WarpTM", ProtocolKind::WarpTmLL, false},
    };
    double ideal_cycles = 0;
    for (const Row &row : rows) {
        const RunResult result = runAtm(row.protocol, row.ideal, scale);
        if (ideal_cycles == 0)
            ideal_cycles = static_cast<double>(result.cycles);
        std::printf("%-12s %12llu %10llu %10llu   (%.2fx IdealTM)\n",
                    row.name,
                    static_cast<unsigned long long>(result.cycles),
                    static_cast<unsigned long long>(result.commits),
                    static_cast<unsigned long long>(result.aborts),
                    static_cast<double>(result.cycles) / ideal_cycles);
    }
    std::printf("\nThe distance from IdealTM is the price of real "
                "conflict detection and\ncommit hardware; GETM's whole "
                "contribution is shrinking it.\n");
    return 0;
}
