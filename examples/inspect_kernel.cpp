/**
 * @file
 * Tooling example: disassemble a workload's kernels and dump the raw
 * statistics of a run -- useful when porting new workloads to the
 * micro-ISA or when debugging a protocol engine.
 */

#include <cstdio>

#include "gpu/gpu_system.hh"
#include "workloads/workload.hh"

using namespace getm;

int
main()
{
    GpuConfig cfg = GpuConfig::testRig();
    cfg.protocol = ProtocolKind::Getm;
    GpuSystem gpu(cfg);

    auto workload = makeWorkload(BenchId::Atm, 0.01, 5);
    workload->setup(gpu, /*lock_variant=*/false);

    std::printf("=== disassembly of %s ===\n%s\n",
                workload->kernel().name().c_str(),
                workload->kernel().disassemble().c_str());

    const RunResult result =
        gpu.run(workload->kernel(), workload->numThreads());
    std::string why;
    if (!workload->verify(gpu, why)) {
        std::fprintf(stderr, "verify failed: %s\n", why.c_str());
        return 1;
    }

    std::printf("=== merged statistics ===\n%s",
                result.stats.dump().c_str());
    std::printf("=== summary ===\ncycles %llu, commits %llu, aborts "
                "%llu, flits %llu\n",
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.commits),
                static_cast<unsigned long long>(result.aborts),
                static_cast<unsigned long long>(result.xbarFlits));
    return 0;
}
