# Empty dependencies file for fig16_stall_per_addr.
# This may be replaced when dependencies are built.
