file(REMOVE_RECURSE
  "CMakeFiles/fig16_stall_per_addr.dir/fig16_stall_per_addr.cc.o"
  "CMakeFiles/fig16_stall_per_addr.dir/fig16_stall_per_addr.cc.o.d"
  "fig16_stall_per_addr"
  "fig16_stall_per_addr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_stall_per_addr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
