file(REMOVE_RECURSE
  "CMakeFiles/ablation_getm.dir/ablation_getm.cc.o"
  "CMakeFiles/ablation_getm.dir/ablation_getm.cc.o.d"
  "ablation_getm"
  "ablation_getm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_getm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
