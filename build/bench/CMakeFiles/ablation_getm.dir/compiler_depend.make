# Empty compiler generated dependencies file for ablation_getm.
# This may be replaced when dependencies are built.
