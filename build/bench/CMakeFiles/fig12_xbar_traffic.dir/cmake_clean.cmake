file(REMOVE_RECURSE
  "CMakeFiles/fig12_xbar_traffic.dir/fig12_xbar_traffic.cc.o"
  "CMakeFiles/fig12_xbar_traffic.dir/fig12_xbar_traffic.cc.o.d"
  "fig12_xbar_traffic"
  "fig12_xbar_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_xbar_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
