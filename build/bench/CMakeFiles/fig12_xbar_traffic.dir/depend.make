# Empty dependencies file for fig12_xbar_traffic.
# This may be replaced when dependencies are built.
