# Empty dependencies file for fig03_concurrency.
# This may be replaced when dependencies are built.
