file(REMOVE_RECURSE
  "CMakeFiles/fig03_concurrency.dir/fig03_concurrency.cc.o"
  "CMakeFiles/fig03_concurrency.dir/fig03_concurrency.cc.o.d"
  "fig03_concurrency"
  "fig03_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
