file(REMOVE_RECURSE
  "CMakeFiles/fig10_tx_cycles.dir/fig10_tx_cycles.cc.o"
  "CMakeFiles/fig10_tx_cycles.dir/fig10_tx_cycles.cc.o.d"
  "fig10_tx_cycles"
  "fig10_tx_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tx_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
