# Empty compiler generated dependencies file for fig15_stall_occupancy.
# This may be replaced when dependencies are built.
