file(REMOVE_RECURSE
  "CMakeFiles/fig15_stall_occupancy.dir/fig15_stall_occupancy.cc.o"
  "CMakeFiles/fig15_stall_occupancy.dir/fig15_stall_occupancy.cc.o.d"
  "fig15_stall_occupancy"
  "fig15_stall_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_stall_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
