file(REMOVE_RECURSE
  "CMakeFiles/fig04_eager_vs_lazy.dir/fig04_eager_vs_lazy.cc.o"
  "CMakeFiles/fig04_eager_vs_lazy.dir/fig04_eager_vs_lazy.cc.o.d"
  "fig04_eager_vs_lazy"
  "fig04_eager_vs_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_eager_vs_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
