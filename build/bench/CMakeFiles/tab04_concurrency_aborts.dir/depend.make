# Empty dependencies file for tab04_concurrency_aborts.
# This may be replaced when dependencies are built.
