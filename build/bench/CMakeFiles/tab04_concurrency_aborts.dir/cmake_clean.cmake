file(REMOVE_RECURSE
  "CMakeFiles/tab04_concurrency_aborts.dir/tab04_concurrency_aborts.cc.o"
  "CMakeFiles/tab04_concurrency_aborts.dir/tab04_concurrency_aborts.cc.o.d"
  "tab04_concurrency_aborts"
  "tab04_concurrency_aborts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_concurrency_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
