file(REMOVE_RECURSE
  "CMakeFiles/test_fig7_walkthrough.dir/test_fig7_walkthrough.cc.o"
  "CMakeFiles/test_fig7_walkthrough.dir/test_fig7_walkthrough.cc.o.d"
  "test_fig7_walkthrough"
  "test_fig7_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig7_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
