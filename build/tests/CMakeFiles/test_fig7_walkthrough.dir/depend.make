# Empty dependencies file for test_fig7_walkthrough.
# This may be replaced when dependencies are built.
