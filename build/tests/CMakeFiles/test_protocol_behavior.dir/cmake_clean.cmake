file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_behavior.dir/test_protocol_behavior.cc.o"
  "CMakeFiles/test_protocol_behavior.dir/test_protocol_behavior.cc.o.d"
  "test_protocol_behavior"
  "test_protocol_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
