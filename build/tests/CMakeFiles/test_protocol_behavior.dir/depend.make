# Empty dependencies file for test_protocol_behavior.
# This may be replaced when dependencies are built.
