file(REMOVE_RECURSE
  "CMakeFiles/test_simt.dir/test_simt.cc.o"
  "CMakeFiles/test_simt.dir/test_simt.cc.o.d"
  "test_simt"
  "test_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
