file(REMOVE_RECURSE
  "CMakeFiles/test_getm_protocol.dir/test_getm_protocol.cc.o"
  "CMakeFiles/test_getm_protocol.dir/test_getm_protocol.cc.o.d"
  "test_getm_protocol"
  "test_getm_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_getm_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
