# Empty dependencies file for test_getm_protocol.
# This may be replaced when dependencies are built.
