file(REMOVE_RECURSE
  "CMakeFiles/test_wtm_protocol.dir/test_wtm_protocol.cc.o"
  "CMakeFiles/test_wtm_protocol.dir/test_wtm_protocol.cc.o.d"
  "test_wtm_protocol"
  "test_wtm_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wtm_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
