# Empty compiler generated dependencies file for test_warp_stack.
# This may be replaced when dependencies are built.
