file(REMOVE_RECURSE
  "CMakeFiles/test_warp_stack.dir/test_warp_stack.cc.o"
  "CMakeFiles/test_warp_stack.dir/test_warp_stack.cc.o.d"
  "test_warp_stack"
  "test_warp_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warp_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
