file(REMOVE_RECURSE
  "CMakeFiles/test_workload_meta.dir/test_workload_meta.cc.o"
  "CMakeFiles/test_workload_meta.dir/test_workload_meta.cc.o.d"
  "test_workload_meta"
  "test_workload_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
