# Empty compiler generated dependencies file for test_workload_meta.
# This may be replaced when dependencies are built.
