file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_system.dir/test_gpu_system.cc.o"
  "CMakeFiles/test_gpu_system.dir/test_gpu_system.cc.o.d"
  "test_gpu_system"
  "test_gpu_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
