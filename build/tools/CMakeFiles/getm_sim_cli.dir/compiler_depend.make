# Empty compiler generated dependencies file for getm_sim_cli.
# This may be replaced when dependencies are built.
