file(REMOVE_RECURSE
  "CMakeFiles/getm_sim_cli.dir/getm_sim.cc.o"
  "CMakeFiles/getm_sim_cli.dir/getm_sim.cc.o.d"
  "getm-sim"
  "getm-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
