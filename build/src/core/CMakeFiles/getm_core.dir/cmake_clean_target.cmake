file(REMOVE_RECURSE
  "libgetm_core.a"
)
