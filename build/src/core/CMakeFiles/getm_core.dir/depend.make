# Empty dependencies file for getm_core.
# This may be replaced when dependencies are built.
