file(REMOVE_RECURSE
  "CMakeFiles/getm_core.dir/getm_core_tm.cc.o"
  "CMakeFiles/getm_core.dir/getm_core_tm.cc.o.d"
  "CMakeFiles/getm_core.dir/getm_partition.cc.o"
  "CMakeFiles/getm_core.dir/getm_partition.cc.o.d"
  "CMakeFiles/getm_core.dir/metadata_table.cc.o"
  "CMakeFiles/getm_core.dir/metadata_table.cc.o.d"
  "CMakeFiles/getm_core.dir/stall_buffer.cc.o"
  "CMakeFiles/getm_core.dir/stall_buffer.cc.o.d"
  "libgetm_core.a"
  "libgetm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
