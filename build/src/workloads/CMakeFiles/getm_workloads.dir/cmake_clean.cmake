file(REMOVE_RECURSE
  "CMakeFiles/getm_workloads.dir/apriori.cc.o"
  "CMakeFiles/getm_workloads.dir/apriori.cc.o.d"
  "CMakeFiles/getm_workloads.dir/atm.cc.o"
  "CMakeFiles/getm_workloads.dir/atm.cc.o.d"
  "CMakeFiles/getm_workloads.dir/barnes_hut.cc.o"
  "CMakeFiles/getm_workloads.dir/barnes_hut.cc.o.d"
  "CMakeFiles/getm_workloads.dir/cloth.cc.o"
  "CMakeFiles/getm_workloads.dir/cloth.cc.o.d"
  "CMakeFiles/getm_workloads.dir/cuda_cuts.cc.o"
  "CMakeFiles/getm_workloads.dir/cuda_cuts.cc.o.d"
  "CMakeFiles/getm_workloads.dir/hashtable.cc.o"
  "CMakeFiles/getm_workloads.dir/hashtable.cc.o.d"
  "CMakeFiles/getm_workloads.dir/lock_utils.cc.o"
  "CMakeFiles/getm_workloads.dir/lock_utils.cc.o.d"
  "CMakeFiles/getm_workloads.dir/workload.cc.o"
  "CMakeFiles/getm_workloads.dir/workload.cc.o.d"
  "libgetm_workloads.a"
  "libgetm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
