
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apriori.cc" "src/workloads/CMakeFiles/getm_workloads.dir/apriori.cc.o" "gcc" "src/workloads/CMakeFiles/getm_workloads.dir/apriori.cc.o.d"
  "/root/repo/src/workloads/atm.cc" "src/workloads/CMakeFiles/getm_workloads.dir/atm.cc.o" "gcc" "src/workloads/CMakeFiles/getm_workloads.dir/atm.cc.o.d"
  "/root/repo/src/workloads/barnes_hut.cc" "src/workloads/CMakeFiles/getm_workloads.dir/barnes_hut.cc.o" "gcc" "src/workloads/CMakeFiles/getm_workloads.dir/barnes_hut.cc.o.d"
  "/root/repo/src/workloads/cloth.cc" "src/workloads/CMakeFiles/getm_workloads.dir/cloth.cc.o" "gcc" "src/workloads/CMakeFiles/getm_workloads.dir/cloth.cc.o.d"
  "/root/repo/src/workloads/cuda_cuts.cc" "src/workloads/CMakeFiles/getm_workloads.dir/cuda_cuts.cc.o" "gcc" "src/workloads/CMakeFiles/getm_workloads.dir/cuda_cuts.cc.o.d"
  "/root/repo/src/workloads/hashtable.cc" "src/workloads/CMakeFiles/getm_workloads.dir/hashtable.cc.o" "gcc" "src/workloads/CMakeFiles/getm_workloads.dir/hashtable.cc.o.d"
  "/root/repo/src/workloads/lock_utils.cc" "src/workloads/CMakeFiles/getm_workloads.dir/lock_utils.cc.o" "gcc" "src/workloads/CMakeFiles/getm_workloads.dir/lock_utils.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/getm_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/getm_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/getm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/getm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/eapg/CMakeFiles/getm_eapg.dir/DependInfo.cmake"
  "/root/repo/build/src/warptm/CMakeFiles/getm_warptm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/getm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/getm_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/getm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/getm_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/getm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/getm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
