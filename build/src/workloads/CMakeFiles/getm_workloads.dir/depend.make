# Empty dependencies file for getm_workloads.
# This may be replaced when dependencies are built.
