file(REMOVE_RECURSE
  "libgetm_workloads.a"
)
