file(REMOVE_RECURSE
  "CMakeFiles/getm_simt.dir/simt_core.cc.o"
  "CMakeFiles/getm_simt.dir/simt_core.cc.o.d"
  "CMakeFiles/getm_simt.dir/warp.cc.o"
  "CMakeFiles/getm_simt.dir/warp.cc.o.d"
  "libgetm_simt.a"
  "libgetm_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
