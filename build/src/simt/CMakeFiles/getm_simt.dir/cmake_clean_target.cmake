file(REMOVE_RECURSE
  "libgetm_simt.a"
)
