# Empty compiler generated dependencies file for getm_simt.
# This may be replaced when dependencies are built.
