# Empty compiler generated dependencies file for getm_power.
# This may be replaced when dependencies are built.
