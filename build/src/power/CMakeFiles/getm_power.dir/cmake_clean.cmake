file(REMOVE_RECURSE
  "CMakeFiles/getm_power.dir/cacti_lite.cc.o"
  "CMakeFiles/getm_power.dir/cacti_lite.cc.o.d"
  "CMakeFiles/getm_power.dir/tm_structures.cc.o"
  "CMakeFiles/getm_power.dir/tm_structures.cc.o.d"
  "libgetm_power.a"
  "libgetm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
