file(REMOVE_RECURSE
  "libgetm_power.a"
)
