file(REMOVE_RECURSE
  "libgetm_warptm.a"
)
