# Empty dependencies file for getm_warptm.
# This may be replaced when dependencies are built.
