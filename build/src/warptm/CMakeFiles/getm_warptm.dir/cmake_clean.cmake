file(REMOVE_RECURSE
  "CMakeFiles/getm_warptm.dir/wtm_core_tm.cc.o"
  "CMakeFiles/getm_warptm.dir/wtm_core_tm.cc.o.d"
  "CMakeFiles/getm_warptm.dir/wtm_partition.cc.o"
  "CMakeFiles/getm_warptm.dir/wtm_partition.cc.o.d"
  "libgetm_warptm.a"
  "libgetm_warptm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_warptm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
