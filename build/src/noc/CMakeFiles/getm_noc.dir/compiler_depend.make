# Empty compiler generated dependencies file for getm_noc.
# This may be replaced when dependencies are built.
