file(REMOVE_RECURSE
  "CMakeFiles/getm_noc.dir/crossbar.cc.o"
  "CMakeFiles/getm_noc.dir/crossbar.cc.o.d"
  "libgetm_noc.a"
  "libgetm_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
