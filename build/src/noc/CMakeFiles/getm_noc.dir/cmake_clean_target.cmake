file(REMOVE_RECURSE
  "libgetm_noc.a"
)
