file(REMOVE_RECURSE
  "libgetm_isa.a"
)
