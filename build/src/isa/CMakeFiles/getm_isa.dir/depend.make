# Empty dependencies file for getm_isa.
# This may be replaced when dependencies are built.
