file(REMOVE_RECURSE
  "CMakeFiles/getm_isa.dir/instruction.cc.o"
  "CMakeFiles/getm_isa.dir/instruction.cc.o.d"
  "CMakeFiles/getm_isa.dir/kernel_builder.cc.o"
  "CMakeFiles/getm_isa.dir/kernel_builder.cc.o.d"
  "libgetm_isa.a"
  "libgetm_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
