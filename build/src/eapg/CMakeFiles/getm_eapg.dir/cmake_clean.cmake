file(REMOVE_RECURSE
  "CMakeFiles/getm_eapg.dir/eapg.cc.o"
  "CMakeFiles/getm_eapg.dir/eapg.cc.o.d"
  "libgetm_eapg.a"
  "libgetm_eapg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_eapg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
