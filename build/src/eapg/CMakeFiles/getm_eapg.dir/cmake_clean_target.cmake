file(REMOVE_RECURSE
  "libgetm_eapg.a"
)
