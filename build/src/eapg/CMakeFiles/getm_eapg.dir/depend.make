# Empty dependencies file for getm_eapg.
# This may be replaced when dependencies are built.
