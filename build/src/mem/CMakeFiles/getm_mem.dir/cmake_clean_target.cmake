file(REMOVE_RECURSE
  "libgetm_mem.a"
)
