# Empty dependencies file for getm_mem.
# This may be replaced when dependencies are built.
