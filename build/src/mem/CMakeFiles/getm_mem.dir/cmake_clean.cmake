file(REMOVE_RECURSE
  "CMakeFiles/getm_mem.dir/backing_store.cc.o"
  "CMakeFiles/getm_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/getm_mem.dir/cache_model.cc.o"
  "CMakeFiles/getm_mem.dir/cache_model.cc.o.d"
  "CMakeFiles/getm_mem.dir/dram_model.cc.o"
  "CMakeFiles/getm_mem.dir/dram_model.cc.o.d"
  "libgetm_mem.a"
  "libgetm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
