file(REMOVE_RECURSE
  "libgetm_gpu.a"
)
