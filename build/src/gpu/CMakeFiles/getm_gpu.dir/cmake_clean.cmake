file(REMOVE_RECURSE
  "CMakeFiles/getm_gpu.dir/config_file.cc.o"
  "CMakeFiles/getm_gpu.dir/config_file.cc.o.d"
  "CMakeFiles/getm_gpu.dir/gpu_system.cc.o"
  "CMakeFiles/getm_gpu.dir/gpu_system.cc.o.d"
  "CMakeFiles/getm_gpu.dir/mem_partition.cc.o"
  "CMakeFiles/getm_gpu.dir/mem_partition.cc.o.d"
  "CMakeFiles/getm_gpu.dir/timeline.cc.o"
  "CMakeFiles/getm_gpu.dir/timeline.cc.o.d"
  "libgetm_gpu.a"
  "libgetm_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
