# Empty dependencies file for getm_gpu.
# This may be replaced when dependencies are built.
