# Empty compiler generated dependencies file for getm_common.
# This may be replaced when dependencies are built.
