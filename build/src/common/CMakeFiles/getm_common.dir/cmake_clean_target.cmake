file(REMOVE_RECURSE
  "libgetm_common.a"
)
