file(REMOVE_RECURSE
  "CMakeFiles/getm_common.dir/debug.cc.o"
  "CMakeFiles/getm_common.dir/debug.cc.o.d"
  "CMakeFiles/getm_common.dir/h3.cc.o"
  "CMakeFiles/getm_common.dir/h3.cc.o.d"
  "CMakeFiles/getm_common.dir/log.cc.o"
  "CMakeFiles/getm_common.dir/log.cc.o.d"
  "CMakeFiles/getm_common.dir/stats.cc.o"
  "CMakeFiles/getm_common.dir/stats.cc.o.d"
  "libgetm_common.a"
  "libgetm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
