file(REMOVE_RECURSE
  "CMakeFiles/getm_tm.dir/backoff.cc.o"
  "CMakeFiles/getm_tm.dir/backoff.cc.o.d"
  "CMakeFiles/getm_tm.dir/intra_warp_cd.cc.o"
  "CMakeFiles/getm_tm.dir/intra_warp_cd.cc.o.d"
  "CMakeFiles/getm_tm.dir/tx_log.cc.o"
  "CMakeFiles/getm_tm.dir/tx_log.cc.o.d"
  "libgetm_tm.a"
  "libgetm_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getm_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
