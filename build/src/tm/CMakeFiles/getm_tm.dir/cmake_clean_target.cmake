file(REMOVE_RECURSE
  "libgetm_tm.a"
)
