# Empty dependencies file for getm_tm.
# This may be replaced when dependencies are built.
