
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tm/backoff.cc" "src/tm/CMakeFiles/getm_tm.dir/backoff.cc.o" "gcc" "src/tm/CMakeFiles/getm_tm.dir/backoff.cc.o.d"
  "/root/repo/src/tm/intra_warp_cd.cc" "src/tm/CMakeFiles/getm_tm.dir/intra_warp_cd.cc.o" "gcc" "src/tm/CMakeFiles/getm_tm.dir/intra_warp_cd.cc.o.d"
  "/root/repo/src/tm/tx_log.cc" "src/tm/CMakeFiles/getm_tm.dir/tx_log.cc.o" "gcc" "src/tm/CMakeFiles/getm_tm.dir/tx_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/getm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/getm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
