# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect_kernel "/root/repo/build/examples/inspect_kernel")
set_tests_properties(example_inspect_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_transfer "/root/repo/build/examples/bank_transfer")
set_tests_properties(example_bank_transfer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_protocol "/root/repo/build/examples/custom_protocol")
set_tests_properties(example_custom_protocol PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
