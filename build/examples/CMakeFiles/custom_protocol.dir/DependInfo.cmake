
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_protocol.cpp" "examples/CMakeFiles/custom_protocol.dir/custom_protocol.cpp.o" "gcc" "examples/CMakeFiles/custom_protocol.dir/custom_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/getm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/getm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/getm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/getm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/eapg/CMakeFiles/getm_eapg.dir/DependInfo.cmake"
  "/root/repo/build/src/warptm/CMakeFiles/getm_warptm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/getm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/getm_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/getm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/getm_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/getm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/getm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
