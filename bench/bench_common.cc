#include "bench/bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <tuple>

#include "common/log.hh"

namespace getm {
namespace bench {

double
benchScale()
{
    if (const char *env = std::getenv("GETM_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

std::uint64_t
benchSeed()
{
    if (const char *env = std::getenv("GETM_BENCH_SEED"))
        return std::strtoull(env, nullptr, 10);
    return 7;
}

BenchOutcome
runBench(const BenchSpec &spec)
{
    GpuConfig cfg = spec.gpu;
    cfg.protocol = spec.protocol;
    cfg.seed = spec.seed;

    auto workload = makeWorkload(spec.bench, spec.scale, spec.seed);
    cfg.core.txWarpLimit =
        spec.concurrency ? spec.concurrency
                         : optimalConcurrency(spec.bench, spec.protocol);

    GpuSystem gpu(cfg);
    workload->setup(gpu, spec.protocol == ProtocolKind::FgLock);

    BenchOutcome outcome;
    outcome.threads = workload->numThreads();
    outcome.run =
        gpu.run(workload->kernel(), workload->numThreads(), 8'000'000'000ull);

    std::string why;
    if (!workload->verify(gpu, why))
        fatal("%s/%s failed verification: %s", benchName(spec.bench),
              protocolName(spec.protocol), why.c_str());
    return outcome;
}

std::uint64_t
lockBaselineCycles(BenchId bench, double scale, std::uint64_t seed)
{
    static std::map<std::tuple<BenchId, long, std::uint64_t>,
                    std::uint64_t>
        cache;
    const auto key = std::make_tuple(
        bench, static_cast<long>(scale * 1e6), seed);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    BenchSpec spec;
    spec.bench = bench;
    spec.protocol = ProtocolKind::FgLock;
    spec.scale = scale;
    spec.seed = seed;
    const std::uint64_t cycles = runBench(spec).run.cycles;
    cache.emplace(key, cycles);
    return cycles;
}

void
printHeader(const std::string &title,
            const std::vector<std::string> &columns)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("%-10s", "bench");
    for (const auto &column : columns)
        std::printf(" %14s", column.c_str());
    std::printf("\n");
}

void
printRow(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-10s", label.c_str());
    for (double value : values)
        std::printf(" %14.3f", value);
    std::printf("\n");
}

double
gmean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    for (double value : values)
        log_sum += std::log(value);
    return values.empty() ? 0.0
                          : std::exp(log_sum /
                                     static_cast<double>(values.size()));
}

} // namespace bench
} // namespace getm
