/**
 * @file
 * Fig. 16: average number of requests concurrently queued per address in
 * GETM's stall buffers.
 *
 * Paper claim: very few requests ever wait on the same address (around
 * one on average), motivating 4 entries per stall-buffer line.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace getm;
using namespace getm::bench;

int
main()
{
    const double scale = benchScale();
    const std::uint64_t seed = benchSeed();

    std::printf("Fig. 16 reproduction: mean stalled requests per address "
                "(scale %.3g)\n",
                scale);
    std::printf("%-8s %16s   hottest granule\n", "bench", "waiters/addr");

    double sum = 0.0;
    unsigned count = 0;
    for (BenchId bench : allBenchIds()) {
        BenchSpec spec;
        spec.bench = bench;
        spec.protocol = ProtocolKind::Getm;
        spec.scale = scale;
        spec.seed = seed;
        spec.gpu.getmStall.lines = 64;
        spec.gpu.getmStall.entriesPerLine = 64;
        spec.gpu.hotAddrTopN = 1;
        const BenchOutcome outcome = runBench(spec);
        // Mean queue depth measured by the conflict profiler at
        // stall-insertion time, plus the most contended granule.
        const double waiters = outcome.run.obs.meanStallWaiters();
        if (outcome.run.obs.hotAddrs.empty()) {
            std::printf("%-8s %16.3f   (no contention)\n",
                        benchName(bench), waiters);
        } else {
            const HotAddrRow &hot = outcome.run.obs.hotAddrs.front();
            std::printf("%-8s %16.3f   %#llx (%llu events, P%u)\n",
                        benchName(bench), waiters,
                        static_cast<unsigned long long>(hot.addr),
                        static_cast<unsigned long long>(hot.total),
                        hot.partition);
        }
        sum += waiters;
        ++count;
    }
    std::printf("%-8s %16.3f\n", "AVG", sum / count);
    return 0;
}
